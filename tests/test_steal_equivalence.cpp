// Property test for the work-stealing invariant: stealing is an execution
// strategy, not a semantics change. For any seed, shard count, and batch
// size, the flag digest (replay::SummariseFlags over every emitted event)
// must be identical with stealing on and off, and identical across shard
// counts — per-stream batches score in submission order on exactly one
// worker at a time, so where they score cannot matter. The accounting
// identity offered == scored + shed + dropped + errored is checked on
// every run.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/assertion.hpp"
#include "replay/replay.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/sharded_service.hpp"

namespace omg::runtime {
namespace {

struct Tick {
  double value = 0.0;
};

std::vector<Tick> MakeStream(std::uint64_t seed, std::size_t n) {
  common::Rng rng(seed);
  std::vector<Tick> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stream.push_back(Tick{rng.Uniform(-2.0, 2.0)});
  }
  return stream;
}

ShardedMonitorService<Tick>::SuiteBundle MakeBundle() {
  auto suite = std::make_shared<core::AssertionSuite<Tick>>();
  suite->AddPointwise(
      "positive", [](const Tick& t) { return t.value > 1.0 ? t.value : 0.0; });
  suite->AddFunction(
      "rising",
      [](std::span<const Tick> stream) {
        std::vector<double> severities(stream.size(), 0.0);
        for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
          if (stream[i + 1].value > stream[i].value + 1.5) severities[i] = 1.0;
        }
        return severities;
      },
      /*temporal_radius=*/1);
  return {suite, {}};
}

constexpr std::size_t kStreams = 6;
constexpr std::size_t kPerStream = 400;

/// Runs one full ingest with the given geometry and returns the canonical
/// flag digest; fails the accounting identity inline.
std::uint64_t RunDigest(std::uint64_t seed, std::size_t shards,
                        std::size_t batch_size, bool stealing) {
  ShardedRuntimeConfig config;
  config.shards = shards;
  config.window = 24;
  config.settle_lag = 6;
  config.queue_capacity = 512;
  config.stealing = stealing;
  ShardedMonitorService<Tick> service(config, MakeBundle);
  auto sink = std::make_shared<CollectingSink>();
  service.AddSink(sink);

  std::vector<StreamId> ids;
  std::vector<std::vector<Tick>> data;
  for (std::size_t s = 0; s < kStreams; ++s) {
    ids.push_back(service.RegisterStream("s" + std::to_string(s)));
    data.push_back(MakeStream(seed * 101 + s, kPerStream));
  }

  // Round-robin the streams in `batch_size` slices, like interleaved
  // producers would; kBlock admits everything, so offered is exact.
  std::size_t offered = 0;
  for (std::size_t begin = 0; begin < kPerStream; begin += batch_size) {
    const std::size_t count = std::min(batch_size, kPerStream - begin);
    for (std::size_t s = 0; s < kStreams; ++s) {
      std::vector<Tick> batch(data[s].begin() + begin,
                              data[s].begin() + begin + count);
      EXPECT_TRUE(service.ObserveBatch(ids[s], std::move(batch)));
      offered += count;
    }
  }
  service.Flush();
  EXPECT_TRUE(service.Errors().empty());

  const MetricsSnapshot snapshot = service.Metrics();
  EXPECT_EQ(snapshot.examples_seen + snapshot.TotalShedExamples() +
                snapshot.TotalDroppedExamples() +
                snapshot.TotalErroredExamples(),
            offered)
      << "accounting identity broken: seed=" << seed << " shards=" << shards
      << " batch=" << batch_size << " stealing=" << stealing;
  return replay::SummariseFlags(sink->Events()).digest;
}

TEST(StealEquivalence, DigestsIdenticalAcrossShardsBatchSizesAndStealing) {
  for (const std::uint64_t seed : {11ULL, 29ULL, 83ULL}) {
    for (const std::size_t batch_size : {std::size_t{1}, std::size_t{7},
                                         std::size_t{32}}) {
      bool have_reference = false;
      std::uint64_t reference = 0;
      for (const std::size_t shards :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        for (const bool stealing : {false, true}) {
          const std::uint64_t digest =
              RunDigest(seed, shards, batch_size, stealing);
          if (!have_reference) {
            reference = digest;
            have_reference = true;
            continue;
          }
          EXPECT_EQ(digest, reference)
              << "seed=" << seed << " shards=" << shards
              << " batch=" << batch_size << " stealing=" << stealing;
        }
      }
    }
  }
}

}  // namespace
}  // namespace omg::runtime
