#include <gtest/gtest.h>

#include <map>
#include <set>

#include "labels/labels.hpp"
#include "tvnews/news.hpp"
#include "video/world.hpp"

namespace omg {
namespace {

// ---- TV news ----

TEST(NewsGenerator, Deterministic) {
  tvnews::NewsGenerator a(tvnews::NewsConfig{}, 3);
  tvnews::NewsGenerator b(tvnews::NewsConfig{}, 3);
  const auto fa = a.Generate(50);
  const auto fb = b.Generate(50);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i].faces.size(), fb[i].faces.size());
    for (std::size_t f = 0; f < fa[i].faces.size(); ++f) {
      EXPECT_EQ(fa[i].faces[f].identity, fb[i].faces[f].identity);
    }
  }
}

TEST(NewsGenerator, ScenesHaveStableCast) {
  tvnews::NewsGenerator generator(tvnews::NewsConfig{}, 4);
  const auto frames = generator.Generate(100);
  std::map<std::int64_t, std::set<std::int64_t>> scene_people;
  std::map<std::int64_t, std::size_t> scene_faces;
  for (const auto& frame : frames) {
    for (const auto& face : frame.faces) {
      scene_people[frame.scene_id].insert(face.person_id);
    }
    scene_faces[frame.scene_id] = frame.faces.size();
  }
  for (const auto& [scene, people] : scene_people) {
    EXPECT_EQ(people.size(), scene_faces[scene])
        << "cast changed within scene " << scene;
  }
}

TEST(NewsGenerator, ErrorRatesRoughlyRespected) {
  tvnews::NewsConfig config;
  config.gender_error_rate = 0.1;
  tvnews::NewsGenerator generator(config, 5);
  const auto frames = generator.Generate(800);
  std::size_t total = 0, errors = 0;
  for (const auto& frame : frames) {
    for (const auto& face : frame.faces) {
      ++total;
      if (face.gender != face.true_gender) ++errors;
    }
  }
  EXPECT_NEAR(static_cast<double>(errors) / static_cast<double>(total), 0.1,
              0.03);
}

TEST(NewsSuiteTest, GeneratedColumns) {
  tvnews::NewsSuite suite = tvnews::BuildNewsSuite();
  EXPECT_EQ(suite.suite.Names(),
            (std::vector<std::string>{"consistent:identity",
                                      "consistent:gender",
                                      "consistent:hair"}));
}

TEST(NewsSuiteTest, FiresOnInjectedGenderFlip) {
  tvnews::NewsConfig config;
  config.identity_error_rate = 0.0;
  config.gender_error_rate = 0.0;
  config.hair_error_rate = 0.0;
  tvnews::NewsGenerator generator(config, 6);
  auto frames = generator.Generate(12);
  // Find a scene with >= 3 frames and flip one face's gender mid-scene.
  std::map<std::int64_t, std::size_t> scene_count;
  for (const auto& frame : frames) ++scene_count[frame.scene_id];
  std::size_t victim = frames.size();
  for (std::size_t i = 1; i < frames.size(); ++i) {
    if (scene_count[frames[i].scene_id] >= 3 && !frames[i].faces.empty() &&
        frames[i - 1].scene_id == frames[i].scene_id) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, frames.size());
  auto& face = frames[victim].faces.front();
  face.gender = face.gender == "male" ? "female" : "male";

  tvnews::NewsSuite suite = tvnews::BuildNewsSuite();
  const core::SeverityMatrix m = suite.suite.CheckAll(frames);
  EXPECT_TRUE(m.Fired(victim, suite.suite.IndexOf("consistent:gender")));
  EXPECT_EQ(m.FireCounts()[suite.suite.IndexOf("consistent:identity")], 0u);
}

TEST(NewsSuiteTest, CleanStreamIsSilent) {
  tvnews::NewsConfig config;
  config.identity_error_rate = 0.0;
  config.gender_error_rate = 0.0;
  config.hair_error_rate = 0.0;
  tvnews::NewsGenerator generator(config, 7);
  const auto frames = generator.Generate(60);
  tvnews::NewsSuite suite = tvnews::BuildNewsSuite();
  const core::SeverityMatrix m = suite.suite.CheckAll(frames);
  EXPECT_EQ(m.TotalFired(), 0u);
}

TEST(NewsSuiteTest, CorrectionsProposeMajorityValue) {
  tvnews::NewsConfig config;
  config.identity_error_rate = 0.0;
  config.gender_error_rate = 0.0;
  config.hair_error_rate = 0.0;
  tvnews::NewsGenerator generator(config, 8);
  auto frames = generator.Generate(12);
  std::map<std::int64_t, std::size_t> scene_count;
  for (const auto& frame : frames) ++scene_count[frame.scene_id];
  std::size_t victim = frames.size();
  for (std::size_t i = 1; i < frames.size(); ++i) {
    if (scene_count[frames[i].scene_id] >= 3 && !frames[i].faces.empty() &&
        frames[i - 1].scene_id == frames[i].scene_id) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, frames.size());
  auto& face = frames[victim].faces.front();
  const std::string truth = face.hair;
  face.hair = truth == "black" ? "blond" : "black";

  tvnews::NewsSuite suite = tvnews::BuildNewsSuite();
  (void)suite.suite.CheckAll(frames);
  const auto& corrections = suite.consistency->Corrections(frames);
  bool found = false;
  for (const auto& correction : corrections) {
    if (correction.attribute_key == "hair" &&
        correction.example_index == victim) {
      EXPECT_EQ(correction.proposed_value, truth);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(NewsPrecision, HighOnDefaultErrorRates) {
  tvnews::NewsGenerator generator(tvnews::NewsConfig{}, 9);
  const auto frames = generator.Generate(2000);
  const auto samples =
      tvnews::MeasureNewsAssertionPrecision(frames, 50, 10);
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& sample : samples) {
    if (sample.sampled == 0) continue;
    const double precision =
        static_cast<double>(sample.correct_model_output) /
        static_cast<double>(sample.sampled);
    EXPECT_GT(precision, 0.9) << sample.assertion;
  }
}

// ---- Human-label validation ----

video::WorldConfig LabelWorld() {
  video::WorldConfig config;
  return config;
}

TEST(AnnotatorSim, TrueClassStablePerObject) {
  labels::AnnotatorSim annotator(labels::AnnotatorConfig{}, 1);
  const std::string a = annotator.TrueClassOf(7);
  EXPECT_EQ(annotator.TrueClassOf(7), a);
}

TEST(AnnotatorSim, LabelsEveryTruth) {
  video::NightStreetWorld world(LabelWorld(), 2);
  const auto frames = world.GenerateFrames(50);
  labels::AnnotatorSim annotator(labels::AnnotatorConfig{}, 3);
  const auto labeled = annotator.LabelFrames(frames);
  ASSERT_EQ(labeled.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(labeled[i].labels.size(), frames[i].truths.size());
  }
}

TEST(AnnotatorSim, ConsistentConfusionIsStable) {
  labels::AnnotatorConfig config;
  config.consistent_confusion_rate = 1.0;  // every object confused
  config.random_error_rate = 0.0;
  video::NightStreetWorld world(LabelWorld(), 4);
  const auto frames = world.GenerateFrames(60);
  labels::AnnotatorSim annotator(config, 5);
  const auto labeled = annotator.LabelFrames(frames);
  std::map<std::int64_t, std::set<std::string>> labels_per_object;
  for (const auto& frame : labeled) {
    for (const auto& label : frame.labels) {
      labels_per_object[label.truth_id].insert(label.labeled_class);
      EXPECT_NE(label.labeled_class, label.true_class);
    }
  }
  for (const auto& [id, observed] : labels_per_object) {
    EXPECT_EQ(observed.size(), 1u) << "object " << id;
  }
}

TEST(ValidateLabels, PerfectLabelsReportNoErrors) {
  labels::AnnotatorConfig config;
  config.consistent_confusion_rate = 0.0;
  config.random_error_rate = 0.0;
  video::NightStreetWorld world(LabelWorld(), 6);
  const auto frames = world.GenerateFrames(80);
  labels::AnnotatorSim annotator(config, 7);
  const auto labeled = annotator.LabelFrames(frames);
  const auto report = labels::ValidateLabels(labeled);
  EXPECT_GT(report.total_labels, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.errors_caught, 0u);
}

TEST(ValidateLabels, RandomSlipsAreCaught) {
  labels::AnnotatorConfig config;
  config.consistent_confusion_rate = 0.0;
  config.random_error_rate = 0.08;
  video::NightStreetWorld world(LabelWorld(), 8);
  const auto frames = world.GenerateFrames(150);
  labels::AnnotatorSim annotator(config, 9);
  const auto labeled = annotator.LabelFrames(frames);
  const auto report = labels::ValidateLabels(labeled);
  ASSERT_GT(report.errors, 0u);
  // Random slips on multi-frame tracks are exactly what the consistency
  // assertion catches: expect a solid majority caught.
  EXPECT_GT(report.CatchRate(), 0.5);
}

TEST(ValidateLabels, ConsistentConfusionsAreNotCaught) {
  labels::AnnotatorConfig config;
  config.consistent_confusion_rate = 0.3;
  config.random_error_rate = 0.0;
  video::NightStreetWorld world(LabelWorld(), 10);
  const auto frames = world.GenerateFrames(150);
  labels::AnnotatorSim annotator(config, 11);
  const auto labeled = annotator.LabelFrames(frames);
  const auto report = labels::ValidateLabels(labeled);
  ASSERT_GT(report.errors, 0u);
  // Consistent confusions are invisible to a per-track consistency check;
  // the rare catches come only from tracker identity switches that splice
  // two objects into one track.
  EXPECT_LT(report.CatchRate(), 0.05);
}

TEST(ValidateLabels, MixedErrorsPartiallyCaught) {
  // The Table 6 regime: mostly consistent confusions, a few random slips.
  // More frames than the other cases: the confused-object count is a
  // small-sample binomial, and a run with zero confused objects would make
  // the catch rate look spuriously high.
  labels::AnnotatorConfig config;
  video::NightStreetWorld world(LabelWorld(), 12);
  const auto frames = world.GenerateFrames(1200);
  labels::AnnotatorSim annotator(config, 13);
  const auto labeled = annotator.LabelFrames(frames);
  const auto report = labels::ValidateLabels(labeled);
  ASSERT_GT(report.errors, 0u);
  EXPECT_GT(report.errors_caught, 0u);
  EXPECT_LT(report.CatchRate(), 0.6);
}

}  // namespace
}  // namespace omg
