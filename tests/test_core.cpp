#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/assertion.hpp"
#include "core/monitor.hpp"
#include "core/severity_matrix.hpp"

namespace omg::core {
namespace {

TEST(SeverityMatrix, DefaultsToAbstain) {
  SeverityMatrix m(3, 2);
  for (std::size_t e = 0; e < 3; ++e) {
    for (std::size_t a = 0; a < 2; ++a) {
      EXPECT_DOUBLE_EQ(m.At(e, a), kAbstain);
      EXPECT_FALSE(m.Fired(e, a));
    }
  }
  EXPECT_EQ(m.TotalFired(), 0u);
}

TEST(SeverityMatrix, SetAndQuery) {
  SeverityMatrix m(3, 2);
  m.Set(1, 0, 2.5);
  EXPECT_TRUE(m.Fired(1, 0));
  EXPECT_TRUE(m.AnyFired(1));
  EXPECT_FALSE(m.AnyFired(0));
  EXPECT_EQ(m.FireCounts(), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(m.ExamplesFiring(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(m.FlaggedExamples(), (std::vector<std::size_t>{1}));
}

TEST(SeverityMatrix, RejectsNegativeSeverity) {
  SeverityMatrix m(1, 1);
  EXPECT_THROW(m.Set(0, 0, -1.0), common::CheckError);
}

TEST(SeverityMatrix, BoundsChecked) {
  SeverityMatrix m(2, 2);
  EXPECT_THROW(m.At(2, 0), common::CheckError);
  EXPECT_THROW(m.At(0, 2), common::CheckError);
}

TEST(SeverityMatrix, ContextIsRow) {
  SeverityMatrix m(2, 3);
  m.Set(1, 0, 1.0);
  m.Set(1, 2, 4.0);
  const auto context = m.Context(1);
  ASSERT_EQ(context.size(), 3u);
  EXPECT_DOUBLE_EQ(context[0], 1.0);
  EXPECT_DOUBLE_EQ(context[1], 0.0);
  EXPECT_DOUBLE_EQ(context[2], 4.0);
}

TEST(SeverityMatrix, SetColumn) {
  SeverityMatrix m(3, 2);
  m.SetColumn(1, std::vector<double>{1.0, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(m.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 2.0);
  EXPECT_THROW(m.SetColumn(0, std::vector<double>{1.0}),
               common::CheckError);
}

struct Toy {
  double value = 0.0;
};

TEST(AssertionSuite, PointwiseAssertionRuns) {
  AssertionSuite<Toy> suite;
  suite.AddPointwise("positive",
                     [](const Toy& t) { return t.value > 0 ? 1.0 : 0.0; });
  const std::vector<Toy> stream = {{-1.0}, {2.0}, {0.0}};
  const SeverityMatrix m = suite.CheckAll(stream);
  EXPECT_FALSE(m.Fired(0, 0));
  EXPECT_TRUE(m.Fired(1, 0));
  EXPECT_FALSE(m.Fired(2, 0));
}

TEST(AssertionSuite, StreamAssertionSeesWholeStream) {
  AssertionSuite<Toy> suite;
  suite.AddFunction("delta", [](std::span<const Toy> stream) {
    std::vector<double> severities(stream.size(), 0.0);
    for (std::size_t i = 1; i < stream.size(); ++i) {
      if (stream[i].value < stream[i - 1].value) severities[i] = 1.0;
    }
    return severities;
  });
  const std::vector<Toy> stream = {{1.0}, {2.0}, {1.5}};
  const SeverityMatrix m = suite.CheckAll(stream);
  EXPECT_FALSE(m.Fired(1, 0));
  EXPECT_TRUE(m.Fired(2, 0));
}

TEST(AssertionSuite, DuplicateNamesRejected) {
  AssertionSuite<Toy> suite;
  suite.AddPointwise("a", [](const Toy&) { return 0.0; });
  EXPECT_THROW(suite.AddPointwise("a", [](const Toy&) { return 0.0; }),
               common::CheckError);
}

TEST(AssertionSuite, NamesAndIndexOf) {
  AssertionSuite<Toy> suite;
  suite.AddPointwise("a", [](const Toy&) { return 0.0; });
  suite.AddPointwise("b", [](const Toy&) { return 0.0; });
  EXPECT_EQ(suite.Names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(suite.IndexOf("b"), 1u);
  EXPECT_THROW(suite.IndexOf("c"), common::CheckError);
}

TEST(AssertionSuite, WrongSeverityCountRejected) {
  AssertionSuite<Toy> suite;
  suite.AddFunction("bad", [](std::span<const Toy>) {
    return std::vector<double>{1.0};  // always one entry
  });
  const std::vector<Toy> stream = {{1.0}, {2.0}};
  EXPECT_THROW(suite.CheckAll(stream), common::CheckError);
}

TEST(AssertionSuite, NegativeSeverityRejected) {
  AssertionSuite<Toy> suite;
  suite.AddPointwise("neg", [](const Toy&) { return -1.0; });
  const std::vector<Toy> stream = {{1.0}};
  EXPECT_THROW(suite.CheckAll(stream), common::CheckError);
}

TEST(AssertionSuite, EmptyNameRejected) {
  AssertionSuite<Toy> suite;
  EXPECT_THROW(suite.AddPointwise("", [](const Toy&) { return 0.0; }),
               common::CheckError);
}

TEST(StreamingMonitor, EmitsAfterSettleLag) {
  AssertionSuite<Toy> suite;
  suite.AddPointwise("positive",
                     [](const Toy& t) { return t.value > 0 ? 1.0 : 0.0; });
  StreamingMonitor<Toy> monitor(suite, /*window=*/4, /*settle_lag=*/1);
  // Firing example at stream position 0 must not emit until position 1
  // arrives.
  auto events = monitor.Observe(Toy{5.0});
  EXPECT_TRUE(events.empty());
  events = monitor.Observe(Toy{-1.0});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].example_index, 0u);
  EXPECT_EQ(events[0].assertion, "positive");
}

TEST(StreamingMonitor, EmitsEachFiringOnce) {
  AssertionSuite<Toy> suite;
  suite.AddPointwise("positive",
                     [](const Toy& t) { return t.value > 0 ? 1.0 : 0.0; });
  StreamingMonitor<Toy> monitor(suite, 4, 1);
  std::size_t total = 0;
  total += monitor.Observe(Toy{5.0}).size();
  total += monitor.Observe(Toy{5.0}).size();
  total += monitor.Observe(Toy{5.0}).size();
  total += monitor.Observe(Toy{-1.0}).size();
  // Three firing examples, each emitted exactly once.
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(monitor.stats().events_emitted, 3u);
  EXPECT_EQ(monitor.stats().fire_counts.at("positive"), 3u);
}

TEST(StreamingMonitor, RetroactiveAssertionSettles) {
  // Fires on example i when example i+1 has a larger value — requires the
  // future frame, like flicker.
  AssertionSuite<Toy> suite;
  suite.AddFunction("rising", [](std::span<const Toy> stream) {
    std::vector<double> severities(stream.size(), 0.0);
    for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
      if (stream[i + 1].value > stream[i].value) severities[i] = 1.0;
    }
    return severities;
  });
  StreamingMonitor<Toy> monitor(suite, 4, 1);
  EXPECT_TRUE(monitor.Observe(Toy{1.0}).empty());
  const auto events = monitor.Observe(Toy{2.0});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].example_index, 0u);
}

TEST(StreamingMonitor, CallbackInvoked) {
  AssertionSuite<Toy> suite;
  suite.AddPointwise("positive",
                     [](const Toy& t) { return t.value > 0 ? 1.0 : 0.0; });
  StreamingMonitor<Toy> monitor(suite, 4, 1);
  std::vector<MonitorEvent> seen;
  monitor.OnEvent([&](const MonitorEvent& e) { seen.push_back(e); });
  monitor.Observe(Toy{5.0});
  monitor.Observe(Toy{-1.0});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_DOUBLE_EQ(seen[0].severity, 1.0);
}

TEST(StreamingMonitor, MaxSeverityTracked) {
  AssertionSuite<Toy> suite;
  suite.AddPointwise("value", [](const Toy& t) {
    return t.value > 0 ? t.value : 0.0;
  });
  StreamingMonitor<Toy> monitor(suite, 4, 1);
  monitor.Observe(Toy{2.0});
  monitor.Observe(Toy{7.0});
  monitor.Observe(Toy{-1.0});
  EXPECT_DOUBLE_EQ(monitor.stats().max_severity.at("value"), 7.0);
}

TEST(StreamingMonitor, ValidatesConfig) {
  AssertionSuite<Toy> suite;
  EXPECT_THROW(StreamingMonitor<Toy>(suite, 2, 2), common::CheckError);
  EXPECT_THROW(StreamingMonitor<Toy>(suite, 0, 0), common::CheckError);
}

}  // namespace
}  // namespace omg::core
