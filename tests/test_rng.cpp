#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace omg::common {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.Fork(0);
  const auto c1 = child();
  // Re-deriving the same fork from the same parent state reproduces it.
  Rng parent2(7);
  Rng child2 = parent2.Fork(0);
  EXPECT_EQ(c1, child2());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(7);
  Rng a = parent.Fork(1);
  Rng parent2(7);
  Rng b = parent2.Fork(2);
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(2, 5));
  EXPECT_EQ(seen, (std::set<std::int64_t>{2, 3, 4, 5}));
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.UniformInt(2, 1), CheckError);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.Normal(0.0, -1.0), CheckError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng(3);
  EXPECT_THROW(rng.Bernoulli(1.5), CheckError);
  EXPECT_THROW(rng.Bernoulli(-0.1), CheckError);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(13);
  EXPECT_THROW(rng.Categorical(std::vector<double>{}), CheckError);
  EXPECT_THROW(rng.Categorical(std::vector<double>{0.0, 0.0}), CheckError);
  EXPECT_THROW(rng.Categorical(std::vector<double>{1.0, -1.0}), CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 10);
    EXPECT_EQ(sample.size(), 10u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const auto s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(19);
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), CheckError);
}

// Property sweep: Uniform(lo, hi) stays within bounds for many ranges.
class RngUniformRange
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(RngUniformRange, StaysInBounds) {
  const auto [lo, hi] = GetParam();
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.Uniform(lo, hi);
    EXPECT_GE(u, lo);
    EXPECT_LE(u, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RngUniformRange,
    ::testing::Values(std::pair{0.0, 1.0}, std::pair{-5.0, 5.0},
                      std::pair{100.0, 100.5}, std::pair{-2.0, -1.0},
                      std::pair{0.0, 0.0}));

}  // namespace
}  // namespace omg::common
