#include <gtest/gtest.h>

#include <set>

#include "bandit/active_learning.hpp"
#include "bandit/bal.hpp"
#include "bandit/ccmab.hpp"
#include "bandit/strategy.hpp"
#include "common/check.hpp"

namespace omg::bandit {
namespace {

core::SeverityMatrix MakeSeverities(
    std::size_t n, std::size_t d,
    const std::vector<std::tuple<std::size_t, std::size_t, double>>& entries) {
  core::SeverityMatrix m(n, d);
  for (const auto& [e, a, s] : entries) m.Set(e, a, s);
  return m;
}

RoundContext MakeContext(const core::SeverityMatrix& m,
                         std::span<const double> confidences,
                         std::span<const std::size_t> labeled = {},
                         std::size_t round = 0) {
  RoundContext context;
  context.severities = &m;
  context.confidences = confidences;
  context.already_labeled = labeled;
  context.round = round;
  return context;
}

TEST(RandomStrategy, RespectsBudgetAndUniqueness) {
  const auto m = MakeSeverities(20, 1, {});
  const std::vector<double> conf(20, 0.5);
  common::Rng rng(1);
  RandomStrategy strategy;
  const auto picked = strategy.Select(MakeContext(m, conf), 5, rng);
  EXPECT_EQ(picked.size(), 5u);
  EXPECT_EQ(std::set<std::size_t>(picked.begin(), picked.end()).size(), 5u);
}

TEST(RandomStrategy, SkipsLabeled) {
  const auto m = MakeSeverities(5, 1, {});
  const std::vector<double> conf(5, 0.5);
  const std::vector<std::size_t> labeled = {0, 1, 2};
  common::Rng rng(1);
  RandomStrategy strategy;
  const auto picked =
      strategy.Select(MakeContext(m, conf, labeled), 5, rng);
  EXPECT_EQ(picked.size(), 2u);
  for (const auto p : picked) EXPECT_GE(p, 3u);
}

TEST(UncertaintyStrategy, PicksLeastConfident) {
  const auto m = MakeSeverities(4, 1, {});
  const std::vector<double> conf = {0.9, 0.2, 0.8, 0.4};
  common::Rng rng(1);
  UncertaintyStrategy strategy;
  const auto picked = strategy.Select(MakeContext(m, conf), 2, rng);
  EXPECT_EQ(std::set<std::size_t>(picked.begin(), picked.end()),
            (std::set<std::size_t>{1, 3}));
}

TEST(UncertaintyStrategy, SkipsLabeledEvenIfUncertain) {
  const auto m = MakeSeverities(3, 1, {});
  const std::vector<double> conf = {0.1, 0.9, 0.5};
  const std::vector<std::size_t> labeled = {0};
  common::Rng rng(1);
  UncertaintyStrategy strategy;
  const auto picked =
      strategy.Select(MakeContext(m, conf, labeled), 1, rng);
  EXPECT_EQ(picked, (std::vector<std::size_t>{2}));
}

TEST(UniformAssertionStrategy, PrefersFlagged) {
  auto m = MakeSeverities(10, 1,
                          {{2, 0, 1.0}, {5, 0, 2.0}, {7, 0, 0.5}});
  const std::vector<double> conf(10, 0.5);
  common::Rng rng(1);
  UniformAssertionStrategy strategy;
  const auto picked = strategy.Select(MakeContext(m, conf), 3, rng);
  EXPECT_EQ(std::set<std::size_t>(picked.begin(), picked.end()),
            (std::set<std::size_t>{2, 5, 7}));
}

TEST(UniformAssertionStrategy, TopsUpFromUnflagged) {
  auto m = MakeSeverities(5, 1, {{2, 0, 1.0}});
  const std::vector<double> conf(5, 0.5);
  common::Rng rng(1);
  UniformAssertionStrategy strategy;
  const auto picked = strategy.Select(MakeContext(m, conf), 3, rng);
  EXPECT_EQ(picked.size(), 3u);
  EXPECT_NE(std::find(picked.begin(), picked.end(), 2u), picked.end());
}

BalStrategy MakeBal(BalConfig config = {}) {
  return BalStrategy(config, std::make_unique<RandomStrategy>());
}

TEST(Bal, FirstRoundSamplesFromAssertions) {
  auto m = MakeSeverities(10, 2, {{1, 0, 1.0}, {3, 0, 2.0}, {6, 1, 1.0}});
  const std::vector<double> conf(10, 0.5);
  common::Rng rng(2);
  auto bal = MakeBal();
  const auto picked = bal.Select(MakeContext(m, conf), 3, rng);
  EXPECT_LE(picked.size(), 3u);
  for (const auto p : picked) {
    EXPECT_TRUE(m.AnyFired(p)) << "round-0 BAL picked unflagged " << p;
  }
  EXPECT_FALSE(bal.UsedFallback());
}

TEST(Bal, FillsFromFallbackWhenFlaggedPoolDry) {
  auto m = MakeSeverities(10, 1, {{1, 0, 1.0}});
  const std::vector<double> conf(10, 0.5);
  common::Rng rng(2);
  auto bal = MakeBal();
  const auto picked = bal.Select(MakeContext(m, conf), 4, rng);
  EXPECT_EQ(picked.size(), 4u);  // 1 flagged + 3 fallback
}

TEST(Bal, FallsBackWhenNothingReduces) {
  const std::vector<double> conf(10, 0.5);
  common::Rng rng(3);
  auto bal = MakeBal();
  auto m1 = MakeSeverities(10, 1, {{1, 0, 1.0}, {2, 0, 1.0}});
  (void)bal.Select(MakeContext(m1, conf, {}, 0), 2, rng);
  // Same fire counts next round: no reduction anywhere -> fallback.
  auto m2 = MakeSeverities(10, 1, {{3, 0, 1.0}, {4, 0, 1.0}});
  const std::vector<std::size_t> labeled = {1, 2};
  const auto picked = bal.Select(MakeContext(m2, conf, labeled, 1), 2, rng);
  EXPECT_TRUE(bal.UsedFallback());
  EXPECT_EQ(picked.size(), 2u);
}

TEST(Bal, PrefersReducingAssertion) {
  const std::vector<double> conf(40, 0.5);
  common::Rng rng(4);
  auto bal = MakeBal(BalConfig{0.25, 0.01, 1.0});

  // Round 0: both assertions fire on 10 examples each.
  std::vector<std::tuple<std::size_t, std::size_t, double>> entries0;
  for (std::size_t i = 0; i < 10; ++i) {
    entries0.push_back({i, 0, 1.0});
    entries0.push_back({i + 20, 1, 1.0});
  }
  auto m0 = MakeSeverities(40, 2, entries0);
  (void)bal.Select(MakeContext(m0, conf, {}, 0), 4, rng);

  // Round 1: assertion 0 dropped to 2 firings (80% reduction), assertion 1
  // unchanged. BAL should allocate most of the budget to assertion 0's
  // survivors... but there are only 2, so assertion 1 absorbs the rest via
  // exploration. Verify the reductions it computed.
  std::vector<std::tuple<std::size_t, std::size_t, double>> entries1;
  for (std::size_t i = 0; i < 2; ++i) entries1.push_back({i, 0, 1.0});
  for (std::size_t i = 0; i < 10; ++i) entries1.push_back({i + 20, 1, 1.0});
  auto m1 = MakeSeverities(40, 2, entries1);
  const auto picked = bal.Select(MakeContext(m1, conf, {}, 1), 4, rng);
  EXPECT_FALSE(bal.UsedFallback());
  ASSERT_EQ(bal.LastMarginalReductions().size(), 2u);
  EXPECT_NEAR(bal.LastMarginalReductions()[0], 0.8, 1e-12);
  EXPECT_NEAR(bal.LastMarginalReductions()[1], 0.0, 1e-12);
  EXPECT_EQ(picked.size(), 4u);
}

TEST(Bal, NeverRepicksLabeled) {
  const std::vector<double> conf(10, 0.5);
  common::Rng rng(5);
  auto bal = MakeBal();
  std::vector<std::tuple<std::size_t, std::size_t, double>> entries;
  for (std::size_t i = 0; i < 10; ++i) entries.push_back({i, 0, 1.0});
  auto m = MakeSeverities(10, 1, entries);
  const std::vector<std::size_t> labeled = {0, 1, 2, 3, 4};
  const auto picked = bal.Select(MakeContext(m, conf, labeled, 0), 5, rng);
  for (const auto p : picked) {
    EXPECT_GE(p, 5u);
  }
}

TEST(Bal, HigherSeverityPickedMoreOften) {
  // One assertion, two flagged points with very different severities:
  // rank-weighted sampling should prefer the high-severity one.
  const std::vector<double> conf(3, 0.5);
  std::size_t high_picked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    common::Rng rng(100 + trial);
    auto bal = MakeBal(BalConfig{0.25, 0.01, 3.0});  // sharp rank weighting
    auto m = MakeSeverities(3, 1, {{0, 0, 10.0}, {1, 0, 0.1}});
    const auto picked = bal.Select(MakeContext(m, conf), 1, rng);
    ASSERT_EQ(picked.size(), 1u);
    if (picked[0] == 0) ++high_picked;
  }
  EXPECT_GT(high_picked, 140u);  // clearly above the 50% of uniform
}

TEST(Bal, ResetClearsHistory) {
  const std::vector<double> conf(4, 0.5);
  common::Rng rng(6);
  auto bal = MakeBal();
  auto m = MakeSeverities(4, 1, {{0, 0, 1.0}});
  (void)bal.Select(MakeContext(m, conf, {}, 0), 1, rng);
  bal.Reset();
  (void)bal.Select(MakeContext(m, conf, {}, 0), 1, rng);
  EXPECT_TRUE(bal.LastMarginalReductions().empty());  // round-0 behaviour
}

TEST(Bal, ResetMidStreamReentersRoundZeroSampling) {
  // A live loop can reset BAL between rounds (model rollback, store wipe).
  // After two rounds with *flat* fire counts — a state whose next Select
  // would take the fallback path — a reset must restore round-0 uniform
  // sampling: no fallback, no stale marginal reductions.
  const std::vector<double> conf(10, 0.5);
  common::Rng rng(7);
  auto bal = MakeBal();
  std::vector<std::tuple<std::size_t, std::size_t, double>> entries;
  for (std::size_t i = 0; i < 8; ++i) entries.push_back({i, 0, 1.0});
  auto m = MakeSeverities(10, 1, entries);

  (void)bal.Select(MakeContext(m, conf, {}, 0), 2, rng);
  (void)bal.Select(MakeContext(m, conf, {}, 1), 2, rng);
  EXPECT_TRUE(bal.UsedFallback());  // flat counts: 0% marginal reduction
  EXPECT_FALSE(bal.LastMarginalReductions().empty());

  bal.Reset();
  EXPECT_TRUE(bal.LastMarginalReductions().empty());

  // Same flat counts again, but with no history this is round 0: uniform
  // sampling over assertion-flagged data, not the fallback baseline.
  const auto picked = bal.Select(MakeContext(m, conf, {}, 2), 2, rng);
  EXPECT_FALSE(bal.UsedFallback());
  EXPECT_TRUE(bal.LastMarginalReductions().empty());
  EXPECT_EQ(picked.size(), 2u);
  for (const std::size_t p : picked) EXPECT_LT(p, 8u);  // flagged pool only
}

TEST(Bal, ValidatesConfig) {
  EXPECT_THROW(BalStrategy(BalConfig{1.5, 0.01, 1.0},
                           std::make_unique<RandomStrategy>()),
               common::CheckError);
  EXPECT_THROW(BalStrategy(BalConfig{}, nullptr), common::CheckError);
}

// ---- CC-MAB ----

TEST(CcMab, CubeBookkeeping) {
  CcMab mab(2, CcMabConfig{4, 1.0, 0.5});
  const std::vector<double> context = {0.1, 0.9};
  EXPECT_EQ(mab.CubeCount(context), 0u);
  mab.ObserveReward(context, 1.0);
  mab.ObserveReward(context, 0.5);
  EXPECT_EQ(mab.CubeCount(context), 2u);
  EXPECT_DOUBLE_EQ(mab.CubeMean(context), 0.75);
}

TEST(CcMab, ContextBoundsChecked) {
  CcMab mab(1, CcMabConfig{4, 1.0, 0.5});
  EXPECT_THROW(mab.ObserveReward(std::vector<double>{1.5}, 1.0),
               common::CheckError);
  EXPECT_NO_THROW(mab.ObserveReward(std::vector<double>{1.0}, 1.0));
}

TEST(CcMab, ExplorationThresholdGrows) {
  CcMab mab(2, CcMabConfig{4, 1.0, 0.5});
  EXPECT_LT(mab.ExplorationThreshold(1), mab.ExplorationThreshold(10));
  EXPECT_LT(mab.ExplorationThreshold(10), mab.ExplorationThreshold(1000));
}

TEST(CcMab, ExploresUnderexploredFirst) {
  CcMab mab(1, CcMabConfig{2, 1.0, 0.5});
  // Saturate the low cube.
  for (int i = 0; i < 50; ++i) {
    mab.ObserveReward(std::vector<double>{0.1}, 0.1);
  }
  common::Rng rng(7);
  // Arms arrive in both cubes; the high cube is under-explored.
  const std::vector<std::vector<double>> contexts = {{0.1}, {0.9}};
  const auto picked = mab.SelectArms(contexts, 1, /*round=*/2, rng);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], 1u);
}

TEST(CcMab, ConvergesToBestCube) {
  // Reward depends on context: high context -> high reward. After enough
  // rounds CC-MAB should mostly pick high-context arms.
  CcMab mab(1, CcMabConfig{4, 1.0, 0.5});
  common::Rng rng(8);
  std::size_t late_good_picks = 0;
  std::size_t late_rounds = 0;
  for (std::size_t round = 1; round <= 300; ++round) {
    std::vector<std::vector<double>> contexts;
    for (int i = 0; i < 8; ++i) {
      contexts.push_back({rng.Uniform()});
    }
    const auto picked = mab.SelectArms(contexts, 2, round, rng);
    for (const auto arm : picked) {
      const double reward = contexts[arm][0] + rng.Normal(0.0, 0.05);
      mab.ObserveReward(contexts[arm], reward);
      if (round > 200) {
        ++late_rounds;
        if (contexts[arm][0] > 0.5) ++late_good_picks;
      }
    }
  }
  ASSERT_GT(late_rounds, 0u);
  EXPECT_GT(static_cast<double>(late_good_picks) /
                static_cast<double>(late_rounds),
            0.7);
}

TEST(CcMab, GreedyDiminishesRepeatedCubePicks) {
  CcMab mab(1, CcMabConfig{2, 1.0, 0.5});
  // Both cubes observed; high cube slightly better.
  for (int i = 0; i < 100; ++i) {
    mab.ObserveReward(std::vector<double>{0.9}, 1.0);
    mab.ObserveReward(std::vector<double>{0.1}, 0.6);
  }
  common::Rng rng(9);
  // Many arms in each cube; with diminishing 0.5 the second pick from the
  // high cube is worth 0.5 < 0.6, so the greedy phase alternates cubes.
  // Round 2 keeps K(t) ~ 1.5 so both cubes (100 observations) count as
  // explored and the greedy phase is exercised.
  const std::vector<std::vector<double>> contexts = {
      {0.9}, {0.9}, {0.9}, {0.1}, {0.1}};
  const auto picked = mab.SelectArms(contexts, 2, /*round=*/2, rng);
  ASSERT_EQ(picked.size(), 2u);
  std::set<bool> cubes;
  for (const auto arm : picked) cubes.insert(contexts[arm][0] > 0.5);
  EXPECT_EQ(cubes.size(), 2u);
}

// ---- Active-learning driver ----

/// Fake problem: metric = fraction of "hard" pool items labeled; one
/// assertion flags exactly the hard items.
class FakeProblem final : public ActiveLearningProblem {
 public:
  explicit FakeProblem(std::size_t n) : n_(n) {}

  std::size_t PoolSize() const override { return n_; }

  core::SeverityMatrix ComputeSeverities() override {
    core::SeverityMatrix m(n_, 1);
    for (std::size_t i = 0; i < n_; ++i) {
      if (i % 3 == 0 && !labeled_.contains(i)) m.Set(i, 0, 1.0);
    }
    return m;
  }

  std::vector<double> Confidences() override {
    return std::vector<double>(n_, 0.5);
  }

  void LabelAndTrain(std::span<const std::size_t> indices) override {
    for (const auto i : indices) labeled_.insert(i);
    ++train_calls_;
  }

  double Evaluate() override {
    std::size_t hard_labeled = 0, hard_total = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (i % 3 == 0) {
        ++hard_total;
        if (labeled_.contains(i)) ++hard_labeled;
      }
    }
    return static_cast<double>(hard_labeled) /
           static_cast<double>(hard_total);
  }

  void Reset(std::uint64_t) override {
    labeled_.clear();
    ++reset_calls_;
  }

  std::size_t train_calls() const { return train_calls_; }
  std::size_t reset_calls() const { return reset_calls_; }

 private:
  std::size_t n_;
  std::set<std::size_t> labeled_;
  std::size_t train_calls_ = 0;
  std::size_t reset_calls_ = 0;
};

TEST(ActiveLearningDriver, RecordsInitialAndPerRoundMetrics) {
  FakeProblem problem(30);
  RandomStrategy strategy;
  const auto curve = RunActiveLearning(problem, strategy, 3, 5, 1);
  ASSERT_EQ(curve.metric_per_round.size(), 4u);
  EXPECT_DOUBLE_EQ(curve.metric_per_round[0], 0.0);
  EXPECT_EQ(curve.strategy, "random");
  EXPECT_EQ(problem.train_calls(), 3u);
}

TEST(ActiveLearningDriver, BalLabelsAllHardItemsFast) {
  FakeProblem problem(30);  // 10 hard items
  BalStrategy bal(BalConfig{}, std::make_unique<RandomStrategy>());
  const auto curve = RunActiveLearning(problem, bal, 2, 5, 1);
  // 10 labels, all steered to flagged (hard) items -> metric 1.0.
  EXPECT_DOUBLE_EQ(curve.metric_per_round[2], 1.0);
}

TEST(ActiveLearningDriver, RandomIsSlowerThanBalOnThisProblem) {
  FakeProblem p1(90), p2(90);
  RandomStrategy random;
  BalStrategy bal(BalConfig{}, std::make_unique<RandomStrategy>());
  const auto random_curve = RunActiveLearning(p1, random, 2, 10, 3);
  const auto bal_curve = RunActiveLearning(p2, bal, 2, 10, 3);
  EXPECT_GT(bal_curve.metric_per_round[2], random_curve.metric_per_round[2]);
}

TEST(ActiveLearningDriver, TrialsAverageCurves) {
  FakeProblem problem(30);
  RandomStrategy strategy;
  const auto curve =
      RunActiveLearningTrials(problem, strategy, 2, 5, 4, 123);
  ASSERT_EQ(curve.metric_per_round.size(), 3u);
  EXPECT_EQ(problem.reset_calls(), 4u);  // one Reset per trial
}

TEST(ActiveLearningDriver, RoundsToReach) {
  ActiveLearningCurve curve;
  curve.metric_per_round = {0.1, 0.3, 0.6, 0.9};
  EXPECT_EQ(RoundsToReach(curve, 0.5), 2u);
  EXPECT_EQ(RoundsToReach(curve, 0.95), 0u);
  EXPECT_EQ(RoundsToReach(curve, 0.3), 1u);
}

}  // namespace
}  // namespace omg::bandit
