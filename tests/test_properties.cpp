// Property-based sweeps (parameterized gtest) over cross-cutting library
// invariants: randomised consistency streams, BAL budget discipline across
// seeds and pool shapes, severity-matrix/bandit contracts, and detection
// metric bounds under random workloads.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bandit/bal.hpp"
#include "common/rng.hpp"
#include "core/consistency.hpp"
#include "eval/detection_metrics.hpp"
#include "video/assertions.hpp"

namespace omg {
namespace {

// ---------- Consistency engine properties over random streams ----------

struct ConsistencyCase {
  std::uint64_t seed;
  double threshold;
  std::size_t frames;
};

class ConsistencyRandomStream
    : public ::testing::TestWithParam<ConsistencyCase> {};

TEST_P(ConsistencyRandomStream, InvariantsHold) {
  const auto param = GetParam();
  common::Rng rng(param.seed);

  // Random presence patterns for a handful of identifiers across frames.
  std::vector<core::ConsistencyFrame> frames;
  for (std::size_t i = 0; i < param.frames; ++i) {
    frames.push_back({i, static_cast<double>(i), "g"});
  }
  std::vector<core::ConsistencyRecord> records;
  std::map<std::string, std::vector<bool>> presence;
  for (int id = 0; id < 4; ++id) {
    const std::string identifier = "obj-" + std::to_string(id);
    auto& mask = presence[identifier];
    mask.resize(param.frames);
    for (std::size_t i = 0; i < param.frames; ++i) {
      mask[i] = rng.Bernoulli(0.6);
      if (!mask[i]) continue;
      core::ConsistencyRecord record;
      record.example_index = i;
      record.timestamp = static_cast<double>(i);
      record.group = "g";
      record.identifier = identifier;
      records.push_back(std::move(record));
    }
  }

  core::ConsistencyConfig config;
  config.temporal_threshold = param.threshold;
  const core::ConsistencyEngine engine(config);
  const auto result = engine.Analyze(frames, records, param.frames);

  ASSERT_EQ(result.assertion_names.size(), 2u);
  // (1) Severities are non-negative and sized to the stream.
  for (const auto& column : result.severities) {
    ASSERT_EQ(column.size(), param.frames);
    for (const double s : column) EXPECT_GE(s, 0.0);
  }
  // (2) flicker only fires on frames where at least one identifier is
  // absent between two presences, and the enclosing gap is < threshold.
  for (std::size_t i = 0; i < param.frames; ++i) {
    if (result.severities[0][i] <= 0.0) continue;
    bool justified = false;
    for (const auto& [identifier, mask] : presence) {
      if (mask[i]) continue;
      // Find the enclosing gap.
      std::size_t lo = i;
      while (lo > 0 && !mask[lo - 1]) --lo;
      std::size_t hi = i;
      while (hi + 1 < param.frames && !mask[hi + 1]) ++hi;
      if (lo == 0 || hi + 1 >= param.frames) continue;  // boundary gap
      const double gap =
          static_cast<double>(hi + 1) - static_cast<double>(lo - 1);
      if (gap < param.threshold) justified = true;
    }
    EXPECT_TRUE(justified) << "unjustified flicker at frame " << i;
  }
  // (3) every correction points at a valid example.
  for (const auto& correction : result.corrections) {
    EXPECT_LT(correction.example_index, param.frames);
    if (correction.kind == core::CorrectionKind::kAddOutput) {
      EXPECT_FALSE(correction.support_records.empty());
      for (const std::size_t r : correction.support_records) {
        EXPECT_LT(r, records.size());
      }
    }
  }
  // (4) determinism: re-analysis is identical.
  const auto again = engine.Analyze(frames, records, param.frames);
  EXPECT_EQ(again.severities, result.severities);
  EXPECT_EQ(again.corrections.size(), result.corrections.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, ConsistencyRandomStream,
    ::testing::Values(ConsistencyCase{1, 2.0, 30},
                      ConsistencyCase{2, 3.0, 50},
                      ConsistencyCase{3, 1.5, 80},
                      ConsistencyCase{4, 5.0, 40},
                      ConsistencyCase{5, 2.5, 120},
                      ConsistencyCase{6, 4.0, 25}));

// ---------- BAL discipline across seeds / budgets / pool shapes ----------

struct BalCase {
  std::uint64_t seed;
  std::size_t pool;
  std::size_t assertions;
  std::size_t budget;
};

class BalDiscipline : public ::testing::TestWithParam<BalCase> {};

TEST_P(BalDiscipline, BudgetAndUniquenessUnderRandomSeverities) {
  const auto param = GetParam();
  common::Rng rng(param.seed);
  core::SeverityMatrix severities(param.pool, param.assertions);
  for (std::size_t e = 0; e < param.pool; ++e) {
    for (std::size_t a = 0; a < param.assertions; ++a) {
      if (rng.Bernoulli(0.2)) severities.Set(e, a, rng.Uniform(0.1, 5.0));
    }
  }
  std::vector<double> confidences(param.pool);
  for (double& c : confidences) c = rng.Uniform(0.34, 1.0);

  bandit::BalStrategy bal(bandit::BalConfig{},
                          std::make_unique<bandit::RandomStrategy>());
  std::vector<std::size_t> labeled;
  for (std::size_t round = 0; round < 4; ++round) {
    bandit::RoundContext context;
    context.severities = &severities;
    context.confidences = confidences;
    context.round = round;
    context.already_labeled = labeled;
    const auto picked = bal.Select(context, param.budget, rng);
    // Budget respected; no duplicates; no already-labeled repeats;
    // indices valid.
    EXPECT_LE(picked.size(), param.budget);
    std::set<std::size_t> unique(picked.begin(), picked.end());
    EXPECT_EQ(unique.size(), picked.size());
    for (const auto p : picked) {
      EXPECT_LT(p, param.pool);
      EXPECT_EQ(std::count(labeled.begin(), labeled.end(), p), 0);
    }
    labeled.insert(labeled.end(), picked.begin(), picked.end());
    if (labeled.size() == param.pool) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, BalDiscipline,
    ::testing::Values(BalCase{1, 50, 1, 10}, BalCase{2, 50, 3, 10},
                      BalCase{3, 200, 2, 25}, BalCase{4, 200, 5, 60},
                      BalCase{5, 30, 4, 30},  // budget == pool
                      BalCase{6, 10, 2, 20},  // budget > pool
                      BalCase{7, 500, 3, 40}));

// ---------- Detection metrics over random workloads ----------

class ApRandomWorkload : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApRandomWorkload, BoundsAndPerfectionInvariants) {
  common::Rng rng(GetParam());
  std::vector<eval::FrameEval> frames;
  for (int f = 0; f < 30; ++f) {
    eval::FrameEval frame;
    const auto truths = static_cast<std::size_t>(rng.UniformInt(0, 4));
    for (std::size_t t = 0; t < truths; ++t) {
      const double x = rng.Uniform(0, 400);
      const double y = rng.Uniform(0, 400);
      frame.truths.push_back(
          {geometry::Box2D{x, y, x + 40, y + 30}, "car"});
    }
    const auto dets = static_cast<std::size_t>(rng.UniformInt(0, 6));
    for (std::size_t d = 0; d < dets; ++d) {
      const double x = rng.Uniform(0, 400);
      const double y = rng.Uniform(0, 400);
      frame.detections.push_back({geometry::Box2D{x, y, x + 40, y + 30},
                                  "car", rng.Uniform(), -1});
    }
    frames.push_back(std::move(frame));
  }
  const double ap = eval::AveragePrecision(frames, "car");
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);

  // Replacing detections with the exact ground truth yields AP = 1.
  std::vector<eval::FrameEval> perfect = frames;
  for (auto& frame : perfect) {
    frame.detections.clear();
    for (const auto& truth : frame.truths) {
      frame.detections.push_back({truth.box, truth.label, 0.9, 0});
    }
  }
  bool any_truth = false;
  for (const auto& frame : perfect) any_truth |= !frame.truths.empty();
  if (any_truth) {
    EXPECT_DOUBLE_EQ(eval::AveragePrecision(perfect, "car"), 1.0);
  }

  // Adding a low-confidence false positive never raises AP.
  std::vector<eval::FrameEval> degraded = frames;
  degraded.front().detections.push_back(
      {geometry::Box2D{900, 900, 940, 930}, "car", 0.01, -1});
  EXPECT_LE(eval::AveragePrecision(degraded, "car") - 1e-12, ap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApRandomWorkload,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------- Multibox combinatorics ----------

class MultiboxStacks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiboxStacks, CountsChooseThree) {
  const std::size_t n = GetParam();
  std::vector<geometry::Detection> dets;
  for (std::size_t i = 0; i < n; ++i) {
    dets.push_back({geometry::Box2D{i * 1.0, 0, i * 1.0 + 100, 50}, "car",
                    0.9, static_cast<std::int64_t>(i)});
  }
  const double expected =
      n >= 3 ? static_cast<double>(n * (n - 1) * (n - 2) / 6) : 0.0;
  EXPECT_DOUBLE_EQ(video::MultiboxSeverity(dets, 0.3), expected);
}

INSTANTIATE_TEST_SUITE_P(StackSizes, MultiboxStacks,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

// ---------- Severity matrix round-trips ----------

class SeverityMatrixShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(SeverityMatrixShapes, FireCountsMatchColumns) {
  const auto [n, d] = GetParam();
  common::Rng rng(n * 31 + d);
  core::SeverityMatrix matrix(n, d);
  std::vector<std::size_t> expected(d, 0);
  for (std::size_t e = 0; e < n; ++e) {
    for (std::size_t a = 0; a < d; ++a) {
      if (rng.Bernoulli(0.3)) {
        matrix.Set(e, a, rng.Uniform(0.1, 2.0));
        ++expected[a];
      }
    }
  }
  EXPECT_EQ(matrix.FireCounts(), expected);
  std::size_t total = 0;
  for (const auto c : expected) total += c;
  EXPECT_EQ(matrix.TotalFired(), total);
  for (std::size_t a = 0; a < d; ++a) {
    EXPECT_EQ(matrix.ExamplesFiring(a).size(), expected[a]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SeverityMatrixShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{10, 1},
                      std::pair<std::size_t, std::size_t>{1, 10},
                      std::pair<std::size_t, std::size_t>{64, 4},
                      std::pair<std::size_t, std::size_t>{200, 7}));

}  // namespace
}  // namespace omg
