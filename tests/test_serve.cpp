// The type-erased serving facade: AnyExample storage semantics, erased
// suites (qualified names, preserved radii, flag-sequence equivalence with
// the templated engine for all four domains), mixed-domain hosting in one
// Monitor, typed-error paths, and concurrent Subscribe/Unsubscribe under
// load (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "av/factory.hpp"
#include "config/monitor_loader.hpp"
#include "config/scenario.hpp"
#include "config/spec.hpp"
#include "ecg/factory.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/sharded_service.hpp"
#include "serve/any_example.hpp"
#include "serve/any_suite.hpp"
#include "serve/domains.hpp"
#include "serve/monitor.hpp"
#include "tvnews/factory.hpp"
#include "video/assertions.hpp"
#include "video/factory.hpp"

// Two synthetic facade domains local to this test: one that fits the
// small-buffer optimisation and one that cannot.
struct Tick {
  std::size_t index = 0;
  double value = 0.0;
};

struct BigBlob {
  std::size_t index = 0;
  std::array<double, 64> payload{};  // 520 bytes: always heap-allocated
};

static_assert(sizeof(Tick) <= omg::serve::AnyExample::kInlineCapacity);
static_assert(sizeof(BigBlob) > omg::serve::AnyExample::kInlineCapacity);

namespace omg::serve {

template <>
struct DomainTraits<Tick> {
  static constexpr std::string_view kDomain = "tick";
  static double SeverityHint(const Tick& tick) { return tick.value; }
  static std::string DebugString(const Tick& tick) {
    return "tick " + std::to_string(tick.index);
  }
};

template <>
struct DomainTraits<BigBlob> {
  static constexpr std::string_view kDomain = "blob";
  static double SeverityHint(const BigBlob&) { return 0.0; }
  static std::string DebugString(const BigBlob& blob) {
    return "blob " + std::to_string(blob.index);
  }
};

}  // namespace omg::serve

namespace omg::serve {
namespace {

// ------------------------------------------------------------ AnyExample ---

TEST(AnyExample, InlineStorageRoundTrip) {
  AnyExample example = AnyExample::Make(Tick{7, 2.5});
  EXPECT_TRUE(example.has_value());
  EXPECT_EQ(example.domain(), "tick");
  EXPECT_TRUE(example.Is<Tick>());
  EXPECT_FALSE(example.Is<BigBlob>());
  ASSERT_NE(example.TryGet<Tick>(), nullptr);
  EXPECT_EQ(example.TryGet<Tick>()->index, 7u);
  EXPECT_DOUBLE_EQ(example.Get<Tick>().value, 2.5);
  EXPECT_DOUBLE_EQ(example.SeverityHint(), 2.5);
  EXPECT_EQ(example.DebugString(), "tick 7");
  EXPECT_EQ(example.TryGet<BigBlob>(), nullptr);
  EXPECT_THROW(example.Get<BigBlob>(), common::CheckError);
}

TEST(AnyExample, HeapStorageCloneAndMove) {
  BigBlob blob;
  blob.index = 3;
  blob.payload[63] = 1.25;
  AnyExample example = AnyExample::Make(blob);
  EXPECT_EQ(example.domain(), "blob");
  ASSERT_TRUE(example.Is<BigBlob>());
  EXPECT_DOUBLE_EQ(example.Get<BigBlob>().payload[63], 1.25);

  // Clone: independent payloads.
  AnyExample clone(example);
  EXPECT_TRUE(clone.Is<BigBlob>());
  EXPECT_DOUBLE_EQ(clone.Get<BigBlob>().payload[63], 1.25);

  // Move: the source empties, the destination owns the payload.
  AnyExample moved(std::move(example));
  // NOLINTNEXTLINE(bugprone-use-after-move): asserts the moved-from state
  EXPECT_FALSE(example.has_value());
  EXPECT_EQ(example.domain(), "");
  EXPECT_EQ(example.DebugString(), "<empty>");
  EXPECT_DOUBLE_EQ(moved.Get<BigBlob>().payload[63], 1.25);

  // Copy-assign over an existing payload of another domain.
  AnyExample reassigned = AnyExample::Make(Tick{1, 1.0});
  reassigned = clone;
  EXPECT_EQ(reassigned.domain(), "blob");
}

// ------------------------------------------------------------- any suite ---

runtime::SuiteFactory<Tick> TickSuiteFactory() {
  return [] {
    auto suite = std::make_shared<core::AssertionSuite<Tick>>();
    suite->AddPointwise(
        "positive", [](const Tick& t) { return t.value > 1.0 ? t.value : 0.0; });
    suite->AddFunction(
        "rising",
        [](std::span<const Tick> stream) {
          std::vector<double> severities(stream.size(), 0.0);
          for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
            if (stream[i + 1].value > stream[i].value + 1.5) {
              severities[i] = 1.0;
            }
          }
          return severities;
        },
        /*temporal_radius=*/1);
    return runtime::SuiteBundle<Tick>{suite, {}};
  };
}

TEST(AnySuite, QualifiesNamesAndPreservesRadii) {
  const AnySuiteBundle bundle =
      EraseSuiteBundle<Tick>("tick", TickSuiteFactory()());
  ASSERT_EQ(bundle.suite->size(), 2u);
  EXPECT_EQ(bundle.suite->Names(),
            (std::vector<std::string>{"tick/positive", "tick/rising"}));
  EXPECT_EQ(bundle.suite->at(0).temporal_radius(), 0u);
  EXPECT_EQ(bundle.suite->at(1).temporal_radius(), 1u);

  // Scoring through the erased suite matches the typed suite exactly.
  std::vector<Tick> ticks;
  std::vector<AnyExample> erased;
  for (std::size_t i = 0; i < 24; ++i) {
    const Tick tick{i, i % 5 == 0 ? 2.0 : -1.0};
    ticks.push_back(tick);
    erased.push_back(AnyExample::Make(tick));
  }
  const runtime::SuiteBundle<Tick> typed = TickSuiteFactory()();
  const core::SeverityMatrix expected = typed.suite->CheckAll(ticks);
  const core::SeverityMatrix actual = bundle.suite->CheckAll(erased);
  ASSERT_GT(expected.TotalFired(), 0u);
  for (std::size_t e = 0; e < expected.num_examples(); ++e) {
    for (std::size_t a = 0; a < expected.num_assertions(); ++a) {
      EXPECT_DOUBLE_EQ(actual.At(e, a), expected.At(e, a));
    }
  }
}

TEST(AnySuite, NameHelpers) {
  EXPECT_EQ(QualifiedName("video", "flicker"), "video/flicker");
  EXPECT_EQ(DomainOfQualifiedName("video/flicker"), "video");
  EXPECT_EQ(DomainOfQualifiedName("flicker"), "");
  EXPECT_EQ(UnqualifiedName("video/flicker"), "flicker");
  EXPECT_EQ(UnqualifiedName("flicker"), "flicker");
}

// ------------------------------------------- erased-vs-templated serving ---

struct Firing {
  std::size_t example = 0;
  std::string assertion;
  double severity = 0.0;
  bool operator==(const Firing&) const = default;
};

/// One stream through the templated engine directly.
template <typename Example>
std::vector<Firing> TypedFirings(runtime::SuiteFactory<Example> factory,
                                 const std::vector<Example>& examples) {
  runtime::ShardedRuntimeConfig config;
  config.shards = 1;
  config.window = 48;
  config.settle_lag = 8;
  config.queue_capacity = 4096;
  runtime::ShardedMonitorService<Example> service(config, std::move(factory));
  auto sink = std::make_shared<runtime::CollectingSink>();
  service.AddSink(sink);
  const runtime::StreamId id = service.RegisterStream("s");
  for (std::size_t begin = 0; begin < examples.size(); begin += 16) {
    const std::size_t count =
        std::min<std::size_t>(16, examples.size() - begin);
    service.ObserveBatch(
        id, std::vector<Example>(examples.begin() + begin,
                                 examples.begin() + begin + count));
  }
  service.Flush();
  EXPECT_TRUE(service.Errors().empty());
  std::vector<Firing> firings;
  for (const auto& event : sink->Events()) {
    firings.push_back({event.example_index, event.assertion, event.severity});
  }
  return firings;
}

/// The same stream through the facade; assertion names come back
/// unqualified (after checking the qualification) for comparison.
template <typename Example>
std::vector<Firing> FacadeFirings(const std::string& domain,
                                  runtime::SuiteFactory<Example> factory,
                                  const std::vector<Example>& examples) {
  Result<std::unique_ptr<Monitor>> built = Monitor::Builder()
                                               .Shards(1)
                                               .Window(48)
                                               .SettleLag(8)
                                               .QueueCapacity(4096)
                                               .Build();
  EXPECT_TRUE(built.ok());
  const std::unique_ptr<Monitor> monitor = std::move(built.value());
  auto sink = std::make_shared<runtime::CollectingSink>();
  const Subscription subscription =
      monitor->Subscribe(EventFilter{}, sink);
  Result<StreamHandle> handle = monitor->RegisterStream(
      domain, EraseSuiteFactory<Example>(domain, std::move(factory)));
  EXPECT_TRUE(handle.ok());
  for (std::size_t begin = 0; begin < examples.size(); begin += 16) {
    const std::size_t count =
        std::min<std::size_t>(16, examples.size() - begin);
    std::vector<AnyExample> batch;
    batch.reserve(count);
    for (std::size_t i = begin; i < begin + count; ++i) {
      batch.push_back(AnyExample::Make(examples[i]));
    }
    const Result<ObserveOutcome> outcome =
        monitor->ObserveBatch(handle.value(), std::move(batch));
    EXPECT_TRUE(outcome.ok());
  }
  monitor->Flush();
  EXPECT_TRUE(monitor->Errors().empty());
  std::vector<Firing> firings;
  for (const auto& event : sink->Events()) {
    EXPECT_EQ(DomainOfQualifiedName(event.assertion), domain);
    firings.push_back({event.example_index,
                       std::string(UnqualifiedName(event.assertion)),
                       event.severity});
  }
  return firings;
}

/// A deterministic detection stream exercising all three video assertions
/// (mirrors tests/test_config.cpp's FixedVideoStream).
std::vector<video::VideoExample> FixedVideoStream() {
  const auto box = [](double x) {
    return geometry::Box2D{x, 100.0, x + 60.0, 140.0};
  };
  std::vector<video::VideoExample> examples;
  for (std::size_t i = 0; i < 40; ++i) {
    video::VideoExample example;
    example.frame_index = i;
    example.timestamp = 0.2 * static_cast<double>(i);
    example.detections.push_back({box(50.0 + 4.0 * i), "car", 0.9, 0});
    if (i % 3 != 2) {
      example.detections.push_back({box(400.0 + 4.0 * i), "car", 0.8, 1});
    }
    if (i >= 20 && i < 23) {
      example.detections.push_back({box(800.0), "car", 0.7, 2});
    }
    if (i == 30) {
      example.detections.push_back({box(601.0), "car", 0.6, 3});
      example.detections.push_back({box(602.0), "car", 0.6, 3});
      example.detections.push_back({box(603.0), "car", 0.6, 3});
    }
    examples.push_back(std::move(example));
  }
  return examples;
}

runtime::SuiteFactory<video::VideoExample> VideoFactory() {
  return [] {
    auto built =
        std::make_shared<video::VideoSuite>(video::BuildVideoSuite());
    return runtime::SuiteBundle<video::VideoExample>{
        std::shared_ptr<core::AssertionSuite<video::VideoExample>>(
            built, &built->suite),
        [built] { built->consistency->Invalidate(); }};
  };
}

TEST(FacadeEquivalence, VideoFlagSequenceMatchesTemplated) {
  const std::vector<video::VideoExample> examples = FixedVideoStream();
  const std::vector<Firing> typed = TypedFirings(VideoFactory(), examples);
  const std::vector<Firing> facade =
      FacadeFirings("video", VideoFactory(), examples);
  ASSERT_FALSE(typed.empty());
  EXPECT_EQ(typed, facade);
}

TEST(FacadeEquivalence, EcgFlagSequenceMatchesTemplated) {
  // One lone AF window (20 s absence-to-absence, must flag) and a later
  // 50 s episode (legitimate).
  std::vector<ecg::EcgExample> examples;
  double t = 0.0;
  const auto add = [&](ecg::Rhythm rhythm, std::size_t windows) {
    for (std::size_t i = 0; i < windows; ++i) {
      examples.push_back({"rec-1", t, rhythm});
      t += 10.0;
    }
  };
  add(ecg::Rhythm::kNormal, 8);
  add(ecg::Rhythm::kAf, 1);
  add(ecg::Rhythm::kNormal, 8);
  add(ecg::Rhythm::kAf, 5);
  add(ecg::Rhythm::kNormal, 8);

  const auto factory = [] {
    auto built = std::make_shared<ecg::EcgSuite>(ecg::BuildEcgSuite());
    return runtime::SuiteBundle<ecg::EcgExample>{
        std::shared_ptr<core::AssertionSuite<ecg::EcgExample>>(
            built, &built->suite),
        [built] { built->consistency->Invalidate(); }};
  };
  const std::vector<Firing> typed = TypedFirings<ecg::EcgExample>(
      factory, examples);
  const std::vector<Firing> facade =
      FacadeFirings<ecg::EcgExample>("ecg", factory, examples);
  ASSERT_FALSE(typed.empty());
  EXPECT_EQ(typed, facade);
}

TEST(FacadeEquivalence, AvFlagSequenceMatchesTemplated) {
  std::vector<av::AvExample> examples;
  for (std::size_t i = 0; i < 40; ++i) {
    av::AvExample sample;
    sample.sample_index = i;
    sample.timestamp = 0.1 * static_cast<double>(i);
    sample.scene = "scene-" + std::to_string(i / 10);
    sample.camera.push_back({{100, 100, 160, 140}, "vehicle", 0.9, 0});
    sample.lidar_projected.push_back({100, 100, 160, 140});
    if (i % 4 == 0) {  // unmatched camera box: agree fires
      sample.camera.push_back({{700, 100, 760, 140}, "vehicle", 0.9, 1});
    }
    if (i % 7 == 0) {  // a mutually-overlapping triple: multibox fires
      sample.camera.push_back({{301, 100, 361, 140}, "vehicle", 0.6, 2});
      sample.camera.push_back({{302, 100, 362, 140}, "vehicle", 0.6, 2});
      sample.camera.push_back({{303, 100, 363, 140}, "vehicle", 0.6, 2});
    }
    examples.push_back(std::move(sample));
  }
  const auto factory = [] {
    auto built = std::make_shared<av::AvSuite>(av::BuildAvSuite());
    return runtime::SuiteBundle<av::AvExample>{
        std::shared_ptr<core::AssertionSuite<av::AvExample>>(
            built, &built->suite),
        {}};
  };
  const std::vector<Firing> typed =
      TypedFirings<av::AvExample>(factory, examples);
  const std::vector<Firing> facade =
      FacadeFirings<av::AvExample>("av", factory, examples);
  ASSERT_FALSE(typed.empty());
  EXPECT_EQ(typed, facade);
}

TEST(FacadeEquivalence, NewsFlagSequenceMatchesTemplated) {
  tvnews::NewsGenerator generator(tvnews::NewsConfig{}, 42);
  const std::vector<tvnews::NewsFrame> frames = generator.Generate(80);
  const auto factory = [] {
    auto built =
        std::make_shared<tvnews::NewsSuite>(tvnews::BuildNewsSuite());
    return runtime::SuiteBundle<tvnews::NewsFrame>{
        std::shared_ptr<core::AssertionSuite<tvnews::NewsFrame>>(
            built, &built->suite),
        [built] { built->consistency->Invalidate(); }};
  };
  const std::vector<Firing> typed =
      TypedFirings<tvnews::NewsFrame>(factory, frames);
  const std::vector<Firing> facade =
      FacadeFirings<tvnews::NewsFrame>("tvnews", factory, frames);
  ASSERT_FALSE(typed.empty());
  EXPECT_EQ(typed, facade);
}

// ------------------------------------------------------ mixed-domain host ---

StreamOptions Named(std::string name, double severity_hint = 0.0) {
  StreamOptions options;
  options.name = std::move(name);
  options.severity_hint = severity_hint;
  return options;
}

EventFilter Filter(std::string domain = "", std::string stream = "",
                   std::string assertion = "", double min_severity = 0.0) {
  EventFilter filter;
  filter.domain = std::move(domain);
  filter.stream = std::move(stream);
  filter.assertion = std::move(assertion);
  filter.min_severity = min_severity;
  return filter;
}

std::unique_ptr<Monitor> SmallMonitor(std::size_t shards = 2) {
  Result<std::unique_ptr<Monitor>> built = Monitor::Builder()
                                               .Shards(shards)
                                               .Window(32)
                                               .SettleLag(4)
                                               .QueueCapacity(4096)
                                               .Build();
  EXPECT_TRUE(built.ok());
  return std::move(built.value());
}

TEST(Monitor, MixedDomainsShareOneRuntimeWithIsolatedStreams) {
  const std::unique_ptr<Monitor> monitor = SmallMonitor();
  auto all = std::make_shared<runtime::CollectingSink>();
  const Subscription subscription =
      monitor->Subscribe(EventFilter{}, all);

  Result<StreamHandle> ticks = monitor->RegisterStream(
      "tick", EraseSuiteFactory<Tick>("tick", TickSuiteFactory()),
      Named("ticker"));
  Result<StreamHandle> video = monitor->RegisterStream(
      "video", EraseSuiteFactory<video::VideoExample>("video", VideoFactory()),
      Named("cam"));
  ASSERT_TRUE(ticks.ok());
  ASSERT_TRUE(video.ok());
  EXPECT_EQ(ticks.value().domain(), "tick");
  EXPECT_EQ(video.value().name(), "cam");

  std::vector<AnyExample> tick_batch;
  for (std::size_t i = 0; i < 40; ++i) {
    tick_batch.push_back(
        AnyExample::Make(Tick{i, i % 5 == 0 ? 2.0 : -1.0}));
  }
  EXPECT_TRUE(monitor->ObserveBatch(ticks.value(), std::move(tick_batch))
                  .ok());
  std::vector<AnyExample> video_batch;
  for (video::VideoExample& example : FixedVideoStream()) {
    video_batch.push_back(AnyExample::Make(std::move(example)));
  }
  EXPECT_TRUE(monitor->ObserveBatch(video.value(), std::move(video_batch))
                  .ok());
  monitor->Flush();
  EXPECT_TRUE(monitor->Errors().empty());

  // Stream isolation: every event's assertion is qualified with its own
  // stream's domain.
  std::size_t tick_events = 0;
  std::size_t video_events = 0;
  for (const auto& event : all->Events()) {
    if (event.stream == "ticker") {
      EXPECT_EQ(DomainOfQualifiedName(event.assertion), "tick");
      ++tick_events;
    } else {
      EXPECT_EQ(event.stream, "cam");
      EXPECT_EQ(DomainOfQualifiedName(event.assertion), "video");
      ++video_events;
    }
  }
  EXPECT_GT(tick_events, 0u);
  EXPECT_GT(video_events, 0u);

  // One metrics namespace, keys domain-qualified, accounting shared.
  const runtime::MetricsSnapshot snapshot = monitor->Metrics();
  EXPECT_EQ(snapshot.examples_seen, 80u);
  EXPECT_TRUE(snapshot.assertions.contains("tick/positive"));
  EXPECT_TRUE(snapshot.assertions.contains("video/flicker"));
  EXPECT_FALSE(snapshot.assertions.contains("positive"));
  EXPECT_EQ(snapshot.shards.size(), 2u);
}

TEST(Monitor, WrongDomainObserveIsATypedErrorNotAnAbort) {
  const std::unique_ptr<Monitor> monitor = SmallMonitor(1);
  Result<StreamHandle> ticks = monitor->RegisterStream(
      "tick", EraseSuiteFactory<Tick>("tick", TickSuiteFactory()));
  ASSERT_TRUE(ticks.ok());

  // A blob example on the tick stream: rejected before anything enqueues.
  Result<ObserveOutcome> wrong =
      monitor->Observe(ticks.value(), AnyExample::Make(BigBlob{}));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.code(), ErrorCode::kWrongDomain);
  EXPECT_NE(wrong.error().message.find("blob"), std::string::npos);

  // A foreign example mid-batch rejects the whole batch atomically.
  std::vector<AnyExample> batch;
  batch.push_back(AnyExample::Make(Tick{0, 2.0}));
  batch.push_back(AnyExample::Make(BigBlob{}));
  batch.push_back(AnyExample::Make(Tick{1, 2.0}));
  Result<ObserveOutcome> mixed =
      monitor->ObserveBatch(ticks.value(), std::move(batch));
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.code(), ErrorCode::kWrongDomain);

  // The service is unharmed: correct-domain traffic still scores.
  EXPECT_TRUE(
      monitor->Observe(ticks.value(), AnyExample::Make(Tick{2, 2.0})).ok());
  monitor->Flush();
  EXPECT_EQ(monitor->Metrics().examples_seen, 1u);
  EXPECT_TRUE(monitor->Errors().empty());
}

TEST(Monitor, TraceSurvivesRuntimeOverrideInEitherOrder) {
  runtime::ShardedRuntimeConfig config;
  config.shards = 2;
  config.window = 32;
  config.settle_lag = 4;

  // Trace() before Runtime(): the wholesale geometry override must not
  // silently discard the requested tracer.
  Result<std::unique_ptr<Monitor>> trace_first =
      Monitor::Builder().Trace(obs::TracerOptions{}).Runtime(config).Build();
  ASSERT_TRUE(trace_first.ok());
  ASSERT_NE(trace_first.value()->tracer(), nullptr);
  EXPECT_EQ(trace_first.value()->tracer()->shard_lanes(), 2u);

  // And the documented Runtime()-then-Trace() order keeps working.
  Result<std::unique_ptr<Monitor>> trace_last =
      Monitor::Builder().Runtime(config).Trace(obs::TracerOptions{}).Build();
  ASSERT_TRUE(trace_last.ok());
  EXPECT_NE(trace_last.value()->tracer(), nullptr);
}

TEST(Monitor, TypedErrorsForHandlesBatchesAndRegistration) {
  const std::unique_ptr<Monitor> monitor = SmallMonitor(1);
  const std::unique_ptr<Monitor> other = SmallMonitor(1);

  // Invalid geometry is a typed build error.
  Result<std::unique_ptr<Monitor>> bad_build =
      Monitor::Builder().Window(8).SettleLag(8).Build();
  ASSERT_FALSE(bad_build.ok());
  EXPECT_EQ(bad_build.code(), ErrorCode::kInvalidConfig);

  // Default-constructed and foreign handles.
  const StreamHandle invalid;
  EXPECT_FALSE(invalid.valid());
  Result<ObserveOutcome> no_handle =
      monitor->Observe(invalid, AnyExample::Make(Tick{}));
  ASSERT_FALSE(no_handle.ok());
  EXPECT_EQ(no_handle.code(), ErrorCode::kInvalidHandle);

  Result<StreamHandle> foreign = other->RegisterStream(
      "tick", EraseSuiteFactory<Tick>("tick", TickSuiteFactory()));
  ASSERT_TRUE(foreign.ok());
  Result<ObserveOutcome> cross =
      monitor->Observe(foreign.value(), AnyExample::Make(Tick{}));
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(cross.code(), ErrorCode::kInvalidHandle);

  // Registration errors: empty domain, null factory, unqualified suite,
  // duplicate names.
  EXPECT_EQ(monitor->RegisterStream("", nullptr).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(monitor->RegisterStream("tick", nullptr).code(),
            ErrorCode::kInvalidArgument);
  Result<StreamHandle> unqualified = monitor->RegisterStream(
      "tick", [] { return EraseSuiteBundle<Tick>("other", TickSuiteFactory()()); });
  ASSERT_FALSE(unqualified.ok());
  EXPECT_EQ(unqualified.code(), ErrorCode::kWrongDomain);
  Result<StreamHandle> throwing = monitor->RegisterStream(
      "tick", []() -> AnySuiteBundle {
        throw common::CheckError("factory exploded");
      });
  ASSERT_FALSE(throwing.ok());
  EXPECT_EQ(throwing.code(), ErrorCode::kInvalidSuite);

  Result<StreamHandle> first = monitor->RegisterStream(
      "tick", EraseSuiteFactory<Tick>("tick", TickSuiteFactory()),
      Named("dup"));
  ASSERT_TRUE(first.ok());
  Result<StreamHandle> second = monitor->RegisterStream(
      "tick", EraseSuiteFactory<Tick>("tick", TickSuiteFactory()),
      Named("dup"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), ErrorCode::kDuplicateStream);

  // An oversized batch is refused, not Check-aborted.
  std::vector<AnyExample> oversized;
  for (std::size_t i = 0; i < monitor->config().queue_capacity + 1; ++i) {
    oversized.push_back(AnyExample::Make(Tick{i, 0.0}));
  }
  Result<ObserveOutcome> too_large =
      monitor->ObserveBatch(first.value(), std::move(oversized));
  ASSERT_FALSE(too_large.ok());
  EXPECT_EQ(too_large.code(), ErrorCode::kBatchTooLarge);
}

TEST(Monitor, SharedAdmissionAccountingAcrossDomains) {
  // A deliberately tight single queue under severity-aware shedding: tick
  // batches hint above the floor, blob batches below — blobs shed once the
  // queue fills, and the loss accounting reconciles across both domains.
  Result<std::unique_ptr<Monitor>> built =
      Monitor::Builder()
          .Shards(1)
          .Window(16)
          .SettleLag(2)
          .QueueCapacity(32)
          .Admission(runtime::AdmissionPolicy::kShedBelowSeverity)
          .ShedFloor(1.0)
          .Build();
  ASSERT_TRUE(built.ok());
  const std::unique_ptr<Monitor> monitor = std::move(built.value());
  auto blob_suite = [] {
    auto suite = std::make_shared<core::AssertionSuite<BigBlob>>();
    suite->AddPointwise("nonzero", [](const BigBlob& blob) {
      return blob.payload[0] > 0.0 ? 1.0 : 0.0;
    });
    return runtime::SuiteBundle<BigBlob>{suite, {}};
  };
  Result<StreamHandle> ticks = monitor->RegisterStream(
      "tick", EraseSuiteFactory<Tick>("tick", TickSuiteFactory()),
      Named("hot", 2.0));
  Result<StreamHandle> blobs = monitor->RegisterStream(
      "blob", EraseSuiteFactory<BigBlob>("blob", blob_suite),
      Named("cold", 0.1));
  ASSERT_TRUE(ticks.ok());
  ASSERT_TRUE(blobs.ok());

  std::size_t offered = 0;
  std::size_t shed_batches = 0;
  for (std::size_t round = 0; round < 64; ++round) {
    std::vector<AnyExample> tick_batch;
    std::vector<AnyExample> blob_batch;
    for (std::size_t i = 0; i < 16; ++i) {
      tick_batch.push_back(AnyExample::Make(Tick{round * 16 + i, 2.0}));
      blob_batch.push_back(AnyExample::Make(BigBlob{round * 16 + i, {}}));
    }
    Result<ObserveOutcome> hot =
        monitor->ObserveBatch(ticks.value(), std::move(tick_batch));
    ASSERT_TRUE(hot.ok());
    EXPECT_EQ(hot.value(), ObserveOutcome::kAdmitted);
    offered += 16;
    Result<ObserveOutcome> cold =
        monitor->ObserveBatch(blobs.value(), std::move(blob_batch));
    ASSERT_TRUE(cold.ok());
    if (cold.value() == ObserveOutcome::kShed) ++shed_batches;
    offered += 16;
  }
  monitor->Flush();
  EXPECT_TRUE(monitor->Errors().empty());
  const runtime::MetricsSnapshot snapshot = monitor->Metrics();
  EXPECT_EQ(snapshot.examples_seen + snapshot.TotalShedExamples() +
                snapshot.TotalDroppedExamples() +
                snapshot.TotalErroredExamples(),
            offered);
  EXPECT_EQ(snapshot.TotalShedExamples(), shed_batches * 16);
}

// ---------------------------------------------------------- subscriptions ---

TEST(Monitor, SubscriptionFiltersAndUnsubscribes) {
  const std::unique_ptr<Monitor> monitor = SmallMonitor(1);
  Result<StreamHandle> ticks = monitor->RegisterStream(
      "tick", EraseSuiteFactory<Tick>("tick", TickSuiteFactory()),
      Named("ticker"));
  ASSERT_TRUE(ticks.ok());

  auto everything = std::make_shared<runtime::CollectingSink>();
  auto severe = std::make_shared<runtime::CollectingSink>();
  auto positive_only = std::make_shared<runtime::CollectingSink>();
  auto other_stream = std::make_shared<runtime::CollectingSink>();
  Subscription all_sub = monitor->Subscribe(EventFilter{}, everything);
  const Subscription severe_sub =
      monitor->Subscribe(Filter("", "", "", 1.5), severe);
  const Subscription positive_sub =
      monitor->Subscribe(Filter("", "", "positive"), positive_only);
  const Subscription other_sub =
      monitor->Subscribe(Filter("", "elsewhere"), other_stream);
  EXPECT_TRUE(all_sub.active());
  EXPECT_FALSE(monitor->Subscribe(EventFilter{}, nullptr).active());

  std::vector<AnyExample> batch;
  for (std::size_t i = 0; i < 40; ++i) {
    batch.push_back(AnyExample::Make(Tick{i, i % 5 == 0 ? 2.0 : 1.2}));
  }
  EXPECT_TRUE(monitor->ObserveBatch(ticks.value(), std::move(batch)).ok());
  monitor->Flush();

  ASSERT_FALSE(everything->Events().empty());
  EXPECT_FALSE(severe->Events().empty());
  EXPECT_LT(severe->Events().size(), everything->Events().size());
  for (const auto& event : severe->Events()) {
    EXPECT_GE(event.severity, 1.5);
  }
  for (const auto& event : positive_only->Events()) {
    EXPECT_EQ(event.assertion, "tick/positive");
  }
  EXPECT_TRUE(other_stream->Events().empty());

  // Unsubscribe detaches: further traffic reaches remaining sinks only.
  const std::size_t before = everything->Events().size();
  all_sub.Unsubscribe();
  EXPECT_FALSE(all_sub.active());
  std::vector<AnyExample> more;
  for (std::size_t i = 0; i < 40; ++i) {
    more.push_back(AnyExample::Make(Tick{100 + i, 2.0}));
  }
  EXPECT_TRUE(monitor->ObserveBatch(ticks.value(), std::move(more)).ok());
  monitor->Flush();
  EXPECT_EQ(everything->Events().size(), before);
  EXPECT_GT(positive_only->Events().size(), 0u);
}

TEST(Monitor, ConcurrentSubscribeUnsubscribeUnderLoad) {
  const std::unique_ptr<Monitor> monitor = SmallMonitor(2);
  Result<StreamHandle> ticks = monitor->RegisterStream(
      "tick", EraseSuiteFactory<Tick>("tick", TickSuiteFactory()));
  ASSERT_TRUE(ticks.ok());
  auto stable = std::make_shared<runtime::CountingSink>();
  const Subscription stable_sub =
      monitor->Subscribe(EventFilter{}, stable);

  std::thread producer([&] {
    for (std::size_t round = 0; round < 150; ++round) {
      std::vector<AnyExample> batch;
      for (std::size_t i = 0; i < 16; ++i) {
        batch.push_back(
            AnyExample::Make(Tick{round * 16 + i, i % 3 == 0 ? 2.0 : 0.0}));
      }
      ASSERT_TRUE(
          monitor->ObserveBatch(ticks.value(), std::move(batch)).ok());
    }
  });
  std::thread churner([&] {
    for (std::size_t i = 0; i < 200; ++i) {
      auto transient = std::make_shared<runtime::CountingSink>();
      Subscription sub = monitor->Subscribe(
          Filter("", "", "", static_cast<double>(i % 3)), transient);
      EXPECT_TRUE(sub.active());
      sub.Unsubscribe();
    }
  });
  producer.join();
  churner.join();
  monitor->Flush();
  EXPECT_TRUE(monitor->Errors().empty());
  EXPECT_GT(stable->count(), 0u);
  EXPECT_EQ(monitor->Metrics().examples_seen, 150u * 16u);
}

// ------------------------------------------------------- scenario loading ---

TEST(ScenarioMonitor, HostsAMixedScenarioInOneMonitor) {
  const config::ScenarioSpec scenario =
      config::ConfigLoader::Load(config::SpecDocument::Parse(R"(
[scenario]
name = "mixed"
[runtime]
shards = 2
window = 32
settle_lag = 4
queue_capacity = 1024
[suite video]
assertions = [video.multibox, video.consistency]
[suite ecg]
assertions = [ecg.oscillation]
[stream cam-0]
domain = video
[stream ward-0]
domain = ecg
)"));
  const serve::DomainRegistry domains = MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted =
      config::BuildScenarioMonitor(scenario, domains);
  ASSERT_NE(hosted.monitor, nullptr);
  ASSERT_EQ(hosted.streams.size(), 2u);
  EXPECT_EQ(hosted.streams[0].handle.name(), "cam-0");
  EXPECT_EQ(hosted.streams[0].handle.domain(), "video");
  EXPECT_EQ(hosted.streams[1].handle.domain(), "ecg");
  EXPECT_EQ(hosted.monitor->config().shards, 2u);
  EXPECT_EQ(
      hosted.assertion_names.at("video"),
      (std::vector<std::string>{"video/multibox", "video/flicker",
                                "video/appear"}));
  EXPECT_EQ(hosted.assertion_names.at("ecg"),
            (std::vector<std::string>{"ecg/ECG"}));

  // The registered streams serve (a smoke through the facade path).
  std::vector<AnyExample> batch;
  for (video::VideoExample& example : FixedVideoStream()) {
    batch.push_back(AnyExample::Make(std::move(example)));
  }
  EXPECT_TRUE(hosted.monitor
                  ->ObserveBatch(hosted.streams[0].handle, std::move(batch))
                  .ok());
  hosted.monitor->Flush();
  EXPECT_EQ(hosted.monitor->Metrics().examples_seen, 40u);

  // Unknown domains fail positioned, with the registry's vocabulary.
  const config::ScenarioSpec unknown =
      config::ConfigLoader::Load(config::SpecDocument::Parse(
          "[scenario]\nname = u\n[suite nope]\nassertions = [x]\n"
          "[stream s]\ndomain = nope\n"));
  EXPECT_THROW(config::BuildScenarioMonitor(unknown, domains),
               config::SpecError);
}

}  // namespace
}  // namespace omg::serve
