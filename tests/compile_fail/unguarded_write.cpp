// MUST NOT COMPILE under clang++ -Wthread-safety -Werror.
//
// Violation class 1: writing a OMG_GUARDED_BY field without holding its
// mutex. If this TU ever compiles under the thread-safety analysis, the
// annotation layer has stopped proving lock coverage —
// tests/compile_fail/check.py fails the build.
#include "common/mutex.hpp"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BAD: mu_ not held
  }

 private:
  omg::Mutex mu_;
  int value_ OMG_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
