#!/usr/bin/env python3
"""Negative-compile harness for the thread-safety annotation layer.

Proves -Wthread-safety actually rejects the two violation classes the
layer exists to catch:

  unguarded_write.cpp   — writing a OMG_GUARDED_BY field lock-free
  missing_requires.cpp  — calling an OMG_REQUIRES function lock-free

and that the positive control (guarded_ok.cpp) still compiles, so the
expected failures fail for the right reason (the analysis) and not an
unrelated one (include path, dialect). Each violation's stderr must
mention -Wthread-safety, pinning the rejection to the analysis.

Requires a Clang compiler — GCC has no thread-safety analysis, so the
annotations expand to nothing there. Exits 77 (ctest SKIP_RETURN_CODE)
when no Clang is available; CI's thread-safety job always has one.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
SKIP = 77


def find_clang(explicit: str | None) -> str | None:
    candidates = [explicit] if explicit else ["clang++"] + [
        f"clang++-{major}" for major in range(22, 13, -1)]
    for candidate in candidates:
        if candidate and shutil.which(candidate):
            return candidate
    return None


def compile_tu(clang: str, source_root: Path, tu: Path) -> tuple[int, str]:
    result = subprocess.run(
        [clang, "-std=c++20", "-fsyntax-only", "-Wthread-safety", "-Werror",
         "-I", str(source_root / "src"), str(tu)],
        capture_output=True, text=True)
    return result.returncode, result.stderr


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--source-root", type=Path,
                        default=HERE.parent.parent,
                        help="repo root (for -I src)")
    parser.add_argument("--clang", default=None,
                        help="clang++ binary (default: search PATH)")
    args = parser.parse_args()

    clang = find_clang(args.clang)
    if clang is None:
        print("compile_fail: no clang++ on PATH — thread-safety analysis "
              "is Clang-only, skipping")
        return SKIP

    failures: list[str] = []

    code, stderr = compile_tu(clang, args.source_root, HERE / "guarded_ok.cpp")
    if code != 0:
        failures.append(
            f"positive control guarded_ok.cpp failed to compile:\n{stderr}")

    for name in ("unguarded_write.cpp", "missing_requires.cpp"):
        code, stderr = compile_tu(clang, args.source_root, HERE / name)
        if code == 0:
            failures.append(
                f"{name} compiled — the thread-safety analysis no longer "
                "rejects this violation class")
        elif "thread-safety" not in stderr:
            failures.append(
                f"{name} failed for a reason other than -Wthread-safety:\n"
                f"{stderr}")

    if failures:
        print("\n\n".join(failures))
        return 1
    print(f"compile_fail: OK ({clang}: control compiles, both violation "
          "classes rejected by -Wthread-safety)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
