// Positive control: correct locking that MUST compile cleanly under
// clang++ -Wthread-safety -Werror. Keeps tests/compile_fail/check.py
// honest — if this TU fails, the violation TUs are failing for some
// unrelated reason (include path, dialect) and their "expected failure"
// results prove nothing.
#include "common/mutex.hpp"

namespace {

class Counter {
 public:
  void Increment() {
    omg::MutexLock lock(mu_);
    ++value_;
    changed_.NotifyAll();
  }

  int WaitForPositive() {
    omg::MutexLock lock(mu_);
    while (value_ <= 0) changed_.Wait(mu_);
    return value_;
  }

 private:
  omg::Mutex mu_;
  omg::CondVar changed_;
  int value_ OMG_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.WaitForPositive() > 0 ? 0 : 1;
}
