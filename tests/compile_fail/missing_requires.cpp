// MUST NOT COMPILE under clang++ -Wthread-safety -Werror.
//
// Violation class 2: calling an OMG_REQUIRES function without holding the
// required mutex. If this TU ever compiles under the thread-safety
// analysis, locking contracts are no longer being enforced at call sites —
// tests/compile_fail/check.py fails the build.
#include "common/mutex.hpp"

namespace {

class Ledger {
 public:
  void AddLocked(int amount) OMG_REQUIRES(mu_) { total_ += amount; }

  void Add(int amount) {
    AddLocked(amount);  // BAD: caller does not hold mu_
  }

 private:
  omg::Mutex mu_;
  int total_ OMG_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger ledger;
  ledger.Add(1);
  return 0;
}
