// Sanitizer-edge regressions. Each test pins a path the ASan/UBSan CI
// matrix must keep exercising — the suspects from the first sanitizer
// bring-up (AnyExample's heap-spill storage, the wire codec's f64 /
// unaligned byte reads, LatencyHistogram's extreme-value bucketing).
// They assert behavior too, but their main job is to put the edge path
// in front of the sanitizers on every run.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/wire.hpp"
#include "runtime/latency_histogram.hpp"
#include "serve/any_example.hpp"

namespace omg {
namespace {

// ------------------------------------------------------------------------
// A payload larger than AnyExample::kInlineCapacity, forcing the
// SpillPool heap path on every wrap / clone / relocate.
struct BigExample {
  std::array<double, 64> samples{};  // 512 bytes, well past the SBO
  std::string label;
};

}  // namespace
}  // namespace omg

template <>
struct omg::serve::DomainTraits<omg::BigExample> {
  static constexpr std::string_view kDomain = "test-big";
  static double SeverityHint(const omg::BigExample& example) {
    return example.samples[0];
  }
  static std::string DebugString(const omg::BigExample& example) {
    return "big:" + example.label;
  }
};

namespace omg {
namespace {

using runtime::LatencyHistogram;
using serve::AnyExample;

BigExample MakeBig(double seed, std::string label) {
  BigExample example;
  for (std::size_t i = 0; i < example.samples.size(); ++i) {
    example.samples[i] = seed + static_cast<double>(i);
  }
  example.label = std::move(label);
  return example;
}

TEST(SanitizerRegressions, AnyExampleHeapSpillSurvivesCloneAndMoveCycles) {
  static_assert(sizeof(BigExample) > AnyExample::kInlineCapacity,
                "BigExample must exercise the heap-spill path");
  AnyExample a = AnyExample::Make(MakeBig(1.0, "a"));
  ASSERT_TRUE(a.Is<BigExample>());
  EXPECT_EQ(a.domain(), "test-big");

  // Clone through the vtable, then mutate the copy: storage is disjoint.
  AnyExample b(a);
  b.TryGetMutable<BigExample>()->label = "b";
  EXPECT_EQ(a.Get<BigExample>().label, "a");
  EXPECT_EQ(b.Get<BigExample>().label, "b");

  // Move transfers the spill block; the source empties, no double free.
  AnyExample c(std::move(a));
  EXPECT_FALSE(a.has_value());  // NOLINT(bugprone-use-after-move): asserts the moved-from state
  EXPECT_EQ(c.Get<BigExample>().label, "a");

  // Copy-assign over a live spill payload (old block must be released),
  // then self-assign through a reference (no aliasing corruption).
  c = b;
  EXPECT_EQ(c.Get<BigExample>().label, "b");
  AnyExample& alias = c;
  c = alias;
  EXPECT_EQ(c.Get<BigExample>().label, "b");

  // Replace a spill payload in place, and leave holders non-empty at
  // scope exit so the destructor path releases spill blocks too.
  c.Emplace<BigExample>(MakeBig(2.0, "replaced"));
  EXPECT_DOUBLE_EQ(c.SeverityHint(), 2.0);
}

TEST(SanitizerRegressions, WireReadsAreSafeFromMisalignedBuffers) {
  net::WireWriter writer;
  writer.U8(0x5a);  // 1-byte prefix keeps every later field misaligned
  writer.F64(3.141592653589793);
  writer.U64(0x0123456789abcdefULL);
  writer.U32(0xdeadbeef);
  writer.String("misaligned");
  const std::span<const std::uint8_t> encoded = writer.bytes();

  // Re-home the frame at storage offset 1: if any field read were a raw
  // pointer-cast load instead of byte assembly, UBSan's alignment check
  // would fire here.
  std::vector<std::uint8_t> shifted(encoded.size() + 1);
  shifted[0] = 0;
  std::memcpy(shifted.data() + 1, encoded.data(), encoded.size());

  net::WireReader reader(
      std::span<const std::uint8_t>(shifted.data() + 1, encoded.size()));
  std::uint8_t prefix = 0;
  double f64 = 0.0;
  std::uint64_t u64 = 0;
  std::uint32_t u32 = 0;
  std::string text;
  ASSERT_TRUE(reader.U8(prefix));
  ASSERT_TRUE(reader.F64(f64));
  ASSERT_TRUE(reader.U64(u64));
  ASSERT_TRUE(reader.U32(u32));
  ASSERT_TRUE(reader.String(text));
  EXPECT_EQ(prefix, 0x5a);
  EXPECT_DOUBLE_EQ(f64, 3.141592653589793);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(text, "misaligned");
}

TEST(SanitizerRegressions, WireF64RoundTripsNonFiniteAndDenormalBits) {
  const double cases[] = {0.0,
                          -0.0,
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max()};
  for (const double value : cases) {
    net::WireWriter writer;
    writer.F64(value);
    net::WireReader reader(writer.bytes());
    double decoded = 0.0;
    ASSERT_TRUE(reader.F64(decoded));
    // Bit-exact round trip, including NaN payloads and the sign of -0.
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::memcpy(&sent, &value, sizeof(sent));
    std::memcpy(&received, &decoded, sizeof(received));
    EXPECT_EQ(sent, received);
  }
}

TEST(SanitizerRegressions, LatencyHistogramAbsorbsExtremeSamples) {
  LatencyHistogram histogram;
  // Non-finite and negative samples are sanitized to 0, not bucketed by
  // a float->size_t cast (which would be UB for these values).
  histogram.Record(std::numeric_limits<double>::quiet_NaN());
  histogram.Record(std::numeric_limits<double>::infinity());
  histogram.Record(-std::numeric_limits<double>::infinity());
  histogram.Record(-1.0);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.max_seconds(), 0.0);

  // Huge-but-finite samples must clamp into the last slot, and tiny ones
  // into the first, without overflowing the octave index.
  histogram.Record(std::numeric_limits<double>::max());
  histogram.Record(std::numeric_limits<double>::denorm_min());
  histogram.Record(0.0);
  EXPECT_EQ(histogram.count(), 7u);
  EXPECT_DOUBLE_EQ(histogram.max_seconds(),
                   std::numeric_limits<double>::max());
  // Quantiles stay inside [min, max] even with the extreme spread.
  const double p50 = histogram.Quantile(0.5);
  const double p999 = histogram.Quantile(0.999);
  EXPECT_GE(p50, histogram.min_seconds());
  EXPECT_LE(p999, histogram.max_seconds());
  EXPECT_LE(p50, p999);

  // Merging extreme histograms keeps min/max and counts coherent.
  LatencyHistogram other;
  other.Record(1e-9);
  other.Record(5.0);
  histogram.Merge(other);
  EXPECT_EQ(histogram.count(), 9u);
  EXPECT_DOUBLE_EQ(histogram.max_seconds(),
                   std::numeric_limits<double>::max());
}

}  // namespace
}  // namespace omg
