// The network ingestion front end: wire codec round-trips for all four
// domains, malformed-frame handling (truncation at every header boundary,
// CRC corruption, oversized payloads), split-read reassembly, the
// multi-tenant TCP/UDS server (auth, stream isolation, concurrent quota
// enforcement), and clean shutdown with in-flight frames (the TSan job
// runs this binary).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "wire_corpus.hpp"

#include "av/factory.hpp"
#include "config/monitor_loader.hpp"
#include "config/scenario.hpp"
#include "config/spec.hpp"
#include "ecg/factory.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serve/domains.hpp"
#include "serve/monitor.hpp"
#include "tvnews/factory.hpp"
#include "video/factory.hpp"

namespace omg::net {
namespace {

// ------------------------------------------------------------------ wire ---

TEST(Wire, Crc32KnownVector) {
  const std::string text = "123456789";
  EXPECT_EQ(Crc32({reinterpret_cast<const std::uint8_t*>(text.data()),
                   text.size()}),
            0xCBF43926u);
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(Wire, HeaderRoundTripPreservesEveryField) {
  FrameHeader header;
  header.type = FrameType::kData;
  header.seq = 77;
  header.session = 0x1122334455667788ull;
  header.stream = 42;
  header.set_domain_tag("video");
  header.count = 25;
  header.set_hint(2.5);

  const std::vector<std::uint8_t> bytes = EncodeFrame(header, {});
  ASSERT_EQ(bytes.size(), FrameHeader::kBytes);
  const serve::Result<FrameHeader> decoded = DecodeHeader(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, FrameType::kData);
  EXPECT_EQ(decoded.value().seq, 77u);
  EXPECT_EQ(decoded.value().session, 0x1122334455667788ull);
  EXPECT_EQ(decoded.value().stream, 42u);
  EXPECT_EQ(decoded.value().domain_tag(), "video");
  EXPECT_EQ(decoded.value().count, 25u);
  EXPECT_EQ(decoded.value().hint(), 2.5);
}

TEST(Wire, DecodeHeaderTruncatedAtEveryBoundary) {
  FrameHeader header;
  header.set_domain_tag("ecg");
  const std::vector<std::uint8_t> bytes = EncodeFrame(header, {});
  for (std::size_t length = 0; length < FrameHeader::kBytes; ++length) {
    const serve::Result<FrameHeader> decoded =
        DecodeHeader({bytes.data(), length});
    ASSERT_FALSE(decoded.ok()) << "length " << length;
    EXPECT_EQ(decoded.error().code, serve::ErrorCode::kTruncatedFrame)
        << "length " << length;
  }
  EXPECT_TRUE(DecodeHeader(bytes).ok());
}

TEST(Wire, DecodeHeaderRejectsMagicVersionAndType) {
  const std::vector<std::uint8_t> good = EncodeFrame(FrameHeader{}, {});

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeHeader(bad_magic).error().code,
            serve::ErrorCode::kBadMagic);

  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] = 0x7F;  // version low byte
  EXPECT_EQ(DecodeHeader(bad_version).error().code,
            serve::ErrorCode::kBadVersion);

  std::vector<std::uint8_t> bad_type = good;
  bad_type[6] = 0xEE;  // type low byte
  EXPECT_EQ(DecodeHeader(bad_type).error().code,
            serve::ErrorCode::kUnknownFrameType);
}

TEST(Wire, DecodeFrameCatchesCrcAndOversize) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  FrameHeader header;
  header.count = 1;
  std::vector<std::uint8_t> bytes = EncodeFrame(header, payload);

  EXPECT_TRUE(DecodeFrame(bytes).ok());
  // Truncated payload: the declared length overruns the buffer.
  EXPECT_EQ(DecodeFrame({bytes.data(), bytes.size() - 1}).error().code,
            serve::ErrorCode::kTruncatedFrame);

  std::vector<std::uint8_t> corrupted = bytes;
  corrupted.back() ^= 0xFF;
  EXPECT_EQ(DecodeFrame(corrupted).error().code,
            serve::ErrorCode::kCrcMismatch);

  EXPECT_EQ(DecodeFrame(bytes, 4).error().code,
            serve::ErrorCode::kOversizedFrame);
}

// ----------------------------------------------------------------- codecs ---

TEST(Codec, RoundTripsAllFourDomains) {
  const serve::DomainRegistry registry = serve::MakeDefaultDomainRegistry();
  for (const std::string domain : {"video", "av", "ecg", "tvnews"}) {
    const PayloadCodec* codec = registry.CodecFor(domain);
    ASSERT_NE(codec, nullptr) << domain;

    std::vector<serve::AnyExample> batch;
    for (std::size_t i = 0; i < 7; ++i) {
      serve::Result<serve::AnyExample> example =
          MakeSyntheticExample(domain, i);
      ASSERT_TRUE(example.ok()) << domain;
      batch.push_back(std::move(example.value()));
    }
    const std::vector<std::uint8_t> payload = EncodeBatch(*codec, batch);
    const serve::Result<std::vector<serve::AnyExample>> decoded =
        DecodeBatch(*codec, payload, static_cast<std::uint32_t>(batch.size()));
    ASSERT_TRUE(decoded.ok()) << domain;
    ASSERT_EQ(decoded.value().size(), batch.size()) << domain;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(decoded.value()[i].domain(), domain);
      EXPECT_EQ(decoded.value()[i].DebugString(), batch[i].DebugString())
          << domain << " example " << i;
    }
  }
}

TEST(Codec, RoundTripPreservesVideoGeometry) {
  const serve::DomainRegistry registry = serve::MakeDefaultDomainRegistry();
  const PayloadCodec* codec = registry.CodecFor("video");
  ASSERT_NE(codec, nullptr);
  video::VideoExample example;
  example.frame_index = 9;
  example.timestamp = 1.25;
  example.detections.push_back(
      {geometry::Box2D{0.1, 0.2, 0.3, 0.4}, "car", 0.875, 3});
  std::vector<serve::AnyExample> batch;
  batch.push_back(serve::AnyExample::Make(std::move(example)));

  const std::vector<std::uint8_t> payload = EncodeBatch(*codec, batch);
  serve::Result<std::vector<serve::AnyExample>> decoded =
      DecodeBatch(*codec, payload, 1);
  ASSERT_TRUE(decoded.ok());
  const video::VideoExample& got = decoded.value()[0].Get<video::VideoExample>();
  EXPECT_EQ(got.frame_index, 9u);
  EXPECT_EQ(got.timestamp, 1.25);
  ASSERT_EQ(got.detections.size(), 1u);
  EXPECT_EQ(got.detections[0].label, "car");
  EXPECT_EQ(got.detections[0].confidence, 0.875);
  EXPECT_EQ(got.detections[0].truth_id, 3);
  EXPECT_EQ(got.detections[0].box.x_min, 0.1);
  EXPECT_EQ(got.detections[0].box.y_max, 0.4);
}

TEST(Codec, RejectsCountMismatchAndTrailingGarbage) {
  const serve::DomainRegistry registry = serve::MakeDefaultDomainRegistry();
  const PayloadCodec* codec = registry.CodecFor("ecg");
  ASSERT_NE(codec, nullptr);
  std::vector<serve::AnyExample> batch;
  batch.push_back(std::move(MakeSyntheticExample("ecg", 0).value()));
  std::vector<std::uint8_t> payload = EncodeBatch(*codec, batch);

  // Declared count exceeds the encoded examples: decode underruns.
  EXPECT_EQ(DecodeBatch(*codec, payload, 2).error().code,
            serve::ErrorCode::kMalformedPayload);
  // Bytes beyond the declared count: trailing garbage.
  payload.push_back(0);
  EXPECT_EQ(DecodeBatch(*codec, payload, 1).error().code,
            serve::ErrorCode::kMalformedPayload);
}

// -------------------------------------------------------------- assembler ---

std::vector<std::uint8_t> MakeDataFrame(std::uint64_t seq,
                                        std::uint8_t fill) {
  FrameHeader header;
  header.type = FrameType::kData;
  header.seq = seq;
  header.count = 4;
  header.set_domain_tag("video");
  const std::vector<std::uint8_t> payload(24, fill);
  return EncodeFrame(header, payload);
}

TEST(Assembler, ReassemblesFramesFedByteAtATime) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    const std::vector<std::uint8_t> frame =
        MakeDataFrame(seq, static_cast<std::uint8_t>(seq));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  FrameAssembler assembler(1 << 20);
  std::vector<std::uint64_t> seen;
  for (const std::uint8_t byte : stream) {
    assembler.Feed({&byte, 1});
    for (;;) {
      FrameAssembler::Step step = assembler.Next();
      if (step.NeedMore()) break;
      ASSERT_TRUE(step.frame.has_value());
      seen.push_back(step.frame->header.seq);
      EXPECT_EQ(step.frame->payload.size(), 24u);
    }
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_FALSE(assembler.MidFrame());
}

TEST(Assembler, CrcMismatchSkipsOneFrameAndRecovers) {
  std::vector<std::uint8_t> corrupt = MakeDataFrame(1, 0xAA);
  corrupt.back() ^= 0xFF;  // payload corruption, framing intact
  const std::vector<std::uint8_t> good = MakeDataFrame(2, 0xBB);

  FrameAssembler assembler(1 << 20);
  assembler.Feed(corrupt);
  assembler.Feed(good);

  FrameAssembler::Step first = assembler.Next();
  ASSERT_TRUE(first.failure.has_value());
  EXPECT_EQ(first.failure->error.code, serve::ErrorCode::kCrcMismatch);
  EXPECT_EQ(first.failure->lost_examples, 4u);
  EXPECT_FALSE(first.failure->fatal);

  FrameAssembler::Step second = assembler.Next();
  ASSERT_TRUE(second.frame.has_value());
  EXPECT_EQ(second.frame->header.seq, 2u);
}

TEST(Assembler, FatalFailurePoisonsTheStream) {
  std::vector<std::uint8_t> bad = MakeDataFrame(1, 0x11);
  bad[0] = 'X';  // bad magic: framing untrustworthy

  FrameAssembler assembler(1 << 20);
  assembler.Feed(bad);
  FrameAssembler::Step step = assembler.Next();
  ASSERT_TRUE(step.failure.has_value());
  EXPECT_EQ(step.failure->error.code, serve::ErrorCode::kBadMagic);
  EXPECT_TRUE(step.failure->fatal);

  // A poisoned assembler repeats the failure even over fresh good bytes.
  assembler.Feed(MakeDataFrame(2, 0x22));
  FrameAssembler::Step after = assembler.Next();
  ASSERT_TRUE(after.failure.has_value());
  EXPECT_TRUE(after.failure->fatal);
}

TEST(Assembler, OversizedDeclaredLengthIsFatal) {
  FrameHeader header;
  header.type = FrameType::kData;
  const std::vector<std::uint8_t> payload(256, 0x55);
  const std::vector<std::uint8_t> frame = EncodeFrame(header, payload);

  FrameAssembler assembler(/*max_frame_bytes=*/64);
  assembler.Feed(frame);
  FrameAssembler::Step step = assembler.Next();
  ASSERT_TRUE(step.failure.has_value());
  EXPECT_EQ(step.failure->error.code, serve::ErrorCode::kOversizedFrame);
  EXPECT_TRUE(step.failure->fatal);
}

// ----------------------------------------------------------------- corpus ---

// The shared corrupt-frame table (wire_corpus.hpp) against the one-shot
// decoder: every corruption class gets its documented code, and the two
// boundary-valid cases (zero-count DATA, exactly-max payload) decode.
TEST(Corpus, DecodeFrameVerdictsMatchTheTable) {
  constexpr std::size_t kMaxFrameBytes = 4096;
  const std::vector<std::uint8_t> good = MakeDataFrame(7, 0xC3);
  for (const testing::CorruptFrameCase& c :
       testing::CorruptFrameCorpus(good, 4, kMaxFrameBytes)) {
    const serve::Result<Frame> decoded = DecodeFrame(c.bytes, kMaxFrameBytes);
    if (c.valid) {
      EXPECT_TRUE(decoded.ok()) << c.name;
      continue;
    }
    ASSERT_FALSE(decoded.ok()) << c.name;
    EXPECT_EQ(decoded.code(), c.expected) << c.name;
  }
}

// The same table against the streaming assembler: truncations are NeedMore
// (not errors), corruptions carry the table's fatality and — the decode
// accounting contract — lost_examples is the header count only when the
// header passed its own CRC, never when the count field itself may be
// corrupt.
TEST(Corpus, AssemblerVerdictsAndAccountingMatchTheTable) {
  constexpr std::size_t kMaxFrameBytes = 4096;
  const std::vector<std::uint8_t> good = MakeDataFrame(7, 0xC3);
  for (const testing::CorruptFrameCase& c :
       testing::CorruptFrameCorpus(good, 4, kMaxFrameBytes)) {
    FrameAssembler assembler(kMaxFrameBytes);
    assembler.Feed(c.bytes);
    const FrameAssembler::Step step = assembler.Next();
    if (c.truncated) {
      EXPECT_TRUE(step.NeedMore()) << c.name;
      continue;
    }
    if (c.valid) {
      EXPECT_TRUE(step.frame.has_value()) << c.name;
      continue;
    }
    ASSERT_TRUE(step.failure.has_value()) << c.name;
    EXPECT_EQ(step.failure->error.code, c.expected) << c.name;
    EXPECT_EQ(step.failure->fatal, c.fatal) << c.name;
    EXPECT_EQ(step.failure->lost_examples, c.lost_examples) << c.name;
  }
}

// Regression (header CRC, wire v2): a frame whose count field is corrupted
// must report zero lost examples — the bogus count is untrustworthy in
// either direction, so it must not inflate or deflate decode_errors.
TEST(Assembler, CorruptedCountFieldReportsZeroLostExamples) {
  std::vector<std::uint8_t> frame = MakeDataFrame(1, 0x5C);
  frame[40] ^= 0xFF;  // count field, little-endian low byte
  FrameAssembler assembler(1 << 20);
  assembler.Feed(frame);
  const FrameAssembler::Step step = assembler.Next();
  ASSERT_TRUE(step.failure.has_value());
  EXPECT_EQ(step.failure->error.code, serve::ErrorCode::kCrcMismatch);
  EXPECT_TRUE(step.failure->fatal);
  EXPECT_EQ(step.failure->lost_examples, 0u);
}

// ----------------------------------------------------------------- server ---

TEST(Server, ValidTenantNames) {
  EXPECT_TRUE(IngestServer::ValidTenantName("alpha"));
  EXPECT_TRUE(IngestServer::ValidTenantName("Tenant_01-x"));
  EXPECT_FALSE(IngestServer::ValidTenantName(""));
  EXPECT_FALSE(IngestServer::ValidTenantName("has space"));
  EXPECT_FALSE(IngestServer::ValidTenantName("slash/y"));
  EXPECT_FALSE(IngestServer::ValidTenantName("quote\"z"));
  EXPECT_FALSE(IngestServer::ValidTenantName(std::string(65, 'a')));
}

/// A two-domain scenario monitor for server tests.
config::ScenarioMonitor MakeHosted(const serve::DomainRegistry& domains) {
  const config::ScenarioSpec scenario =
      config::ConfigLoader::Load(config::SpecDocument::Parse(R"(
[scenario]
name = "net-test"
[runtime]
shards = 2
window = 32
settle_lag = 4
queue_capacity = 1024
[suite video]
assertions = [video.multibox]
[suite ecg]
assertions = [ecg.oscillation]
[stream cam]
domain = video
[stream ward]
domain = ecg
)"));
  return config::BuildScenarioMonitor(scenario, domains);
}

std::string TestSocketPath(const char* tag) {
  return "/tmp/omg_net_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::vector<serve::AnyExample> SyntheticBatch(const std::string& domain,
                                              std::size_t count) {
  std::vector<serve::AnyExample> batch;
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(std::move(MakeSyntheticExample(domain, i).value()));
  }
  return batch;
}

TEST(Server, HelloBindDataFlushStatsOverUds) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted = MakeHosted(domains);

  IngestServerOptions options;
  options.uds_path = TestSocketPath("uds");
  IngestServer server(options, *hosted.monitor, domains);
  for (const config::BoundStream& stream : hosted.streams) {
    server.ExposeStream(stream.handle);
  }
  const serve::Result<ServerEndpoints> endpoints = server.Start();
  ASSERT_TRUE(endpoints.ok());

  serve::Result<ClientConnection> conn =
      ClientConnection::ConnectUds(endpoints.value().uds_path);
  ASSERT_TRUE(conn.ok());
  ClientConnection client = std::move(conn.value());

  // Control before HELLO is a typed error, not a closed connection.
  EXPECT_EQ(client.BindStream("video", "cam").error().code,
            serve::ErrorCode::kNotAuthenticated);

  const serve::Result<std::uint64_t> session = client.Hello("any", "");
  ASSERT_TRUE(session.ok());
  EXPECT_GT(session.value(), 0u);

  EXPECT_EQ(client.BindStream("video", "nope").error().code,
            serve::ErrorCode::kUnknownStream);
  const serve::Result<std::uint64_t> binding =
      client.BindStream("video", "cam");
  ASSERT_TRUE(binding.ok());

  const PayloadCodec* codec = domains.CodecFor("video");
  ASSERT_NE(codec, nullptr);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client
                    .SendBatch(*codec, binding.value(),
                               SyntheticBatch("video", 8))
                    .ok());
  }
  ASSERT_TRUE(client.Flush().ok());

  const serve::Result<std::vector<std::uint64_t>> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().size(), 8u);
  const std::uint64_t offered = stats.value()[0];
  const std::uint64_t admitted = stats.value()[1];
  const std::uint64_t scored = stats.value()[4];
  EXPECT_EQ(offered, 32u);
  EXPECT_EQ(admitted, 32u);
  EXPECT_EQ(scored, 32u);

  EXPECT_TRUE(client.Goodbye().ok());
  server.Stop();
  EXPECT_EQ(hosted.monitor->Metrics().examples_seen, 32u);
}

TEST(Server, TcpTransportServes) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted = MakeHosted(domains);

  IngestServerOptions options;
  options.tcp = true;  // ephemeral port
  IngestServer server(options, *hosted.monitor, domains);
  for (const config::BoundStream& stream : hosted.streams) {
    server.ExposeStream(stream.handle);
  }
  const serve::Result<ServerEndpoints> endpoints = server.Start();
  ASSERT_TRUE(endpoints.ok());
  ASSERT_GT(endpoints.value().tcp_port, 0);

  serve::Result<ClientConnection> conn =
      ClientConnection::ConnectTcp("127.0.0.1", endpoints.value().tcp_port);
  ASSERT_TRUE(conn.ok());
  ClientConnection client = std::move(conn.value());
  ASSERT_TRUE(client.Hello("tenant", "").ok());
  const serve::Result<std::uint64_t> binding =
      client.BindStream("ecg", "ward");
  ASSERT_TRUE(binding.ok());
  const PayloadCodec* codec = domains.CodecFor("ecg");
  ASSERT_TRUE(client
                  .SendBatch(*codec, binding.value(),
                             SyntheticBatch("ecg", 16))
                  .ok());
  const serve::Result<std::vector<std::uint64_t>> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value()[0], 16u);  // offered
  EXPECT_EQ(stats.value()[4], 16u);  // scored
  server.Stop();
}

TEST(Server, AuthAndTenantIsolation) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted = MakeHosted(domains);

  IngestServerOptions options;
  options.uds_path = TestSocketPath("auth");
  options.tenants.push_back({.name = "alpha", .token = "a-secret"});
  options.tenants.push_back({.name = "beta", .token = "b-secret"});
  IngestServer server(options, *hosted.monitor, domains);
  // cam belongs to alpha; ward is open to any authenticated tenant.
  server.ExposeStream(hosted.streams[0].handle, "alpha");
  server.ExposeStream(hosted.streams[1].handle);
  ASSERT_TRUE(server.Start().ok());

  ClientConnection beta = std::move(
      ClientConnection::ConnectUds(options.uds_path).value());
  // A closed roster rejects unknown tenants and wrong tokens.
  EXPECT_EQ(beta.Hello("gamma", "x").error().code,
            serve::ErrorCode::kUnknownTenant);
  EXPECT_EQ(beta.Hello("beta", "wrong").error().code,
            serve::ErrorCode::kAuthFailed);
  ASSERT_TRUE(beta.Hello("beta", "b-secret").ok());

  // Another tenant's stream reads as unknown — the roster does not leak.
  EXPECT_EQ(beta.BindStream("video", "cam").error().code,
            serve::ErrorCode::kUnknownStream);
  EXPECT_TRUE(beta.BindStream("ecg", "ward").ok());

  ClientConnection alpha = std::move(
      ClientConnection::ConnectUds(options.uds_path).value());
  ASSERT_TRUE(alpha.Hello("alpha", "a-secret").ok());
  EXPECT_TRUE(alpha.BindStream("video", "cam").ok());
  server.Stop();
}

TEST(Server, ConcurrentTenantQuotaEnforcement) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted = MakeHosted(domains);

  IngestServerOptions options;
  options.uds_path = TestSocketPath("quota");
  // `limited` can burst 64 examples and refills a negligible trickle;
  // `free` is unlimited. Both hammer concurrently.
  options.tenants.push_back(
      {.name = "limited", .token = "", .quota_eps = 1.0, .burst = 64.0});
  options.tenants.push_back({.name = "free"});
  IngestServer server(options, *hosted.monitor, domains);
  server.ExposeStream(hosted.streams[0].handle);  // cam (video)
  server.ExposeStream(hosted.streams[1].handle);  // ward (ecg)
  ASSERT_TRUE(server.Start().ok());

  const auto drive = [&options, &domains](const std::string& tenant,
                                          const std::string& domain,
                                          const std::string& stream) {
    ClientConnection client = std::move(
        ClientConnection::ConnectUds(options.uds_path).value());
    ASSERT_TRUE(client.Hello(tenant, "").ok());
    const std::uint64_t binding =
        client.BindStream(domain, stream).value();
    const PayloadCodec* codec = domains.CodecFor(domain);
    const std::vector<serve::AnyExample> batch = SyntheticBatch(domain, 16);
    const std::vector<std::uint8_t> payload = EncodeBatch(*codec, batch);
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(
          client.SendEncoded(binding, domain, 16, payload).ok());
    }
    ASSERT_TRUE(client.Flush().ok());
    ASSERT_TRUE(client.Goodbye().ok());
  };
  std::thread limited(drive, "limited", "video", "cam");
  std::thread free_rider(drive, "free", "ecg", "ward");
  limited.join();
  free_rider.join();

  // Both connections closed after FLUSH+GOODBYE, so stats are settled.
  const IngestServerStats stats = server.Stats();
  server.Stop();
  const TenantStats& lim = stats.tenants.at("limited");
  const TenantStats& fr = stats.tenants.at("free");
  EXPECT_EQ(lim.offered, 512u);
  EXPECT_EQ(fr.offered, 512u);
  // The limited tenant admitted its burst (64 = 4 frames) plus at most a
  // trickle of refill; everything else was rejected before the queues.
  EXPECT_GE(lim.admitted, 64u);
  EXPECT_LE(lim.admitted, 128u);
  EXPECT_GE(lim.quota_rejected, 384u);
  EXPECT_EQ(fr.quota_rejected, 0u);
  EXPECT_EQ(fr.admitted, 512u);
  for (const TenantStats* tenant : {&lim, &fr}) {
    EXPECT_EQ(tenant->offered, tenant->admitted + tenant->shed +
                                   tenant->quota_rejected +
                                   tenant->decode_errors);
  }
  // The monitor only ever saw admitted examples.
  hosted.monitor->Flush();
  EXPECT_EQ(hosted.monitor->Metrics().examples_seen,
            lim.admitted + fr.admitted);
}

TEST(Server, ShedFloorHintBypassesExhaustedQuota) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted = MakeHosted(domains);

  IngestServerOptions options;
  options.uds_path = TestSocketPath("floor");
  options.tenants.push_back({.name = "t",
                             .token = "",
                             .quota_eps = 1.0,
                             .burst = 16.0,
                             .shed_floor = 1.0,
                             .has_shed_floor = true});
  IngestServer server(options, *hosted.monitor, domains);
  server.ExposeStream(hosted.streams[0].handle);
  ASSERT_TRUE(server.Start().ok());

  ClientConnection client = std::move(
      ClientConnection::ConnectUds(options.uds_path).value());
  ASSERT_TRUE(client.Hello("t", "").ok());
  const std::uint64_t binding = client.BindStream("video", "cam").value();
  const PayloadCodec* codec = domains.CodecFor("video");
  const std::vector<std::uint8_t> payload =
      EncodeBatch(*codec, SyntheticBatch("video", 16));

  // Burst (16) admits the first frame; the second, unhinted, is rejected;
  // the third rides through on a hint above the tenant's shed floor.
  ASSERT_TRUE(client.SendEncoded(binding, "video", 16, payload, 0.0).ok());
  ASSERT_TRUE(client.SendEncoded(binding, "video", 16, payload, 0.0).ok());
  ASSERT_TRUE(client.SendEncoded(binding, "video", 16, payload, 2.0).ok());
  ASSERT_TRUE(client.Flush().ok());

  const serve::Result<std::vector<std::uint64_t>> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value()[0], 48u);  // offered
  EXPECT_EQ(stats.value()[1], 32u);  // admitted (burst + bypass)
  EXPECT_EQ(stats.value()[2], 16u);  // quota_rejected
  server.Stop();
}

TEST(Server, MalformedDataFramesAreCountedNotFatal) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted = MakeHosted(domains);

  IngestServerOptions options;
  options.uds_path = TestSocketPath("malformed");
  IngestServer server(options, *hosted.monitor, domains);
  server.ExposeStream(hosted.streams[0].handle);
  ASSERT_TRUE(server.Start().ok());

  ClientConnection client = std::move(
      ClientConnection::ConnectUds(options.uds_path).value());
  ASSERT_TRUE(client.Hello("t", "").ok());
  const std::uint64_t binding = client.BindStream("video", "cam").value();
  const PayloadCodec* codec = domains.CodecFor("video");
  const std::vector<std::uint8_t> good =
      EncodeBatch(*codec, SyntheticBatch("video", 8));

  // Garbage payload under an intact frame: malformed, connection lives.
  const std::vector<std::uint8_t> garbage(32, 0xFF);
  ASSERT_TRUE(client.SendEncoded(binding, "video", 8, garbage).ok());
  // Wrong domain tag for the binding.
  ASSERT_TRUE(client.SendEncoded(binding, "ecg", 8, good).ok());
  // A good frame after both still serves.
  ASSERT_TRUE(client.SendEncoded(binding, "video", 8, good).ok());
  ASSERT_TRUE(client.Flush().ok());

  const serve::Result<std::vector<std::uint64_t>> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value()[0], 24u);  // offered
  EXPECT_EQ(stats.value()[1], 8u);   // admitted
  EXPECT_EQ(stats.value()[3], 16u);  // decode errors
  EXPECT_EQ(stats.value()[4], 8u);   // scored
  server.Stop();
}

// Raw-socket plumbing for tests that must put hand-crafted (corrupt) bytes
// on the wire — ClientConnection refuses to build them.
int RawConnect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool RawWriteAll(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads frames off `fd` via `assembler` until one whole reply arrives.
std::optional<Frame> RawReadFrame(int fd, FrameAssembler& assembler) {
  for (;;) {
    FrameAssembler::Step step = assembler.Next();
    if (step.frame.has_value()) return std::move(step.frame);
    if (step.failure.has_value()) return std::nullopt;
    std::uint8_t buffer[512];
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) return std::nullopt;
    assembler.Feed({buffer, static_cast<std::size_t>(n)});
  }
}

/// Control round-trip over a raw fd; returns the ACK's first value.
std::optional<std::uint64_t> RawRoundtrip(
    int fd, FrameAssembler& assembler, FrameType type,
    std::span<const std::uint8_t> payload, std::uint64_t session = 0) {
  FrameHeader header;
  header.type = type;
  header.session = session;
  if (!RawWriteAll(fd, EncodeFrame(header, payload))) return std::nullopt;
  const std::optional<Frame> reply = RawReadFrame(fd, assembler);
  if (!reply.has_value() || reply->header.type != FrameType::kAck) {
    return std::nullopt;
  }
  WireReader reader(reply->payload);
  std::uint32_t count = 0;
  std::uint64_t value = 0;
  if (!reader.U32(count) || count == 0 || !reader.U64(value)) return 0;
  return value;
}

// Regression for the tenant accounting identity under wire corruption: a
// payload-corrupt frame charges its (CRC-verified) count to offered and
// decode_errors; a frame whose count FIELD is corrupted fails the header
// CRC and charges nothing — the bogus count must not leak into either side
// of offered == admitted + shed + quota_rejected + decode_errors.
TEST(Server, CorruptCountHeaderCannotSkewTenantAccounting) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted = MakeHosted(domains);

  IngestServerOptions options;
  options.uds_path = TestSocketPath("corrupt-count");
  IngestServer server(options, *hosted.monitor, domains);
  server.ExposeStream(hosted.streams[0].handle);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(options.uds_path);
  ASSERT_GE(fd, 0);
  FrameAssembler replies(1 << 20);
  WireWriter hello;
  hello.String("t");
  hello.String("");
  const std::optional<std::uint64_t> session =
      RawRoundtrip(fd, replies, FrameType::kHello, hello.bytes());
  ASSERT_TRUE(session.has_value());
  WireWriter bind;
  bind.String("video");
  bind.String("cam");
  const std::optional<std::uint64_t> binding =
      RawRoundtrip(fd, replies, FrameType::kBindStream, bind.bytes(),
                   *session);
  ASSERT_TRUE(binding.has_value());

  const PayloadCodec* codec = domains.CodecFor("video");
  const std::vector<serve::AnyExample> batch = SyntheticBatch("video", 8);
  const std::vector<std::uint8_t> payload = EncodeBatch(*codec, batch);
  FrameHeader data;
  data.type = FrameType::kData;
  data.session = *session;
  data.stream = *binding;
  data.set_domain_tag("video");
  data.count = 8;
  const std::vector<std::uint8_t> good = EncodeFrame(data, payload);

  // 1. Payload corruption: framing intact, count trusted — 8 offered, 8
  //    decode errors.
  std::vector<std::uint8_t> payload_corrupt = good;
  payload_corrupt.back() ^= 0xFF;
  ASSERT_TRUE(RawWriteAll(fd, payload_corrupt));
  // 2. Count-field corruption: header CRC fails, nothing countable, fatal.
  std::vector<std::uint8_t> count_corrupt = good;
  count_corrupt[40] ^= 0xFF;
  ASSERT_TRUE(RawWriteAll(fd, count_corrupt));

  // The server drops the connection at the fatal frame; EOF on our side
  // proves both frames were processed (they are handled in order).
  std::uint8_t drain[64];
  while (::read(fd, drain, sizeof(drain)) > 0) {
  }
  ::close(fd);

  const TenantStats totals = server.Stats().totals;
  EXPECT_EQ(totals.offered, 8u);
  EXPECT_EQ(totals.decode_errors, 8u);
  EXPECT_EQ(totals.admitted, 0u);
  EXPECT_EQ(totals.offered, totals.admitted + totals.shed +
                                totals.quota_rejected + totals.decode_errors);
  server.Stop();
}

TEST(Server, CleanShutdownWithInFlightFrames) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted = MakeHosted(domains);

  IngestServerOptions options;
  options.uds_path = TestSocketPath("shutdown");
  IngestServer server(options, *hosted.monitor, domains);
  server.ExposeStream(hosted.streams[0].handle);
  ASSERT_TRUE(server.Start().ok());

  ClientConnection client = std::move(
      ClientConnection::ConnectUds(options.uds_path).value());
  ASSERT_TRUE(client.Hello("t", "").ok());
  const std::uint64_t binding = client.BindStream("video", "cam").value();
  const PayloadCodec* codec = domains.CodecFor("video");
  const std::vector<std::uint8_t> payload =
      EncodeBatch(*codec, SyntheticBatch("video", 16));
  for (int i = 0; i < 64; ++i) {
    if (!client.SendEncoded(binding, "video", 16, payload).ok()) break;
  }
  // Stop with frames still in socket buffers and shard queues; everything
  // processed must still reconcile at the wire.
  server.Stop();
  client.Close();

  const IngestServerStats stats = server.Stats();
  const TenantStats& totals = stats.totals;
  EXPECT_EQ(totals.offered, totals.admitted + totals.shed +
                                totals.quota_rejected + totals.decode_errors);
  hosted.monitor->Flush();
  const runtime::MetricsSnapshot snapshot = hosted.monitor->Metrics();
  EXPECT_EQ(totals.admitted,
            snapshot.examples_seen + snapshot.TotalShedExamples() +
                snapshot.TotalDroppedExamples() +
                snapshot.TotalErroredExamples());
}

TEST(Server, PerTenantNamedMetricsReachTheRegistry) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  config::ScenarioMonitor hosted = MakeHosted(domains);

  IngestServerOptions options;
  options.uds_path = TestSocketPath("named");
  IngestServer server(options, *hosted.monitor, domains);
  server.ExposeStream(hosted.streams[0].handle);
  ASSERT_TRUE(server.Start().ok());

  ClientConnection client = std::move(
      ClientConnection::ConnectUds(options.uds_path).value());
  ASSERT_TRUE(client.Hello("acme", "").ok());
  const std::uint64_t binding = client.BindStream("video", "cam").value();
  const PayloadCodec* codec = domains.CodecFor("video");
  ASSERT_TRUE(client
                  .SendBatch(*codec, binding, SyntheticBatch("video", 8))
                  .ok());
  ASSERT_TRUE(client.Flush().ok());
  ASSERT_TRUE(client.Stats().ok());
  server.Stop();

  const runtime::MetricsSnapshot snapshot = hosted.monitor->Metrics();
  ASSERT_TRUE(snapshot.named.contains("tenant/acme/offered"));
  EXPECT_EQ(snapshot.named.at("tenant/acme/offered"), 8u);
  EXPECT_EQ(snapshot.named.at("tenant/acme/admitted"), 8u);
}

}  // namespace
}  // namespace omg::net
