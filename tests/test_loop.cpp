// Tests for the online continuous-improvement loop (src/loop/).
//
// The end-to-end tests drive a deliberately transparent closed loop: points
// in [-1,1]^2 whose true class is sign(x0), a model pretrained on labels
// from the *corrupted* rule sign(x0 + x1), and an assertion that fires where
// the deployed prediction disagrees with the true rule. The model's
// systematic errors live in the two wedges where the rules disagree;
// labeling flagged points there and retraining rotates the boundary back,
// which is exactly the flagged-rate reduction the loop must deliver.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "bandit/bal.hpp"
#include "bandit/strategy.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/assertion.hpp"
#include "loop/improvement_loop.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"
#include "runtime/service.hpp"

namespace omg::loop {
namespace {

// ------------------------------------------------------------- FlagStore ---

TEST(FlagStore, RecordsMergesAndSnapshots) {
  FlagStore store({/*capacity=*/8, /*num_assertions=*/2});
  store.Record({0, 5}, 0, 1.5);
  store.Record({0, 5}, 1, 2.0);
  store.Record({0, 5}, 0, 1.0);  // lower severity: max-merge keeps 1.5
  store.Record({1, 3}, 1, 4.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_admitted(), 2u);

  const FlagStore::Snapshot snapshot = store.TakeSnapshot();
  ASSERT_EQ(snapshot.keys.size(), 2u);
  // Ascending key order: (0,5) before (1,3).
  EXPECT_EQ(snapshot.keys[0], (CandidateKey{0, 5}));
  EXPECT_EQ(snapshot.keys[1], (CandidateKey{1, 3}));
  EXPECT_DOUBLE_EQ(snapshot.severities.At(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(snapshot.severities.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(snapshot.severities.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.severities.At(1, 1), 4.0);
}

TEST(FlagStore, EvictsBySeverityRankWhenFull) {
  FlagStore store({/*capacity=*/2, /*num_assertions=*/1});
  store.Record({0, 0}, 0, 1.0);
  store.Record({0, 1}, 0, 3.0);
  // Newcomer outranks the weakest incumbent (1.0): incumbent evicted.
  store.Record({0, 2}, 0, 2.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 1u);
  FlagStore::Snapshot snapshot = store.TakeSnapshot();
  EXPECT_EQ(snapshot.keys,
            (std::vector<CandidateKey>{{0, 1}, {0, 2}}));

  // Newcomer ranked below every incumbent: dropped, incumbents stay.
  store.Record({0, 3}, 0, 0.5);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 2u);
  snapshot = store.TakeSnapshot();
  EXPECT_EQ(snapshot.keys,
            (std::vector<CandidateKey>{{0, 1}, {0, 2}}));

  // Updates to existing candidates are exempt from capacity pressure.
  store.Record({0, 1}, 0, 9.0);
  EXPECT_DOUBLE_EQ(store.TakeSnapshot().severities.At(0, 0), 9.0);
}

TEST(FlagStore, RemoveAndClear) {
  FlagStore store({8, 1});
  store.Record({0, 0}, 0, 1.0);
  store.Record({0, 1}, 0, 1.0);
  const std::vector<CandidateKey> gone = {{0, 0}, {7, 7}};
  EXPECT_EQ(store.Remove(gone), 1u);  // unknown key ignored
  EXPECT_EQ(store.size(), 1u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.total_admitted(), 2u);  // lifetime counter survives
}

TEST(FlagStore, ValidatesConfigAndInputs) {
  EXPECT_THROW(FlagStore({0, 1}), common::CheckError);
  EXPECT_THROW(FlagStore({4, 0}), common::CheckError);
  FlagStore store({4, 2});
  EXPECT_THROW(store.Record({0, 0}, 2, 1.0), common::CheckError);
  EXPECT_THROW(store.Record({0, 0}, 0, -1.0), common::CheckError);
}

// ----------------------------------------------------- FlagCollectorSink ---

TEST(FlagCollectorSink, MapsAssertionNamesToColumns) {
  auto store = std::make_shared<FlagStore>(FlagStoreConfig{8, 2});
  FlagCollectorSink sink(store, {"flicker", "multibox"});
  sink.Consume({3, "cam", 11, "multibox", 2.0});
  sink.Consume({3, "cam", 11, "flicker", 1.0});
  sink.Consume({3, "cam", 12, "unrelated", 5.0});
  EXPECT_EQ(store->size(), 1u);
  EXPECT_EQ(sink.unknown_events(), 1u);
  const FlagStore::Snapshot snapshot = store->TakeSnapshot();
  EXPECT_EQ(snapshot.keys[0], (CandidateKey{3, 11}));
  EXPECT_DOUBLE_EQ(snapshot.severities.At(0, 0), 1.0);   // flicker column
  EXPECT_DOUBLE_EQ(snapshot.severities.At(0, 1), 2.0);   // multibox column
}

TEST(FlagCollectorSink, RejectsMismatchedNames) {
  auto store = std::make_shared<FlagStore>(FlagStoreConfig{8, 2});
  EXPECT_THROW(FlagCollectorSink(store, {"only-one"}), common::CheckError);
  EXPECT_THROW(FlagCollectorSink(store, {"dup", "dup"}), common::CheckError);
  EXPECT_THROW(FlagCollectorSink(nullptr, {"a", "b"}), common::CheckError);
  EXPECT_THROW(FlagCollectorSink(store, {"a", "b"}, {-0.5}),
               common::CheckError);
}

TEST(FlagCollectorSink, ShedsBelowSeverityFloorAndCountersReconcile) {
  // Under an event storm the collector must keep the loop fed with the
  // high-severity evidence only, never block, and account for every event:
  // consumed == recorded + shed + unknown always.
  auto store = std::make_shared<FlagStore>(FlagStoreConfig{4, 1});
  FlagCollectorSink sink(store, {"flicker"}, {/*min_severity=*/2.0});
  for (std::size_t i = 0; i < 100; ++i) {
    // High-severity events get ever-higher severities so each one outranks
    // the store's current minimum and exercises eviction.
    const double severity = i % 10 == 0 ? 3.0 + 0.01 * static_cast<double>(i)
                                        : 0.5;
    sink.Consume({0, "cam", i, "flicker", severity});
  }
  sink.Consume({0, "cam", 100, "unrelated", 9.0});
  EXPECT_EQ(sink.consumed(), 101u);
  EXPECT_EQ(sink.recorded(), 10u);  // the i % 10 == 0 high-severity events
  EXPECT_EQ(sink.shed_low_severity(), 90u);
  EXPECT_EQ(sink.unknown_events(), 1u);
  EXPECT_EQ(sink.consumed(), sink.recorded() + sink.shed_low_severity() +
                                 sink.unknown_events());
  // The store stayed inside its capacity bound (severity-rank eviction),
  // and everything it holds cleared the floor.
  EXPECT_EQ(store->size(), 4u);
  EXPECT_EQ(store->total_admitted(), 10u);
  EXPECT_EQ(store->evictions(), 6u);
  const FlagStore::Snapshot snapshot = store->TakeSnapshot();
  for (std::size_t row = 0; row < snapshot.keys.size(); ++row) {
    EXPECT_GE(snapshot.severities.At(row, 0), 2.0);
  }
}

TEST(FlagCollectorSink, ConcurrentConsumersKeepCountsConsistent) {
  auto store = std::make_shared<FlagStore>(FlagStoreConfig{64, 1});
  FlagCollectorSink sink(store, {"flicker"}, {/*min_severity=*/1.0});
  std::vector<std::thread> shards;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    shards.emplace_back([&sink, shard] {
      for (std::size_t i = 0; i < 500; ++i) {
        sink.Consume({shard, "s", i, "flicker", i % 2 == 0 ? 2.0 : 0.1});
      }
    });
  }
  for (auto& thread : shards) thread.join();
  EXPECT_EQ(sink.consumed(), 2000u);
  EXPECT_EQ(sink.recorded(), 1000u);
  EXPECT_EQ(sink.shed_low_severity(), 1000u);
  // All recorded severities tie at 2.0, so once the store fills, tied
  // newcomers are dropped: exactly `capacity` candidates were admitted.
  EXPECT_EQ(store->total_admitted(), 64u);
}

// --------------------------------------------------------- ModelRegistry ---

nn::Mlp MakeModel(std::uint64_t seed, std::size_t input_dim = 2) {
  common::Rng rng(seed);
  return nn::Mlp({input_dim, {4}, 2}, rng);
}

TEST(ModelRegistry, PublishesMonotonicVersions) {
  ModelRegistry registry;
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_EQ(registry.Current().model, nullptr);
  EXPECT_EQ(registry.Publish(MakeModel(1)), 1u);
  EXPECT_EQ(registry.Publish(MakeModel(2)), 2u);
  const ModelHandle handle = registry.Current();
  EXPECT_EQ(handle.version, 2u);
  ASSERT_NE(handle.model, nullptr);
}

TEST(ModelRegistry, ReadersSeeConsistentHandlesUnderConcurrentPublish) {
  ModelRegistry registry;
  registry.Publish(MakeModel(1));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        const ModelHandle handle = registry.Current();
        // A handle is never torn: version >= 1 implies a live model.
        ASSERT_GE(handle.version, 1u);
        ASSERT_NE(handle.model, nullptr);
        (void)handle.model->config();
      }
    });
  }
  for (std::uint64_t i = 2; i <= 50; ++i) registry.Publish(MakeModel(i));
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(registry.version(), 50u);
}

// --------------------------------------------------------------- oracles ---

TEST(Oracles, GroundTruthCountsHumanLabels) {
  GroundTruthOracle oracle([](const CandidateKey& key) {
    nn::Dataset data;
    data.Add({static_cast<double>(key.example_index)}, 1);
    return data;
  });
  const std::vector<CandidateKey> keys = {{0, 1}, {0, 2}};
  const LabelBatch batch = oracle.Label(keys);
  EXPECT_EQ(batch.data.size(), 2u);
  EXPECT_EQ(batch.human_labels, 2u);
  EXPECT_EQ(batch.weak_labels, 0u);
}

TEST(Oracles, WeakOracleDownWeights) {
  WeakLabelOracle oracle(
      [](std::span<const CandidateKey> keys) {
        nn::Dataset data;
        data.Add({1.0}, 0);            // implicit weight 1.0
        data.Add({2.0}, 1, 0.8);       // explicit weight
        (void)keys;
        return data;
      },
      /*weak_weight=*/0.25);
  const std::vector<CandidateKey> keys = {{0, 1}};
  const LabelBatch batch = oracle.Label(keys);
  ASSERT_EQ(batch.data.size(), 2u);
  EXPECT_EQ(batch.weak_labels, 2u);
  ASSERT_EQ(batch.data.weights.size(), 2u);
  EXPECT_DOUBLE_EQ(batch.data.weights[0], 0.25);
  EXPECT_DOUBLE_EQ(batch.data.weights[1], 0.2);
  EXPECT_THROW(WeakLabelOracle([](std::span<const CandidateKey>) {
                 return nn::Dataset{};
               },
                               0.0),
               common::CheckError);
}

TEST(Oracles, MixedOracleConcatenates) {
  auto human = std::make_shared<GroundTruthOracle>([](const CandidateKey&) {
    nn::Dataset data;
    data.Add({1.0}, 1);
    return data;
  });
  auto weak = std::make_shared<WeakLabelOracle>(
      [](std::span<const CandidateKey> keys) {
        nn::Dataset data;
        for (std::size_t i = 0; i < keys.size(); ++i) data.Add({0.0}, 0);
        return data;
      },
      0.5);
  MixedOracle mixed(human, weak);
  EXPECT_EQ(mixed.Name(), "ground-truth+weak-consistency");
  const std::vector<CandidateKey> keys = {{0, 1}, {0, 2}};
  const LabelBatch batch = mixed.Label(keys);
  EXPECT_EQ(batch.data.size(), 4u);
  EXPECT_EQ(batch.human_labels, 2u);
  EXPECT_EQ(batch.weak_labels, 2u);
}

// --------------------------------------------------------- RetrainWorker ---

nn::Dataset TwoClassData(std::uint64_t seed, std::size_t n) {
  common::Rng rng(seed);
  nn::Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1.0, 1.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    data.Add({x0, x1}, x0 > 0.0 ? 1 : 0);
  }
  return data;
}

TEST(RetrainWorker, TrainsAndPublishesInBackground) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->Publish(MakeModel(7));
  RetrainConfig config;
  config.sgd = {0.1, 0.9, 1e-4, 16, 20};
  RetrainWorker worker(config, registry);
  worker.Submit(TwoClassData(1, 64));
  worker.WaitIdle();
  EXPECT_EQ(registry->version(), 2u);
  EXPECT_EQ(worker.retrains(), 1u);
  EXPECT_EQ(worker.accumulated_rows(), 64u);

  worker.Submit(TwoClassData(2, 32));
  worker.WaitIdle();
  EXPECT_EQ(registry->version(), 3u);
  EXPECT_EQ(worker.accumulated_rows(), 96u);  // labels accumulate

  // The published model actually learned the separable rule.
  EXPECT_GT(nn::Accuracy(*registry->Current().model, TwoClassData(3, 200)),
            0.9);
}

TEST(RetrainWorker, RequiresPretrainedRegistry) {
  auto registry = std::make_shared<ModelRegistry>();
  EXPECT_THROW(RetrainWorker(RetrainConfig{}, registry),
               common::CheckError);
}

// The acceptance criterion's hot-swap assertion: a model swap happens while
// ingestion continues — no Flush-the-world pause. The retrain is gated open
// so it is provably in flight while the service ingests and flushes.
TEST(RetrainWorker, HotSwapsWhileIngestionContinues) {
  auto registry = std::make_shared<ModelRegistry>();
  registry->Publish(MakeModel(7));

  std::atomic<bool> release{false};
  std::atomic<bool> retraining{false};
  RetrainConfig config;
  config.on_retrain_start = [&] {
    retraining.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  RetrainWorker worker(config, registry);

  struct Tick {
    double value = 0.0;
  };
  runtime::RuntimeConfig service_config;
  service_config.workers = 2;
  service_config.window = 8;
  service_config.settle_lag = 1;
  runtime::MonitorService<Tick> service(service_config, [] {
    auto suite = std::make_shared<core::AssertionSuite<Tick>>();
    suite->AddPointwise("positive", [](const Tick& tick) {
      return tick.value > 0.0 ? tick.value : 0.0;
    });
    return runtime::MonitorService<Tick>::SuiteBundle{suite, {}};
  });
  const runtime::StreamId id = service.RegisterStream("live");

  worker.Submit(TwoClassData(1, 64));
  while (!retraining.load()) std::this_thread::yield();

  // Retrain is in flight and paused; ingestion keeps moving regardless.
  for (int batch = 0; batch < 5; ++batch) {
    service.ObserveBatch(id, {Tick{1.0}, Tick{-1.0}, Tick{2.0}});
    service.Flush();
  }
  EXPECT_EQ(service.Metrics().examples_seen, 15u);
  // The old version kept serving throughout — no swap happened mid-train.
  EXPECT_EQ(registry->version(), 1u);

  release.store(true);
  worker.WaitIdle();
  EXPECT_EQ(registry->version(), 2u);  // swap landed without touching ingest
  EXPECT_TRUE(service.Errors().empty());
}

// -------------------------------------------------------- RoundScheduler ---

TEST(RoundScheduler, SkipsBelowMinCandidatesAndRemovesLabeled) {
  auto store = std::make_shared<FlagStore>(FlagStoreConfig{16, 1});
  auto oracle = std::make_shared<GroundTruthOracle>([](const CandidateKey&) {
    nn::Dataset data;
    data.Add({1.0, 0.0}, 1);
    return data;
  });
  RoundConfig config;
  config.budget = 2;
  config.min_candidates = 2;
  RoundScheduler scheduler(config, store,
                           std::make_unique<bandit::RandomStrategy>(), oracle,
                           /*retrain=*/nullptr, /*seed=*/3);

  EXPECT_FALSE(scheduler.RunRound().has_value());  // empty store
  store->Record({0, 0}, 0, 1.0);
  EXPECT_FALSE(scheduler.RunRound().has_value());  // below min_candidates
  EXPECT_TRUE(scheduler.History().empty());

  store->Record({0, 1}, 0, 2.0);
  store->Record({0, 2}, 0, 3.0);
  const auto stats = scheduler.RunRound();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->round, 0u);
  EXPECT_EQ(stats->candidates, 3u);
  EXPECT_EQ(stats->selected, 2u);
  EXPECT_EQ(stats->human_labels, 2u);
  EXPECT_EQ(store->size(), 1u);  // labeled candidates left the pool
  EXPECT_EQ(scheduler.History().size(), 1u);
}

// ------------------------------------------- ImprovementLoop end-to-end ---

/// One scored point as the assertion layer sees it.
struct Point {
  std::vector<double> features;
  std::size_t predicted = 0;
};

bool TrueClass(const std::vector<double>& features) {
  return features[0] > 0.0;
}

/// Pretrains on the corrupted rule sign(x0 + x1): systematic errors in the
/// wedges where sign(x0) != sign(x0 + x1).
nn::Mlp PretrainCorrupted(std::uint64_t seed) {
  common::Rng rng(seed);
  nn::Dataset data;
  for (std::size_t i = 0; i < 400; ++i) {
    const double x0 = rng.Uniform(-1.0, 1.0);
    const double x1 = rng.Uniform(-1.0, 1.0);
    data.Add({x0, x1}, x0 + x1 > 0.0 ? 1 : 0);
  }
  common::Rng model_rng(seed ^ 0xABCDULL);
  nn::Mlp model({2, {8}, 2}, model_rng);
  nn::SoftmaxTrainer trainer({0.1, 0.9, 1e-4, 32, 30});
  common::Rng train_rng(seed + 1);
  trainer.Train(model, data, train_rng);
  return model;
}

TEST(ImprovementLoop, ReducesFlaggedRateAcrossLiveBalRounds) {
  ImprovementLoopConfig config;
  config.assertion_names = {"disagree"};
  config.store.capacity = 256;
  config.round.budget = 40;
  config.round.min_candidates = 1;
  config.retrain.sgd = {0.08, 0.9, 1e-4, 32, 30};
  config.retrain.replay_weight = 0.0;  // pretrain labels are the corruption
  config.seed = 11;

  std::vector<Point> points;  // retained live traffic, index = candidate key
  auto oracle =
      std::make_shared<GroundTruthOracle>([&points](const CandidateKey& key) {
        nn::Dataset data;
        const Point& point = points.at(key.example_index);
        data.Add(point.features, TrueClass(point.features) ? 1 : 0);
        return data;
      });
  ImprovementLoop loop(
      config,
      std::make_unique<bandit::BalStrategy>(
          bandit::BalConfig{}, std::make_unique<bandit::RandomStrategy>()),
      oracle, PretrainCorrupted(5));

  runtime::RuntimeConfig service_config;
  service_config.workers = 2;
  service_config.window = 16;
  service_config.settle_lag = 1;
  runtime::MonitorService<Point> service(service_config, [] {
    auto suite = std::make_shared<core::AssertionSuite<Point>>();
    suite->AddPointwise("disagree", [](const Point& point) {
      const bool truth = TrueClass(point.features);
      const bool agree = (point.predicted == 1) == truth;
      return agree ? 0.0 : 0.5 + std::abs(point.features[0]);
    });
    return runtime::MonitorService<Point>::SuiteBundle{suite, {}};
  });
  service.AddSink(loop.sink());
  const runtime::StreamId id = service.RegisterStream("live");

  common::Rng traffic(99);
  const std::size_t kRounds = 4;
  const std::size_t kPerRound = 300;
  std::vector<double> flagged_rate;
  std::uint64_t version_at_round0 = loop.registry().version();
  std::size_t events_before = 0;
  std::size_t examples_before = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Score this round's fresh traffic with the *current* model version —
    // the hot-swap pickup point — and serve it in batches.
    const ModelHandle handle = loop.registry().Current();
    std::vector<Point> batch;
    for (std::size_t i = 0; i < kPerRound; ++i) {
      Point point;
      point.features = {traffic.Uniform(-1.0, 1.0),
                        traffic.Uniform(-1.0, 1.0)};
      point.predicted = handle.model->Predict(point.features);
      points.push_back(point);
      batch.push_back(std::move(point));
    }
    service.ObserveBatch(id, std::move(batch));
    service.Flush();

    const runtime::MetricsSnapshot snapshot = service.Metrics();
    flagged_rate.push_back(
        static_cast<double>(snapshot.events - events_before) /
        static_cast<double>(snapshot.examples_seen - examples_before));
    events_before = snapshot.events;
    examples_before = snapshot.examples_seen;

    const auto stats = loop.RunRound();
    ASSERT_TRUE(stats.has_value());
    EXPECT_GT(stats->selected, 0u);
    loop.WaitForRetrains();  // next round serves the new version
  }
  EXPECT_TRUE(service.Errors().empty());

  // The model was hot-swapped at least once per round, while the service
  // instance kept ingesting (it was never flushed-to-death or rebuilt).
  EXPECT_GE(loop.registry().version(), version_at_round0 + kRounds);
  ASSERT_EQ(loop.History().size(), kRounds);

  // Closing the loop online cuts the flagged rate: the corrupted boundary's
  // wedge errors get labeled and trained away.
  EXPECT_GT(flagged_rate.front(), 0.1);  // corruption visibly fires
  EXPECT_LT(flagged_rate.back(), 0.5 * flagged_rate.front());
}

TEST(ImprovementLoop, TimerDrivenRoundsRun) {
  ImprovementLoopConfig config;
  config.assertion_names = {"a"};
  config.round.budget = 1;
  std::atomic<std::size_t> labeled{0};
  auto oracle =
      std::make_shared<GroundTruthOracle>([&](const CandidateKey&) {
        ++labeled;
        nn::Dataset data;
        data.Add({0.0, 0.0}, 0);
        return data;
      });
  ImprovementLoop loop(config, std::make_unique<bandit::RandomStrategy>(),
                       oracle, MakeModel(1));
  loop.store().Record({0, 0}, 0, 1.0);
  loop.Start(std::chrono::milliseconds(2));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (labeled.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  loop.Stop();
  loop.WaitForRetrains();
  EXPECT_GE(labeled.load(), 1u);
  EXPECT_GE(loop.registry().version(), 2u);
}

}  // namespace
}  // namespace omg::loop
