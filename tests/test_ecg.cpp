#include <gtest/gtest.h>

#include <map>

#include "ecg/ecg.hpp"
#include "ecg/pipeline.hpp"

namespace omg::ecg {
namespace {

TEST(EcgGenerator, DwellTimesRespectGuideline) {
  EcgGenerator generator(EcgConfig{}, 1);
  const auto windows = generator.GenerateRecords(30);
  // Within each record, count consecutive same-truth runs; every completed
  // run must span >= 30 s (the ESC guideline built into the generator).
  std::map<std::string, std::vector<std::pair<Rhythm, std::size_t>>> runs;
  for (const auto& w : windows) {
    auto& record_runs = runs[w.record];
    if (record_runs.empty() || record_runs.back().first != w.truth) {
      record_runs.push_back({w.truth, 1});
    } else {
      ++record_runs.back().second;
    }
  }
  const double window_s = EcgConfig{}.window_seconds;
  for (const auto& [record, record_runs] : runs) {
    for (std::size_t i = 0; i + 1 < record_runs.size(); ++i) {
      if (i == 0) continue;  // first run may be truncated at record start
      EXPECT_GE(static_cast<double>(record_runs[i].second) * window_s, 30.0)
          << "record " << record;
    }
  }
}

TEST(EcgGenerator, Deterministic) {
  EcgGenerator a(EcgConfig{}, 5), b(EcgConfig{}, 5);
  const auto wa = a.GenerateRecords(3);
  const auto wb = b.GenerateRecords(3);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].features, wb[i].features);
    EXPECT_EQ(wa[i].truth, wb[i].truth);
  }
}

TEST(EcgGenerator, HardRecordFractionRoughlyRespected) {
  EcgConfig config;
  config.frac_hard_records = 0.4;
  EcgGenerator generator(config, 6);
  const auto windows = generator.GenerateRecords(200);
  std::map<std::string, bool> record_hard;
  for (const auto& w : windows) record_hard[w.record] = w.hard_record;
  std::size_t hard = 0;
  for (const auto& [_, is_hard] : record_hard) hard += is_hard ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hard) / 200.0, 0.4, 0.1);
}

TEST(EcgGenerator, RejectsSubGuidelineDwell) {
  EcgConfig config;
  config.mean_dwell_seconds = 10.0;
  EXPECT_THROW(EcgGenerator(config, 1), common::CheckError);
}

TEST(RhythmNames, Distinct) {
  EXPECT_EQ(RhythmName(Rhythm::kNormal), "normal");
  EXPECT_EQ(RhythmName(Rhythm::kAf), "af");
  EXPECT_EQ(RhythmName(Rhythm::kOther), "other");
}

TEST(EcgSuiteTest, FiresOnOscillation) {
  EcgSuite suite = BuildEcgSuite(30.0);
  std::vector<EcgExample> examples;
  // N N N N A N N N N at 10 s windows: the single-window A episode spans
  // 20 s between absences -> fires.
  for (std::size_t i = 0; i < 9; ++i) {
    examples.push_back(EcgExample{
        "r0", static_cast<double>(i) * 10.0,
        i == 4 ? Rhythm::kAf : Rhythm::kNormal});
  }
  const core::SeverityMatrix m = suite.suite.CheckAll(examples);
  EXPECT_TRUE(m.Fired(4, 0));
  EXPECT_FALSE(m.Fired(3, 0));
}

TEST(EcgSuiteTest, StablePredictionsDoNotFire) {
  EcgSuite suite = BuildEcgSuite(30.0);
  std::vector<EcgExample> examples;
  for (std::size_t i = 0; i < 12; ++i) {
    examples.push_back(EcgExample{
        "r0", static_cast<double>(i) * 10.0,
        i < 6 ? Rhythm::kNormal : Rhythm::kAf});
  }
  const core::SeverityMatrix m = suite.suite.CheckAll(examples);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_FALSE(m.Fired(i, 0));
}

TEST(EcgSuiteTest, LongEpisodeDoesNotFire) {
  EcgSuite suite = BuildEcgSuite(30.0);
  std::vector<EcgExample> examples;
  // N N N A A A A N N N: the A episode spans 50 s between absences.
  for (std::size_t i = 0; i < 10; ++i) {
    examples.push_back(EcgExample{
        "r0", static_cast<double>(i) * 10.0,
        (i >= 3 && i <= 6) ? Rhythm::kAf : Rhythm::kNormal});
  }
  const core::SeverityMatrix m = suite.suite.CheckAll(examples);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(m.Fired(i, 0));
}

TEST(EcgSuiteTest, RecordsDoNotBleedAcrossPatients) {
  EcgSuite suite = BuildEcgSuite(30.0);
  std::vector<EcgExample> examples;
  // Patient r0 ends predicting AF; patient r1 starts predicting normal —
  // no oscillation exists within either record.
  for (std::size_t i = 0; i < 6; ++i) {
    examples.push_back(
        EcgExample{"r0", static_cast<double>(i) * 10.0, Rhythm::kAf});
  }
  for (std::size_t i = 0; i < 6; ++i) {
    examples.push_back(
        EcgExample{"r1", static_cast<double>(i) * 10.0, Rhythm::kNormal});
  }
  const core::SeverityMatrix m = suite.suite.CheckAll(examples);
  for (std::size_t i = 0; i < examples.size(); ++i) {
    EXPECT_FALSE(m.Fired(i, 0));
  }
}

EcgPipelineConfig SmallPipelineConfig() {
  EcgPipelineConfig config;
  config.pool_records = 30;
  config.test_records = 15;
  config.pretrain_windows = 500;
  return config;
}

class EcgPipelineTest : public ::testing::Test {
 protected:
  EcgPipelineTest() : pipeline_(SmallPipelineConfig()) {}
  EcgPipeline pipeline_;
};

TEST_F(EcgPipelineTest, PretrainedAccuracyAboveChanceBelowCeiling) {
  const double acc = pipeline_.Evaluate();
  EXPECT_GT(acc, 1.0 / 3.0 + 0.1);
  EXPECT_LT(acc, 0.95);
}

TEST_F(EcgPipelineTest, AssertionFiresOnPretrainedModel) {
  const core::SeverityMatrix m = pipeline_.ComputeSeverities();
  EXPECT_GT(m.FireCounts()[0], 0u)
      << "hard records should make predictions oscillate";
}

TEST_F(EcgPipelineTest, OscillationsConcentrateOnHardRecords) {
  const core::SeverityMatrix m = pipeline_.ComputeSeverities();
  std::size_t hard_fired = 0, clean_fired = 0;
  for (const std::size_t e : m.FlaggedExamples()) {
    if (pipeline_.pool()[e].hard_record) {
      ++hard_fired;
    } else {
      ++clean_fired;
    }
  }
  EXPECT_GT(hard_fired, clean_fired);
}

TEST_F(EcgPipelineTest, LabelingFlaggedWindowsImprovesAccuracy) {
  const double before = pipeline_.Evaluate();
  const core::SeverityMatrix m = pipeline_.ComputeSeverities();
  auto flagged = m.FlaggedExamples();
  if (flagged.size() > 120) flagged.resize(120);
  pipeline_.LabelAndTrain(flagged);
  EXPECT_GT(pipeline_.Evaluate(), before);
}

TEST(EcgWeakSupervision, ImprovesAccuracyAtExperimentScale) {
  // The ECG weak-supervision effect is small (the paper reports 70.7 ->
  // 72.1); at the tiny fixture scale only a handful of trusted corrections
  // exist and noise dominates, so this test runs the experiment-sized
  // configuration.
  EcgPipelineConfig config;
  config.pool_records = 80;
  config.test_records = 30;
  config.pretrain_windows = 700;
  EcgPipeline pipeline(config);
  const auto result = RunEcgWeakSupervision(pipeline, 1000, 11);
  EXPECT_GT(result.weak_positives, 5u);
  EXPECT_GE(result.weakly_supervised_metric, result.pretrained_metric);
}

TEST_F(EcgPipelineTest, PrecisionIsHigh) {
  const auto samples = MeasureEcgAssertionPrecision(pipeline_, 50, 3);
  ASSERT_EQ(samples.size(), 1u);
  ASSERT_GT(samples[0].sampled, 0u);
  EXPECT_GT(static_cast<double>(samples[0].correct_model_output) /
                static_cast<double>(samples[0].sampled),
            0.9);
}

}  // namespace
}  // namespace omg::ecg
