#include <gtest/gtest.h>

#include "av/assertions.hpp"
#include "av/pipeline.hpp"
#include "av/world.hpp"

namespace omg::av {
namespace {

AvWorldConfig SmallWorld() { return AvWorldConfig{}; }

TEST(AvWorld, DeterministicGivenSeed) {
  AvWorld a(SmallWorld(), 7), b(SmallWorld(), 7);
  const auto sa = a.GenerateScenes(2);
  const auto sb = b.GenerateScenes(2);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].proposals.size(), sb[i].proposals.size());
    EXPECT_EQ(sa[i].lidar_boxes.size(), sb[i].lidar_boxes.size());
  }
}

TEST(AvWorld, SceneStructure) {
  AvWorld world(SmallWorld(), 8);
  const auto samples = world.GenerateScenes(3);
  EXPECT_EQ(samples.size(), 3u * SmallWorld().samples_per_scene);
  // Samples of one scene share the scene name; consecutive scenes differ.
  EXPECT_EQ(samples[0].scene, samples[1].scene);
  EXPECT_NE(samples[0].scene,
            samples[SmallWorld().samples_per_scene].scene);
}

TEST(AvWorld, TruthsConsistentAcrossSpaces) {
  AvWorld world(SmallWorld(), 9);
  for (const auto& sample : world.GenerateScenes(2)) {
    EXPECT_EQ(sample.truths_3d.size(), sample.truths_2d.size());
    EXPECT_EQ(sample.truths_3d.size(), sample.truth_ids.size());
    for (const auto& t2 : sample.truths_2d) {
      EXPECT_TRUE(t2.box.Valid());
    }
  }
}

TEST(AvWorld, SampleTimestampsAdvanceAtRate) {
  AvWorld world(SmallWorld(), 10);
  const auto samples = world.GenerateScenes(1);
  EXPECT_NEAR(samples[1].timestamp - samples[0].timestamp,
              1.0 / SmallWorld().sample_hz, 1e-9);
}

TEST(AvWorld, VehicleProposalsOverlapTruth) {
  AvWorld world(SmallWorld(), 11);
  for (const auto& sample : world.GenerateScenes(2)) {
    for (const auto& proposal : sample.proposals) {
      if (!proposal.is_vehicle) continue;
      bool overlaps = false;
      for (std::size_t t = 0; t < sample.truths_2d.size(); ++t) {
        if (sample.truth_ids[t] == proposal.truth_id &&
            geometry::Iou(proposal.box, sample.truths_2d[t].box) > 0.4) {
          overlaps = true;
        }
      }
      EXPECT_TRUE(overlaps);
    }
  }
}

TEST(AgreeSeverity, ZeroWhenModelsAgree) {
  AvExample example;
  example.camera.push_back(
      {geometry::Box2D{100, 100, 200, 200}, "car", 0.9, 0});
  example.lidar_projected.push_back(geometry::Box2D{105, 105, 205, 205});
  EXPECT_DOUBLE_EQ(AgreeSeverity(example, 0.2), 0.0);
}

TEST(AgreeSeverity, CountsBothDirections) {
  AvExample example;
  // A camera box with no LIDAR counterpart and a LIDAR box with no camera
  // counterpart: two disagreements.
  example.camera.push_back(
      {geometry::Box2D{100, 100, 200, 200}, "car", 0.9, 0});
  example.lidar_projected.push_back(geometry::Box2D{600, 600, 700, 700});
  EXPECT_DOUBLE_EQ(AgreeSeverity(example, 0.2), 2.0);
}

TEST(AgreeSeverity, InvalidProjectionsIgnored) {
  AvExample example;
  example.lidar_projected.push_back(geometry::Box2D{});  // behind camera
  EXPECT_DOUBLE_EQ(AgreeSeverity(example, 0.2), 0.0);
}

TEST(AgreeSeverity, EmptySampleAbstains) {
  EXPECT_DOUBLE_EQ(AgreeSeverity(AvExample{}, 0.2), 0.0);
}

TEST(AvSuiteTest, ColumnOrder) {
  AvSuite suite = BuildAvSuite();
  EXPECT_EQ(suite.suite.Names(),
            (std::vector<std::string>{"agree", "multibox"}));
}

AvPipelineConfig SmallPipelineConfig() {
  AvPipelineConfig config;
  config.pool_scenes = 4;
  config.test_scenes = 2;
  return config;
}

class AvPipelineTest : public ::testing::Test {
 protected:
  AvPipelineTest() : pipeline_(SmallPipelineConfig()) {}
  AvPipeline pipeline_;
};

TEST_F(AvPipelineTest, PretrainedCameraIsWeak) {
  const double map = pipeline_.Evaluate();
  EXPECT_GT(map, 0.05);
  EXPECT_LT(map, 0.9);
}

TEST_F(AvPipelineTest, AgreeFiresOnPretrainedModel) {
  const core::SeverityMatrix m = pipeline_.ComputeSeverities();
  EXPECT_GT(m.FireCounts()[pipeline_.suite().agree_index], 0u);
}

TEST_F(AvPipelineTest, LabelingFlaggedSamplesImprovesMap) {
  const double before = pipeline_.Evaluate();
  const core::SeverityMatrix m = pipeline_.ComputeSeverities();
  auto flagged = m.ExamplesFiring(pipeline_.suite().agree_index);
  if (flagged.size() > 50) flagged.resize(50);
  pipeline_.LabelAndTrain(flagged);
  EXPECT_GT(pipeline_.Evaluate(), before);
}

TEST_F(AvPipelineTest, WeakSupervisionImprovesMap) {
  const auto result = RunAvWeakSupervision(pipeline_, 120, 5);
  EXPECT_GT(result.weak_positives, 0u);
  EXPECT_GT(result.weakly_supervised_metric, result.pretrained_metric);
}

TEST_F(AvPipelineTest, AgreePrecisionIsHigh) {
  const auto samples = MeasureAvAssertionPrecision(pipeline_, 50, 3);
  ASSERT_EQ(samples.size(), 2u);
  const auto& agree = samples[0];
  ASSERT_GT(agree.sampled, 0u);
  EXPECT_GT(static_cast<double>(agree.correct_model_output) /
                static_cast<double>(agree.sampled),
            0.8);
}

TEST_F(AvPipelineTest, ExamplesCarryProjections) {
  const auto examples = pipeline_.MakeExamples(
      std::span<const AvSample>(pipeline_.pool().data(), 5));
  for (const auto& example : examples) {
    EXPECT_EQ(example.lidar_projected.size(),
              pipeline_.pool()[example.sample_index].lidar_boxes.size());
  }
}

}  // namespace
}  // namespace omg::av
