#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "geometry/box.hpp"
#include "geometry/tracker.hpp"

namespace omg::geometry {
namespace {

Box2D MakeBox(double x, double y, double w, double h) {
  return Box2D{x, y, x + w, y + h};
}

TEST(Box2D, AreaAndValidity) {
  EXPECT_DOUBLE_EQ(MakeBox(0, 0, 2, 3).Area(), 6.0);
  EXPECT_FALSE(Box2D{}.Valid());
  EXPECT_DOUBLE_EQ((Box2D{5, 5, 5, 5}).Area(), 0.0);
  EXPECT_DOUBLE_EQ((Box2D{5, 5, 4, 6}).Area(), 0.0);  // inverted
}

TEST(Box2D, Center) {
  const Box2D b = MakeBox(0, 0, 4, 2);
  EXPECT_DOUBLE_EQ(b.CenterX(), 2.0);
  EXPECT_DOUBLE_EQ(b.CenterY(), 1.0);
}

TEST(Box2D, Translated) {
  const Box2D b = MakeBox(1, 1, 2, 2).Translated(3, -1);
  EXPECT_DOUBLE_EQ(b.x_min, 4.0);
  EXPECT_DOUBLE_EQ(b.y_min, 0.0);
}

TEST(Box2D, UnionContainsBoth) {
  const Box2D u = MakeBox(0, 0, 1, 1).Union(MakeBox(5, 5, 1, 1));
  EXPECT_DOUBLE_EQ(u.x_min, 0.0);
  EXPECT_DOUBLE_EQ(u.x_max, 6.0);
}

TEST(Iou, IdenticalBoxesIsOne) {
  const Box2D b = MakeBox(1, 2, 3, 4);
  EXPECT_DOUBLE_EQ(Iou(b, b), 1.0);
}

TEST(Iou, DisjointBoxesIsZero) {
  EXPECT_DOUBLE_EQ(Iou(MakeBox(0, 0, 1, 1), MakeBox(2, 2, 1, 1)), 0.0);
}

TEST(Iou, TouchingBoxesIsZero) {
  EXPECT_DOUBLE_EQ(Iou(MakeBox(0, 0, 1, 1), MakeBox(1, 0, 1, 1)), 0.0);
}

TEST(Iou, HalfOverlapHandComputed) {
  // Boxes of area 4, intersection 2 -> IoU = 2/6.
  EXPECT_NEAR(Iou(MakeBox(0, 0, 2, 2), MakeBox(1, 0, 2, 2)), 2.0 / 6.0,
              1e-12);
}

TEST(Iou, SymmetricAndBounded) {
  common::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Box2D a = MakeBox(rng.Uniform(0, 10), rng.Uniform(0, 10),
                            rng.Uniform(0.1, 5), rng.Uniform(0.1, 5));
    const Box2D b = MakeBox(rng.Uniform(0, 10), rng.Uniform(0, 10),
                            rng.Uniform(0.1, 5), rng.Uniform(0.1, 5));
    const double iou = Iou(a, b);
    EXPECT_DOUBLE_EQ(iou, Iou(b, a));
    EXPECT_GE(iou, 0.0);
    EXPECT_LE(iou, 1.0);
  }
}

TEST(Coverage, ContainedBoxFullyCovered) {
  EXPECT_DOUBLE_EQ(Coverage(MakeBox(1, 1, 1, 1), MakeBox(0, 0, 4, 4)), 1.0);
  EXPECT_DOUBLE_EQ(Coverage(MakeBox(0, 0, 4, 4), MakeBox(1, 1, 1, 1)),
                   1.0 / 16.0);
}

TEST(MeanBox, AveragesCoordinates) {
  const std::vector<Box2D> boxes = {MakeBox(0, 0, 2, 2), MakeBox(2, 2, 2, 2)};
  const Box2D mean = MeanBox(boxes);
  EXPECT_DOUBLE_EQ(mean.x_min, 1.0);
  EXPECT_DOUBLE_EQ(mean.x_max, 3.0);
}

TEST(Camera, CenterProjectsToImageCenter) {
  Camera camera;
  double u, v;
  camera.Project(0.0, 0.0, 10.0, u, v);
  EXPECT_DOUBLE_EQ(u, camera.image_width / 2.0);
  EXPECT_DOUBLE_EQ(v, camera.image_height / 2.0);
}

TEST(Camera, FartherObjectsProjectSmaller) {
  Camera camera;
  Box3D near{0, 0, 10, 2, 2, 4};
  Box3D far{0, 0, 40, 2, 2, 4};
  const Box2D near2 = camera.ProjectBox(near);
  const Box2D far2 = camera.ProjectBox(far);
  EXPECT_GT(near2.Area(), far2.Area());
  EXPECT_GT(far2.Area(), 0.0);
}

TEST(Camera, ObjectBehindCameraIsInvalid) {
  Camera camera;
  EXPECT_FALSE(camera.ProjectBox(Box3D{0, 0, -5, 2, 2, 4}).Valid());
}

TEST(Camera, OffscreenObjectIsInvalid) {
  Camera camera;
  EXPECT_FALSE(camera.ProjectBox(Box3D{1000, 0, 10, 2, 2, 4}).Valid());
}

TEST(Camera, LateralOffsetMovesProjection) {
  Camera camera;
  const Box2D left = camera.ProjectBox(Box3D{-3, 0, 15, 2, 2, 4});
  const Box2D right = camera.ProjectBox(Box3D{3, 0, 15, 2, 2, 4});
  EXPECT_LT(left.CenterX(), right.CenterX());
}

TEST(Camera, ProjectRequiresPositiveDepth) {
  Camera camera;
  double u, v;
  EXPECT_THROW(camera.Project(0, 0, 0.0, u, v), common::CheckError);
}

TEST(Nms, KeepsHighestConfidence) {
  std::vector<Detection> dets;
  dets.push_back({MakeBox(0, 0, 2, 2), "car", 0.6, 0});
  dets.push_back({MakeBox(0.1, 0, 2, 2), "car", 0.9, 1});
  const auto kept = Nms(std::move(dets), 0.5);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].confidence, 0.9);
}

TEST(Nms, KeepsDisjointBoxes) {
  std::vector<Detection> dets;
  dets.push_back({MakeBox(0, 0, 2, 2), "car", 0.6, 0});
  dets.push_back({MakeBox(10, 10, 2, 2), "car", 0.9, 1});
  EXPECT_EQ(Nms(std::move(dets), 0.5).size(), 2u);
}

TEST(Nms, DifferentLabelsNotSuppressed) {
  std::vector<Detection> dets;
  dets.push_back({MakeBox(0, 0, 2, 2), "car", 0.6, 0});
  dets.push_back({MakeBox(0, 0, 2, 2), "person", 0.9, 1});
  EXPECT_EQ(Nms(std::move(dets), 0.5).size(), 2u);
}

TEST(Nms, OutputSortedByConfidence) {
  std::vector<Detection> dets;
  dets.push_back({MakeBox(0, 0, 2, 2), "car", 0.3, 0});
  dets.push_back({MakeBox(10, 0, 2, 2), "car", 0.9, 1});
  dets.push_back({MakeBox(20, 0, 2, 2), "car", 0.6, 2});
  const auto kept = Nms(std::move(dets), 0.5);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_GE(kept[0].confidence, kept[1].confidence);
  EXPECT_GE(kept[1].confidence, kept[2].confidence);
}

TEST(Tracker, PersistsIdAcrossOverlappingFrames) {
  IouTracker tracker;
  std::vector<Detection> frame1 = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0}};
  std::vector<Detection> frame2 = {{MakeBox(1, 0, 10, 10), "car", 0.9, 0}};
  const auto t1 = tracker.Update(frame1);
  const auto t2 = tracker.Update(frame2);
  ASSERT_EQ(t1.size(), 1u);
  ASSERT_EQ(t2.size(), 1u);
  EXPECT_EQ(t1[0].track_id, t2[0].track_id);
}

TEST(Tracker, NewObjectGetsNewId) {
  IouTracker tracker;
  std::vector<Detection> frame1 = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0}};
  std::vector<Detection> frame2 = {
      {MakeBox(1, 0, 10, 10), "car", 0.9, 0},
      {MakeBox(100, 100, 10, 10), "car", 0.9, 1}};
  tracker.Update(frame1);
  const auto t2 = tracker.Update(frame2);
  ASSERT_EQ(t2.size(), 2u);
  EXPECT_NE(t2[0].track_id, t2[1].track_id);
}

TEST(Tracker, CoastsThroughShortGap) {
  IouTracker tracker(TrackerConfig{0.3, 2});
  std::vector<Detection> present = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0}};
  std::vector<Detection> empty;
  const auto t1 = tracker.Update(present);
  tracker.Update(empty);  // one-frame gap
  const auto t3 = tracker.Update(present);
  EXPECT_EQ(t1[0].track_id, t3[0].track_id);
}

TEST(Tracker, RetiresAfterLongGap) {
  IouTracker tracker(TrackerConfig{0.3, 1});
  std::vector<Detection> present = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0}};
  std::vector<Detection> empty;
  const auto t1 = tracker.Update(present);
  tracker.Update(empty);
  tracker.Update(empty);
  tracker.Update(empty);
  const auto t5 = tracker.Update(present);
  EXPECT_NE(t1[0].track_id, t5[0].track_id);
}

TEST(Tracker, GreedyPrefersHigherIou) {
  IouTracker tracker;
  std::vector<Detection> frame1 = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0},
                                   {MakeBox(20, 0, 10, 10), "car", 0.9, 1}};
  const auto t1 = tracker.Update(frame1);
  // Both detections move slightly; association must follow geometry.
  std::vector<Detection> frame2 = {{MakeBox(21, 0, 10, 10), "car", 0.9, 1},
                                   {MakeBox(1, 0, 10, 10), "car", 0.9, 0}};
  const auto t2 = tracker.Update(frame2);
  EXPECT_EQ(t2[0].track_id, t1[1].track_id);
  EXPECT_EQ(t2[1].track_id, t1[0].track_id);
}

TEST(Tracker, ResetClearsState) {
  IouTracker tracker;
  std::vector<Detection> present = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0}};
  tracker.Update(present);
  tracker.Reset();
  EXPECT_EQ(tracker.TrackCount(), 0);
  const auto t = tracker.Update(present);
  EXPECT_EQ(t[0].track_id, 0);
}

// Property sweep: NMS output never contains two same-label boxes above the
// suppression threshold.
class NmsProperty : public ::testing::TestWithParam<double> {};

TEST_P(NmsProperty, NoResidualOverlap) {
  const double threshold = GetParam();
  common::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Detection> dets;
    for (int i = 0; i < 25; ++i) {
      dets.push_back({MakeBox(rng.Uniform(0, 50), rng.Uniform(0, 50),
                              rng.Uniform(5, 15), rng.Uniform(5, 15)),
                      "car", rng.Uniform(), i});
    }
    const auto kept = Nms(std::move(dets), threshold);
    for (std::size_t i = 0; i < kept.size(); ++i) {
      for (std::size_t j = i + 1; j < kept.size(); ++j) {
        EXPECT_LE(Iou(kept[i].box, kept[j].box), threshold);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, NmsProperty,
                         ::testing::Values(0.3, 0.5, 0.7));

}  // namespace
}  // namespace omg::geometry
