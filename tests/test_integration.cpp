// Cross-module integration tests: full deployment flows through the public
// API, spanning simulator -> model -> assertions -> monitoring / selection
// / weak supervision, plus the report layer.
#include <gtest/gtest.h>

#include <set>

#include "bandit/bal.hpp"
#include "bandit/ccmab.hpp"
#include "core/monitor.hpp"
#include "core/report.hpp"
#include "ecg/pipeline.hpp"
#include "video/pipeline.hpp"

namespace omg {
namespace {

video::VideoPipelineConfig SmallVideoConfig() {
  video::VideoPipelineConfig config;
  config.pool_frames = 200;
  config.test_frames = 60;
  config.pretrain_positives = 300;
  config.pretrain_negatives = 400;
  return config;
}

TEST(Integration, MonitorAndBatchAgreeOnFirings) {
  // The streaming monitor over the deployed stream must emit exactly the
  // firings the batch suite reports for settled examples (the monitor's
  // windowed view can only miss long-range retroactive effects, which the
  // chosen window is large enough to contain).
  video::VideoPipeline pipeline(SmallVideoConfig());
  const auto examples = pipeline.MakeExamples(pipeline.pool());

  video::VideoSuite batch_suite = video::BuildVideoSuite();
  const core::SeverityMatrix batch = batch_suite.suite.CheckAll(examples);

  video::VideoSuite stream_suite = video::BuildVideoSuite();
  core::StreamingMonitor<video::VideoExample> monitor(stream_suite.suite,
                                                      /*window=*/40,
                                                      /*settle_lag=*/10);
  std::set<std::pair<std::size_t, std::string>> streamed;
  monitor.OnEvent([&](const core::MonitorEvent& event) {
    streamed.insert({event.example_index, event.assertion});
  });
  for (const auto& example : examples) {
    stream_suite.consistency->Invalidate();
    monitor.Observe(example);
  }

  // Every batch firing in the settled region must have been streamed.
  const auto names = batch_suite.suite.Names();
  std::size_t batch_fired = 0;
  for (std::size_t e = 0; e + 10 < examples.size(); ++e) {
    if (e < 40) continue;  // ramp-up region: window semantics differ
    for (std::size_t a = 0; a < names.size(); ++a) {
      if (!batch.Fired(e, a)) continue;
      // Temporal assertions evaluated over the full stream can fire on
      // gaps longer than the monitor's window view; only same-window
      // phenomena must match. All our video assertions act within a
      // 1-second (5-frame) horizon, well inside the window.
      ++batch_fired;
      EXPECT_TRUE(streamed.contains({e, names[a]}))
          << "missed " << names[a] << " at " << e;
    }
  }
  EXPECT_GT(batch_fired, 0u);
}

TEST(Integration, ReportSummariesMatchMatrix) {
  video::VideoPipeline pipeline(SmallVideoConfig());
  const core::SeverityMatrix matrix = pipeline.ComputeSeverities();
  const auto names = pipeline.suite().suite.Names();
  const auto summaries = core::Summarize(matrix, names);
  ASSERT_EQ(summaries.size(), names.size());
  const auto counts = matrix.FireCounts();
  for (std::size_t a = 0; a < names.size(); ++a) {
    EXPECT_EQ(summaries[a].examples_fired, counts[a]);
    EXPECT_EQ(summaries[a].assertion, names[a]);
    if (counts[a] > 0) {
      EXPECT_GT(summaries[a].max_severity, 0.0);
      EXPECT_GT(summaries[a].mean_severity, 0.0);
      EXPECT_LE(summaries[a].mean_severity, summaries[a].max_severity);
    }
  }
  const std::string rendered = core::RenderSummaries(summaries);
  for (const auto& name : names) {
    EXPECT_NE(rendered.find(name), std::string::npos);
  }
}

TEST(Integration, FullActiveLearningLoopIsDeterministic) {
  auto run = [] {
    video::VideoPipeline pipeline(SmallVideoConfig());
    bandit::BalStrategy bal(bandit::BalConfig{},
                            std::make_unique<bandit::RandomStrategy>());
    return bandit::RunActiveLearning(pipeline, bal, 2, 15, 99)
        .metric_per_round;
  };
  EXPECT_EQ(run(), run());
}

TEST(Integration, StrategiesNeverShareLabelsAcrossRounds) {
  video::VideoPipeline pipeline(SmallVideoConfig());
  bandit::UniformAssertionStrategy strategy;
  common::Rng rng(3);
  std::vector<std::size_t> labeled;
  for (std::size_t round = 0; round < 3; ++round) {
    const core::SeverityMatrix severities = pipeline.ComputeSeverities();
    const auto confidences = pipeline.Confidences();
    bandit::RoundContext context;
    context.severities = &severities;
    context.confidences = confidences;
    context.round = round;
    context.already_labeled = labeled;
    const auto picked = strategy.Select(context, 20, rng);
    for (const auto p : picked) {
      EXPECT_EQ(std::count(labeled.begin(), labeled.end(), p), 0);
    }
    labeled.insert(labeled.end(), picked.begin(), picked.end());
    pipeline.LabelAndTrain(picked);
  }
  const std::set<std::size_t> unique(labeled.begin(), labeled.end());
  EXPECT_EQ(unique.size(), labeled.size());
}

TEST(Integration, WeakSupervisionThenActiveLearningCompose) {
  // The two improvement mechanisms are complementary: weak supervision
  // first, then a round of assertion-driven labeling, should end at or
  // above weak supervision alone.
  video::VideoPipeline pipeline(SmallVideoConfig());
  const auto ws = RunVideoWeakSupervision(pipeline, 60, 20, 5);
  const double after_ws = pipeline.Evaluate();
  EXPECT_NEAR(after_ws, ws.weakly_supervised_metric, 1e-9);

  const core::SeverityMatrix severities = pipeline.ComputeSeverities();
  auto flagged = severities.FlaggedExamples();
  if (flagged.size() > 40) flagged.resize(40);
  pipeline.LabelAndTrain(flagged);
  EXPECT_GE(pipeline.Evaluate(), after_ws - 0.02);
}

TEST(Integration, EcgMonitorFlagsOscillationsLive) {
  ecg::EcgPipelineConfig config;
  config.pool_records = 20;
  config.test_records = 8;
  config.pretrain_windows = 400;
  ecg::EcgPipeline pipeline(config);
  const auto examples = pipeline.MakeExamples(pipeline.pool());

  ecg::EcgSuite suite = ecg::BuildEcgSuite(30.0);
  // Window must cover a full record so record-boundary semantics hold.
  core::StreamingMonitor<ecg::EcgExample> monitor(
      suite.suite, config.generator.windows_per_record + 4, 6);
  std::size_t events = 0;
  monitor.OnEvent([&](const core::MonitorEvent& event) {
    EXPECT_EQ(event.assertion, "ECG");
    ++events;
  });
  for (const auto& example : examples) {
    suite.consistency->Invalidate();
    monitor.Observe(example);
  }
  EXPECT_GT(events, 0u);
  EXPECT_EQ(monitor.stats().events_emitted, events);
}

TEST(Integration, SeverityContextsFeedCcMabDirectly) {
  // The severity matrix rows are valid CC-MAB contexts once normalised —
  // the exact coupling §3 describes before simplifying to BAL.
  video::VideoPipeline pipeline(SmallVideoConfig());
  const core::SeverityMatrix severities = pipeline.ComputeSeverities();
  double max_severity = 1e-9;
  for (std::size_t e = 0; e < severities.num_examples(); ++e) {
    for (const double s : severities.Context(e)) {
      max_severity = std::max(max_severity, s);
    }
  }
  std::vector<std::vector<double>> contexts;
  for (std::size_t e = 0; e < severities.num_examples(); ++e) {
    const auto row = severities.Context(e);
    std::vector<double> context(row.begin(), row.end());
    for (double& v : context) v /= max_severity;
    contexts.push_back(std::move(context));
  }
  bandit::CcMab mab(severities.num_assertions(), bandit::CcMabConfig{});
  common::Rng rng(4);
  const auto picked = mab.SelectArms(contexts, 10, 1, rng);
  EXPECT_EQ(picked.size(), 10u);
  const std::set<std::size_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), picked.size());
}

}  // namespace
}  // namespace omg
