#include "common/check.hpp"

#include <gtest/gtest.h>

namespace omg::common {
namespace {

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(Check(true)); }

TEST(Check, ThrowsOnFalse) { EXPECT_THROW(Check(false), CheckError); }

TEST(Check, MessageIsIncluded) {
  try {
    Check(false, "the message");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
  }
}

TEST(Check, LocationIsIncluded) {
  try {
    Check(false);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("test_check.cpp"),
              std::string::npos);
  }
}

TEST(CheckNonNegative, AcceptsZeroAndPositive) {
  EXPECT_NO_THROW(CheckNonNegative(0.0));
  EXPECT_NO_THROW(CheckNonNegative(3.5));
}

TEST(CheckNonNegative, RejectsNegative) {
  EXPECT_THROW(CheckNonNegative(-1e-9), CheckError);
}

TEST(CheckNonNegative, RejectsNonFinite) {
  EXPECT_THROW(CheckNonNegative(std::numeric_limits<double>::quiet_NaN()),
               CheckError);
  EXPECT_THROW(CheckNonNegative(std::numeric_limits<double>::infinity()),
               CheckError);
}

TEST(CheckIndex, AcceptsInRange) {
  EXPECT_NO_THROW(CheckIndex(0, 0, 3));
  EXPECT_NO_THROW(CheckIndex(2, 0, 3));
}

TEST(CheckIndex, RejectsOutOfRange) {
  EXPECT_THROW(CheckIndex(3, 0, 3), CheckError);
  EXPECT_THROW(CheckIndex(-1, 0, 3), CheckError);
}

TEST(CheckInRange, ClosedIntervalSemantics) {
  EXPECT_NO_THROW(CheckInRange(0.0, 0.0, 1.0));
  EXPECT_NO_THROW(CheckInRange(1.0, 0.0, 1.0));
  EXPECT_THROW(CheckInRange(1.0 + 1e-12, 0.0, 1.0), CheckError);
  EXPECT_THROW(CheckInRange(-1e-12, 0.0, 1.0), CheckError);
}

}  // namespace
}  // namespace omg::common
