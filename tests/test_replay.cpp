// The trace record/replay subsystem: per-domain round-trip exactness,
// the golden-flag determinism contract (same digest twice, across shard
// counts, and in-process vs over UDS), speed-factor pacing under an
// injected clock, malformed/truncated trace rejection with positioned
// errors (sharing the corrupt-frame corpus with test_net), and the seeded
// example generators' stability. The TSan CI job runs this binary.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "wire_corpus.hpp"

#include "common/example_gen.hpp"
#include "config/scenario.hpp"
#include "config/spec.hpp"
#include "net/codec.hpp"
#include "net/wire.hpp"
#include "obs/clock.hpp"
#include "replay/replay.hpp"
#include "replay/trace_file.hpp"
#include "serve/domains.hpp"

namespace omg::replay {
namespace {

std::string TestPath(const std::string& tag) {
  return ::testing::TempDir() + "omg_replay_" + tag + "_" +
         std::to_string(::getpid()) + ".trace";
}

/// A one-domain scenario with two streams, parsed from text (no source
/// file, so the scenario hash is 0 and hash verification is skipped).
config::ScenarioSpec DomainScenario(const std::string& domain,
                                    const std::string& assertions,
                                    std::size_t examples = 48,
                                    std::size_t shards = 2) {
  const std::string text = R"([scenario]
name = "replay-)" + domain + R"("
[runtime]
shards = )" + std::to_string(shards) + R"(
window = 32
settle_lag = 8
queue_capacity = 1024
[suite )" + domain + R"(]
assertions = [)" + assertions +
                           R"(]
[stream a]
domain = )" + domain + R"(
examples = )" + std::to_string(examples) + R"(
seed = 7
batch = 16
[stream b]
domain = )" + domain + R"(
examples = )" + std::to_string(examples) + R"(
seed = 8
batch = 16
)";
  return config::ConfigLoader::Load(config::SpecDocument::Parse(text));
}

struct Recorded {
  config::ScenarioSpec scenario;
  std::string path;
};

Recorded RecordDomain(const std::string& domain,
                      const std::string& assertions,
                      const std::string& tag, std::size_t examples = 48) {
  Recorded r{DomainScenario(domain, assertions, examples), TestPath(tag)};
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  const common::TrafficMap traffic =
      common::GenerateScenarioTraffic(r.scenario);
  const serve::Result<RecordReport> report = RecordScenarioTrace(
      r.scenario, domains, traffic, r.path, /*record_eps=*/50000.0);
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.error().message);
  return r;
}

// ------------------------------------------------------------- round trip ---

// Recording preserves every example of every domain exactly: the decoded
// trace payloads equal the generator's output, record by record.
TEST(TraceRoundTrip, EveryDomainIsExactBatchForBatch) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  const struct {
    const char* domain;
    const char* assertions;
  } kDomains[] = {{"video", "video.multibox, video.consistency"},
                  {"av", "av.agree, av.multibox"},
                  {"ecg", "ecg.oscillation"},
                  {"tvnews", "tvnews.consistency"}};
  for (const auto& d : kDomains) {
    const Recorded r = RecordDomain(d.domain, d.assertions,
                                    std::string("rt_") + d.domain);
    const common::TrafficMap traffic =
        common::GenerateScenarioTraffic(r.scenario);
    serve::Result<TraceReader> reader = TraceReader::Open(r.path);
    ASSERT_TRUE(reader.ok()) << reader.error().message;
    const TraceInfo& info = reader.value().info();
    EXPECT_EQ(info.scenario, r.scenario.name);
    ASSERT_EQ(info.streams.size(), 2u);

    // Replay the recorded payloads against the generated traffic: each
    // stream's concatenated decoded batches must equal its example list.
    const net::PayloadCodec* codec = domains.CodecFor(d.domain);
    std::vector<std::size_t> cursor(info.streams.size(), 0);
    std::uint64_t records = 0;
    for (;;) {
      serve::Result<std::optional<TraceRecord>> next =
          reader.value().Next();
      ASSERT_TRUE(next.ok()) << next.error().message;
      if (!next.value().has_value()) break;
      const TraceRecord& record = *next.value();
      const std::vector<serve::AnyExample>& expected =
          traffic.at(info.streams[record.stream].name);
      const serve::Result<std::vector<serve::AnyExample>> batch =
          net::DecodeBatch(*codec, record.payload, record.count);
      ASSERT_TRUE(batch.ok()) << batch.error().message;
      for (const serve::AnyExample& example : batch.value()) {
        ASSERT_LT(cursor[record.stream], expected.size());
        EXPECT_EQ(example.DebugString(),
                  expected[cursor[record.stream]].DebugString())
            << d.domain << " stream " << record.stream;
        ++cursor[record.stream];
      }
      ++records;
    }
    EXPECT_EQ(records, info.records);
    for (std::size_t s = 0; s < cursor.size(); ++s) {
      EXPECT_EQ(cursor[s], traffic.at(info.streams[s].name).size());
    }
    ::unlink(r.path.c_str());
  }
}

// Recording the same scenario twice yields byte-identical files — the
// deltas are synthetic, not wall-clock samples.
TEST(TraceRoundTrip, ReRecordingIsByteIdentical) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  const config::ScenarioSpec scenario =
      DomainScenario("ecg", "ecg.oscillation");
  const common::TrafficMap traffic =
      common::GenerateScenarioTraffic(scenario);
  const std::string path_a = TestPath("bytes_a");
  const std::string path_b = TestPath("bytes_b");
  ASSERT_TRUE(
      RecordScenarioTrace(scenario, domains, traffic, path_a, 50000.0).ok());
  ASSERT_TRUE(
      RecordScenarioTrace(scenario, domains, traffic, path_b, 50000.0).ok());
  std::ifstream a(path_a, std::ios::binary);
  std::ifstream b(path_b, std::ios::binary);
  const std::string bytes_a{std::istreambuf_iterator<char>(a), {}};
  const std::string bytes_b{std::istreambuf_iterator<char>(b), {}};
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  ::unlink(path_a.c_str());
  ::unlink(path_b.c_str());
}

// ----------------------------------------------------------- determinism ---

// The golden-flag contract: replaying one trace twice, at different shard
// counts, and over the wire all produce the same canonical flag document
// and digest, with exact offered == scored accounting every time.
TEST(ReplayDeterminism, DigestStableAcrossRunsShardsAndTransports) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  const Recorded r =
      RecordDomain("video", "video.multibox, video.consistency", "det");
  serve::Result<TraceReader> reader = TraceReader::Open(r.path);
  ASSERT_TRUE(reader.ok()) << reader.error().message;

  std::vector<ReplayReport> reports;
  for (const std::size_t shards : {2, 2, 1, 4}) {
    ReplayOptions options;
    options.speed = 0.0;
    options.shards = shards;
    const serve::Result<ReplayReport> report =
        ReplayTrace(r.scenario, domains, reader.value(), options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    reports.push_back(report.value());
  }
  {
    ReplayOptions options;
    options.speed = 0.0;
    options.over_wire = true;
    options.uds_path = ::testing::TempDir() + "omg_replay_det_" +
                       std::to_string(::getpid()) + ".sock";
    const serve::Result<ReplayReport> report =
        ReplayTrace(r.scenario, domains, reader.value(), options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    reports.push_back(report.value());
  }

  ASSERT_FALSE(reports.front().flags.lines.empty());
  for (const ReplayReport& report : reports) {
    EXPECT_TRUE(report.accounted);
    EXPECT_EQ(report.offered, report.scored);
    EXPECT_EQ(report.flags.digest, reports.front().flags.digest);
    EXPECT_EQ(report.flags.lines, reports.front().flags.lines);
  }
  ::unlink(r.path.c_str());
}

// SummariseFlags is order-independent: any permutation of the same event
// multiset canonicalises to the same lines and digest.
TEST(ReplayDeterminism, SummariseFlagsIsPermutationInvariant) {
  std::vector<runtime::CollectingSink::OwnedEvent> events;
  for (std::size_t i = 0; i < 6; ++i) {
    events.push_back({/*stream_id=*/i % 2,
                      i % 2 == 0 ? "cam-a" : "cam-b",
                      /*example_index=*/100 - i,
                      i % 3 == 0 ? "video/multibox" : "video/flicker",
                      /*severity=*/0.25 * static_cast<double>(i)});
  }
  const FlagSummary forward = SummariseFlags(events);
  std::reverse(events.begin(), events.end());
  const FlagSummary reversed = SummariseFlags(events);
  EXPECT_EQ(forward.lines, reversed.lines);
  EXPECT_EQ(forward.digest, reversed.digest);
}

// ----------------------------------------------------------------- pacing ---

// The fake time source for the pacing test. Atomics: the monitor's shard
// threads also read the installed clock for their trace timestamps.
std::atomic<std::uint64_t> g_fake_now_ns{1};
std::atomic<std::uint64_t> g_slept_ns{0};

std::uint64_t FakeNow() { return g_fake_now_ns.load(); }

/// A perfect sleeper: advances the fake clock by exactly the requested
/// wait, so the driver's elapsed time tracks its pacing target and the
/// total slept time is exactly (total recorded delta) / speed.
void FakeSleep(std::uint64_t ns) {
  g_slept_ns.fetch_add(ns);
  g_fake_now_ns.fetch_add(ns);
}

// Pacing under an injected clock: with speed N, the driver must request
// sleeps summing to (total recorded delta) / N; with speed 0 it must
// never sleep.
TEST(ReplayPacing, SpeedFactorScalesRequestedSleeps) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  const Recorded r = RecordDomain("ecg", "ecg.oscillation", "pace", 64);
  serve::Result<TraceReader> reader = TraceReader::Open(r.path);
  ASSERT_TRUE(reader.ok()) << reader.error().message;

  std::uint64_t total_delta = 0;
  std::uint64_t records = 0;
  for (;;) {
    serve::Result<std::optional<TraceRecord>> next = reader.value().Next();
    ASSERT_TRUE(next.ok());
    if (!next.value().has_value()) break;
    total_delta += next.value()->delta_ns;
    ++records;
  }
  ASSERT_GT(total_delta, 0u);
  ASSERT_GT(records, 2u);

  obs::Clock::InstallSource(&FakeNow);
  for (const double speed : {1.0, 4.0}) {
    g_slept_ns.store(0);
    ReplayOptions options;
    options.speed = speed;
    options.sleep_ns = &FakeSleep;
    const serve::Result<ReplayReport> report =
        ReplayTrace(r.scenario, domains, reader.value(), options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    // Each record's wait is truncated to whole nanoseconds, so the total
    // may undershoot by at most one nanosecond per record.
    const double expected = static_cast<double>(total_delta) / speed;
    EXPECT_NEAR(static_cast<double>(g_slept_ns.load()), expected,
                static_cast<double>(records) + 1.0)
        << "speed " << speed;
  }
  {
    g_slept_ns.store(0);
    ReplayOptions options;
    options.speed = 0.0;
    options.sleep_ns = &FakeSleep;
    const serve::Result<ReplayReport> report =
        ReplayTrace(r.scenario, domains, reader.value(), options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_EQ(g_slept_ns.load(), 0u);
  }
  obs::Clock::InstallSource(nullptr);
  ::unlink(r.path.c_str());
}

// ---------------------------------------------------------------- rejects ---

// Malformed trace files are rejected with positioned, typed errors. The
// corruption table is the same one test_net runs against the socket path.
TEST(TraceRejects, CorpusCorruptionsArePositionedErrors) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  const Recorded r = RecordDomain("ecg", "ecg.oscillation", "rej", 32);
  std::ifstream in(r.path, std::ios::binary);
  const std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                        {}};
  in.close();
  serve::Result<TraceReader> clean = TraceReader::Open(r.path);
  ASSERT_TRUE(clean.ok());
  const std::size_t first_record = clean.value().offset();
  ASSERT_LT(first_record, bytes.size());

  // The first record frame, corrupted every way the corpus knows, spliced
  // back into an otherwise-intact trace file.
  serve::Result<std::optional<TraceRecord>> first = clean.value().Next();
  ASSERT_TRUE(first.ok());
  const std::size_t record_len = clean.value().offset() - first_record;
  const std::span<const std::uint8_t> record_frame(
      bytes.data() + first_record, record_len);
  for (const omg::testing::CorruptFrameCase& c :
       omg::testing::CorruptFrameCorpus(record_frame, first.value()->count,
                                        /*max_frame_bytes=*/1 << 20)) {
    // Boundary-valid cases are not corruptions, and the size-limit case
    // only applies to the streaming path — the trace reader holds the
    // whole (already size-bounded) file in memory and decodes unbounded.
    if (c.valid || c.expected == serve::ErrorCode::kOversizedFrame) continue;
    std::vector<std::uint8_t> mutated(bytes.begin(),
                                      bytes.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              first_record));
    mutated.insert(mutated.end(), c.bytes.begin(), c.bytes.end());
    const std::string path = TestPath("rej_" + c.name);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(mutated.data()),
              static_cast<std::streamsize>(mutated.size()));
    out.close();

    serve::Result<TraceReader> reader = TraceReader::Open(path);
    ASSERT_TRUE(reader.ok()) << c.name;  // header frame is intact
    serve::Result<std::optional<TraceRecord>> next = reader.value().Next();
    ASSERT_FALSE(next.ok()) << c.name;
    // Positioned: the error names the failing record's byte offset.
    EXPECT_NE(next.error().message.find(
                  "byte offset " + std::to_string(first_record)),
              std::string::npos)
        << c.name << ": " << next.error().message;
    ::unlink(path.c_str());
  }
  ::unlink(r.path.c_str());
}

TEST(TraceRejects, NotATraceAndUnfinishedRecordings) {
  // Not a trace file at all.
  const std::string garbage_path = TestPath("garbage");
  {
    std::ofstream out(garbage_path, std::ios::binary);
    out << "definitely not wire frames";
  }
  serve::Result<TraceReader> garbage = TraceReader::Open(garbage_path);
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.error().message.find("byte offset 0"),
            std::string::npos);
  ::unlink(garbage_path.c_str());

  // A data frame where the trace header should be.
  const std::string headerless = TestPath("headerless");
  {
    net::FrameHeader header;
    header.type = net::FrameType::kData;
    header.set_domain_tag("ecg");
    const std::vector<std::uint8_t> frame = net::EncodeFrame(header, {});
    std::ofstream out(headerless, std::ios::binary);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }
  serve::Result<TraceReader> no_header = TraceReader::Open(headerless);
  ASSERT_FALSE(no_header.ok());
  EXPECT_EQ(no_header.code(), serve::ErrorCode::kMalformedPayload);
  EXPECT_NE(no_header.error().message.find("not a trace file"),
            std::string::npos);
  ::unlink(headerless.c_str());

  // A crashed recording: header still says zero records, data follows.
  const std::string unfinished = TestPath("unfinished");
  {
    TraceInfo info;
    info.scenario = "unfinished";
    info.streams.push_back({"a", "ecg", 0.0});
    serve::Result<TraceWriter> writer = TraceWriter::Open(unfinished, info);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(0, 10, 1, 0.0, {}).ok());
    // No Finish(): the writer dies with the header counts unpatched.
  }
  serve::Result<TraceReader> crashed = TraceReader::Open(unfinished);
  ASSERT_FALSE(crashed.ok());
  EXPECT_NE(crashed.error().message.find("never finished"),
            std::string::npos);
  ::unlink(unfinished.c_str());

  // Truncated mid-trace against the header's declared record count.
  const Recorded r = RecordDomain("ecg", "ecg.oscillation", "trunc", 32);
  std::ifstream in(r.path, std::ios::binary);
  const std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                        {}};
  in.close();
  const std::string cut_path = TestPath("cut");
  {
    std::ofstream out(cut_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size() - 1));
  }
  serve::Result<TraceReader> cut = TraceReader::Open(cut_path);
  ASSERT_TRUE(cut.ok());
  serve::Result<std::optional<TraceRecord>> next = cut.value().Next();
  while (next.ok() && next.value().has_value()) next = cut.value().Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.code(), serve::ErrorCode::kTruncatedFrame);
  ::unlink(cut_path.c_str());
  ::unlink(r.path.c_str());
}

TEST(TraceRejects, ReplayRefusesMismatchedScenario) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  const Recorded r = RecordDomain("ecg", "ecg.oscillation", "mismatch", 32);
  serve::Result<TraceReader> reader = TraceReader::Open(r.path);
  ASSERT_TRUE(reader.ok());
  const config::ScenarioSpec other =
      DomainScenario("video", "video.multibox");
  const serve::Result<ReplayReport> report =
      ReplayTrace(other, domains, reader.value(), {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.code(), serve::ErrorCode::kInvalidArgument);
  ::unlink(r.path.c_str());
}

// ------------------------------------------------------------ example gen ---

// The shared synthetic generators are seed-stable: the same seed yields
// the same stream, a different seed a different one (what makes recorded
// traces and load-generator traffic reproducible).
TEST(ExampleGen, SeededGeneratorsAreStable) {
  const std::vector<common::BenchSample> a = common::MakeBenchStream(42, 64);
  const std::vector<common::BenchSample> b = common::MakeBenchStream(42, 64);
  const std::vector<common::BenchSample> c = common::MakeBenchStream(43, 64);
  ASSERT_EQ(a.size(), 64u);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].features, b[i].features) << i;
    if (a[i].features != c[i].features) differs = true;
  }
  EXPECT_TRUE(differs);

  for (const char* domain : {"video", "av", "ecg", "tvnews"}) {
    const serve::Result<serve::AnyExample> x =
        common::MakeSyntheticExample(domain, 11);
    const serve::Result<serve::AnyExample> y =
        common::MakeSyntheticExample(domain, 11);
    ASSERT_TRUE(x.ok());
    ASSERT_TRUE(y.ok());
    EXPECT_EQ(x.value().DebugString(), y.value().DebugString()) << domain;
  }
  EXPECT_FALSE(common::MakeSyntheticExample("nope", 0).ok());

  const config::ScenarioSpec scenario =
      DomainScenario("tvnews", "tvnews.consistency", 24);
  const common::TrafficMap first =
      common::GenerateScenarioTraffic(scenario);
  const common::TrafficMap second =
      common::GenerateScenarioTraffic(scenario);
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [name, examples] : first) {
    const std::vector<serve::AnyExample>& others = second.at(name);
    ASSERT_EQ(examples.size(), others.size()) << name;
    for (std::size_t i = 0; i < examples.size(); ++i) {
      EXPECT_EQ(examples[i].DebugString(), others[i].DebugString())
          << name << "[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace omg::replay
