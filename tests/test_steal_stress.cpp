// Work-stealing stress: imbalanced placement (every hot stream homed on
// one shard), concurrent producers, and a gate that pins the home worker
// inside a batch so the idle neighbours *must* steal. Asserts that steals
// actually happened (victim-side stolen_batches / thief-side steal_ns),
// that the accounting identity holds under stealing, and that per-shard
// occupancy reconciles: busy + idle + steal never exceeds worker wall
// time. The TSan CI job runs this binary — the claimed-stream protocol's
// handoffs are exactly what it probes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/assertion.hpp"
#include "obs/clock.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/sharded_service.hpp"

namespace omg::runtime {
namespace {

struct Tick {
  double value = 0.0;
};

/// Rendezvous: the home worker parks inside Arrive() until Release().
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool arrived = false;
  bool released = false;

  void Arrive() {
    std::unique_lock<std::mutex> lock(mutex);
    arrived = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  }
  void AwaitArrival() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return arrived; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
};

constexpr double kStallValue = 1e9;

TEST(StealStress, ImbalancedShardsStealAndOccupancyReconciles) {
  constexpr std::size_t kShards = 4;
  ShardedRuntimeConfig config;
  config.shards = kShards;
  config.window = 16;
  config.settle_lag = 4;
  config.queue_capacity = 4096;
  config.stealing = true;

  auto gate = std::make_shared<Gate>();
  const std::uint64_t wall_begin_ns = obs::Clock::NowNs();
  ShardedMonitorService<Tick> service(config, [gate] {
    auto suite = std::make_shared<core::AssertionSuite<Tick>>();
    suite->AddPointwise("hot", [gate](const Tick& t) {
      if (t.value == kStallValue) gate->Arrive();
      return t.value > 1.0 ? t.value : 0.0;
    });
    return ShardedMonitorService<Tick>::SuiteBundle{suite, {}};
  });

  // Register 4 * kShards streams; traffic goes only to the ones homed on
  // shard 0 (id % kShards == 0) — one shard owns the entire hot set.
  std::vector<StreamId> hot;
  for (std::size_t s = 0; s < kShards * 4; ++s) {
    const StreamId id = service.RegisterStream("s" + std::to_string(s));
    if (id % kShards == 0) hot.push_back(id);
  }
  ASSERT_EQ(hot.size(), 4u);

  // Pin shard 0's worker inside hot[0]: everything the producers enqueue
  // for the other hot streams can only be scored by thieves until the
  // gate opens.
  ASSERT_TRUE(service.ObserveBatch(hot[0], {Tick{kStallValue}}));
  gate->AwaitArrival();

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kBatchesPerProducer = 40;
  constexpr std::size_t kBatch = 16;
  std::atomic<std::size_t> offered{1};  // the stalling example
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      common::Rng rng(1234 + p);
      for (std::size_t b = 0; b < kBatchesPerProducer; ++b) {
        std::vector<Tick> batch(kBatch);
        for (Tick& tick : batch) tick.value = rng.Uniform(-2.0, 2.0);
        // Never hot[0]: its stream is pinned behind the gate, and a
        // claimed stream cannot be stolen.
        const StreamId id = hot[1 + (p + b) % (hot.size() - 1)];
        if (service.ObserveBatch(id, std::move(batch))) {
          offered.fetch_add(kBatch, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  // The thieves poll every ~500us; wait until they have visibly stolen
  // before opening the gate (bounded, so a broken steal path fails the
  // explicit assertion below instead of hanging).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const MetricsSnapshot probe = service.Metrics();
    std::size_t stolen = 0;
    for (const ShardMetrics& shard : probe.shards) {
      stolen += shard.stolen_batches;
    }
    if (stolen > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate->Release();
  service.Flush();
  const std::uint64_t wall_ns =
      obs::Clock::ElapsedNs(wall_begin_ns, obs::Clock::NowNs());
  ASSERT_TRUE(service.Errors().empty());

  const MetricsSnapshot snapshot = service.Metrics();
  ASSERT_EQ(snapshot.shards.size(), kShards);

  // Steals happened, and both sides of the ledger saw them: shard 0 was
  // robbed (victim-side counters), some neighbour worked (thief-side ns).
  std::size_t stolen_batches = 0;
  std::size_t stolen_examples = 0;
  std::uint64_t steal_ns = 0;
  for (const ShardMetrics& shard : snapshot.shards) {
    stolen_batches += shard.stolen_batches;
    stolen_examples += shard.stolen_examples;
    steal_ns += shard.steal_ns;
  }
  EXPECT_GT(stolen_batches, 0u);
  EXPECT_GT(stolen_examples, 0u);
  EXPECT_GT(steal_ns, 0u);
  EXPECT_EQ(snapshot.shards[0].stolen_batches, stolen_batches)
      << "only shard 0 had anything to steal";
  EXPECT_EQ(snapshot.shards[0].steal_ns, 0u)
      << "shard 0's worker was pinned; it cannot have been the thief";

  // Accounting stays exact under stealing: nothing lost, nothing double
  // counted (kBlock admits everything the producers offered).
  EXPECT_EQ(snapshot.examples_seen + snapshot.TotalShedExamples() +
                snapshot.TotalDroppedExamples() +
                snapshot.TotalErroredExamples(),
            offered.load());

  // Occupancy reconciles per shard: busy (own scoring) + idle + steal
  // (foreign scoring) partitions worker wall time — allow scheduler slack
  // but never systematic over-accounting.
  for (const ShardMetrics& shard : snapshot.shards) {
    const std::uint64_t accounted =
        shard.busy_ns + shard.idle_ns + shard.steal_ns;
    EXPECT_LE(accounted,
              wall_ns + wall_ns / 10 + std::uint64_t{50'000'000})
        << "shard " << shard.shard << " over-accounts its worker's time";
    EXPECT_GE(shard.BusyFraction(), 0.0);
    EXPECT_LE(shard.BusyFraction(), 1.0);
  }
}

}  // namespace
}  // namespace omg::runtime
