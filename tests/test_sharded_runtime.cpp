// The sharded backpressure-aware fast path: equivalence with batch scoring,
// bounded-queue admission policies, per-shard metrics, and concurrent
// Observe/Flush/hot-swap (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/assertion.hpp"
#include "loop/model_registry.hpp"
#include "nn/mlp.hpp"
#include "runtime/admission.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/sharded_service.hpp"

namespace omg::runtime {
namespace {

struct Tick {
  double value = 0.0;
};

std::vector<Tick> MakeStream(std::uint64_t seed, std::size_t n) {
  common::Rng rng(seed);
  std::vector<Tick> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stream.push_back(Tick{rng.Uniform(-2.0, 2.0)});
  }
  return stream;
}

void PopulateSuite(core::AssertionSuite<Tick>& suite) {
  suite.AddPointwise("positive",
                     [](const Tick& t) { return t.value > 1.0 ? t.value : 0.0; });
  suite.AddFunction(
      "rising",
      [](std::span<const Tick> stream) {
        std::vector<double> severities(stream.size(), 0.0);
        for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
          if (stream[i + 1].value > stream[i].value + 1.5) severities[i] = 1.0;
        }
        return severities;
      },
      /*temporal_radius=*/1);
}

using Firing = std::tuple<std::size_t, std::string, double>;

std::vector<Firing> SettledBatchFirings(std::span<const Tick> stream,
                                        std::size_t settle_lag) {
  core::AssertionSuite<Tick> suite;
  PopulateSuite(suite);
  const core::SeverityMatrix matrix = suite.CheckAll(stream);
  const auto names = suite.Names();
  std::vector<Firing> firings;
  if (stream.size() <= settle_lag) return firings;
  for (std::size_t e = 0; e + settle_lag < stream.size(); ++e) {
    for (std::size_t a = 0; a < names.size(); ++a) {
      if (matrix.Fired(e, a)) firings.emplace_back(e, names[a], matrix.At(e, a));
    }
  }
  return firings;
}

ShardedMonitorService<Tick>::SuiteBundle MakeBundle() {
  auto suite = std::make_shared<core::AssertionSuite<Tick>>();
  PopulateSuite(*suite);
  return {suite, {}};
}

std::vector<Firing> StreamFirings(
    const std::vector<CollectingSink::OwnedEvent>& events,
    std::string_view stream) {
  std::vector<Firing> firings;
  for (const auto& event : events) {
    if (event.stream == stream) {
      firings.emplace_back(event.example_index, event.assertion,
                           event.severity);
    }
  }
  return firings;
}

/// Rendezvous for stalling a shard worker inside an assertion: the worker
/// announces arrival and waits until the test releases it.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool arrived = false;
  bool released = false;

  void Arrive() {
    std::unique_lock<std::mutex> lock(mutex);
    arrived = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  }
  void AwaitArrival() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return arrived; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
};

/// A service whose single shard worker stalls on the value 42 — everything
/// the admission tests queue behind it stays queued until Release().
struct GatedService {
  explicit GatedService(ShardedRuntimeConfig config)
      : gate(std::make_shared<Gate>()),
        sink(std::make_shared<CountingSink>()),
        service(config, [gate = gate] {
          auto suite = std::make_shared<core::AssertionSuite<Tick>>();
          suite->AddPointwise("always", [gate](const Tick& t) {
            if (t.value == 42.0) gate->Arrive();
            return 1.0;  // every scored example emits exactly one event
          });
          return ShardedMonitorService<Tick>::SuiteBundle{suite, {}};
        }) {
    service.AddSink(sink);
    id = service.RegisterStream("only");
  }

  /// Submits the stalling batch and waits until the worker is inside it
  /// (so the queue is empty and admission sees only later batches).
  void StallWorker() {
    service.ObserveBatch(id, {Tick{42.0}});
    gate->AwaitArrival();
  }

  std::shared_ptr<Gate> gate;
  std::shared_ptr<CountingSink> sink;
  ShardedMonitorService<Tick> service;
  StreamId id;
};

ShardedRuntimeConfig SmallQueueConfig(AdmissionPolicy policy) {
  ShardedRuntimeConfig config;
  config.shards = 1;
  config.window = 8;
  config.settle_lag = 0;  // verdicts emit immediately: events == examples
  config.queue_capacity = 2;
  config.admission = policy;
  config.shed_floor = 1.0;
  return config;
}

// ------------------------------------------------------------- equivalence ---

TEST(ShardedService, StreamingEqualsBatchAcrossShardCountsAndBatchSizes) {
  const std::size_t n = 160;
  const std::size_t kStreams = 5;
  const std::size_t settle_lag = 4;

  std::vector<std::vector<Tick>> streams;
  std::vector<std::vector<Firing>> expected;
  for (std::size_t s = 0; s < kStreams; ++s) {
    streams.push_back(MakeStream(100 + s, n));
    expected.push_back(SettledBatchFirings(streams[s], settle_lag));
  }

  for (const std::size_t shards : {1ul, 2ul, 4ul}) {
    for (const std::size_t batch_size : {1ul, 17ul, 64ul}) {
      ShardedRuntimeConfig config;
      config.shards = shards;
      config.window = 32;
      config.settle_lag = settle_lag;
      ShardedMonitorService<Tick> service(config, MakeBundle);
      auto sink = std::make_shared<CollectingSink>();
      service.AddSink(sink);

      std::vector<StreamId> ids;
      for (std::size_t s = 0; s < kStreams; ++s) {
        ids.push_back(service.RegisterStream("stream-" + std::to_string(s)));
      }
      for (std::size_t begin = 0; begin < n; begin += batch_size) {
        const std::size_t count = std::min(batch_size, n - begin);
        for (std::size_t s = 0; s < kStreams; ++s) {
          EXPECT_TRUE(service.ObserveBatch(
              ids[s], std::vector<Tick>(streams[s].begin() + begin,
                                        streams[s].begin() + begin + count)));
        }
      }
      service.Flush();
      EXPECT_TRUE(service.Errors().empty());

      const auto events = sink->Events();
      for (std::size_t s = 0; s < kStreams; ++s) {
        EXPECT_EQ(StreamFirings(events, "stream-" + std::to_string(s)),
                  expected[s])
            << "shards=" << shards << " batch=" << batch_size;
      }
      const MetricsSnapshot snapshot = service.Metrics();
      EXPECT_EQ(snapshot.examples_seen, n * kStreams);
      EXPECT_EQ(snapshot.events, events.size());
      // Per-shard accounting covers exactly the ingested traffic.
      ASSERT_EQ(snapshot.shards.size(), shards);
      std::size_t shard_examples = 0;
      std::size_t shard_batches = 0;
      for (const ShardMetrics& shard : snapshot.shards) {
        shard_examples += shard.examples;
        shard_batches += shard.batches;
        EXPECT_EQ(shard.latency.count(), shard.batches);
        EXPECT_EQ(shard.dropped_examples, 0u);
        EXPECT_EQ(shard.shed_examples, 0u);
        EXPECT_LE(shard.queue_depth_peak, config.queue_capacity);
      }
      EXPECT_EQ(shard_examples, n * kStreams);
      EXPECT_GE(shard_batches, shards == 1 ? 1u : 2u);
    }
  }
}

// -------------------------------------------------------- admission: block ---

TEST(ShardedService, BlockPolicyBlocksProducerUntilSpaceFrees) {
  GatedService gated(SmallQueueConfig(AdmissionPolicy::kBlock));
  gated.StallWorker();
  // Queue is empty (the stalling batch was popped); fill it to capacity.
  EXPECT_TRUE(gated.service.ObserveBatch(gated.id, {Tick{1.0}, Tick{2.0}}));

  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    EXPECT_TRUE(gated.service.ObserveBatch(gated.id, {Tick{3.0}}));
    admitted = true;
  });
  // The producer must be blocked: the queue is at capacity.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());

  gated.gate->Release();
  producer.join();
  EXPECT_TRUE(admitted.load());
  gated.service.Flush();

  const MetricsSnapshot snapshot = gated.service.Metrics();
  EXPECT_EQ(snapshot.examples_seen, 4u);  // nothing lost
  EXPECT_EQ(gated.sink->count(), 4u);
  ASSERT_EQ(snapshot.shards.size(), 1u);
  EXPECT_EQ(snapshot.shards[0].dropped_examples, 0u);
  EXPECT_EQ(snapshot.shards[0].shed_examples, 0u);
  EXPECT_EQ(snapshot.shards[0].queue_depth_peak, 2u);
}

// -------------------------------------------------- admission: drop-oldest ---

TEST(ShardedService, DropOldestEvictsQueueHeadAndCountsIt) {
  GatedService gated(SmallQueueConfig(AdmissionPolicy::kDropOldest));
  gated.StallWorker();
  EXPECT_TRUE(gated.service.ObserveBatch(gated.id, {Tick{1.0}, Tick{2.0}}));
  // Queue full: admitting this drops the 2-example batch ahead of it.
  EXPECT_TRUE(gated.service.ObserveBatch(gated.id, {Tick{3.0}}));

  gated.gate->Release();
  gated.service.Flush();

  const MetricsSnapshot snapshot = gated.service.Metrics();
  ASSERT_EQ(snapshot.shards.size(), 1u);
  EXPECT_EQ(snapshot.shards[0].dropped_batches, 1u);
  EXPECT_EQ(snapshot.shards[0].dropped_examples, 2u);
  EXPECT_EQ(snapshot.shards[0].shed_examples, 0u);
  // Only the stalling example and the last batch were scored, and the drop
  // counters reconcile against what the sink saw: offered = scored + lost.
  EXPECT_EQ(snapshot.examples_seen, 2u);
  EXPECT_EQ(gated.sink->count(), 2u);
  EXPECT_EQ(snapshot.examples_seen + snapshot.TotalDroppedExamples(), 4u);
}

// ------------------------------------------- admission: shed-below-severity ---

TEST(ShardedService, ShedBelowSeverityShedsUnimportantAdmitsImportant) {
  GatedService gated(SmallQueueConfig(AdmissionPolicy::kShedBelowSeverity));
  gated.StallWorker();
  // Fills the queue while it has room — the hint is irrelevant below
  // capacity (shedding is an overload response, not a filter).
  EXPECT_TRUE(gated.service.ObserveBatch(gated.id, {Tick{1.0}, Tick{2.0}},
                                         /*severity_hint=*/0.5));
  // Queue full + below-floor hint: shed, producer not blocked.
  EXPECT_FALSE(gated.service.ObserveBatch(gated.id, {Tick{3.0}},
                                          /*severity_hint=*/0.2));
  // Queue full + at/above-floor hint: admitted by evicting the queued
  // below-floor batch.
  EXPECT_TRUE(gated.service.ObserveBatch(gated.id, {Tick{4.0}},
                                         /*severity_hint=*/3.0));

  gated.gate->Release();
  gated.service.Flush();

  const MetricsSnapshot snapshot = gated.service.Metrics();
  ASSERT_EQ(snapshot.shards.size(), 1u);
  EXPECT_EQ(snapshot.shards[0].shed_batches, 1u);
  EXPECT_EQ(snapshot.shards[0].shed_examples, 1u);
  EXPECT_EQ(snapshot.shards[0].dropped_batches, 1u);
  EXPECT_EQ(snapshot.shards[0].dropped_examples, 2u);
  // Scored: the stalling example + the important batch.
  EXPECT_EQ(snapshot.examples_seen, 2u);
  EXPECT_EQ(gated.sink->count(), 2u);
  EXPECT_EQ(snapshot.examples_seen + snapshot.TotalDroppedExamples() +
                snapshot.TotalShedExamples(),
            5u);
}

TEST(ShardedService, ThrowingAssertionPoisonsBatchAndIsCounted) {
  ShardedRuntimeConfig config;
  config.shards = 2;
  config.window = 8;
  config.settle_lag = 1;
  ShardedMonitorService<Tick> service(config, [] {
    auto suite = std::make_shared<core::AssertionSuite<Tick>>();
    suite->AddPointwise("explode", [](const Tick& t) {
      common::Check(t.value < 9.0, "boom");
      return 0.0;
    });
    return ShardedMonitorService<Tick>::SuiteBundle{suite, {}};
  });
  const StreamId bad = service.RegisterStream("bad");
  const StreamId good = service.RegisterStream("good");
  service.ObserveBatch(bad, {Tick{1.0}, Tick{10.0}});
  service.ObserveBatch(good, {Tick{1.0}, Tick{2.0}, Tick{3.0}});
  service.Flush();

  const auto errors = service.Errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("bad"), std::string::npos);
  const MetricsSnapshot snapshot = service.Metrics();
  EXPECT_EQ(snapshot.streams.at(good).examples_seen, 3u);
  // The poisoned batch lands in the errored counters, so the accounting
  // identity offered == scored + shed + dropped + errored still holds.
  EXPECT_EQ(snapshot.TotalErroredExamples(), 2u);
  EXPECT_EQ(snapshot.examples_seen + snapshot.TotalShedExamples() +
                snapshot.TotalDroppedExamples() +
                snapshot.TotalErroredExamples(),
            5u);
}

// ----------------------------------------------------------------- metrics ---

TEST(ShardedService, LatencyHistogramTracksBatchesAndQuantilesAreOrdered) {
  ShardedRuntimeConfig config;
  config.shards = 2;
  config.window = 16;
  config.settle_lag = 2;
  ShardedMonitorService<Tick> service(config, MakeBundle);
  const StreamId a = service.RegisterStream("a");
  const StreamId b = service.RegisterStream("b");
  const auto stream = MakeStream(7, 200);
  for (std::size_t begin = 0; begin < 200; begin += 20) {
    std::vector<Tick> batch(stream.begin() + begin, stream.begin() + begin + 20);
    service.ObserveBatch(a, batch);
    service.ObserveBatch(b, std::move(batch));
  }
  service.Flush();

  const MetricsSnapshot snapshot = service.Metrics();
  ASSERT_EQ(snapshot.shards.size(), 2u);
  for (const ShardMetrics& shard : snapshot.shards) {
    EXPECT_EQ(shard.latency.count(), shard.batches);
    EXPECT_GT(shard.latency.count(), 0u);
    const double p50 = shard.latency.Quantile(0.50);
    const double p95 = shard.latency.Quantile(0.95);
    const double p99 = shard.latency.Quantile(0.99);
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, shard.latency.max_seconds());
    EXPECT_GE(p50, shard.latency.min_seconds());
  }
  const LatencyHistogram merged = snapshot.MergedLatency();
  EXPECT_EQ(merged.count(),
            snapshot.shards[0].batches + snapshot.shards[1].batches);
}

TEST(LatencyHistogramTest, QuantilesResolveOnSyntheticDistribution) {
  // A known mix spanning three octaves. The original octave-only buckets
  // could not separate p95 from p99 here — both overshot inside a coarse
  // tail bucket and clamped to max; the 1/8-octave sub-buckets pin each
  // quantile to its own mode within ~12.5% relative error.
  LatencyHistogram histogram;
  for (int i = 0; i < 50; ++i) histogram.Record(0.001);  // ranks 1..50
  for (int i = 0; i < 45; ++i) histogram.Record(0.008);  // ranks 51..95
  for (int i = 0; i < 4; ++i) histogram.Record(0.032);   // ranks 96..99
  histogram.Record(0.128);                               // rank 100

  const double p50 = histogram.Quantile(0.50);
  const double p95 = histogram.Quantile(0.95);
  const double p99 = histogram.Quantile(0.99);
  EXPECT_NEAR(p50, 0.001, 0.001 * 0.13);
  EXPECT_NEAR(p95, 0.008, 0.008 * 0.13);
  EXPECT_NEAR(p99, 0.032, 0.032 * 0.13);
  // The regression this pins: distinct tail modes must yield distinct
  // quantiles, none stuck at the distribution max.
  EXPECT_LT(p50, p95);
  EXPECT_LT(p95, p99);
  EXPECT_LT(p99, histogram.max_seconds());
  EXPECT_NEAR(histogram.Quantile(1.0), 0.128, 0.128 * 0.13);
  EXPECT_EQ(histogram.min_seconds(), 0.001);
  EXPECT_EQ(histogram.max_seconds(), 0.128);
}

// ------------------------------------------------- admission: latency SLO ---

TEST(ShardedService, LatencyTargetShedsProjectedOverloadAdmitsImportant) {
  ShardedRuntimeConfig config;
  config.shards = 1;
  config.window = 8;
  config.settle_lag = 0;
  config.queue_capacity = 1024;
  config.admission = AdmissionPolicy::kLatencyTarget;
  config.shed_floor = 0.5;
  // Any queued work projects past a 1ns-scale target once the shard has
  // measured its service rate — so post-warmup, below-floor work sheds.
  config.latency_target_ms = 1e-6;
  ShardedMonitorService<Tick> service(config, MakeBundle);
  const StreamId id = service.RegisterStream("only");

  // Before the first scored batch there is no rate estimate: everything
  // is admitted, whatever its severity.
  EXPECT_TRUE(service.ObserveBatch(id, {Tick{0.1}, Tick{0.2}},
                                   /*severity_hint=*/0.0));
  service.Flush();

  // Now the EWMA is primed; a below-floor batch projects over target and
  // sheds, an at-floor batch bypasses the estimate entirely.
  EXPECT_FALSE(service.ObserveBatch(id, {Tick{0.3}, Tick{0.4}, Tick{0.5}},
                                    /*severity_hint=*/0.0));
  EXPECT_TRUE(service.ObserveBatch(id, {Tick{0.6}},
                                   /*severity_hint=*/0.5));
  service.Flush();

  const MetricsSnapshot snapshot = service.Metrics();
  EXPECT_EQ(snapshot.examples_seen, 3u);
  EXPECT_EQ(snapshot.TotalShedExamples(), 3u);
  EXPECT_EQ(snapshot.TotalDroppedExamples(), 0u);
  EXPECT_EQ(snapshot.examples_seen + snapshot.TotalShedExamples() +
                snapshot.TotalDroppedExamples() +
                snapshot.TotalErroredExamples(),
            6u);
}

TEST(ShardedService, LatencyTargetGenerousSloAdmitsEverything) {
  ShardedRuntimeConfig config;
  config.shards = 1;
  config.window = 8;
  config.settle_lag = 0;
  config.queue_capacity = 1024;
  config.admission = AdmissionPolicy::kLatencyTarget;
  config.shed_floor = 0.5;
  config.latency_target_ms = 60'000.0;  // a minute: nothing projects past
  ShardedMonitorService<Tick> service(config, MakeBundle);
  const StreamId id = service.RegisterStream("only");
  for (int round = 0; round < 20; ++round) {
    EXPECT_TRUE(service.ObserveBatch(id, {Tick{0.1}, Tick{0.2}},
                                     /*severity_hint=*/0.0));
  }
  service.Flush();
  const MetricsSnapshot snapshot = service.Metrics();
  EXPECT_EQ(snapshot.examples_seen, 40u);
  EXPECT_EQ(snapshot.TotalShedExamples(), 0u);
}

// -------------------------------------------------------------- validation ---

TEST(ShardedService, ValidatesConfigAndInputs) {
  const auto make = MakeBundle;
  ShardedRuntimeConfig bad;
  bad.shards = 0;
  try {
    ShardedMonitorService<Tick> service(bad, make);
    FAIL() << "shards == 0 must be rejected";
  } catch (const common::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("shards must be >= 1"),
              std::string::npos);
  }
  bad = {};
  bad.queue_capacity = 0;
  EXPECT_THROW(ShardedMonitorService<Tick>(bad, make), common::CheckError);
  bad = {};
  bad.settle_lag = bad.window;
  EXPECT_THROW(ShardedMonitorService<Tick>(bad, make), common::CheckError);
  bad = {};
  bad.shed_floor = -1.0;
  EXPECT_THROW(ShardedMonitorService<Tick>(bad, make), common::CheckError);

  ShardedRuntimeConfig config;
  config.queue_capacity = 4;
  ShardedMonitorService<Tick> service(config, make);
  EXPECT_THROW(service.Observe(0, Tick{}), common::CheckError);
  EXPECT_THROW(service.AddSink(nullptr), common::CheckError);
  const StreamId id = service.RegisterStream("s");
  EXPECT_THROW(service.ObserveBatch(id, std::vector<Tick>(5)),
               common::CheckError);  // batch larger than the queue
}

TEST(AdmissionPolicyNames, RoundTrip) {
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kBlock, AdmissionPolicy::kDropOldest,
        AdmissionPolicy::kShedBelowSeverity}) {
    EXPECT_EQ(ParseAdmissionPolicy(AdmissionPolicyName(policy)), policy);
  }
  EXPECT_THROW(ParseAdmissionPolicy("nope"), common::CheckError);
}

// ---------------------------------------------- concurrency (TSan coverage) ---

TEST(ShardedService, ConcurrentObserveFlushAndHotSwapAreSafe) {
  // Producers observe while the main thread flushes and a trainer thread
  // hot-swaps model versions the per-stream suites read — the sharded
  // analogue of the improvement loop's serve-while-retraining regime.
  auto registry = std::make_shared<loop::ModelRegistry>();
  {
    common::Rng rng(3);
    registry->Publish(nn::Mlp({1, {}, 2}, rng));
  }

  ShardedRuntimeConfig config;
  config.shards = 4;
  config.window = 16;
  config.settle_lag = 2;
  config.queue_capacity = 64;
  config.admission = AdmissionPolicy::kShedBelowSeverity;
  config.shed_floor = 0.5;
  ShardedMonitorService<Tick> service(config, [registry] {
    auto suite = std::make_shared<core::AssertionSuite<Tick>>();
    suite->AddPointwise("uncertain", [registry](const Tick& t) {
      const loop::ModelHandle handle = registry->Current();
      const double features[] = {t.value};
      const double confidence = handle.model->Confidence(features);
      return confidence < 0.75 ? 1.0 - confidence : 0.0;
    });
    return ShardedMonitorService<Tick>::SuiteBundle{suite, {}};
  });
  auto counting = std::make_shared<CountingSink>();
  service.AddSink(counting);

  const std::size_t kStreams = 8;
  std::vector<StreamId> ids;
  for (std::size_t s = 0; s < kStreams; ++s) {
    ids.push_back(service.RegisterStream("hot-" + std::to_string(s)));
  }

  std::atomic<bool> stop_swapping{false};
  std::thread trainer([&] {
    common::Rng rng(17);
    while (!stop_swapping.load()) {
      registry->Publish(nn::Mlp({1, {}, 2}, rng));
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      const auto stream = MakeStream(900 + p, 600);
      for (std::size_t begin = 0; begin < 600; begin += 20) {
        for (std::size_t s = p; s < kStreams; s += 2) {
          service.ObserveBatch(
              ids[s],
              std::vector<Tick>(stream.begin() + begin,
                                stream.begin() + begin + 20),
              /*severity_hint=*/begin % 3 == 0 ? 1.0 : 0.1);
        }
      }
    });
  }
  for (int i = 0; i < 10; ++i) service.Flush();
  for (auto& producer : producers) producer.join();
  service.Flush();
  stop_swapping = true;
  trainer.join();

  EXPECT_TRUE(service.Errors().empty());
  const MetricsSnapshot snapshot = service.Metrics();
  // Everything admitted was scored exactly once, and losses reconcile with
  // the offered total.
  std::size_t scored = 0;
  for (const ShardMetrics& shard : snapshot.shards) {
    scored += shard.examples;
    EXPECT_LE(shard.queue_depth_peak, config.queue_capacity);
  }
  EXPECT_EQ(scored, snapshot.examples_seen);
  EXPECT_EQ(snapshot.examples_seen + snapshot.TotalShedExamples() +
                snapshot.TotalDroppedExamples(),
            2 * (600 / 20) * (kStreams / 2) * 20);
  EXPECT_EQ(snapshot.events, counting->count());
}

}  // namespace
}  // namespace omg::runtime
