// The observability layer: trace-ring wraparound and concurrent drain,
// tracer lanes + deterministic sampling, the Clock shim, Chrome trace
// serialisation, exporter escaping/formats, and occupancy accounting
// through the sharded service (the TSan job runs this binary — the
// drain-while-observing test exercises the seqlock slot protocol and the
// service test the tracer's shard/control lane split).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/assertion.hpp"
#include "obs/clock.hpp"
#include "obs/exporter.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_json.hpp"
#include "obs/trace_ring.hpp"
#include "obs/tracer.hpp"
#include "runtime/admission.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sharded_service.hpp"

namespace omg::obs {
namespace {

TraceEvent MakeEvent(std::uint64_t seq) {
  TraceEvent event;
  event.ts_ns = 1000 + seq;
  event.kind = TraceEventKind::kEvaluate;
  event.phase = TracePhase::kInstant;
  event.stream_id = 3;
  event.arg0 = seq;
  event.arg1 = 2 * seq;
  return event;
}

TEST(TraceEventTest, EncodeDecodeRoundTripsEveryKindAndPhase) {
  for (std::size_t k = 0; k < kTraceEventKinds; ++k) {
    for (const TracePhase phase :
         {TracePhase::kInstant, TracePhase::kBegin, TracePhase::kEnd}) {
      TraceEvent event;
      event.ts_ns = 123456789;
      event.kind = static_cast<TraceEventKind>(k);
      event.phase = phase;
      event.stream_id = 7;
      event.arg0 = 11;
      event.arg1 = 13;
      const TraceEvent back = TraceEvent::Decode(event.Encode());
      EXPECT_EQ(back.ts_ns, event.ts_ns);
      EXPECT_EQ(back.kind, event.kind);
      EXPECT_EQ(back.phase, event.phase);
      EXPECT_EQ(back.stream_id, event.stream_id);
      EXPECT_EQ(back.arg0, event.arg0);
      EXPECT_EQ(back.arg1, event.arg1);
    }
  }
}

TEST(TraceRingTest, WraparoundEvictsOldestKeepsNewestInOrder) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) ring.Push(MakeEvent(i));
  std::vector<TraceEvent> out;
  const TraceRing::DrainStats stats = ring.Drain(out);
  EXPECT_EQ(stats.recorded, 20u);
  EXPECT_EQ(stats.drained, 8u);
  EXPECT_EQ(stats.evicted, 12u);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].arg0, 12 + i);  // newest capacity-many, oldest first
  }
}

TEST(TraceRingTest, IncrementalDrainReturnsOnlyNewEvents) {
  TraceRing ring(16);
  for (std::uint64_t i = 0; i < 5; ++i) ring.Push(MakeEvent(i));
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(out).drained, 5u);
  for (std::uint64_t i = 5; i < 8; ++i) ring.Push(MakeEvent(i));
  out.clear();
  const TraceRing::DrainStats stats = ring.Drain(out);
  EXPECT_EQ(stats.drained, 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.front().arg0, 5u);
  out.clear();
  EXPECT_EQ(ring.Drain(out).drained, 0u);
}

// The seqlock protocol under fire: one producer pushing flat out, the
// consumer draining concurrently. Every event must be either drained
// exactly once, in order, or counted evicted — never torn, lost, or
// duplicated.
TEST(TraceRingTest, ConcurrentDrainWhileObservingAccountsEveryEvent) {
  TraceRing ring(64);
  constexpr std::uint64_t kTotal = 50000;
  std::atomic<bool> done{false};
  std::thread producer([&ring, &done] {
    for (std::uint64_t i = 0; i < kTotal; ++i) ring.Push(MakeEvent(i));
    done.store(true, std::memory_order_release);
  });

  std::uint64_t drained = 0;
  std::uint64_t evicted = 0;
  std::uint64_t next_expected = 0;  // arg0 must advance monotonically
  std::vector<TraceEvent> out;
  const auto drain_once = [&] {
    out.clear();
    const TraceRing::DrainStats stats = ring.Drain(out);
    drained += stats.drained;
    evicted += stats.evicted;
    for (const TraceEvent& event : out) {
      ASSERT_GE(event.arg0, next_expected);
      ASSERT_EQ(event.arg1, 2 * event.arg0);  // payload never torn
      next_expected = event.arg0 + 1;
    }
  };
  while (!done.load(std::memory_order_acquire)) drain_once();
  producer.join();
  drain_once();  // whatever the last concurrent drain missed

  EXPECT_EQ(drained + evicted, kTotal);
  EXPECT_EQ(ring.recorded(), kTotal);
}

TEST(TracerTest, SamplingIsDeterministicAndPerLane) {
  TracerOptions options;
  options.shard_lanes = 2;
  options.sample_every = 4;
  Tracer tracer(options);
  for (int tick = 0; tick < 8; ++tick) {
    EXPECT_EQ(tracer.SampleBatch(0), tick % 4 == 0) << "tick " << tick;
  }
  // Lane 1 owns its own counter: its first tick samples regardless of how
  // far lane 0 has advanced.
  EXPECT_TRUE(tracer.SampleBatch(1));

  // Disabling must not consume ticks: the schedule resumes where it
  // paused, so sampled traces stay reproducible across enable flips.
  tracer.set_enabled(false);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(tracer.SampleBatch(0));
  tracer.set_enabled(true);
  EXPECT_TRUE(tracer.SampleBatch(0));  // tick 8
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  TracerOptions options;
  options.enabled = false;
  Tracer tracer(options);
  tracer.EmitShard(0, TraceEventKind::kEvaluate, TracePhase::kBegin);
  tracer.EmitControl(TraceEventKind::kFlush, TracePhase::kBegin);
  const TraceSnapshot snapshot = tracer.Drain();
  ASSERT_EQ(snapshot.lanes.size(), 2u);  // one shard lane + control
  EXPECT_EQ(snapshot.lanes.front().name, "shard-0");
  EXPECT_EQ(snapshot.lanes.back().name, "control");
  EXPECT_EQ(snapshot.TotalEvents(), 0u);
}

std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t FakeNow() { return g_fake_now.load(std::memory_order_relaxed); }

TEST(ClockTest, InstallableSourceAndSaturatingElapsed) {
  Clock::InstallSource(&FakeNow);
  g_fake_now.store(123);
  EXPECT_EQ(Clock::NowNs(), 123u);
  g_fake_now.store(500);
  EXPECT_EQ(Clock::NowNs(), 500u);
  Clock::InstallSource(nullptr);  // back to steady_clock

  EXPECT_EQ(Clock::ElapsedNs(10, 250), 240u);
  EXPECT_EQ(Clock::ElapsedNs(250, 10), 0u);  // saturates, never wraps
  EXPECT_DOUBLE_EQ(Clock::ToSeconds(1500000000), 1.5);

  const std::uint64_t a = Clock::NowNs();
  const std::uint64_t b = Clock::NowNs();
  EXPECT_LE(a, b);
}

TEST(TracerTest, FakeClockStampsEmittedEvents) {
  Clock::InstallSource(&FakeNow);
  g_fake_now.store(777);
  TracerOptions options;
  Tracer tracer(options);
  tracer.EmitShard(0, TraceEventKind::kBatchDequeue, TracePhase::kInstant);
  g_fake_now.store(888);
  tracer.EmitControl(TraceEventKind::kFlush, TracePhase::kInstant);
  Clock::InstallSource(nullptr);

  const TraceSnapshot snapshot = tracer.Drain();
  ASSERT_EQ(snapshot.lanes.front().events.size(), 1u);
  EXPECT_EQ(snapshot.lanes.front().events.front().ts_ns, 777u);
  ASSERT_EQ(snapshot.lanes.back().events.size(), 1u);
  EXPECT_EQ(snapshot.lanes.back().events.front().ts_ns, 888u);
}

TEST(TraceJsonTest, WritesLaneTracksControlKindTracksAndStreamLabels) {
  TracerOptions options;
  options.shard_lanes = 1;
  Tracer tracer(options);
  tracer.EmitShard(0, TraceEventKind::kEvaluate, TracePhase::kBegin, 0, 32);
  tracer.EmitShard(0, TraceEventKind::kEvaluate, TracePhase::kEnd, 0, 32, 5);
  // Interleaved round/retrain spans (what the improvement loop's two
  // threads produce): span kinds become async events but keep their
  // "control:<kind>" track names.
  tracer.EmitControl(TraceEventKind::kRound, TracePhase::kBegin,
                     TraceEvent::kNoStream, 1, 40);
  tracer.EmitControl(TraceEventKind::kRetrain, TracePhase::kBegin,
                     TraceEvent::kNoStream, 16);
  tracer.EmitControl(TraceEventKind::kRound, TracePhase::kEnd,
                     TraceEvent::kNoStream, 1, 12);
  tracer.EmitControl(TraceEventKind::kRetrain, TracePhase::kEnd,
                     TraceEvent::kNoStream, 16, 2);

  std::ostringstream out;
  WriteChromeTrace(tracer.Drain(), out, {"video/cam-0"});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"shard-0\""), std::string::npos);
  EXPECT_NE(json.find("control:round"), std::string::npos);
  EXPECT_NE(json.find("control:retrain"), std::string::npos);
  EXPECT_NE(json.find("\"stream\":\"video/cam-0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  // round's tid differs from retrain's: find both thread_name records.
  const auto round_meta = json.find("control:round");
  const auto retrain_meta = json.find("control:retrain");
  ASSERT_NE(round_meta, std::string::npos);
  ASSERT_NE(retrain_meta, std::string::npos);
}

// Production timestamps are steady-clock ns since boot (~1e14 and up).
// Serialised at stream double precision they would all collapse to the
// same value; the writer must keep full sub-microsecond fidelity.
TEST(TraceJsonTest, TimestampsKeepFullPrecisionAtSteadyClockMagnitudes) {
  Clock::InstallSource(&FakeNow);
  TracerOptions options;
  options.shard_lanes = 1;
  Tracer tracer(options);
  const std::uint64_t t0 = 123456789012345678ull;  // ~4 years in ns
  g_fake_now.store(t0);
  tracer.EmitShard(0, TraceEventKind::kEvaluate, TracePhase::kBegin, 0, 8);
  g_fake_now.store(t0 + 1500);  // 1.5us later — must stay distinct
  tracer.EmitShard(0, TraceEventKind::kEvaluate, TracePhase::kEnd, 0, 8, 1);
  Clock::InstallSource(nullptr);

  std::ostringstream out;
  WriteChromeTrace(tracer.Drain(), out, {"video/cam-0"});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ts\":123456789012345.678"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ts\":123456789012347.178"), std::string::npos)
      << json;
  EXPECT_EQ(json.find("e+"), std::string::npos);  // no scientific notation
}

// Two Flush() callers may overlap, so same-kind control spans interleave
// B/B/E/E on the control lane. They must come out as async 'b'/'e' events
// with distinct FIFO-paired ids, not as stacked thread-track spans that
// would mis-nest in Perfetto.
TEST(TraceJsonTest, ConcurrentSameKindControlSpansBecomeAsyncEvents) {
  TracerOptions options;
  options.shard_lanes = 1;
  Tracer tracer(options);
  tracer.EmitControl(TraceEventKind::kFlush, TracePhase::kBegin);
  tracer.EmitControl(TraceEventKind::kFlush, TracePhase::kBegin);
  tracer.EmitControl(TraceEventKind::kFlush, TracePhase::kEnd);
  tracer.EmitControl(TraceEventKind::kFlush, TracePhase::kEnd);

  std::ostringstream out;
  WriteChromeTrace(tracer.Drain(), out, {});
  const std::string json = out.str();
  const auto count = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (auto at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"b\""), 2u) << json;
  EXPECT_EQ(count("\"ph\":\"e\""), 2u) << json;
  // Each span gets its own id; begin and end pair up (one 'b' + one 'e'
  // per id).
  EXPECT_EQ(count("\"id\":\"1\""), 2u) << json;
  EXPECT_EQ(count("\"id\":\"2\""), 2u) << json;
  // No synchronous B/E phases remain for the overlapping spans.
  EXPECT_EQ(count("\"ph\":\"B\""), 0u) << json;
  EXPECT_EQ(count("\"ph\":\"E\""), 0u) << json;
}

// ------------------------------------------------------------- exporter ---

/// A hand-built snapshot with every character the exporters must escape in
/// the qualified "<domain>/<name>" position.
runtime::MetricsSnapshot MakeNastySnapshot() {
  runtime::MetricsSnapshot snapshot;
  snapshot.examples_seen = 10;
  snapshot.events = 3;
  runtime::AssertionMetrics cell;
  cell.fires = 3;
  cell.max_severity = 2.0;
  cell.sum_severity = 4.5;
  const std::string nasty = "video/fl\"ick\\er\n";
  snapshot.assertions[nasty] = cell;
  runtime::StreamMetrics stream;
  stream.stream_id = 0;
  stream.stream = "cam\"0";
  stream.examples_seen = 10;
  stream.events = 3;
  stream.assertions[nasty] = cell;
  snapshot.streams.push_back(stream);
  runtime::ShardMetrics shard;
  shard.shard = 0;
  shard.batches = 2;
  shard.examples = 10;
  shard.events = 3;
  shard.busy_ns = 3000000;
  shard.idle_ns = 7000000;
  shard.queue_wait_ns = 1000000;
  snapshot.shards.push_back(shard);
  return snapshot;
}

TEST(ExporterTest, PrometheusEscapesLabelValues) {
  EXPECT_EQ(PrometheusEscapeLabel("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");

  std::ostringstream out;
  WritePrometheusText(MakeNastySnapshot(), out);
  const std::string text = out.str();
  // The qualified name survives as an escaped label value; '/' untouched.
  EXPECT_NE(
      text.find(
          "omg_assertion_fires_total{assertion=\"video/fl\\\"ick\\\\er\\n\"} 3"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("omg_stream_examples_total{stream=\"cam\\\"0\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP omg_examples_seen_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE omg_examples_seen_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("omg_shard_busy_ratio{shard=\"0\"} 0.3"),
            std::string::npos);
}

TEST(ExporterTest, JsonLineEscapesNamesAndCarriesOccupancy) {
  std::ostringstream out;
  WriteMetricsJsonLine(MakeNastySnapshot(), 42, out);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"ts_ns\":42"), std::string::npos);
  EXPECT_NE(line.find("\"video/fl\\\"ick\\\\er\\n\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"busy_seconds\":0.003"), std::string::npos);
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one line
}

TEST(ExporterTest, WritesAndRewritesFileSinks) {
  const std::string dir = ::testing::TempDir();
  const std::string jsonl = dir + "/omg_obs_test.metrics.jsonl";
  const std::string prom = dir + "/omg_obs_test.metrics.prom";
  {
    // Pre-existing JSONL content must be truncated at construction, not
    // appended to across runs.
    std::ofstream stale(jsonl);
    stale << "stale line\n";
  }
  MetricsExporterOptions options;
  options.period = std::chrono::milliseconds(5);
  options.jsonl_path = jsonl;
  options.prometheus_path = prom;
  MetricsExporter exporter(options, [] { return MakeNastySnapshot(); });
  EXPECT_EQ(exporter.ExportOnce(), 1u);
  EXPECT_EQ(exporter.ExportOnce(), 2u);

  std::ifstream jsonl_in(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl_in, line)) {
    EXPECT_NE(line.find("\"examples_seen\":10"), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);  // stale content gone, one line per export

  std::ifstream prom_in(prom);
  std::stringstream prom_text;
  prom_text << prom_in.rdbuf();
  // Rewritten per export: one copy of each family, not two.
  const std::string text = prom_text.str();
  const auto first = text.find("omg_examples_seen_total 10");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("omg_examples_seen_total 10", first + 1),
            std::string::npos);

  // Background thread: Start + Stop must add at least the final export.
  exporter.Start();
  exporter.Stop();
  EXPECT_GE(exporter.ExportOnce(), 4u);
  std::filesystem::remove(jsonl);
  std::filesystem::remove(prom);
}

// Stop() is documented as safe for concurrent callers: exactly one claims
// and joins the thread, the rest return. Racing Start()s must never
// resurrect the claimed thread (each run has its own stop token), so
// every Stop() call returns and no thread leaks past the destructor.
TEST(ExporterTest, ConcurrentStartStopNeverDoubleJoinsOrDeadlocks) {
  MetricsExporterOptions options;
  options.period = std::chrono::milliseconds(1);  // no file sinks
  MetricsExporter exporter(options, [] { return runtime::MetricsSnapshot{}; });
  for (int round = 0; round < 25; ++round) {
    exporter.Start();
    std::vector<std::thread> racers;
    for (int t = 0; t < 3; ++t) {
      racers.emplace_back([&exporter] { exporter.Stop(); });
    }
    racers.emplace_back([&exporter] { exporter.Start(); });
    for (std::thread& racer : racers) racer.join();
    exporter.Stop();  // quiesce whatever the racing Start left running
  }
}

// ------------------------------------- occupancy through the service ---

struct Tick {
  double value = 0.0;
};

TEST(OccupancyTest, ShardedServiceAccountsBusyIdleAndQueueWait) {
  runtime::ShardedRuntimeConfig config;
  config.shards = 2;
  config.window = 16;
  config.settle_lag = 4;
  config.queue_capacity = 1024;
  // This test pins the *pinned-stream* occupancy model (every batch scored
  // by its home worker); with stealing an idle neighbour may score a
  // shard's whole queue, legitimately leaving that shard's busy_ns at 0.
  config.stealing = false;
  TracerOptions trace_options;
  trace_options.shard_lanes = config.shards;
  trace_options.ring_capacity = 4096;
  config.tracer = std::make_shared<Tracer>(trace_options);

  runtime::ShardedMonitorService<Tick> service(config, [] {
    auto suite = std::make_shared<core::AssertionSuite<Tick>>();
    suite->AddPointwise("positive", [](const Tick& t) {
      return t.value > 0.5 ? t.value : 0.0;
    });
    return runtime::ShardedMonitorService<Tick>::SuiteBundle{suite, {}};
  });
  std::vector<runtime::StreamId> ids;
  for (int s = 0; s < 4; ++s) {
    ids.push_back(service.RegisterStream("s" + std::to_string(s)));
  }
  for (int round = 0; round < 50; ++round) {
    for (const runtime::StreamId id : ids) {
      std::vector<Tick> batch(8);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].value = static_cast<double>((round + static_cast<int>(i)) %
                                             3) -
                         1.0;
      }
      service.ObserveBatch(id, std::move(batch));
    }
  }
  service.Flush();
  ASSERT_TRUE(service.Errors().empty());

  const runtime::MetricsSnapshot snapshot = service.Metrics();
  std::size_t batches = 0;
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    batches += shard.batches;
    if (shard.batches == 0) continue;
    EXPECT_GT(shard.busy_ns, 0u) << "shard " << shard.shard;
    EXPECT_GT(shard.queue_wait_ns, 0u) << "shard " << shard.shard;
    EXPECT_GT(shard.busy_ns + shard.idle_ns, 0u);
    EXPECT_GT(shard.BusyFraction(), 0.0);
    EXPECT_LE(shard.BusyFraction(), 1.0);
    EXPECT_GT(shard.MeanServiceSeconds(), 0.0);
    EXPECT_GT(shard.MeanQueueWaitSeconds(), 0.0);
  }
  EXPECT_EQ(batches, 200u);

  // Tracing rode along at sample_every=1: every scored batch produced one
  // batch_dequeue instant and a balanced evaluate span on its shard lane.
  const TraceSnapshot trace = config.tracer->Drain();
  std::size_t dequeues = 0;
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const LaneTrace& lane : trace.lanes) {
    EXPECT_EQ(lane.evicted, 0u) << lane.name;
    for (const TraceEvent& event : lane.events) {
      if (event.kind == TraceEventKind::kBatchDequeue) ++dequeues;
      if (event.kind == TraceEventKind::kEvaluate) {
        if (event.phase == TracePhase::kBegin) ++begins;
        if (event.phase == TracePhase::kEnd) ++ends;
      }
    }
  }
  EXPECT_EQ(dequeues, 200u);
  EXPECT_EQ(begins, 200u);
  EXPECT_EQ(ends, 200u);
}

}  // namespace
}  // namespace omg::obs
