// Tests for the input-validation and perturbation assertion classes
// (Appendix B / Table 5 of the paper), including an end-to-end perturbation
// check against the ECG classifier.
#include <gtest/gtest.h>

#include <limits>

#include "core/assertion_classes.hpp"
#include "ecg/ecg.hpp"

namespace omg::core {
namespace {

struct Input {
  std::vector<double> features;
  int output = 0;
};

TEST(InputSchema, DimensionChecked) {
  InputSchema schema;
  schema.ExpectDimension(3);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{1, 2}), 1.0);
}

TEST(InputSchema, RangeChecked) {
  InputSchema schema;
  FieldConstraint c;
  c.name = "age";
  c.index = 0;
  c.min = 0.0;
  c.max = 120.0;
  schema.Field(c);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{42.0}), 0.0);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{-1.0}), 1.0);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{150.0}), 1.0);
}

TEST(InputSchema, BooleanFieldRejectsNonBinary) {
  InputSchema schema;
  schema.BooleanField("flag", 0);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{0.0}), 0.0);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{1.0}), 0.0);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{0.5}), 1.0);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{-1.0}), 1.0);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{2.0}), 1.0);
}

TEST(InputSchema, NonFiniteRejected) {
  InputSchema schema;
  FieldConstraint c;
  c.name = "x";
  c.index = 0;
  schema.Field(c);
  EXPECT_DOUBLE_EQ(
      schema.Violations(std::vector<double>{
          std::numeric_limits<double>::quiet_NaN()}),
      1.0);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{
                       std::numeric_limits<double>::infinity()}),
                   1.0);
}

TEST(InputSchema, MissingFieldCounts) {
  InputSchema schema;
  FieldConstraint c;
  c.name = "x";
  c.index = 5;
  schema.Field(c);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{1.0}), 1.0);
}

TEST(InputSchema, ViolationsAccumulate) {
  InputSchema schema;
  schema.ExpectDimension(2);
  schema.BooleanField("a", 0).BooleanField("b", 1);
  EXPECT_DOUBLE_EQ(schema.Violations(std::vector<double>{0.5, 3.0}), 2.0);
}

TEST(SchemaAssertion, RegistersAndFires) {
  AssertionSuite<Input> suite;
  InputSchema schema;
  schema.BooleanField("flag", 0);
  AddSchemaAssertion<Input>(suite, "schema", std::move(schema),
                            [](const Input& i) { return i.features; });
  const std::vector<Input> stream = {{{1.0}, 0}, {{0.7}, 1}, {{0.0}, 0}};
  const SeverityMatrix m = suite.CheckAll(stream);
  EXPECT_FALSE(m.Fired(0, 0));
  EXPECT_TRUE(m.Fired(1, 0));
  EXPECT_FALSE(m.Fired(2, 0));
}

TEST(PerturbationAssertion, CountsDisagreeingVariants) {
  AssertionSuite<Input> suite;
  // The "model" is output = sign bucket of feature 0; variants shift the
  // feature slightly.
  auto classify = [](const Input& i) { return i.features[0] > 0 ? 1 : 0; };
  AddPerturbationAssertion<Input>(
      suite, "noise-stable",
      [&](const Input& original) {
        std::vector<Input> variants;
        for (const double delta : {-0.1, 0.1}) {
          Input v = original;
          v.features[0] += delta;
          v.output = v.features[0] > 0 ? 1 : 0;
          variants.push_back(std::move(v));
        }
        return variants;
      },
      [&](const Input& a, const Input& b) {
        return classify(a) == classify(b);
      });
  // Far from the boundary: stable. Near the boundary: the +-0.1 variants
  // straddle it.
  const std::vector<Input> stream = {{{5.0}, 1}, {{0.05}, 1}, {{-4.0}, 0}};
  const SeverityMatrix m = suite.CheckAll(stream);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 1.0);  // the -0.1 variant flips the class
  EXPECT_DOUBLE_EQ(m.At(2, 0), 0.0);
}

TEST(PerturbationAssertion, EcgNoiseStabilityEndToEnd) {
  // Table 5, "Noise" row: small Gaussian noise should not affect time-
  // series classification. Windows flagged by this assertion should skew
  // toward the boundary-hugging hard records.
  ecg::EcgGenerator generator(ecg::EcgConfig{}, 9);
  const auto windows = generator.GenerateRecords(20);
  ecg::EcgClassifier classifier(ecg::EcgClassifierConfig{},
                                ecg::EcgConfig{}.feature_dim, 10);
  classifier.Pretrain(generator.PretrainingSet(500));

  AssertionSuite<ecg::EcgWindow> suite;
  auto rng = std::make_shared<common::Rng>(11);
  AddPerturbationAssertion<ecg::EcgWindow>(
      suite, "noise-stable",
      [rng](const ecg::EcgWindow& window) {
        std::vector<ecg::EcgWindow> variants;
        for (int v = 0; v < 3; ++v) {
          ecg::EcgWindow variant = window;
          for (double& f : variant.features) f += rng->Normal(0.0, 0.05);
          variants.push_back(std::move(variant));
        }
        return variants;
      },
      [&classifier](const ecg::EcgWindow& a, const ecg::EcgWindow& b) {
        return classifier.Predict(a) == classifier.Predict(b);
      });

  const SeverityMatrix m = suite.CheckAll(windows);
  std::size_t hard_fired = 0, clean_fired = 0, fired = 0;
  for (const std::size_t e : m.FlaggedExamples()) {
    ++fired;
    if (windows[e].hard_record) {
      ++hard_fired;
    } else {
      ++clean_fired;
    }
  }
  EXPECT_GT(fired, 0u) << "tiny noise should flip some boundary windows";
  std::size_t hard_total = 0;
  for (const auto& w : windows) hard_total += w.hard_record ? 1 : 0;
  // Firing rate on hard windows exceeds the rate on clean windows.
  const double hard_rate =
      static_cast<double>(hard_fired) / static_cast<double>(hard_total);
  const double clean_rate = static_cast<double>(clean_fired) /
                            static_cast<double>(windows.size() - hard_total);
  EXPECT_GT(hard_rate, clean_rate);
}

}  // namespace
}  // namespace omg::core
