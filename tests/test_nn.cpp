#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

namespace omg::nn {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(Matrix, BoundsChecked) {
  Matrix m(2, 3);
  EXPECT_THROW(m.At(2, 0), common::CheckError);
  EXPECT_THROW(m.At(0, 3), common::CheckError);
}

TEST(Matrix, DataSizeValidated) {
  EXPECT_THROW(Matrix(2, 2, {1.0, 2.0, 3.0}), common::CheckError);
}

TEST(Matrix, MatMulHandComputed) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(Matrix, MatMulShapeChecked) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.MatMul(b), common::CheckError);
}

TEST(Matrix, TransposedMatMulMatchesExplicit) {
  common::Rng rng(1);
  Matrix a(4, 3), b(4, 2);
  for (double& v : a.Data()) v = rng.Normal();
  for (double& v : b.Data()) v = rng.Normal();
  Matrix at(3, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) at.At(j, i) = a.At(i, j);
  }
  const Matrix expected = at.MatMul(b);
  const Matrix actual = a.TransposedMatMul(b);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(actual.At(i, j), expected.At(i, j), 1e-12);
    }
  }
}

TEST(Matrix, MatMulTransposedMatchesExplicit) {
  common::Rng rng(2);
  Matrix a(2, 3), b(4, 3);
  for (double& v : a.Data()) v = rng.Normal();
  for (double& v : b.Data()) v = rng.Normal();
  Matrix bt(3, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) bt.At(j, i) = b.At(i, j);
  }
  const Matrix expected = a.MatMul(bt);
  const Matrix actual = a.MatMulTransposed(b);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(actual.At(i, j), expected.At(i, j), 1e-12);
    }
  }
}

TEST(Matrix, AddScaled) {
  Matrix a(1, 2, {1.0, 2.0});
  Matrix b(1, 2, {10.0, 20.0});
  a.AddScaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 12.0);
}

TEST(Matrix, SquaredNorm) {
  Matrix a(1, 3, {1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 9.0);
}

TEST(Matrix, StackRows) {
  std::vector<std::vector<double>> rows = {{1, 2}, {3, 4}, {5, 6}};
  const Matrix m = StackRows(rows);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6.0);
}

TEST(Matrix, StackRowsRejectsRagged) {
  std::vector<std::vector<double>> rows = {{1, 2}, {3}};
  EXPECT_THROW(StackRows(rows), common::CheckError);
}

TEST(Softmax, SumsToOneAndOrders) {
  const auto p = Softmax(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, StableUnderLargeLogits) {
  const auto p = Softmax(std::vector<double>{1000.0, 1001.0});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Softmax, InvariantToShift) {
  const auto a = Softmax(std::vector<double>{1.0, 2.0});
  const auto b = Softmax(std::vector<double>{101.0, 102.0});
  EXPECT_NEAR(a[0], b[0], 1e-12);
}

TEST(Mlp, PredictProbaIsDistribution) {
  common::Rng rng(3);
  Mlp mlp(MlpConfig{4, {8}, 3}, rng);
  const std::vector<double> x = {0.1, -0.2, 0.3, 0.4};
  const auto p = mlp.PredictProba(x);
  ASSERT_EQ(p.size(), 3u);
  double sum = 0.0;
  for (const double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mlp, ConfidenceIsMaxProba) {
  common::Rng rng(3);
  Mlp mlp(MlpConfig{4, {8}, 3}, rng);
  const std::vector<double> x = {0.1, -0.2, 0.3, 0.4};
  const auto p = mlp.PredictProba(x);
  EXPECT_DOUBLE_EQ(mlp.Confidence(x),
                   *std::max_element(p.begin(), p.end()));
  EXPECT_EQ(mlp.Predict(x),
            static_cast<std::size_t>(
                std::max_element(p.begin(), p.end()) - p.begin()));
}

TEST(Mlp, ParameterCount) {
  common::Rng rng(3);
  Mlp mlp(MlpConfig{4, {8}, 3}, rng);
  // 4*8 + 8 + 8*3 + 3 = 67
  EXPECT_EQ(mlp.ParameterCount(), 67u);
}

TEST(Mlp, RejectsBadConfig) {
  common::Rng rng(3);
  EXPECT_THROW(Mlp(MlpConfig{0, {}, 2}, rng), common::CheckError);
  EXPECT_THROW(Mlp(MlpConfig{4, {}, 1}, rng), common::CheckError);
}

TEST(Mlp, InputDimChecked) {
  common::Rng rng(3);
  Mlp mlp(MlpConfig{4, {}, 2}, rng);
  EXPECT_THROW(mlp.PredictProba(std::vector<double>{1.0, 2.0}),
               common::CheckError);
}

// Gradient check: compare the trainer's analytic gradient step against a
// finite-difference estimate of the loss gradient.
TEST(Trainer, GradientMatchesFiniteDifferences) {
  common::Rng rng(5);
  Mlp mlp(MlpConfig{3, {5}, 2}, rng);
  Dataset data;
  common::Rng data_rng(6);
  for (int i = 0; i < 8; ++i) {
    data.Add({data_rng.Normal(), data_rng.Normal(), data_rng.Normal()},
             static_cast<std::size_t>(i % 2));
  }
  SgdConfig sgd;
  sgd.learning_rate = 1.0;  // step = -gradient exactly (momentum 0, l2 0)
  sgd.momentum = 0.0;
  sgd.l2 = 0.0;
  sgd.batch_size = data.size();
  sgd.epochs = 1;

  // Analytic gradient = (weights_before - weights_after) / lr.
  Mlp stepped = mlp;
  SoftmaxTrainer trainer(sgd);
  common::Rng train_rng(7);
  trainer.Train(stepped, data, train_rng);

  SoftmaxTrainer loss_eval(sgd);
  const double eps = 1e-6;
  int checked = 0;
  for (std::size_t l = 0; l < mlp.weights().size(); ++l) {
    for (std::size_t idx = 0; idx < std::min<std::size_t>(
                                  mlp.weights()[l].size(), 4);
         ++idx) {
      Mlp plus = mlp, minus = mlp;
      plus.weights()[l].Data()[idx] += eps;
      minus.weights()[l].Data()[idx] -= eps;
      const double fd = (loss_eval.Loss(plus, data) -
                         loss_eval.Loss(minus, data)) /
                        (2.0 * eps);
      const double analytic =
          mlp.weights()[l].Data()[idx] - stepped.weights()[l].Data()[idx];
      EXPECT_NEAR(analytic, fd, 1e-4)
          << "layer " << l << " index " << idx;
      ++checked;
    }
  }
  EXPECT_GE(checked, 8);
}

TEST(Trainer, LearnsLinearlySeparableData) {
  common::Rng rng(8);
  Mlp mlp(MlpConfig{2, {}, 2}, rng);
  Dataset data;
  common::Rng data_rng(9);
  for (int i = 0; i < 200; ++i) {
    const double x = data_rng.Normal();
    const double y = data_rng.Normal();
    data.Add({x + (i % 2 ? 2.0 : -2.0), y}, static_cast<std::size_t>(i % 2));
  }
  SoftmaxTrainer trainer(SgdConfig{0.1, 0.9, 1e-4, 16, 30});
  common::Rng train_rng(10);
  trainer.Train(mlp, data, train_rng);
  EXPECT_GT(Accuracy(mlp, data), 0.95);
}

TEST(Trainer, LearnsXorWithHiddenLayer) {
  common::Rng rng(12);
  Mlp mlp(MlpConfig{2, {12}, 2}, rng);
  Dataset data;
  common::Rng data_rng(13);
  for (int i = 0; i < 400; ++i) {
    const double x = data_rng.Uniform(-1.0, 1.0);
    const double y = data_rng.Uniform(-1.0, 1.0);
    data.Add({x, y}, (x > 0.0) == (y > 0.0) ? 1u : 0u);
  }
  SoftmaxTrainer trainer(SgdConfig{0.1, 0.9, 1e-5, 16, 120});
  common::Rng train_rng(14);
  trainer.Train(mlp, data, train_rng);
  EXPECT_GT(Accuracy(mlp, data), 0.9);
}

TEST(Trainer, TrainingReducesLoss) {
  common::Rng rng(15);
  Mlp mlp(MlpConfig{3, {8}, 3}, rng);
  Dataset data;
  common::Rng data_rng(16);
  for (int i = 0; i < 150; ++i) {
    const auto label = static_cast<std::size_t>(i % 3);
    data.Add({data_rng.Normal(label == 0 ? 2.0 : -1.0, 0.5),
              data_rng.Normal(label == 1 ? 2.0 : -1.0, 0.5),
              data_rng.Normal(label == 2 ? 2.0 : -1.0, 0.5)},
             label);
  }
  SoftmaxTrainer trainer(SgdConfig{0.05, 0.9, 1e-4, 16, 20});
  const double before = trainer.Loss(mlp, data);
  common::Rng train_rng(17);
  trainer.Train(mlp, data, train_rng);
  const double after = trainer.Loss(mlp, data);
  EXPECT_LT(after, before * 0.5);
}

TEST(Trainer, WeightedExamplesDominate) {
  // Two contradictory labelings of the same point: the heavier one wins.
  common::Rng rng(18);
  Mlp mlp(MlpConfig{1, {}, 2}, rng);
  Dataset data;
  data.Add({1.0}, 0, 0.05);
  data.Add({1.0}, 1, 1.0);
  SoftmaxTrainer trainer(SgdConfig{0.2, 0.0, 0.0, 2, 200});
  common::Rng train_rng(19);
  trainer.Train(mlp, data, train_rng);
  EXPECT_EQ(mlp.Predict(std::vector<double>{1.0}), 1u);
}

TEST(Trainer, EmptyDatasetIsNoOp) {
  common::Rng rng(20);
  Mlp mlp(MlpConfig{2, {}, 2}, rng);
  SoftmaxTrainer trainer(SgdConfig{});
  common::Rng train_rng(21);
  EXPECT_DOUBLE_EQ(trainer.Train(mlp, Dataset{}, train_rng), 0.0);
}

TEST(Dataset, AppendPreservesWeights) {
  Dataset a;
  a.Add({1.0}, 0);
  Dataset b;
  b.Add({2.0}, 1, 0.5);
  a.Append(b);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(a.weights.size(), 2u);
  EXPECT_DOUBLE_EQ(a.weights[0], 1.0);
  EXPECT_DOUBLE_EQ(a.weights[1], 0.5);
}

TEST(Dataset, UnweightedStaysCompact) {
  Dataset a;
  a.Add({1.0}, 0);
  a.Add({2.0}, 1);
  EXPECT_TRUE(a.weights.empty());
}

TEST(Trainer, DeterministicGivenSeeds) {
  auto run = [] {
    common::Rng rng(22);
    Mlp mlp(MlpConfig{2, {4}, 2}, rng);
    Dataset data;
    common::Rng data_rng(23);
    for (int i = 0; i < 50; ++i) {
      data.Add({data_rng.Normal(), data_rng.Normal()},
               static_cast<std::size_t>(i % 2));
    }
    SoftmaxTrainer trainer(SgdConfig{0.05, 0.9, 1e-4, 8, 5});
    common::Rng train_rng(24);
    return trainer.Train(mlp, data, train_rng);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

// Parameterized sweep: accuracy improves monotonically (statistically) with
// more data on a fixed separable task.
class TrainerDataScaling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrainerDataScaling, MoreDataNoWorse) {
  const std::size_t n = GetParam();
  common::Rng rng(30);
  Mlp mlp(MlpConfig{2, {8}, 2}, rng);
  Dataset train, test;
  common::Rng data_rng(31);
  auto sample = [&](Dataset& d, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const auto label = static_cast<std::size_t>(i % 2);
      d.Add({data_rng.Normal(label ? 1.0 : -1.0, 1.0),
             data_rng.Normal(label ? 1.0 : -1.0, 1.0)},
            label);
    }
  };
  sample(train, n);
  sample(test, 400);
  SoftmaxTrainer trainer(SgdConfig{0.05, 0.9, 1e-4, 16, 25});
  common::Rng train_rng(32);
  trainer.Train(mlp, train, train_rng);
  // Even the smallest budget should beat chance clearly; larger budgets
  // should approach the Bayes-ish rate on this task.
  EXPECT_GT(Accuracy(mlp, test), n >= 200 ? 0.80 : 0.65);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TrainerDataScaling,
                         ::testing::Values(50, 200, 800));

}  // namespace
}  // namespace omg::nn
