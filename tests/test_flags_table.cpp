#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

namespace omg::common {
namespace {

Flags ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "binary");
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags flags = ParseArgs({"--seed=42"});
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
}

TEST(Flags, SpaceForm) {
  const Flags flags = ParseArgs({"--seed", "42"});
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
}

TEST(Flags, BareBoolean) {
  const Flags flags = ParseArgs({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(Flags, BooleanValues) {
  EXPECT_FALSE(ParseArgs({"--x=false"}).GetBool("x", true));
  EXPECT_TRUE(ParseArgs({"--x=1"}).GetBool("x", false));
  EXPECT_THROW(ParseArgs({"--x=maybe"}).GetBool("x", false), CheckError);
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("s", "x"), "x");
  EXPECT_FALSE(flags.Has("n"));
}

TEST(Flags, DoubleParsing) {
  EXPECT_DOUBLE_EQ(ParseArgs({"--lr=0.05"}).GetDouble("lr", 0.0), 0.05);
  EXPECT_THROW(ParseArgs({"--lr=abc"}).GetDouble("lr", 0.0), CheckError);
}

TEST(Flags, IntRejectsGarbage) {
  EXPECT_THROW(ParseArgs({"--n=abc"}).GetInt("n", 0), CheckError);
}

TEST(Flags, IntListParsing) {
  EXPECT_EQ(ParseArgs({"--workers=1,2,4"}).GetIntList("workers", {}),
            (std::vector<std::int64_t>{1, 2, 4}));
  // A single integer is a one-element list (sweep of one configuration).
  EXPECT_EQ(ParseArgs({"--workers=8"}).GetIntList("workers", {}),
            (std::vector<std::int64_t>{8}));
  EXPECT_EQ(ParseArgs({}).GetIntList("workers", {4}),
            (std::vector<std::int64_t>{4}));
  EXPECT_THROW(ParseArgs({"--workers=1,x"}).GetIntList("workers", {}),
               CheckError);
  EXPECT_THROW(ParseArgs({"--workers=1,,2"}).GetIntList("workers", {}),
               CheckError);
  EXPECT_THROW(ParseArgs({"--workers=1,2,"}).GetIntList("workers", {}),
               CheckError);
}

TEST(Flags, PositionalArguments) {
  const Flags flags = ParseArgs({"pos1", "--a=1", "pos2"});
  EXPECT_EQ(flags.Positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(Flags, CheckAllowedRejectsUnknown) {
  const Flags flags = ParseArgs({"--seed=1", "--typo=2"});
  EXPECT_THROW(flags.CheckAllowed({"seed"}), CheckError);
  EXPECT_NO_THROW(flags.CheckAllowed({"seed", "typo"}));
}

TEST(Flags, MixedFlagsBeforeValueFlag) {
  const Flags flags = ParseArgs({"--a", "--b=2"});
  EXPECT_TRUE(flags.GetBool("a", false));  // --a followed by a flag is bare
  EXPECT_EQ(flags.GetInt("b", 0), 2);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("longer-name"), std::string::npos);
  EXPECT_NE(rendered.find("name"), std::string::npos);
  // All lines share the same column starts: the header "value" column must
  // begin at the same offset as "22".
  const auto header_pos = rendered.find("value");
  const auto cell_pos = rendered.find("22");
  const auto header_col = header_pos - rendered.rfind('\n', header_pos) - 1;
  const auto cell_col = cell_pos - rendered.rfind('\n', cell_pos) - 1;
  EXPECT_EQ(header_col, cell_col);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_EQ(table.RowCount(), 1u);
  EXPECT_NO_THROW(table.ToString());
}

TEST(Format, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(Format, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.464, 1), "46.4%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace omg::common
