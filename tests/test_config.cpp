// The declarative configuration layer (src/config/): spec parsing with
// positioned errors, typed-key coercion, unknown-key/section rejection,
// the assertion factory's schema validation, scenario loading, and the
// load-bearing guarantee of the whole layer — a config-built suite flags
// exactly like the equivalent programmatically-built suite.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "av/factory.hpp"
#include "config/assertion_factory.hpp"
#include "config/scenario.hpp"
#include "config/spec.hpp"
#include "ecg/factory.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/sharded_service.hpp"
#include "tvnews/factory.hpp"
#include "video/factory.hpp"

namespace {

using namespace omg;
using config::SpecDocument;
using config::SpecError;
using config::SpecValue;

// ------------------------------------------------------------------ parser --

TEST(SpecParser, RoundTripsSectionsAndTypedValues) {
  const SpecDocument doc = SpecDocument::Parse(R"(
# a comment
[scenario]
name = "mixed overload"   # trailing comment
shards = 4
floor = 1.5
live = true
policy = block

[stream cam-north]
examples = 240

[stream "quoted label"]
names = [a, b, c]
empty = []
)");
  ASSERT_EQ(doc.sections().size(), 3u);

  const config::SpecSection& scenario = doc.Require("scenario");
  EXPECT_EQ(scenario.GetString("name", ""), "mixed overload");
  EXPECT_EQ(scenario.GetInt("shards", 0), 4);
  EXPECT_DOUBLE_EQ(scenario.GetDouble("floor", 0.0), 1.5);
  EXPECT_TRUE(scenario.GetBool("live", false));
  EXPECT_EQ(scenario.GetString("policy", ""), "block");
  EXPECT_NO_THROW(scenario.RejectUnknownKeys());

  EXPECT_NE(doc.Find("stream", "cam-north"), nullptr);
  const config::SpecSection& quoted = doc.Require("stream", "quoted label");
  EXPECT_EQ(quoted.GetStringList("names", {}),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(quoted.GetStringList("empty", {"x"}).empty());
}

TEST(SpecParser, QuotedStringEscapes) {
  const SpecDocument doc = SpecDocument::Parse(
      "[s]\nv = \"a\\\"b\\\\c\\nd\\te\"\n");
  EXPECT_EQ(doc.Require("s").GetString("v", ""), "a\"b\\c\nd\te");
}

TEST(SpecParser, FallbacksApplyWhenAbsent) {
  const SpecDocument doc = SpecDocument::Parse("[s]\n");
  const config::SpecSection& s = doc.Require("s");
  EXPECT_EQ(s.GetInt("missing", 7), 7);
  EXPECT_EQ(s.GetString("missing", "x"), "x");
  EXPECT_EQ(s.GetStringList("missing", {"a"}),
            std::vector<std::string>{"a"});
}

TEST(SpecParser, CoercesIntToDoubleAndScalarToList) {
  const SpecDocument doc =
      SpecDocument::Parse("[s]\nfloor = 2\nnames = only\n");
  const config::SpecSection& s = doc.Require("s");
  EXPECT_DOUBLE_EQ(s.GetDouble("floor", 0.0), 2.0);
  EXPECT_EQ(s.GetStringList("names", {}), std::vector<std::string>{"only"});
}

TEST(SpecParser, TypeMismatchesCarryPosition) {
  const SpecDocument doc =
      SpecDocument::Parse("[s]\nshards = many\n", "demo.conf");
  try {
    doc.Require("s").GetInt("shards", 0);
    FAIL() << "expected SpecError";
  } catch (const SpecError& error) {
    EXPECT_EQ(error.line(), 2u);
    EXPECT_EQ(error.col(), 10u);  // points at the value, not the key
    EXPECT_NE(std::string(error.what()).find("demo.conf:2:10"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("expects an int"),
              std::string::npos);
  }
}

/// Asserts that parsing `text` throws a SpecError at (line, col).
void ExpectParseError(const std::string& text, std::size_t line,
                      std::size_t col, const std::string& needle) {
  try {
    SpecDocument::Parse(text);
    FAIL() << "expected SpecError for: " << text;
  } catch (const SpecError& error) {
    EXPECT_EQ(error.line(), line) << text;
    EXPECT_EQ(error.col(), col) << text;
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << error.what();
  }
}

TEST(SpecParser, MalformedInputErrorsCarryLineAndColumn) {
  ExpectParseError("[s]\nv = \"unterminated\n", 2, 5, "unterminated string");
  ExpectParseError("[s]\nv = 1 junk\n", 2, 7, "junk after value");
  ExpectParseError("[s]\nv = 1\nv = 2\n", 3, 1, "duplicate key");
  ExpectParseError("[s]\n[s]\n", 2, 1, "duplicate section");
  ExpectParseError("orphan = 1\n", 1, 1, "before any [section]");
  ExpectParseError("[s]\nv = [a, [b]]\n", 2, 9, "nested lists");
  ExpectParseError("[s]\nv = [a, b\n", 2, 10, "unterminated list");
  ExpectParseError("[s]\nv = 3x\n", 2, 5, "malformed number");
  ExpectParseError("[s]\nv = \"bad \\q\"\n", 2, 10, "unknown escape");
  ExpectParseError("[s]\nkey 5\n", 2, 5, "expected '='");
  ExpectParseError("[s]\nkey =\n", 2, 6, "missing value");
  ExpectParseError("[unclosed\n", 1, 10, "expected ']'");
}

TEST(SpecParser, RejectsUnknownKeysAtTheirPosition) {
  const SpecDocument doc =
      SpecDocument::Parse("[runtime]\nshards = 2\nshrads = 4\n");
  const config::SpecSection& s = doc.Require("runtime");
  s.GetInt("shards", 0);
  try {
    s.RejectUnknownKeys();
    FAIL() << "expected SpecError";
  } catch (const SpecError& error) {
    EXPECT_EQ(error.line(), 3u);
    EXPECT_NE(std::string(error.what()).find("unknown key 'shrads'"),
              std::string::npos);
  }
}

// ----------------------------------------------------------------- loader --

constexpr const char* kFullScenario = R"(
[scenario]
name = "full"
description = "every section exercised"

[runtime]
shards = 3
window = 32
settle_lag = 4
queue_capacity = 128

[admission]
policy = shed_below_severity
shed_floor = 0.75

[suite video]
assertions = [video.multibox, video.consistency]

[assertion video.multibox]
iou = 0.4

[suite ecg]
assertions = [ecg.oscillation]

[stream cam-a]
domain = video
examples = 100
batch = 10
seed = 7
severity_hint = 2.0

[stream ward-1]
domain = ecg
examples = 72
batch = 36
severity_hint = 0.25

[loop]
# disabled: an enabled loop requires block admission (tested below), but
# the round/oracle settings are read and validated either way.
enabled = false
strategy = bal-uncertainty
oracle = mixed
budget = 12
rounds = 3
weak_weight = 0.5
retrain_epochs = 9
)";

TEST(ConfigLoader, LoadsAFullScenario) {
  const config::ScenarioSpec scenario =
      config::ConfigLoader::Load(SpecDocument::Parse(kFullScenario));
  EXPECT_EQ(scenario.name, "full");
  EXPECT_EQ(scenario.runtime.shards, 3u);
  EXPECT_EQ(scenario.runtime.window, 32u);
  EXPECT_EQ(scenario.runtime.settle_lag, 4u);
  EXPECT_EQ(scenario.runtime.queue_capacity, 128u);
  EXPECT_EQ(scenario.admission.policy,
            runtime::AdmissionPolicy::kShedBelowSeverity);
  EXPECT_DOUBLE_EQ(scenario.admission.shed_floor, 0.75);

  ASSERT_EQ(scenario.suites.size(), 2u);
  const config::SuiteSpec* video = scenario.SuiteFor("video");
  ASSERT_NE(video, nullptr);
  ASSERT_EQ(video->assertions.size(), 2u);
  EXPECT_EQ(video->assertions[0].name, "video.multibox");
  EXPECT_DOUBLE_EQ(video->assertions[0].params.GetDouble("iou", 0.0), 0.4);
  EXPECT_EQ(video->assertions[1].name, "video.consistency");
  EXPECT_TRUE(video->assertions[1].params.entries().empty());

  ASSERT_EQ(scenario.streams.size(), 2u);
  EXPECT_EQ(scenario.streams[0].name, "cam-a");
  EXPECT_EQ(scenario.streams[0].domain, "video");
  EXPECT_EQ(scenario.streams[0].examples, 100u);
  EXPECT_EQ(scenario.streams[0].batch, 10u);
  EXPECT_EQ(scenario.streams[0].seed, 7u);
  EXPECT_EQ(scenario.streams[1].seed, 42u);  // default
  EXPECT_EQ(scenario.Domains(),
            (std::vector<std::string>{"video", "ecg"}));

  EXPECT_FALSE(scenario.loop.enabled);
  EXPECT_EQ(scenario.loop.strategy, "bal-uncertainty");
  EXPECT_EQ(scenario.loop.oracle, "mixed");
  EXPECT_EQ(scenario.loop.budget, 12u);
  EXPECT_EQ(scenario.loop.rounds, 3u);

  const runtime::ShardedRuntimeConfig runtime_config =
      config::ConfigLoader::MakeRuntimeConfig(scenario);
  EXPECT_EQ(runtime_config.shards, 3u);
  EXPECT_EQ(runtime_config.queue_capacity, 128u);
  EXPECT_EQ(runtime_config.admission,
            runtime::AdmissionPolicy::kShedBelowSeverity);
  EXPECT_DOUBLE_EQ(runtime_config.shed_floor, 0.75);
  EXPECT_NO_THROW(runtime_config.Validate());

  const loop::ImprovementLoopConfig loop_config =
      config::ConfigLoader::MakeLoopConfig(scenario.loop,
                                           {"multibox", "flicker", "appear"},
                                           nn::SgdConfig{});
  EXPECT_EQ(loop_config.round.budget, 12u);
  EXPECT_EQ(loop_config.retrain.sgd.epochs, 9u);  // retrain_epochs override
  EXPECT_EQ(loop_config.assertion_names.size(), 3u);
}

/// Asserts ConfigLoader::Load rejects `text` with `needle` in the message.
void ExpectLoadError(const std::string& text, const std::string& needle) {
  try {
    config::ConfigLoader::Load(SpecDocument::Parse(text));
    FAIL() << "expected SpecError containing: " << needle;
  } catch (const SpecError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << error.what();
  }
}

constexpr const char* kMinimal = R"(
[scenario]
name = base
[suite video]
assertions = [video.multibox]
[stream cam]
domain = video
)";

TEST(ConfigLoader, RejectsInvalidScenarios) {
  ExpectLoadError(std::string(kMinimal) + "[surprise]\n",
                  "unknown section kind [surprise]");
  ExpectLoadError(std::string(kMinimal) + "[runtime]\nshrads = 2\n",
                  "unknown key 'shrads'");
  ExpectLoadError(std::string(kMinimal) + "[admission]\npolicy = nope\n",
                  "unknown admission policy");
  ExpectLoadError(std::string(kMinimal) + "[loop]\nstrategy = greedy\n",
                  "unknown strategy 'greedy'");
  ExpectLoadError(std::string(kMinimal) + "[loop]\noracle = psychic\n",
                  "unknown oracle 'psychic'");
  ExpectLoadError(std::string(kMinimal) + "[stream lone]\ndomain = av\n",
                  "no [suite av]");
  ExpectLoadError(std::string(kMinimal) + "[assertion video.consistency]\n",
                  "not referenced by any suite");
  ExpectLoadError(std::string(kMinimal) + "[runtime]\nsettle_lag = 64\n",
                  "settle_lag");
  ExpectLoadError(
      std::string(kMinimal) + "[admission]\npolicy = shed_below_severity\n",
      "severity_hint below shed_floor");
  ExpectLoadError("[scenario]\nname = empty\n", "no [stream");
  ExpectLoadError(
      "[scenario]\nname = x\n[suite video]\nassertions = "
      "[video.multibox, video.multibox]\n[stream c]\ndomain = video\n",
      "listed twice");
  // Singleton sections must be unlabeled — a labeled [runtime] would
  // silently shadow the real one and bypass its key validation.
  ExpectLoadError(std::string(kMinimal) + "[runtime main]\nshards = 9\n",
                  "does not take a label");
  ExpectLoadError(std::string(kMinimal) + "[loop main]\nenabled = true\n",
                  "does not take a label");
  ExpectLoadError(std::string(kMinimal) + "[assertion]\n",
                  "[assertion] needs a name");
  // A suite no stream exercises would never be built or validated.
  ExpectLoadError(
      std::string(kMinimal) + "[suite av]\nassertions = [av.agree]\n",
      "has no [stream ...] with domain = av");
  // Lossy admission would desynchronise loop candidate keys from the
  // retained traffic.
  ExpectLoadError(std::string(kMinimal) +
                      "[admission]\npolicy = drop_oldest\n"
                      "[loop]\nenabled = true\n",
                  "requires block admission");
  // A batch larger than the shard queue could never be admitted.
  ExpectLoadError(std::string(kMinimal) + "[runtime]\nqueue_capacity = 16\n",
                  "exceeds [runtime] queue_capacity");
}

// ---------------------------------------------------------------- factory --

TEST(AssertionFactory, RejectsUnknownNamesAndParams) {
  config::AssertionFactory<video::VideoExample> factory;
  video::RegisterVideoAssertions(factory);
  EXPECT_TRUE(factory.Has("video.multibox"));
  EXPECT_FALSE(factory.Has("video.teleport"));

  {
    const config::ScenarioSpec scenario = config::ConfigLoader::Load(
        SpecDocument::Parse("[scenario]\nname = x\n[suite video]\n"
                            "assertions = [video.teleport]\n"
                            "[stream c]\ndomain = video\n"));
    EXPECT_THROW(config::BuildSuiteBundle(factory,
                                          *scenario.SuiteFor("video")),
                 SpecError);
  }
  {
    // Unknown parameter key: rejected by the schema, positioned at the key.
    const config::ScenarioSpec scenario = config::ConfigLoader::Load(
        SpecDocument::Parse("[scenario]\nname = x\n[suite video]\n"
                            "assertions = [video.multibox]\n"
                            "[assertion video.multibox]\noiu = 0.3\n"
                            "[stream c]\ndomain = video\n"));
    try {
      config::BuildSuiteBundle(factory, *scenario.SuiteFor("video"));
      FAIL() << "expected SpecError";
    } catch (const SpecError& error) {
      EXPECT_NE(std::string(error.what()).find("no parameter 'oiu'"),
                std::string::npos);
      EXPECT_EQ(error.line(), 6u);
    }
  }
  {
    // Declared type mismatch: iou is a double, a string must not coerce.
    const config::ScenarioSpec scenario = config::ConfigLoader::Load(
        SpecDocument::Parse("[scenario]\nname = x\n[suite video]\n"
                            "assertions = [video.multibox]\n"
                            "[assertion video.multibox]\niou = soft\n"
                            "[stream c]\ndomain = video\n"));
    EXPECT_THROW(config::BuildSuiteBundle(factory,
                                          *scenario.SuiteFor("video")),
                 SpecError);
  }
}

// ------------------------------------------------------------ equivalence --

/// A deterministic detection stream that exercises all three video
/// assertions: a stable car, a flickering car (absent every third frame),
/// a brief appearance, and one frame with a triple-overlap stack.
std::vector<video::VideoExample> FixedVideoStream() {
  const auto box = [](double x) {
    return geometry::Box2D{x, 100.0, x + 60.0, 140.0};
  };
  std::vector<video::VideoExample> examples;
  for (std::size_t i = 0; i < 40; ++i) {
    video::VideoExample example;
    example.frame_index = i;
    example.timestamp = 0.2 * static_cast<double>(i);
    example.detections.push_back({box(50.0 + 4.0 * i), "car", 0.9, 0});
    if (i % 3 != 2) {  // flickers out every third frame
      example.detections.push_back({box(400.0 + 4.0 * i), "car", 0.8, 1});
    }
    if (i >= 20 && i < 23) {  // brief appearance (< 1 s at 5 fps)
      example.detections.push_back({box(800.0), "car", 0.7, 2});
    }
    if (i == 30) {  // multibox stack: three mutually-overlapping boxes
      example.detections.push_back({box(601.0), "car", 0.6, 3});
      example.detections.push_back({box(602.0), "car", 0.6, 3});
      example.detections.push_back({box(603.0), "car", 0.6, 3});
    }
    examples.push_back(std::move(example));
  }
  return examples;
}

/// Serves `examples` as one stream through a 1-shard service built from
/// `bundle_factory` and returns the JSON-lines event log (a total order of
/// every flag the runtime emitted).
template <typename Example>
std::string FlagSequence(runtime::SuiteFactory<Example> bundle_factory,
                         const std::vector<Example>& examples) {
  runtime::ShardedRuntimeConfig config;
  config.shards = 1;
  config.window = 48;
  config.settle_lag = 8;
  config.queue_capacity = 4096;
  runtime::ShardedMonitorService<Example> service(config,
                                                  std::move(bundle_factory));
  std::ostringstream events;
  service.AddSink(std::make_shared<runtime::JsonLinesSink>(events));
  const runtime::StreamId id = service.RegisterStream("fixed");
  for (std::size_t begin = 0; begin < examples.size(); begin += 16) {
    const std::size_t count = std::min<std::size_t>(16, examples.size() - begin);
    service.ObserveBatch(id,
                         std::vector<Example>(examples.begin() + begin,
                                              examples.begin() + begin +
                                                  count));
  }
  service.Flush();
  EXPECT_TRUE(service.Errors().empty());
  return events.str();
}

TEST(ConfigEquivalence, VideoConfigSuiteFlagsIdenticallyToProgrammatic) {
  // The config mirrors BuildVideoSuite's defaults explicitly.
  const config::ScenarioSpec scenario =
      config::ConfigLoader::Load(SpecDocument::Parse(R"(
[scenario]
name = equivalence
[suite video]
assertions = [video.multibox, video.consistency]
[assertion video.multibox]
iou = 0.30
[assertion video.consistency]
temporal_threshold = 1.0
tracker_iou = 0.2
tracker_max_misses = 2
[stream fixed]
domain = video
)"));
  config::AssertionFactory<video::VideoExample> factory;
  video::RegisterVideoAssertions(factory);

  const std::vector<video::VideoExample> examples = FixedVideoStream();

  // Batch form: identical severity matrices...
  const runtime::SuiteBundle<video::VideoExample> from_config =
      config::BuildSuiteBundle(factory, *scenario.SuiteFor("video"));
  video::VideoSuite programmatic = video::BuildVideoSuite();
  EXPECT_EQ(from_config.suite->Names(), programmatic.suite.Names());
  const core::SeverityMatrix config_matrix =
      from_config.suite->CheckAll(examples);
  const core::SeverityMatrix programmatic_matrix =
      programmatic.suite.CheckAll(examples);
  ASSERT_GT(config_matrix.TotalFired(), 0u);  // the stream must exercise it
  ASSERT_EQ(config_matrix.num_examples(), programmatic_matrix.num_examples());
  for (std::size_t e = 0; e < config_matrix.num_examples(); ++e) {
    for (std::size_t a = 0; a < config_matrix.num_assertions(); ++a) {
      EXPECT_DOUBLE_EQ(config_matrix.At(e, a), programmatic_matrix.At(e, a));
    }
  }

  // ...and the streaming runtime emits the identical flag sequence.
  const std::string config_flags = FlagSequence<video::VideoExample>(
      config::MakeSuiteFactory(factory, *scenario.SuiteFor("video")),
      examples);
  const std::string programmatic_flags = FlagSequence<video::VideoExample>(
      [] {
        auto built =
            std::make_shared<video::VideoSuite>(video::BuildVideoSuite());
        return runtime::SuiteBundle<video::VideoExample>{
            std::shared_ptr<core::AssertionSuite<video::VideoExample>>(
                built, &built->suite),
            [built] { built->consistency->Invalidate(); }};
      },
      examples);
  EXPECT_FALSE(config_flags.empty());
  EXPECT_EQ(config_flags, programmatic_flags);
}

TEST(ConfigEquivalence, EcgConfigSuiteFlagsIdenticallyToProgrammatic) {
  // An oscillating class stream: one lone AF window (20 s from absence to
  // absence) which the 30 s threshold must flag; a later 50 s episode must
  // not fire.
  std::vector<ecg::EcgExample> examples;
  double t = 0.0;
  const auto add = [&](ecg::Rhythm rhythm, std::size_t windows) {
    for (std::size_t i = 0; i < windows; ++i) {
      examples.push_back({"rec-1", t, rhythm});
      t += 10.0;
    }
  };
  add(ecg::Rhythm::kNormal, 6);
  add(ecg::Rhythm::kAf, 1);  // absent -> present -> absent within 20 s
  add(ecg::Rhythm::kNormal, 6);
  add(ecg::Rhythm::kAf, 4);  // 50 s absence-to-absence -> legitimate
  add(ecg::Rhythm::kNormal, 6);

  config::AssertionFactory<ecg::EcgExample> factory;
  ecg::RegisterEcgAssertions(factory);
  const config::ScenarioSpec scenario =
      config::ConfigLoader::Load(SpecDocument::Parse(
          "[scenario]\nname = ecg-eq\n[suite ecg]\n"
          "assertions = [ecg.oscillation]\n"
          "[assertion ecg.oscillation]\ntemporal_threshold = 30.0\n"
          "[stream fixed]\ndomain = ecg\n"));
  const runtime::SuiteBundle<ecg::EcgExample> from_config =
      config::BuildSuiteBundle(factory, *scenario.SuiteFor("ecg"));
  ecg::EcgSuite programmatic = ecg::BuildEcgSuite();

  EXPECT_EQ(from_config.suite->Names(), programmatic.suite.Names());
  const core::SeverityMatrix config_matrix =
      from_config.suite->CheckAll(examples);
  const core::SeverityMatrix programmatic_matrix =
      programmatic.suite.CheckAll(examples);
  ASSERT_GT(config_matrix.TotalFired(), 0u);
  for (std::size_t e = 0; e < config_matrix.num_examples(); ++e) {
    EXPECT_DOUBLE_EQ(config_matrix.At(e, 0), programmatic_matrix.At(e, 0));
  }
}

TEST(ConfigEquivalence, AvAndNewsFactoriesMatchProgrammaticSuites) {
  // AV: one sample with an unmatched camera box (agree fires) and a
  // mutually-overlapping camera triple (multibox fires).
  av::AvExample sample;
  sample.camera.push_back({{100, 100, 160, 140}, "vehicle", 0.9, 0});
  sample.camera.push_back({{101, 100, 161, 140}, "vehicle", 0.8, 0});
  sample.camera.push_back({{102, 100, 162, 140}, "vehicle", 0.7, 0});
  sample.camera.push_back({{700, 100, 760, 140}, "vehicle", 0.9, 1});
  sample.lidar_projected.push_back({100, 100, 160, 140});
  const std::vector<av::AvExample> av_examples{sample};

  config::AssertionFactory<av::AvExample> av_factory;
  av::RegisterAvAssertions(av_factory);
  const config::ScenarioSpec av_scenario =
      config::ConfigLoader::Load(SpecDocument::Parse(
          "[scenario]\nname = av-eq\n[suite av]\n"
          "assertions = [av.agree, av.multibox]\n"
          "[stream fixed]\ndomain = av\n"));
  const runtime::SuiteBundle<av::AvExample> av_config =
      config::BuildSuiteBundle(av_factory, *av_scenario.SuiteFor("av"));
  av::AvSuite av_programmatic = av::BuildAvSuite();
  EXPECT_EQ(av_config.suite->Names(), av_programmatic.suite.Names());
  const core::SeverityMatrix av_matrix = av_config.suite->CheckAll(av_examples);
  const core::SeverityMatrix av_expected =
      av_programmatic.suite.CheckAll(av_examples);
  ASSERT_GT(av_matrix.TotalFired(), 0u);
  for (std::size_t a = 0; a < av_matrix.num_assertions(); ++a) {
    EXPECT_DOUBLE_EQ(av_matrix.At(0, a), av_expected.At(0, a));
  }

  // TV news: generated frames through both builds of the consistency suite.
  tvnews::NewsGenerator generator(tvnews::NewsConfig{}, 42);
  const std::vector<tvnews::NewsFrame> frames = generator.Generate(80);
  config::AssertionFactory<tvnews::NewsFrame> news_factory;
  tvnews::RegisterNewsAssertions(news_factory);
  const config::ScenarioSpec news_scenario =
      config::ConfigLoader::Load(SpecDocument::Parse(
          "[scenario]\nname = news-eq\n[suite tvnews]\n"
          "assertions = [tvnews.consistency]\n"
          "[stream fixed]\ndomain = tvnews\n"));
  const runtime::SuiteBundle<tvnews::NewsFrame> news_config =
      config::BuildSuiteBundle(news_factory,
                               *news_scenario.SuiteFor("tvnews"));
  tvnews::NewsSuite news_programmatic = tvnews::BuildNewsSuite();
  EXPECT_EQ(news_config.suite->Names(), news_programmatic.suite.Names());
  const core::SeverityMatrix news_matrix =
      news_config.suite->CheckAll(frames);
  const core::SeverityMatrix news_expected =
      news_programmatic.suite.CheckAll(frames);
  ASSERT_GT(news_matrix.TotalFired(), 0u);
  for (std::size_t e = 0; e < news_matrix.num_examples(); ++e) {
    for (std::size_t a = 0; a < news_matrix.num_assertions(); ++a) {
      EXPECT_DOUBLE_EQ(news_matrix.At(e, a), news_expected.At(e, a));
    }
  }
}

}  // namespace
