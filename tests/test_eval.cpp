#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "eval/detection_metrics.hpp"
#include "eval/stats.hpp"

namespace omg::eval {
namespace {

geometry::Box2D MakeBox(double x, double y, double w, double h) {
  return geometry::Box2D{x, y, x + w, y + h};
}

FrameEval PerfectFrame() {
  FrameEval frame;
  frame.truths = {{MakeBox(0, 0, 10, 10), "car"},
                  {MakeBox(30, 0, 10, 10), "car"}};
  frame.detections = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0},
                      {MakeBox(30, 0, 10, 10), "car", 0.8, 1}};
  return frame;
}

TEST(AveragePrecision, PerfectDetectorIsOne) {
  const std::vector<FrameEval> frames = {PerfectFrame()};
  EXPECT_DOUBLE_EQ(AveragePrecision(frames, "car"), 1.0);
}

TEST(AveragePrecision, NoDetectionsIsZero) {
  FrameEval frame;
  frame.truths = {{MakeBox(0, 0, 10, 10), "car"}};
  const std::vector<FrameEval> frames = {frame};
  EXPECT_DOUBLE_EQ(AveragePrecision(frames, "car"), 0.0);
}

TEST(AveragePrecision, UnknownClassIsZero) {
  const std::vector<FrameEval> frames = {PerfectFrame()};
  EXPECT_DOUBLE_EQ(AveragePrecision(frames, "bus"), 0.0);
}

TEST(AveragePrecision, HandComputedCase) {
  // Two truths; three detections ranked: TP (0.9), FP (0.8), TP (0.7).
  // PR points: (0.5, 1), (0.5, 0.5), (1.0, 2/3).
  // Interpolated AP = 0.5 * 1 + 0.5 * (2/3) = 5/6.
  FrameEval frame;
  frame.truths = {{MakeBox(0, 0, 10, 10), "car"},
                  {MakeBox(30, 0, 10, 10), "car"}};
  frame.detections = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0},
                      {MakeBox(60, 0, 10, 10), "car", 0.8, -1},
                      {MakeBox(30, 0, 10, 10), "car", 0.7, 1}};
  const std::vector<FrameEval> frames = {frame};
  EXPECT_NEAR(AveragePrecision(frames, "car"), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecision, DuplicateDetectionsCountAsFalsePositives) {
  FrameEval frame;
  frame.truths = {{MakeBox(0, 0, 10, 10), "car"}};
  // Two detections on one truth: the higher-confidence one matches, the
  // duplicate is a FP. PR: (1, 1), (1, 0.5) -> AP = 1.
  frame.detections = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0},
                      {MakeBox(0.5, 0, 10, 10), "car", 0.5, 0}};
  const std::vector<FrameEval> frames = {frame};
  EXPECT_DOUBLE_EQ(AveragePrecision(frames, "car"), 1.0);
}

TEST(AveragePrecision, HighRankedFalsePositiveHurtsMore) {
  FrameEval base;
  base.truths = {{MakeBox(0, 0, 10, 10), "car"}};
  base.detections = {{MakeBox(0, 0, 10, 10), "car", 0.5, 0}};

  FrameEval fp_above = base;
  fp_above.detections.push_back({MakeBox(50, 0, 10, 10), "car", 0.9, -1});
  FrameEval fp_below = base;
  fp_below.detections.push_back({MakeBox(50, 0, 10, 10), "car", 0.1, -1});

  const std::vector<FrameEval> above = {fp_above};
  const std::vector<FrameEval> below = {fp_below};
  EXPECT_LT(AveragePrecision(above, "car"),
            AveragePrecision(below, "car"));
}

TEST(AveragePrecision, InUnitInterval) {
  common::Rng rng(4);
  std::vector<FrameEval> frames;
  for (int f = 0; f < 20; ++f) {
    FrameEval frame;
    for (int t = 0; t < 3; ++t) {
      frame.truths.push_back(
          {MakeBox(rng.Uniform(0, 80), rng.Uniform(0, 80), 10, 10), "car"});
    }
    for (int d = 0; d < 4; ++d) {
      frame.detections.push_back(
          {MakeBox(rng.Uniform(0, 80), rng.Uniform(0, 80), 10, 10), "car",
           rng.Uniform(), -1});
    }
    frames.push_back(std::move(frame));
  }
  const double ap = AveragePrecision(frames, "car");
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);
}

TEST(MeanAveragePrecision, AveragesOverClasses) {
  FrameEval frame;
  frame.truths = {{MakeBox(0, 0, 10, 10), "car"},
                  {MakeBox(30, 0, 10, 10), "bus"}};
  // Perfect on car, blind on bus -> mAP = 0.5.
  frame.detections = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0}};
  const std::vector<FrameEval> frames = {frame};
  EXPECT_DOUBLE_EQ(MeanAveragePrecision(frames), 0.5);
}

TEST(MeanAveragePrecision, EmptyGroundTruthIsZero) {
  const std::vector<FrameEval> frames = {FrameEval{}};
  EXPECT_DOUBLE_EQ(MeanAveragePrecision(frames), 0.0);
}

TEST(PrecisionRecallCurve, MonotoneRecall) {
  common::Rng rng(5);
  std::vector<FrameEval> frames;
  for (int f = 0; f < 10; ++f) {
    FrameEval frame;
    frame.truths.push_back(
        {MakeBox(rng.Uniform(0, 50), rng.Uniform(0, 50), 10, 10), "car"});
    for (int d = 0; d < 3; ++d) {
      frame.detections.push_back(
          {MakeBox(rng.Uniform(0, 50), rng.Uniform(0, 50), 10, 10), "car",
           rng.Uniform(), -1});
    }
    frames.push_back(std::move(frame));
  }
  const auto curve = PrecisionRecallCurve(frames, "car");
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    EXPECT_LE(curve[i].confidence, curve[i - 1].confidence);
  }
}

TEST(MatchFrame, MarksDuplicatesIncorrect) {
  FrameEval frame;
  frame.truths = {{MakeBox(0, 0, 10, 10), "car"}};
  frame.detections = {{MakeBox(0, 0, 10, 10), "car", 0.9, 0},
                      {MakeBox(0.5, 0, 10, 10), "car", 0.5, 0}};
  const MatchResult match = MatchFrame(frame);
  EXPECT_TRUE(match.detection_correct[0]);
  EXPECT_FALSE(match.detection_correct[1]);
  EXPECT_TRUE(match.truth_matched[0]);
}

TEST(MatchFrame, LabelMismatchNotMatched) {
  FrameEval frame;
  frame.truths = {{MakeBox(0, 0, 10, 10), "car"}};
  frame.detections = {{MakeBox(0, 0, 10, 10), "bus", 0.9, 0}};
  const MatchResult match = MatchFrame(frame);
  EXPECT_FALSE(match.detection_correct[0]);
  EXPECT_FALSE(match.truth_matched[0]);
}

TEST(MatchFrame, IouThresholdRespected) {
  FrameEval frame;
  frame.truths = {{MakeBox(0, 0, 10, 10), "car"}};
  frame.detections = {{MakeBox(8, 0, 10, 10), "car", 0.9, 0}};
  EXPECT_FALSE(MatchFrame(frame, 0.5).detection_correct[0]);
  EXPECT_TRUE(MatchFrame(frame, 0.1).detection_correct[0]);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(SampleStddev(v), 1.2909944487, 1e-9);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.5);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(Percentile(std::vector<double>{}, 50.0), common::CheckError);
  EXPECT_THROW(Percentile(std::vector<double>{1.0}, 101.0),
               common::CheckError);
}

TEST(Stats, PercentileRankMidrank) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(PercentileRank(v, 2.0), 37.5);  // 1 below + 0.5 tie
  EXPECT_DOUBLE_EQ(PercentileRank(v, 5.0), 100.0);
  EXPECT_DOUBLE_EQ(PercentileRank(v, 0.0), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 3.0);
}

TEST(Stats, SummarizeTrials) {
  const std::vector<double> v = {1.0, 3.0};
  const TrialSummary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.trials, 2u);
  EXPECT_NEAR(s.stderr_mean, 1.0, 1e-12);
}

}  // namespace
}  // namespace omg::eval
