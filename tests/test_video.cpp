#include <gtest/gtest.h>

#include <map>

#include "video/assertions.hpp"
#include "video/detector.hpp"
#include "video/pipeline.hpp"
#include "video/world.hpp"

namespace omg::video {
namespace {

WorldConfig SmallWorld() {
  WorldConfig config;
  return config;
}

TEST(NightStreetWorld, DeterministicGivenSeed) {
  NightStreetWorld a(SmallWorld(), 42), b(SmallWorld(), 42);
  const auto fa = a.GenerateFrames(20);
  const auto fb = b.GenerateFrames(20);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i].proposals.size(), fb[i].proposals.size());
    for (std::size_t p = 0; p < fa[i].proposals.size(); ++p) {
      EXPECT_EQ(fa[i].proposals[p].features, fb[i].proposals[p].features);
    }
  }
}

TEST(NightStreetWorld, TruthsWithinFrameBounds) {
  NightStreetWorld world(SmallWorld(), 1);
  for (const auto& frame : world.GenerateFrames(100)) {
    for (const auto& truth : frame.truths) {
      EXPECT_GE(truth.box.x_min, 0.0);
      EXPECT_GE(truth.box.y_min, 0.0);
      EXPECT_LE(truth.box.x_max, SmallWorld().frame_width);
      EXPECT_LE(truth.box.y_max, SmallWorld().frame_height);
      EXPECT_TRUE(truth.box.Valid());
    }
  }
}

TEST(NightStreetWorld, TruthIdsParallelTruths) {
  NightStreetWorld world(SmallWorld(), 2);
  for (const auto& frame : world.GenerateFrames(50)) {
    EXPECT_EQ(frame.truths.size(), frame.truth_ids.size());
  }
}

TEST(NightStreetWorld, CarProposalsOverlapTheirTruth) {
  NightStreetWorld world(SmallWorld(), 3);
  for (const auto& frame : world.GenerateFrames(60)) {
    for (const auto& proposal : frame.proposals) {
      if (!proposal.is_car) continue;
      bool overlaps = false;
      for (std::size_t t = 0; t < frame.truths.size(); ++t) {
        if (frame.truth_ids[t] == proposal.truth_id &&
            geometry::Iou(proposal.box, frame.truths[t].box) > 0.4) {
          overlaps = true;
        }
      }
      EXPECT_TRUE(overlaps) << "car proposal detached from its truth";
    }
  }
}

TEST(NightStreetWorld, StreamsAreContinuous) {
  NightStreetWorld world(SmallWorld(), 4);
  const auto first = world.GenerateFrames(10);
  const auto second = world.GenerateFrames(10);
  EXPECT_EQ(second.front().index, first.back().index + 1);
  EXPECT_GT(second.front().timestamp, first.back().timestamp);
}

TEST(NightStreetWorld, LabelFrameMatchesProposals) {
  NightStreetWorld world(SmallWorld(), 5);
  const auto frames = world.GenerateFrames(5);
  const auto data = NightStreetWorld::LabelFrame(frames[2]);
  EXPECT_EQ(data.size(), frames[2].proposals.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data.labels[i] == 1, frames[2].proposals[i].is_car);
  }
}

TEST(NightStreetWorld, SubpopulationRejectsBadFractions) {
  WorldConfig config;
  config.frac_dark = 0.7;
  config.frac_reflective = 0.5;
  EXPECT_THROW(NightStreetWorld(config, 1), common::CheckError);
}

TEST(MultiboxSeverity, CountsTriples) {
  const geometry::Box2D base{0, 0, 10, 10};
  std::vector<geometry::Detection> dets;
  dets.push_back({base, "car", 0.9, 0});
  dets.push_back({base.Translated(1, 0), "car", 0.8, 1});
  EXPECT_DOUBLE_EQ(MultiboxSeverity(dets, 0.3), 0.0);  // only a pair
  dets.push_back({base.Translated(0, 1), "car", 0.7, 2});
  EXPECT_DOUBLE_EQ(MultiboxSeverity(dets, 0.3), 1.0);  // one triple
  dets.push_back({base.Translated(1, 1), "car", 0.6, 3});
  EXPECT_DOUBLE_EQ(MultiboxSeverity(dets, 0.3), 4.0);  // C(4,3) triples
}

TEST(MultiboxSeverity, DisjointBoxesNeverFire) {
  std::vector<geometry::Detection> dets;
  for (int i = 0; i < 5; ++i) {
    dets.push_back({geometry::Box2D{i * 100.0, 0, i * 100.0 + 10, 10},
                    "car", 0.9, i});
  }
  EXPECT_DOUBLE_EQ(MultiboxSeverity(dets, 0.3), 0.0);
}

TEST(VideoSuite, ColumnsAreNamed) {
  VideoSuite suite = BuildVideoSuite();
  EXPECT_EQ(suite.suite.Names(),
            (std::vector<std::string>{"multibox", "flicker", "appear"}));
}

TEST(VideoSuite, FlickerFiresOnSyntheticGap) {
  VideoSuite suite = BuildVideoSuite();
  const geometry::Box2D box{100, 100, 220, 170};
  std::vector<VideoExample> examples;
  for (std::size_t i = 0; i < 6; ++i) {
    VideoExample e;
    e.frame_index = i;
    e.timestamp = static_cast<double>(i) * 0.2;  // 5 fps
    if (i != 3) {
      e.detections.push_back({box.Translated(i * 2.0, 0), "car", 0.9, 0});
    }
    examples.push_back(std::move(e));
  }
  const core::SeverityMatrix m = suite.suite.CheckAll(examples);
  EXPECT_TRUE(m.Fired(3, suite.flicker_index));
  EXPECT_FALSE(m.Fired(2, suite.flicker_index));
}

TEST(VideoSuite, AppearFiresOnBriefTrack) {
  VideoSuite suite = BuildVideoSuite();
  std::vector<VideoExample> examples;
  for (std::size_t i = 0; i < 10; ++i) {
    VideoExample e;
    e.frame_index = i;
    e.timestamp = static_cast<double>(i) * 0.2;
    // A stable long-lived car everywhere...
    e.detections.push_back(
        {geometry::Box2D{10, 10, 100, 60}, "car", 0.9, 0});
    // ...plus a ghost visible only on frames 4-5.
    if (i == 4 || i == 5) {
      e.detections.push_back(
          {geometry::Box2D{500, 300, 650, 400}, "car", 0.95, -1});
    }
    examples.push_back(std::move(e));
  }
  const core::SeverityMatrix m = suite.suite.CheckAll(examples);
  EXPECT_TRUE(m.Fired(4, suite.appear_index));
  EXPECT_TRUE(m.Fired(5, suite.appear_index));
  EXPECT_FALSE(m.Fired(0, suite.appear_index));
}

TEST(ExtractVideoRecords, TracksAcrossFrames) {
  const geometry::Box2D box{100, 100, 220, 170};
  std::vector<VideoExample> examples;
  for (std::size_t i = 0; i < 3; ++i) {
    VideoExample e;
    e.frame_index = i;
    e.timestamp = static_cast<double>(i) * 0.2;
    e.detections.push_back({box.Translated(i * 3.0, 0), "car", 0.9, 0});
    examples.push_back(std::move(e));
  }
  const auto extraction =
      ExtractVideoRecords(examples, geometry::TrackerConfig{});
  ASSERT_EQ(extraction.records.size(), 3u);
  EXPECT_EQ(extraction.records[0].identifier,
            extraction.records[2].identifier);
  EXPECT_EQ(extraction.frames.size(), 3u);
}

// Pipeline fixture with a small configuration for fast tests.
VideoPipelineConfig SmallPipelineConfig() {
  VideoPipelineConfig config;
  config.pool_frames = 220;
  config.test_frames = 60;
  config.pretrain_positives = 300;
  config.pretrain_negatives = 400;
  return config;
}

class VideoPipelineTest : public ::testing::Test {
 protected:
  VideoPipelineTest() : pipeline_(SmallPipelineConfig()) {}
  VideoPipeline pipeline_;
};

TEST_F(VideoPipelineTest, PretrainedModelDetectsEasyCars) {
  // Pretrained mAP must be meaningfully above zero but visibly imperfect —
  // the systematic-error headroom the paper's experiments rely on.
  const double map = pipeline_.Evaluate();
  EXPECT_GT(map, 0.3);
  EXPECT_LT(map, 0.97);
}

TEST_F(VideoPipelineTest, AssertionsFireOnPretrainedModel) {
  const core::SeverityMatrix m = pipeline_.ComputeSeverities();
  const auto counts = m.FireCounts();
  EXPECT_GT(counts[pipeline_.suite().flicker_index], 0u)
      << "dark cars should flicker under the pretrained model";
  EXPECT_GT(counts[pipeline_.suite().appear_index], 0u)
      << "reflections should appear briefly";
}

TEST_F(VideoPipelineTest, ConfidencesInUnitInterval) {
  for (const double c : pipeline_.Confidences()) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST_F(VideoPipelineTest, LabelingFlaggedFramesImprovesMap) {
  const double before = pipeline_.Evaluate();
  const core::SeverityMatrix m = pipeline_.ComputeSeverities();
  auto flagged = m.FlaggedExamples();
  if (flagged.size() > 60) flagged.resize(60);
  pipeline_.LabelAndTrain(flagged);
  const double after = pipeline_.Evaluate();
  EXPECT_GT(after, before + 0.02);
}

TEST_F(VideoPipelineTest, ResetRestoresPretrainedState) {
  const double before = pipeline_.Evaluate();
  const core::SeverityMatrix m = pipeline_.ComputeSeverities();
  auto flagged = m.FlaggedExamples();
  if (flagged.size() > 40) flagged.resize(40);
  pipeline_.LabelAndTrain(flagged);
  pipeline_.Reset(SmallPipelineConfig().world_seed ^
                  0x9E3779B97F4A7C15ULL);
  EXPECT_NEAR(pipeline_.Evaluate(), before, 1e-9);
}

TEST_F(VideoPipelineTest, WeakSupervisionImprovesMap) {
  const auto result = RunVideoWeakSupervision(pipeline_, 75, 25, 11);
  EXPECT_GT(result.weak_positives + result.weak_negatives, 0u);
  EXPECT_GT(result.weakly_supervised_metric,
            result.pretrained_metric);
}

TEST_F(VideoPipelineTest, HighConfidenceErrorsFound) {
  const auto rows = AnalyzeHighConfidenceErrors(pipeline_, 10);
  ASSERT_EQ(rows.size(), 3u);
  bool any = false;
  for (const auto& row : rows) {
    for (const double pct : row.percentiles) {
      EXPECT_GE(pct, 0.0);
      EXPECT_LE(pct, 100.0);
      any = true;
    }
  }
  EXPECT_TRUE(any);
  // The top-ranked appear error (a reflection) should be high-confidence.
  for (const auto& row : rows) {
    if (row.assertion == "appear" && !row.percentiles.empty()) {
      EXPECT_GT(row.percentiles.front(), 60.0);
    }
  }
}

TEST_F(VideoPipelineTest, AssertionPrecisionIsHigh) {
  const auto samples = MeasureVideoAssertionPrecision(pipeline_, 50, 3);
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& sample : samples) {
    ASSERT_GT(sample.sampled, 0u) << sample.assertion;
    const double precision =
        static_cast<double>(sample.correct_model_output) /
        static_cast<double>(sample.sampled);
    EXPECT_GT(precision, 0.7) << sample.assertion;
    EXPECT_GE(sample.correct_with_identifier, sample.correct_model_output);
  }
}

}  // namespace
}  // namespace omg::video
