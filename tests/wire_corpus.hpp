// Table-driven corrupt-frame corpus shared by the wire tests (test_net.cpp
// feeds these to DecodeFrame / FrameAssembler) and the trace-file tests
// (test_replay.cpp splices them into trace files and asserts positioned
// rejection). One table, two decode paths — a corruption class the network
// path rejects is rejected identically when it arrives from disk.
//
// Every case is derived from one caller-supplied well-formed kData frame,
// so the corpus composes with any domain's codec payload.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "serve/result.hpp"

namespace omg::testing {

/// One corrupted (or boundary-valid) frame with its expected verdict.
struct CorruptFrameCase {
  std::string name;
  std::vector<std::uint8_t> bytes;
  /// Expected decode error code; meaningless when `valid`.
  serve::ErrorCode expected = serve::ErrorCode::kTruncatedFrame;
  /// Whether a FrameAssembler can keep framing the stream afterwards.
  bool fatal = true;
  /// Expected DecodeFailure::lost_examples: the header's count only when
  /// the header itself passed its CRC (payload corruption), else 0.
  std::uint32_t lost_examples = 0;
  /// True for length-prefix truncations: DecodeFrame says kTruncatedFrame,
  /// a FrameAssembler just reports NeedMore until more bytes arrive.
  bool truncated = false;
  /// True for boundary cases that must DECODE SUCCESSFULLY (zero-count
  /// DATA frame, exactly-max-size payload).
  bool valid = false;
};

/// Builds the corpus from `frame`, a well-formed kData frame whose header
/// declares `count` examples. Covers: truncation at every header field
/// boundary (and mid-payload), a flipped byte in every header offset
/// class, a flipped payload byte, a zero-count DATA frame, and an
/// exactly-`max_frame_bytes` payload plus its over-by-one rejection.
inline std::vector<CorruptFrameCase> CorruptFrameCorpus(
    std::span<const std::uint8_t> frame, std::uint32_t count,
    std::size_t max_frame_bytes) {
  std::vector<CorruptFrameCase> corpus;
  const auto whole = std::vector<std::uint8_t>(frame.begin(), frame.end());

  // Truncations: cut at the start, inside every header field, one byte
  // short of the full header, and (when there is a payload) mid-payload.
  std::vector<std::size_t> cuts = {0,  3,  5,  7,  15, 23,
                                   31, 39, 43, 47, 51, 59,
                                   net::FrameHeader::kBytes - 1};
  if (whole.size() > net::FrameHeader::kBytes) {
    cuts.push_back(net::FrameHeader::kBytes +
                   (whole.size() - net::FrameHeader::kBytes) / 2);
    cuts.push_back(whole.size() - 1);
  }
  for (const std::size_t cut : cuts) {
    CorruptFrameCase c;
    c.name = "truncated_at_" + std::to_string(cut);
    c.bytes.assign(whole.begin(),
                   whole.begin() + static_cast<std::ptrdiff_t>(cut));
    c.expected = serve::ErrorCode::kTruncatedFrame;
    c.truncated = true;
    corpus.push_back(std::move(c));
  }

  // A flipped byte in every header offset class. Magic/version/type have
  // dedicated diagnostics (checked before the header CRC); everything else
  // in [8, 64) — including the count field, the payload CRC word, and the
  // header CRC itself — must fail the header CRC with zero lost examples:
  // a corrupted header's count is never trusted.
  struct Flip {
    std::size_t offset;
    const char* field;
    serve::ErrorCode expected;
  };
  const Flip flips[] = {
      {0, "magic", serve::ErrorCode::kBadMagic},
      {4, "version", serve::ErrorCode::kBadVersion},
      {6, "type", serve::ErrorCode::kUnknownFrameType},
      {8, "seq", serve::ErrorCode::kCrcMismatch},
      {16, "session", serve::ErrorCode::kCrcMismatch},
      {24, "stream", serve::ErrorCode::kCrcMismatch},
      {32, "domain", serve::ErrorCode::kCrcMismatch},
      {40, "count", serve::ErrorCode::kCrcMismatch},
      {44, "payload_length", serve::ErrorCode::kCrcMismatch},
      {48, "payload_crc", serve::ErrorCode::kCrcMismatch},
      {52, "hint", serve::ErrorCode::kCrcMismatch},
      {60, "header_crc", serve::ErrorCode::kCrcMismatch},
  };
  for (const Flip& flip : flips) {
    CorruptFrameCase c;
    c.name = std::string("flipped_") + flip.field;
    c.bytes = whole;
    c.bytes[flip.offset] ^= 0xFF;
    c.expected = flip.expected;
    corpus.push_back(std::move(c));
  }

  // Payload corruption: framing stays intact, the payload CRC catches it,
  // and the (CRC-verified) header count is the trustworthy loss figure.
  if (whole.size() > net::FrameHeader::kBytes) {
    CorruptFrameCase c;
    c.name = "flipped_payload_byte";
    c.bytes = whole;
    c.bytes.back() ^= 0xFF;
    c.expected = serve::ErrorCode::kCrcMismatch;
    c.fatal = false;
    c.lost_examples = count;
    corpus.push_back(std::move(c));
  }

  // Boundary-valid and boundary-invalid sizes, rebuilt from the template
  // header so CRCs are correct for the new payload.
  const serve::Result<net::FrameHeader> header =
      net::DecodeHeader({whole.data(), net::FrameHeader::kBytes});
  if (header.ok()) {
    {
      CorruptFrameCase c;
      c.name = "zero_count_data_frame";
      net::FrameHeader zero = header.value();
      zero.count = 0;
      c.bytes = net::EncodeFrame(zero, {});
      c.valid = true;
      c.fatal = false;
      corpus.push_back(std::move(c));
    }
    {
      CorruptFrameCase c;
      c.name = "max_size_payload";
      const std::vector<std::uint8_t> payload(max_frame_bytes, 0x5A);
      c.bytes = net::EncodeFrame(header.value(), payload);
      c.valid = true;
      c.fatal = false;
      corpus.push_back(std::move(c));
    }
    {
      CorruptFrameCase c;
      c.name = "payload_over_limit_by_one";
      const std::vector<std::uint8_t> payload(max_frame_bytes + 1, 0x5A);
      c.bytes = net::EncodeFrame(header.value(), payload);
      c.expected = serve::ErrorCode::kOversizedFrame;
      // The header passed its CRC, so its declared count is a trustworthy
      // loss figure even though the payload is refused.
      c.lost_examples = count;
      corpus.push_back(std::move(c));
    }
  }
  return corpus;
}

}  // namespace omg::testing
