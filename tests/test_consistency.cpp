#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/consistency.hpp"
#include "core/consistency_adapter.hpp"

namespace omg::core {
namespace {

// Builds frames 0..n-1 at 1 Hz in one group.
std::vector<ConsistencyFrame> LinearFrames(std::size_t n,
                                           const std::string& group = "g",
                                           double period = 1.0) {
  std::vector<ConsistencyFrame> frames;
  for (std::size_t i = 0; i < n; ++i) {
    frames.push_back({i, static_cast<double>(i) * period, group});
  }
  return frames;
}

ConsistencyRecord MakeRecord(std::size_t example, double ts,
                             const std::string& id,
                             const std::string& group = "g") {
  ConsistencyRecord r;
  r.example_index = example;
  r.output_index = 0;
  r.timestamp = ts;
  r.group = group;
  r.identifier = id;
  return r;
}

TEST(ConsistencyEngine, AssertionNamesFollowConfig) {
  ConsistencyConfig config;
  config.attribute_keys = {"gender", "hair"};
  config.temporal_threshold = 30.0;
  const ConsistencyEngine engine(config);
  EXPECT_EQ(engine.AssertionNames(),
            (std::vector<std::string>{"consistent:gender",
                                      "consistent:hair", "flicker",
                                      "appear"}));
}

TEST(ConsistencyEngine, NoTemporalColumnsWhenDisabled) {
  ConsistencyConfig config;
  config.attribute_keys = {"k"};
  const ConsistencyEngine engine(config);
  EXPECT_EQ(engine.AssertionNames(),
            (std::vector<std::string>{"consistent:k"}));
}

TEST(ConsistencyEngine, AttributeMismatchFlagsMinority) {
  ConsistencyConfig config;
  config.attribute_keys = {"gender"};
  const ConsistencyEngine engine(config);
  auto frames = LinearFrames(3);
  std::vector<ConsistencyRecord> records;
  for (std::size_t i = 0; i < 3; ++i) {
    auto r = MakeRecord(i, static_cast<double>(i), "alice");
    r.attributes.emplace_back("gender", i == 1 ? "male" : "female");
    records.push_back(std::move(r));
  }
  const auto result = engine.Analyze(frames, records, 3);
  EXPECT_DOUBLE_EQ(result.severities[0][0], 0.0);
  EXPECT_DOUBLE_EQ(result.severities[0][1], 1.0);
  EXPECT_DOUBLE_EQ(result.severities[0][2], 0.0);
  ASSERT_EQ(result.corrections.size(), 1u);
  EXPECT_EQ(result.corrections[0].kind, CorrectionKind::kSetAttribute);
  EXPECT_EQ(result.corrections[0].proposed_value, "female");
  EXPECT_EQ(result.corrections[0].example_index, 1u);
}

TEST(ConsistencyEngine, ConsistentAttributesDoNotFire) {
  ConsistencyConfig config;
  config.attribute_keys = {"gender"};
  const ConsistencyEngine engine(config);
  auto frames = LinearFrames(3);
  std::vector<ConsistencyRecord> records;
  for (std::size_t i = 0; i < 3; ++i) {
    auto r = MakeRecord(i, static_cast<double>(i), "alice");
    r.attributes.emplace_back("gender", "female");
    records.push_back(std::move(r));
  }
  const auto result = engine.Analyze(frames, records, 3);
  EXPECT_TRUE(result.corrections.empty());
  for (const double s : result.severities[0]) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(ConsistencyEngine, DifferentIdentifiersNotCompared) {
  ConsistencyConfig config;
  config.attribute_keys = {"gender"};
  const ConsistencyEngine engine(config);
  auto frames = LinearFrames(2);
  std::vector<ConsistencyRecord> records;
  auto a = MakeRecord(0, 0.0, "alice");
  a.attributes.emplace_back("gender", "female");
  auto b = MakeRecord(1, 1.0, "bob");
  b.attributes.emplace_back("gender", "male");
  records.push_back(a);
  records.push_back(b);
  const auto result = engine.Analyze(frames, records, 2);
  EXPECT_TRUE(result.corrections.empty());
}

TEST(ConsistencyEngine, DifferentGroupsNotCompared) {
  ConsistencyConfig config;
  config.attribute_keys = {"gender"};
  const ConsistencyEngine engine(config);
  std::vector<ConsistencyFrame> frames = {{0, 0.0, "g1"}, {1, 0.0, "g2"}};
  std::vector<ConsistencyRecord> records;
  auto a = MakeRecord(0, 0.0, "alice", "g1");
  a.attributes.emplace_back("gender", "female");
  auto b = MakeRecord(1, 0.0, "alice", "g2");
  b.attributes.emplace_back("gender", "male");
  records.push_back(a);
  records.push_back(b);
  const auto result = engine.Analyze(frames, records, 2);
  EXPECT_TRUE(result.corrections.empty());
}

TEST(ConsistencyEngine, UnlistedAttributeKeysIgnored) {
  ConsistencyConfig config;
  config.attribute_keys = {"gender"};
  const ConsistencyEngine engine(config);
  auto frames = LinearFrames(2);
  std::vector<ConsistencyRecord> records;
  for (std::size_t i = 0; i < 2; ++i) {
    auto r = MakeRecord(i, static_cast<double>(i), "alice");
    r.attributes.emplace_back("hair", i == 0 ? "black" : "blond");
    records.push_back(std::move(r));
  }
  const auto result = engine.Analyze(frames, records, 2);
  EXPECT_TRUE(result.corrections.empty());
}

// ---- Temporal assertions ----

ConsistencyEngine TemporalEngine(double threshold) {
  ConsistencyConfig config;
  config.temporal_threshold = threshold;
  return ConsistencyEngine(config);
}

TEST(ConsistencyEngine, FlickerFiresOnShortGap) {
  const auto engine = TemporalEngine(3.0);
  auto frames = LinearFrames(6);
  // Present 0,1, absent 2, present 3,4,5 -> gap of 2 s < 3 s.
  std::vector<ConsistencyRecord> records;
  for (const std::size_t i : {0u, 1u, 3u, 4u, 5u}) {
    records.push_back(MakeRecord(i, static_cast<double>(i), "car-1"));
  }
  const auto result = engine.Analyze(frames, records, 6);
  const auto& flicker = result.severities[0];
  EXPECT_DOUBLE_EQ(flicker[2], 1.0);
  EXPECT_DOUBLE_EQ(flicker[1], 0.0);
  EXPECT_DOUBLE_EQ(flicker[3], 0.0);
  // One add-output correction for the gap frame.
  ASSERT_EQ(result.corrections.size(), 1u);
  EXPECT_EQ(result.corrections[0].kind, CorrectionKind::kAddOutput);
  EXPECT_EQ(result.corrections[0].example_index, 2u);
  EXPECT_FALSE(result.corrections[0].support_records.empty());
}

TEST(ConsistencyEngine, LongGapIsNotFlicker) {
  const auto engine = TemporalEngine(3.0);
  auto frames = LinearFrames(10);
  // Present 0,1, absent 2..5 (gap 4 s >= 3 s), present 6..9.
  std::vector<ConsistencyRecord> records;
  for (const std::size_t i : {0u, 1u, 6u, 7u, 8u, 9u}) {
    records.push_back(MakeRecord(i, static_cast<double>(i), "car-1"));
  }
  const auto result = engine.Analyze(frames, records, 10);
  for (const double s : result.severities[0]) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(ConsistencyEngine, AppearFiresOnBriefEpisode) {
  const auto engine = TemporalEngine(3.5);
  auto frames = LinearFrames(8);
  // Absent 0..2, present 3,4, absent 5..7: the episode spans 3 s between
  // the bounding absences (t=2 to t=5), under the 3.5 s threshold.
  std::vector<ConsistencyRecord> records = {MakeRecord(3, 3.0, "ghost"),
                                            MakeRecord(4, 4.0, "ghost")};
  const auto result = engine.Analyze(frames, records, 8);
  const auto& appear = result.severities[1];
  EXPECT_DOUBLE_EQ(appear[3], 1.0);
  EXPECT_DOUBLE_EQ(appear[4], 1.0);
  EXPECT_DOUBLE_EQ(appear[2], 0.0);
  // Remove-output corrections for both episode records.
  ASSERT_EQ(result.corrections.size(), 2u);
  for (const auto& c : result.corrections) {
    EXPECT_EQ(c.kind, CorrectionKind::kRemoveOutput);
  }
}

TEST(ConsistencyEngine, LongEpisodeDoesNotAppear) {
  const auto engine = TemporalEngine(3.0);
  auto frames = LinearFrames(10);
  std::vector<ConsistencyRecord> records;
  for (std::size_t i = 2; i <= 7; ++i) {
    records.push_back(MakeRecord(i, static_cast<double>(i), "car-1"));
  }
  const auto result = engine.Analyze(frames, records, 10);
  for (const double s : result.severities[1]) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(ConsistencyEngine, BoundaryEpisodesNotFlagged) {
  const auto engine = TemporalEngine(3.0);
  auto frames = LinearFrames(6);
  // Present only at the very start and the very end: their true extent is
  // unknown, so neither is flagged as a brief appearance.
  std::vector<ConsistencyRecord> records = {MakeRecord(0, 0.0, "a"),
                                            MakeRecord(5, 5.0, "b")};
  const auto result = engine.Analyze(frames, records, 6);
  for (const double s : result.severities[1]) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(ConsistencyEngine, FlickerGapOfTwoFrames) {
  const auto engine = TemporalEngine(5.0);
  auto frames = LinearFrames(8);
  std::vector<ConsistencyRecord> records;
  for (const std::size_t i : {0u, 1u, 4u, 5u, 6u, 7u}) {
    records.push_back(MakeRecord(i, static_cast<double>(i), "car-1"));
  }
  const auto result = engine.Analyze(frames, records, 8);
  EXPECT_DOUBLE_EQ(result.severities[0][2], 1.0);
  EXPECT_DOUBLE_EQ(result.severities[0][3], 1.0);
  EXPECT_EQ(result.corrections.size(), 2u);
}

TEST(ConsistencyEngine, MultipleEntitiesIndependent) {
  const auto engine = TemporalEngine(3.0);
  auto frames = LinearFrames(6);
  std::vector<ConsistencyRecord> records;
  // car-1 present everywhere; car-2 flickers at frame 2.
  for (std::size_t i = 0; i < 6; ++i) {
    records.push_back(MakeRecord(i, static_cast<double>(i), "car-1"));
  }
  for (const std::size_t i : {0u, 1u, 3u, 4u, 5u}) {
    records.push_back(MakeRecord(i, static_cast<double>(i), "car-2"));
  }
  const auto result = engine.Analyze(frames, records, 6);
  EXPECT_DOUBLE_EQ(result.severities[0][2], 1.0);  // only car-2's gap
}

TEST(ConsistencyEngine, SeverityCountsMultipleViolations) {
  const auto engine = TemporalEngine(3.0);
  auto frames = LinearFrames(6);
  std::vector<ConsistencyRecord> records;
  // Two entities both flicker at frame 2 -> severity 2 there.
  for (const auto* id : {"car-1", "car-2"}) {
    for (const std::size_t i : {0u, 1u, 3u, 4u, 5u}) {
      records.push_back(MakeRecord(i, static_cast<double>(i), id));
    }
  }
  const auto result = engine.Analyze(frames, records, 6);
  EXPECT_DOUBLE_EQ(result.severities[0][2], 2.0);
}

TEST(ConsistencyEngine, RejectsOutOfRangeIndices) {
  const auto engine = TemporalEngine(3.0);
  auto frames = LinearFrames(2);
  std::vector<ConsistencyRecord> records = {MakeRecord(5, 0.0, "x")};
  EXPECT_THROW(engine.Analyze(frames, records, 2), common::CheckError);
}

TEST(ConsistencyEngine, RecordWithoutFrameRejected) {
  const auto engine = TemporalEngine(3.0);
  std::vector<ConsistencyFrame> frames = {{0, 0.0, "g"}};
  // Record in a group that has frames, but at an example index that is not
  // on that group's timeline.
  std::vector<ConsistencyRecord> records = {MakeRecord(1, 1.0, "x")};
  EXPECT_THROW(engine.Analyze(frames, records, 2), common::CheckError);
}

// Parameterized: threshold semantics — a gap of `gap` seconds fires iff
// gap < T.
class FlickerThreshold
    : public ::testing::TestWithParam<std::pair<double, bool>> {};

TEST_P(FlickerThreshold, GapFiresIffBelowThreshold) {
  const auto [threshold, should_fire] = GetParam();
  const auto engine = TemporalEngine(threshold);
  auto frames = LinearFrames(7);
  // Gap spans frames 2,3 -> absent from t=2 to t=4, duration 2 s
  // (measured last-seen -> next-seen).
  std::vector<ConsistencyRecord> records;
  for (const std::size_t i : {0u, 1u, 4u, 5u, 6u}) {
    records.push_back(MakeRecord(i, static_cast<double>(i), "car-1"));
  }
  const auto result = engine.Analyze(frames, records, 7);
  const bool fired = result.severities[0][2] > 0.0;
  EXPECT_EQ(fired, should_fire);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, FlickerThreshold,
    ::testing::Values(std::pair{1.0, false},   // gap 3 s >= 1 s
                      std::pair{3.0, false},   // gap 3 s >= 3 s
                      std::pair{3.01, true},   // gap 3 s < 3.01 s
                      std::pair{10.0, true}));

// ---- Adapter ----

struct ToyExample {
  double timestamp = 0.0;
  bool present = false;
};

ConsistencyExtraction ExtractToy(std::span<const ToyExample> examples) {
  ConsistencyExtraction extraction;
  for (std::size_t e = 0; e < examples.size(); ++e) {
    extraction.frames.push_back({e, examples[e].timestamp, "g"});
    if (examples[e].present) {
      ConsistencyRecord r;
      r.example_index = e;
      r.output_index = 0;
      r.timestamp = examples[e].timestamp;
      r.group = "g";
      r.identifier = "obj";
      extraction.records.push_back(std::move(r));
    }
  }
  return extraction;
}

TEST(ConsistencyAdapter, GeneratesSuiteColumns) {
  AssertionSuite<ToyExample> suite;
  ConsistencyConfig config;
  config.temporal_threshold = 3.0;
  auto analyzer = AddConsistencyAssertion<ToyExample>(
      suite, config, [](std::span<const ToyExample> ex) {
        return ExtractToy(ex);
      });
  EXPECT_EQ(suite.Names(), (std::vector<std::string>{"flicker", "appear"}));

  std::vector<ToyExample> stream;
  for (std::size_t i = 0; i < 6; ++i) {
    stream.push_back({static_cast<double>(i), i != 2});
  }
  const SeverityMatrix m = suite.CheckAll(stream);
  EXPECT_TRUE(m.Fired(2, 0));   // flicker at the gap
  EXPECT_FALSE(m.Fired(2, 1));  // not an appear
  EXPECT_EQ(analyzer->Corrections(stream).size(), 1u);
}

TEST(ConsistencyAdapter, NamePrefixApplied) {
  AssertionSuite<ToyExample> suite;
  ConsistencyConfig config;
  config.temporal_threshold = 3.0;
  AddConsistencyAssertion<ToyExample>(
      suite, config,
      [](std::span<const ToyExample> ex) { return ExtractToy(ex); },
      "news:");
  EXPECT_EQ(suite.Names(),
            (std::vector<std::string>{"news:flicker", "news:appear"}));
}

TEST(ConsistencyAdapter, EmptyConfigRejected) {
  AssertionSuite<ToyExample> suite;
  EXPECT_THROW(AddConsistencyAssertion<ToyExample>(
                   suite, ConsistencyConfig{},
                   [](std::span<const ToyExample> ex) {
                     return ExtractToy(ex);
                   }),
               common::CheckError);
}

TEST(ConsistencyAdapter, InvalidateForcesReanalysis) {
  ConsistencyConfig config;
  config.temporal_threshold = 3.0;
  ConsistencyAnalyzer<ToyExample> analyzer(
      config,
      [](std::span<const ToyExample> ex) { return ExtractToy(ex); });
  std::vector<ToyExample> stream;
  for (std::size_t i = 0; i < 6; ++i) {
    stream.push_back({static_cast<double>(i), i != 2});
  }
  const auto& first = analyzer.Analyze(stream);
  EXPECT_DOUBLE_EQ(first.severities[0][2], 1.0);
  // Mutate the stream in place (same pointer/size): without Invalidate the
  // cache would serve the stale result.
  stream[2].present = true;
  analyzer.Invalidate();
  const auto& second = analyzer.Analyze(stream);
  EXPECT_DOUBLE_EQ(second.severities[0][2], 0.0);
}

}  // namespace
}  // namespace omg::core
