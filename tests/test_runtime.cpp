#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/assertion.hpp"
#include "core/monitor.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/incremental.hpp"
#include "runtime/metrics.hpp"
#include "runtime/service.hpp"
#include "runtime/stream_registry.hpp"
#include "runtime/thread_pool.hpp"

namespace omg::runtime {
namespace {

struct Tick {
  double value = 0.0;
};

/// A deterministic per-stream signal (streams differ by seed).
std::vector<Tick> MakeStream(std::uint64_t seed, std::size_t n) {
  common::Rng rng(seed);
  std::vector<Tick> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stream.push_back(Tick{rng.Uniform(-2.0, 2.0)});
  }
  return stream;
}

/// A suite mixing all three assertion classes the evaluator handles:
/// pointwise (radius 0), bounded stream-level (radius 1 and 2), and — when
/// `with_unbounded` — a whole-window assertion with no declared radius.
void PopulateSuite(core::AssertionSuite<Tick>& suite, bool with_unbounded) {
  suite.AddPointwise("positive",
                     [](const Tick& t) { return t.value > 1.0 ? t.value : 0.0; });
  suite.AddFunction(
      "rising",
      [](std::span<const Tick> stream) {
        std::vector<double> severities(stream.size(), 0.0);
        for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
          if (stream[i + 1].value > stream[i].value + 1.5) severities[i] = 1.0;
        }
        return severities;
      },
      /*temporal_radius=*/1);
  suite.AddFunction(
      "local-jump",
      [](std::span<const Tick> stream) {
        std::vector<double> severities(stream.size(), 0.0);
        for (std::size_t i = 2; i < stream.size(); ++i) {
          const double jump = std::abs(stream[i].value - stream[i - 2].value);
          if (jump > 3.0) severities[i] = jump;
        }
        return severities;
      },
      /*temporal_radius=*/2);
  if (with_unbounded) {
    // Unbounded (no declared radius) but *append-stable*: example i's score
    // depends on the whole prefix [0, i] and never changes as later
    // examples arrive, so settled streaming verdicts match batch scores.
    suite.AddFunction("above-prefix-mean", [](std::span<const Tick> stream) {
      std::vector<double> severities(stream.size(), 0.0);
      double sum = 0.0;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        sum += stream[i].value;
        const double mean = sum / static_cast<double>(i + 1);
        if (stream[i].value > mean + 1.0) severities[i] = 1.0;
      }
      return severities;
    });
  }
}

using Firing = std::tuple<std::size_t, std::string, double>;

/// Ground truth: run the suite in batch over the whole stream and keep the
/// firings for examples old enough to have settled.
std::vector<Firing> SettledBatchFirings(std::span<const Tick> stream,
                                        std::size_t settle_lag,
                                        bool with_unbounded) {
  core::AssertionSuite<Tick> suite;
  PopulateSuite(suite, with_unbounded);
  const core::SeverityMatrix matrix = suite.CheckAll(stream);
  const auto names = suite.Names();
  std::vector<Firing> firings;
  if (stream.size() <= settle_lag) return firings;
  for (std::size_t e = 0; e + settle_lag < stream.size(); ++e) {
    for (std::size_t a = 0; a < names.size(); ++a) {
      if (matrix.Fired(e, a)) firings.emplace_back(e, names[a], matrix.At(e, a));
    }
  }
  return firings;
}

// ------------------------------------------------------------ ThreadPool ---

TEST(ThreadPool, ExecutesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit(static_cast<std::size_t>(i), [&] { ++done; });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, SameShardRunsInFifoOrder) {
  ThreadPool pool(3);
  std::vector<int> order;  // only shard 1 writes, single worker => no race
  for (int i = 0; i < 50; ++i) {
    pool.Submit(1, [&order, i] { order.push_back(i); });
  }
  pool.Drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, DistinctShardsRunConcurrently) {
  // Two tasks that each wait for the other's side-effect would deadlock if
  // the pool serialized shards; give them a shared rendezvous instead.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  for (int shard = 0; shard < 2; ++shard) {
    pool.Submit(static_cast<std::size_t>(shard), [&] {
      ++arrived;
      while (arrived.load() < 2) std::this_thread::yield();
    });
  }
  pool.Drain();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPool, RejectsZeroWorkersAndNullTasks) {
  EXPECT_THROW(ThreadPool(0), common::CheckError);
  ThreadPool pool(1);
  EXPECT_THROW(pool.Submit(0, ThreadPool::Task{}), common::CheckError);
}

// ------------------------------------------- IncrementalWindowEvaluator ---

TEST(IncrementalEvaluator, MatchesBatchForAnyChunking) {
  const std::size_t n = 200;
  const std::size_t settle_lag = 4;
  const auto stream = MakeStream(17, n);
  // Window covers the whole stream so even the unbounded assertion sees
  // exactly what batch CheckAll sees.
  const auto expected = SettledBatchFirings(stream, settle_lag, true);
  ASSERT_FALSE(expected.empty());

  for (const std::size_t batch_size : {1ul, 3ul, 7ul, 50ul, n}) {
    core::AssertionSuite<Tick> suite;
    PopulateSuite(suite, true);
    IncrementalWindowEvaluator<Tick> evaluator(
        suite, {/*window=*/n + 8, settle_lag, {}});
    const auto names = suite.Names();
    std::vector<Firing> got;
    for (std::size_t begin = 0; begin < n; begin += batch_size) {
      const std::size_t count = std::min(batch_size, n - begin);
      std::vector<Tick> batch(stream.begin() + begin,
                              stream.begin() + begin + count);
      evaluator.ObserveBatch(std::move(batch),
                             [&](std::size_t g, std::size_t a, double s) {
                               got.emplace_back(g, names[a], s);
                             });
    }
    EXPECT_EQ(got, expected) << "batch_size=" << batch_size;
  }
}

TEST(IncrementalEvaluator, SlidingWindowExactForBoundedAssertions) {
  // With only radius-bounded assertions, a small window must still
  // reproduce full-stream batch scores: the suffix re-scoring always keeps
  // the 2r context each score needs.
  const std::size_t n = 300;
  const std::size_t settle_lag = 4;
  const auto stream = MakeStream(23, n);
  const auto expected = SettledBatchFirings(stream, settle_lag, false);
  ASSERT_FALSE(expected.empty());

  for (const std::size_t batch_size : {1ul, 5ul, 64ul}) {
    core::AssertionSuite<Tick> suite;
    PopulateSuite(suite, false);
    IncrementalWindowEvaluator<Tick> evaluator(suite,
                                               {/*window=*/16, settle_lag, {}});
    const auto names = suite.Names();
    std::vector<Firing> got;
    for (std::size_t begin = 0; begin < n; begin += batch_size) {
      const std::size_t count = std::min(batch_size, n - begin);
      std::vector<Tick> batch(stream.begin() + begin,
                              stream.begin() + begin + count);
      evaluator.ObserveBatch(std::move(batch),
                             [&](std::size_t g, std::size_t a, double s) {
                               got.emplace_back(g, names[a], s);
                             });
    }
    EXPECT_EQ(got, expected) << "batch_size=" << batch_size;
  }
}

TEST(IncrementalEvaluator, InvokesInvalidationHookForUnboundedOnly) {
  core::AssertionSuite<Tick> bounded_suite;
  PopulateSuite(bounded_suite, false);
  std::size_t hook_calls = 0;
  IncrementalWindowEvaluator<Tick> bounded_eval(
      bounded_suite, {8, 2, [&] { ++hook_calls; }});
  for (int i = 0; i < 5; ++i) bounded_eval.Observe(Tick{0.0}, [](auto...) {});
  // The first chunk primes the bounded columns with one full-window pass.
  EXPECT_EQ(hook_calls, 0u);

  core::AssertionSuite<Tick> unbounded_suite;
  PopulateSuite(unbounded_suite, true);
  IncrementalWindowEvaluator<Tick> unbounded_eval(
      unbounded_suite, {8, 2, [&] { ++hook_calls; }});
  for (int i = 0; i < 5; ++i) {
    unbounded_eval.Observe(Tick{0.0}, [](auto...) {});
  }
  EXPECT_EQ(hook_calls, 5u);  // once per ingested chunk
}

TEST(IncrementalEvaluator, EmitsLateFiringsDiscoveredAfterSettling) {
  // An unbounded assertion can turn positive on an example only after that
  // example has already passed the settle boundary (the paper's ECG blip:
  // an A -> B -> A oscillation is only detectable when A reappears). Such
  // firings must still be emitted — late, once — as the seed monitor did.
  core::AssertionSuite<Tick> suite;
  suite.AddFunction("echo", [](std::span<const Tick> stream) {
    std::vector<double> severities(stream.size(), 0.0);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      for (std::size_t j = i + 1; j < stream.size(); ++j) {
        if (stream[j].value == stream[i].value) severities[i] = 1.0;
      }
    }
    return severities;
  });
  IncrementalWindowEvaluator<Tick> evaluator(suite,
                                             {/*window=*/16,
                                              /*settle_lag=*/1, {}});
  std::vector<Firing> got;
  for (const double value : {5.0, 1.0, 2.0, 5.0}) {
    evaluator.Observe(Tick{value}, [&](std::size_t g, std::size_t a, double s) {
      got.emplace_back(g, suite.Names()[a], s);
    });
  }
  // Example 0 settled at head 1 scoring 0; the echo at example 3 flips it
  // positive afterwards — emitted late, exactly once.
  EXPECT_EQ(got, (std::vector<Firing>{{0, "echo", 1.0}}));
}

TEST(IncrementalEvaluator, RejectsNonFiniteSeverity) {
  core::AssertionSuite<Tick> suite;
  suite.AddFunction("inf", [](std::span<const Tick> stream) {
    return std::vector<double>(stream.size(),
                               std::numeric_limits<double>::infinity());
  });
  IncrementalWindowEvaluator<Tick> evaluator(suite, {8, 1, {}});
  EXPECT_THROW(evaluator.Observe(Tick{1.0}, [](auto...) {}),
               common::CheckError);
}

TEST(IncrementalEvaluator, ValidatesConfig) {
  core::AssertionSuite<Tick> suite;
  EXPECT_THROW(IncrementalWindowEvaluator<Tick>(suite, {2, 2, {}}),
               common::CheckError);
  EXPECT_THROW(IncrementalWindowEvaluator<Tick>(suite, {0, 0, {}}),
               common::CheckError);
}

TEST(TemporalRadius, DeclaredPerAssertionClass) {
  core::AssertionSuite<Tick> suite;
  suite.AddPointwise("p", [](const Tick&) { return 0.0; });
  suite.AddFunction("default-unbounded",
                    [](std::span<const Tick> s) {
                      return std::vector<double>(s.size(), 0.0);
                    });
  suite.AddFunction(
      "radius-3",
      [](std::span<const Tick> s) {
        return std::vector<double>(s.size(), 0.0);
      },
      3);
  EXPECT_EQ(suite.at(0).temporal_radius(), 0u);
  EXPECT_EQ(suite.at(1).temporal_radius(), core::kUnboundedRadius);
  EXPECT_EQ(suite.at(2).temporal_radius(), 3u);
}

// -------------------------------------------------------- StreamingMonitor ---

TEST(StreamingMonitor, ObserveBatchMatchesPerExampleObserve) {
  const auto stream = MakeStream(31, 120);

  core::AssertionSuite<Tick> suite_a;
  PopulateSuite(suite_a, false);
  core::StreamingMonitor<Tick> one_by_one(suite_a, 16, 4);
  std::vector<Firing> a;
  for (const Tick& tick : stream) {
    for (const auto& event : one_by_one.Observe(tick)) {
      a.emplace_back(event.example_index, event.assertion, event.severity);
    }
  }

  core::AssertionSuite<Tick> suite_b;
  PopulateSuite(suite_b, false);
  core::StreamingMonitor<Tick> batched(suite_b, 16, 4);
  std::vector<Firing> b;
  for (const auto& event : batched.ObserveBatch(stream)) {
    b.emplace_back(event.example_index, event.assertion, event.severity);
  }

  EXPECT_EQ(a, b);
  EXPECT_EQ(one_by_one.stats().examples_seen, batched.stats().examples_seen);
}

// ---------------------------------------------------------- StreamRegistry ---

TEST(StreamRegistry, AssignsDenseIdsAndRejectsDuplicates) {
  StreamRegistry registry;
  EXPECT_EQ(registry.Register("cam-0"), 0u);
  EXPECT_EQ(registry.Register("cam-1"), 1u);
  EXPECT_THROW(registry.Register("cam-0"), common::CheckError);
  EXPECT_THROW(registry.Register(""), common::CheckError);
  EXPECT_EQ(registry.Name(1), "cam-1");
  EXPECT_EQ(registry.Id("cam-0"), 0u);
  EXPECT_THROW(registry.Id("nope"), common::CheckError);
  EXPECT_TRUE(registry.Contains("cam-1"));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"cam-0", "cam-1"}));
}

// --------------------------------------------------------- MetricsRegistry ---

TEST(MetricsRegistry, ExposesPerAssertionFlaggedRate) {
  MetricsRegistry metrics;
  metrics.RegisterStream(0, "a");
  metrics.RegisterStream(1, "b");
  const std::vector<StreamEvent> events_a = {{0, "a", 1, "x", 1.0},
                                             {0, "a", 2, "x", 1.0},
                                             {0, "a", 3, "y", 2.0}};
  metrics.RecordBatch(0, 10, events_a);
  metrics.RecordBatch(1, 10, {});

  const MetricsSnapshot snapshot = metrics.Snapshot();
  // Stream "a": x fired twice over 10 examples.
  EXPECT_DOUBLE_EQ(snapshot.streams[0].FlaggedRate("x"), 0.2);
  EXPECT_DOUBLE_EQ(snapshot.streams[0].FlaggedRate("y"), 0.1);
  // Service-wide: same fires over 20 observed examples.
  EXPECT_DOUBLE_EQ(snapshot.FlaggedRate("x"), 0.1);
  // Unknown assertion / empty stream: rate 0, not a throw.
  EXPECT_DOUBLE_EQ(snapshot.FlaggedRate("nope"), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.streams[1].FlaggedRate("x"), 0.0);
  EXPECT_DOUBLE_EQ(StreamMetrics{}.FlaggedRate("x"), 0.0);
}

TEST(MetricsRegistry, AggregatesAcrossStreams) {
  MetricsRegistry metrics;
  metrics.RegisterStream(0, "a");
  metrics.RegisterStream(1, "b");
  const std::vector<StreamEvent> events_a = {{0, "a", 3, "x", 2.0},
                                             {0, "a", 4, "y", 1.0}};
  const std::vector<StreamEvent> events_b = {{1, "b", 0, "x", 5.0}};
  metrics.RecordBatch(0, 10, events_a);
  metrics.RecordBatch(1, 7, events_b);
  metrics.RecordBatch(0, 5, {});

  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.examples_seen, 22u);
  EXPECT_EQ(snapshot.events, 3u);
  ASSERT_EQ(snapshot.streams.size(), 2u);
  EXPECT_EQ(snapshot.streams[0].examples_seen, 15u);
  EXPECT_EQ(snapshot.streams[0].events, 2u);
  EXPECT_EQ(snapshot.streams[1].assertions.at("x").max_severity, 5.0);
  EXPECT_EQ(snapshot.assertions.at("x").fires, 2u);
  EXPECT_DOUBLE_EQ(snapshot.assertions.at("x").sum_severity, 7.0);
  EXPECT_DOUBLE_EQ(snapshot.assertions.at("x").MeanSeverity(), 3.5);
}

// ------------------------------------------------------------------ sinks ---

TEST(Sinks, JsonLinesEscapesAndCounts) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  sink.Consume({0, "cam \"0\"", 7, "multi\nbox", 1.5});
  sink.Flush();
  EXPECT_EQ(out.str(),
            "{\"stream\":\"cam \\\"0\\\"\",\"example\":7,"
            "\"assertion\":\"multi\\nbox\",\"severity\":1.5}\n");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape("a\\b\t"), "a\\\\b\\t");
}

TEST(Sinks, CountingAndCollectingAgree) {
  CountingSink counting;
  CollectingSink collecting;
  const StreamEvent event{2, "s", 1, "a", 4.0};
  counting.Consume(event);
  counting.Consume({2, "s", 2, "a", 1.0});
  counting.Consume({2, "s", 3, "b", 2.0});
  collecting.Consume(event);
  EXPECT_EQ(counting.count(), 3u);
  EXPECT_DOUBLE_EQ(counting.max_severity(), 4.0);
  const auto by_assertion = counting.counts_by_assertion();
  EXPECT_EQ(by_assertion.at("a"), 2u);
  EXPECT_EQ(by_assertion.at("b"), 1u);
  const auto events = collecting.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].stream, "s");
  EXPECT_EQ(events[0].assertion, "a");
}

// ---------------------------------------------------------- MonitorService ---

MonitorService<Tick>::SuiteBundle MakeBundle(bool with_unbounded) {
  auto suite = std::make_shared<core::AssertionSuite<Tick>>();
  PopulateSuite(*suite, with_unbounded);
  return {suite, {}};
}

/// Events of one stream as (index, assertion, severity), in arrival order.
std::vector<Firing> StreamFirings(
    const std::vector<CollectingSink::OwnedEvent>& events,
    std::string_view stream) {
  std::vector<Firing> firings;
  for (const auto& event : events) {
    if (event.stream == stream) {
      firings.emplace_back(event.example_index, event.assertion,
                           event.severity);
    }
  }
  return firings;
}

TEST(MonitorService, StreamingEqualsBatchAcrossShardCountsAndBatchSizes) {
  // The ISSUE's equivalence criterion: per stream, runtime events must
  // equal AssertionSuite::CheckAll over the concatenated stream, for any
  // shard count and any ingestion batch size.
  const std::size_t n = 160;
  const std::size_t kStreams = 5;
  const std::size_t settle_lag = 4;

  std::vector<std::vector<Tick>> streams;
  std::vector<std::vector<Firing>> expected;
  for (std::size_t s = 0; s < kStreams; ++s) {
    streams.push_back(MakeStream(100 + s, n));
    expected.push_back(SettledBatchFirings(streams[s], settle_lag, true));
  }

  for (const std::size_t workers : {1ul, 2ul, 4ul}) {
    for (const std::size_t batch_size : {1ul, 17ul, 64ul}) {
      RuntimeConfig config;
      config.workers = workers;
      config.window = n + 8;  // unbounded column must see the whole stream
      config.settle_lag = settle_lag;
      MonitorService<Tick> service(config, [] { return MakeBundle(true); });
      auto sink = std::make_shared<CollectingSink>();
      service.AddSink(sink);

      std::vector<StreamId> ids;
      for (std::size_t s = 0; s < kStreams; ++s) {
        ids.push_back(service.RegisterStream("stream-" + std::to_string(s)));
      }
      // Interleave batches across streams, as concurrent producers would.
      for (std::size_t begin = 0; begin < n; begin += batch_size) {
        const std::size_t count = std::min(batch_size, n - begin);
        for (std::size_t s = 0; s < kStreams; ++s) {
          service.ObserveBatch(
              ids[s], std::vector<Tick>(streams[s].begin() + begin,
                                        streams[s].begin() + begin + count));
        }
      }
      service.Flush();
      EXPECT_TRUE(service.Errors().empty());

      const auto events = sink->Events();
      for (std::size_t s = 0; s < kStreams; ++s) {
        EXPECT_EQ(StreamFirings(events, "stream-" + std::to_string(s)),
                  expected[s])
            << "workers=" << workers << " batch=" << batch_size
            << " stream=" << s;
      }
      const MetricsSnapshot snapshot = service.Metrics();
      EXPECT_EQ(snapshot.examples_seen, n * kStreams);
      EXPECT_EQ(snapshot.events, events.size());
    }
  }
}

TEST(MonitorService, ConcurrentProducersIngestSafely) {
  const std::size_t n = 400;
  const std::size_t kStreams = 8;
  const std::size_t settle_lag = 4;

  RuntimeConfig config;
  config.workers = 4;
  config.window = 32;
  config.settle_lag = settle_lag;
  MonitorService<Tick> service(config, [] { return MakeBundle(false); });
  auto counting = std::make_shared<CountingSink>();
  auto collecting = std::make_shared<CollectingSink>();
  service.AddSink(counting);
  service.AddSink(collecting);

  std::vector<StreamId> ids;
  std::vector<std::vector<Tick>> streams;
  for (std::size_t s = 0; s < kStreams; ++s) {
    ids.push_back(service.RegisterStream("p-" + std::to_string(s)));
    streams.push_back(MakeStream(500 + s, n));
  }

  // Four producer threads, two streams each, batching 25 examples a call.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t begin = 0; begin < n; begin += 25) {
        for (const std::size_t s : {2 * p, 2 * p + 1}) {
          service.ObserveBatch(
              ids[s], std::vector<Tick>(streams[s].begin() + begin,
                                        streams[s].begin() + begin + 25));
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  service.Flush();
  EXPECT_TRUE(service.Errors().empty());

  const MetricsSnapshot snapshot = service.Metrics();
  EXPECT_EQ(snapshot.examples_seen, n * kStreams);
  EXPECT_EQ(counting->count(), snapshot.events);

  const auto events = collecting->Events();
  std::size_t total = 0;
  for (std::size_t s = 0; s < kStreams; ++s) {
    const auto got = StreamFirings(events, "p-" + std::to_string(s));
    EXPECT_EQ(got, SettledBatchFirings(streams[s], settle_lag, false))
        << "stream " << s;
    total += got.size();
  }
  EXPECT_EQ(total, snapshot.events);
}

TEST(MonitorService, ThrowingAssertionPoisonsBatchNotService) {
  RuntimeConfig config;
  config.workers = 2;
  config.window = 8;
  config.settle_lag = 1;
  MonitorService<Tick> service(config, [] {
    auto suite = std::make_shared<core::AssertionSuite<Tick>>();
    suite->AddPointwise("explode", [](const Tick& t) {
      common::Check(t.value < 9.0, "boom");
      return 0.0;
    });
    return MonitorService<Tick>::SuiteBundle{suite, {}};
  });
  const StreamId bad = service.RegisterStream("bad");
  const StreamId good = service.RegisterStream("good");
  service.ObserveBatch(bad, {Tick{1.0}, Tick{10.0}});
  service.ObserveBatch(good, {Tick{1.0}, Tick{2.0}, Tick{3.0}});
  service.Flush();

  const auto errors = service.Errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("bad"), std::string::npos);
  EXPECT_EQ(service.Metrics().streams.at(good).examples_seen, 3u);
}

TEST(MonitorService, RejectsUnknownStreamAndNullSink) {
  RuntimeConfig config;
  config.workers = 1;
  MonitorService<Tick> service(config, [] { return MakeBundle(false); });
  EXPECT_THROW(service.Observe(0, Tick{}), common::CheckError);
  EXPECT_THROW(service.AddSink(nullptr), common::CheckError);
}

TEST(MonitorService, ValidatesRuntimeConfig) {
  const auto make = [] { return MakeBundle(false); };
  RuntimeConfig bad;
  bad.window = 16;
  bad.settle_lag = 16;  // == window: verdicts could never settle
  try {
    MonitorService<Tick> service(bad, make);
    FAIL() << "settle_lag >= window must be rejected";
  } catch (const common::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("settle_lag must be < window"),
              std::string::npos);
  }
  bad.settle_lag = 32;  // > window
  EXPECT_THROW(MonitorService<Tick>(bad, make), common::CheckError);
  bad.settle_lag = 8;
  bad.window = 0;
  EXPECT_THROW(MonitorService<Tick>(bad, make), common::CheckError);
}

TEST(MonitorService, RejectsZeroWorkersBeforeBuildingThePool) {
  // A 0-worker service used to reach the ThreadPool precondition; it must
  // be caught by RuntimeConfig::Validate with a message explaining the
  // Flush deadlock a 0-worker config would cause (nothing drains the
  // queues), and a minimal 1-worker service must drain fine.
  RuntimeConfig bad;
  bad.workers = 0;
  try {
    MonitorService<Tick> service(bad, [] { return MakeBundle(false); });
    FAIL() << "workers == 0 must be rejected";
  } catch (const common::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("workers must be >= 1"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("deadlock"), std::string::npos);
  }
  EXPECT_THROW(bad.Validate(), common::CheckError);

  RuntimeConfig minimal;
  minimal.workers = 1;
  MonitorService<Tick> service(minimal, [] { return MakeBundle(false); });
  const StreamId id = service.RegisterStream("solo");
  service.ObserveBatch(id, MakeStream(3, 32));
  service.Flush();  // must not deadlock
  EXPECT_EQ(service.Metrics().streams.at(id).examples_seen, 32u);
}

TEST(MonitorService, RejectsReRegisteringAStreamName) {
  RuntimeConfig config;
  config.workers = 2;
  MonitorService<Tick> service(config, [] { return MakeBundle(false); });
  const StreamId id = service.RegisterStream("cam-0");
  EXPECT_THROW(service.RegisterStream("cam-0"), common::CheckError);
  // The failed registration must not corrupt the service: the original
  // stream still ingests, and new names still register.
  const StreamId other = service.RegisterStream("cam-1");
  EXPECT_NE(id, other);
  service.ObserveBatch(id, {Tick{0.1}, Tick{0.2}});
  service.ObserveBatch(other, {Tick{0.3}});
  service.Flush();
  EXPECT_TRUE(service.Errors().empty());
  EXPECT_EQ(service.Metrics().streams.at(id).examples_seen, 2u);
  EXPECT_EQ(service.Metrics().streams.at(other).examples_seen, 1u);
}

TEST(MonitorService, ConcurrentObserveDuringFlushIsSafe) {
  // Flush must tolerate producers that keep observing concurrently: every
  // batch enqueued *before* a Flush call is accounted for, and the service
  // ends consistent (examples counted once, no errors, no lost events).
  const std::size_t kBatches = 60;
  const std::size_t kBatchSize = 20;
  RuntimeConfig config;
  config.workers = 4;
  config.window = 16;
  config.settle_lag = 2;
  MonitorService<Tick> service(config, [] { return MakeBundle(false); });
  auto counting = std::make_shared<CountingSink>();
  service.AddSink(counting);
  const StreamId id = service.RegisterStream("hot");

  const auto stream = MakeStream(77, kBatches * kBatchSize);
  std::thread producer([&] {
    for (std::size_t b = 0; b < kBatches; ++b) {
      service.ObserveBatch(
          id, std::vector<Tick>(stream.begin() + b * kBatchSize,
                                stream.begin() + (b + 1) * kBatchSize));
    }
  });
  // Flush repeatedly while the producer races.
  for (int i = 0; i < 20; ++i) service.Flush();
  producer.join();
  service.Flush();  // all batches are enqueued now: full accounting

  EXPECT_TRUE(service.Errors().empty());
  const MetricsSnapshot snapshot = service.Metrics();
  EXPECT_EQ(snapshot.examples_seen, kBatches * kBatchSize);
  EXPECT_EQ(snapshot.events, counting->count());
}

}  // namespace
}  // namespace omg::runtime
