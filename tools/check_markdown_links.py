#!/usr/bin/env python3
"""Checks relative links and anchors in the repo's markdown documentation.

Scans the given markdown files (default: README.md and docs/*.md) for
inline links `[text](target)` and verifies:

  * relative file targets exist (external http(s)/mailto links are skipped);
  * `#anchor` fragments — both in-file and cross-file — match a heading in
    the target file, using GitHub's slugification rules.

Exits nonzero listing every broken link, so CI fails on documentation
drift. No dependencies beyond the standard library.
"""

import argparse
import pathlib
import re
import sys

# Inline markdown links. Deliberately simple: no nested parentheses in
# targets (none of our docs need them).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor slug: lowercase, drop punctuation,
    spaces to hyphens. Inline code/emphasis markers are stripped first."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> set:
    """All anchor slugs of a markdown file (with GitHub's -1, -2 suffixes
    for duplicate headings)."""
    slugs: dict = {}
    out = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = slugs.get(slug, 0)
        slugs[slug] = count + 1
        out.add(slug if count == 0 else f"{slug}-{count}")
    return out


def check_file(path: pathlib.Path, repo_root: pathlib.Path) -> list:
    errors = []
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                try:
                    resolved.relative_to(repo_root.resolve())
                except ValueError:
                    errors.append(
                        f"{path}:{number}: link escapes the repo: {target}"
                    )
                    continue
                if not resolved.exists():
                    errors.append(
                        f"{path}:{number}: broken link target: {target}"
                    )
                    continue
                anchor_file = resolved
            else:
                anchor_file = path
            if anchor:
                if anchor_file.suffix.lower() != ".md":
                    continue
                if github_slug(anchor) not in heading_slugs(anchor_file):
                    errors.append(
                        f"{path}:{number}: broken anchor: {target}"
                    )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        help="markdown files to check (default: README.md, docs/*.md, "
        "EXPERIMENTS.md, ROADMAP.md)",
    )
    parser.add_argument(
        "--repo-root",
        default=".",
        help="repository root used to reject links escaping the repo",
    )
    args = parser.parse_args()

    repo_root = pathlib.Path(args.repo_root)
    if args.files:
        files = [pathlib.Path(f) for f in args.files]
    else:
        files = [repo_root / "README.md", repo_root / "EXPERIMENTS.md",
                 repo_root / "ROADMAP.md"]
        files += sorted((repo_root / "docs").glob("*.md"))
    files = [f for f in files if f.exists()]
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2

    errors = []
    for path in files:
        errors.extend(check_file(path, repo_root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} files: "
          f"{'FAIL' if errors else 'ok'} ({len(errors)} broken)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
