#!/usr/bin/env python3
"""clang-tidy driver: runs the .clang-tidy baseline over every src/ TU.

Reads compile_commands.json from the build tree (CMake exports it
unconditionally), fans clang-tidy out over the cores, and exits non-zero
if any TU produces a diagnostic — WarningsAsErrors: '*' in .clang-tidy
turns every finding into an error, so CI stays at a zero-debt baseline.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [--clang-tidy clang-tidy]
                          [-j N] [paths...]

`paths` filters the TUs (substring match on the source path); default is
every entry under src/. Exits 2 with a hint when the binary or the
compilation database is missing — run cmake first, install clang-tidy.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary to use")
    parser.add_argument("-j", "--jobs", type=int,
                        default=multiprocessing.cpu_count())
    parser.add_argument("paths", nargs="*",
                        help="only lint TUs whose path contains one of these")
    args = parser.parse_args()

    binary = shutil.which(args.clang_tidy)
    if binary is None:
        print(f"run_clang_tidy: '{args.clang_tidy}' not found "
              "(apt install clang-tidy, or pass --clang-tidy)",
              file=sys.stderr)
        return 2

    database = REPO / args.build_dir / "compile_commands.json"
    if not database.is_file():
        print(f"run_clang_tidy: {database} missing "
              "(configure the build tree first: cmake -B build -S .)",
              file=sys.stderr)
        return 2

    src = (REPO / "src").as_posix()
    sources = sorted(
        entry["file"] for entry in json.loads(database.read_text())
        if entry["file"].startswith(src)
        and (not args.paths or any(p in entry["file"] for p in args.paths))
    )
    if not sources:
        print("run_clang_tidy: no matching TUs", file=sys.stderr)
        return 2

    def lint(source: str) -> tuple[str, int, str]:
        result = subprocess.run(
            [binary, "-p", str(database.parent), "--quiet", source],
            capture_output=True, text=True)
        return source, result.returncode, result.stdout + result.stderr

    failures = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for source, code, output in pool.map(lint, sources):
            rel = Path(source).relative_to(REPO)
            if code != 0:
                failures += 1
                print(f"FAIL {rel}\n{output}")
            else:
                print(f"  ok {rel}")

    if failures:
        print(f"run_clang_tidy: {failures}/{len(sources)} TU(s) failed")
        return 1
    print(f"run_clang_tidy: {len(sources)} TU(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
