#!/usr/bin/env python3
"""Golden-trace replay gate: shipped traces must replay deterministically.

For every entry in traces/golden.json this script replays the recorded
trace through `scenario_harness --replay` (unpaced) and enforces the
golden-flag contract from docs/REPLAY.md:

  * the replay succeeds with exact accounting
    (offered == scored + shed + dropped + errored, and offered == scored
    since replay forces blocking admission);
  * two consecutive replays emit byte-identical canonical flag documents
    (--flags-out) and the same FNV-1a digest;
  * the digest matches the committed golden digest — a change means the
    runtime's scoring behaviour changed and the goldens need a deliberate
    update (--update rewrites them);
  * with --uds, a replay through a real net::IngestServer over a
    Unix-domain socket produces the same digest as the in-process path.

Also cross-checks that traces/ and golden.json list the same traces, so a
recorded trace cannot ship without a digest (or vice versa).

Exits nonzero with a message per failed check. Standard library only.
Used by .github/workflows/ci.yml; see docs/REPLAY.md for the update
runbook.
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys
import tempfile

DIGEST_RE = re.compile(r"^flag digest: ([0-9a-f]{16})$", re.MULTILINE)
ACCOUNTING_RE = re.compile(
    r"offered (\d+) == scored (\d+) \+ shed (\d+) \+ dropped (\d+) "
    r"\+ errored (\d+)"
)


def fail(errors, message):
    errors.append(message)


def run_replay(harness, trace, config, flags_out, transport, errors):
    """One replay; returns (digest, offered) or None on failure."""
    command = [
        str(harness), "--replay", str(trace), "--speed", "0",
        "--replay-transport", transport, "--flags-out", str(flags_out),
        str(config),
    ]
    result = subprocess.run(command, capture_output=True, text=True)
    label = f"{trace} [{transport}]"
    if result.returncode != 0:
        fail(errors, f"{label}: replay exited {result.returncode}:\n"
                     f"{result.stdout}{result.stderr}")
        return None
    digest = DIGEST_RE.search(result.stdout)
    if not digest:
        fail(errors, f"{label}: no 'flag digest:' line in output")
        return None
    accounting = ACCOUNTING_RE.search(result.stdout)
    if not accounting:
        fail(errors, f"{label}: no accounting line in output")
        return None
    offered, scored, shed, dropped, errored = map(int, accounting.groups())
    if offered == 0:
        fail(errors, f"{label}: replay offered zero examples")
    if offered != scored + shed + dropped + errored:
        fail(errors, f"{label}: accounting identity broken: {offered} != "
                     f"{scored} + {shed} + {dropped} + {errored}")
    if offered != scored:
        fail(errors, f"{label}: replay shed/dropped/errored examples "
                     f"({offered} offered, {scored} scored) — replay must "
                     f"score everything it offers")
    return digest.group(1), offered


def check_entry(harness, repo, name, entry, use_uds, tmp, errors):
    trace = repo / entry["trace"]
    config = repo / entry["config"]
    for path in (trace, config):
        if not path.is_file():
            fail(errors, f"{name}: missing file {path}")
            return None

    flags_a = tmp / f"{name}_a.jsonl"
    flags_b = tmp / f"{name}_b.jsonl"
    first = run_replay(harness, trace, config, flags_a, "inproc", errors)
    second = run_replay(harness, trace, config, flags_b, "inproc", errors)
    if first is None or second is None:
        return None
    if first[0] != second[0]:
        fail(errors, f"{name}: nondeterministic: back-to-back replays gave "
                     f"digests {first[0]} and {second[0]}")
    if flags_a.read_bytes() != flags_b.read_bytes():
        fail(errors, f"{name}: back-to-back replays wrote different "
                     f"canonical flag documents")
    if use_uds:
        flags_u = tmp / f"{name}_uds.jsonl"
        wired = run_replay(harness, trace, config, flags_u, "uds", errors)
        if wired is not None and wired[0] != first[0]:
            fail(errors, f"{name}: transport-dependent: inproc digest "
                         f"{first[0]} vs uds digest {wired[0]}")
        if wired is not None and flags_a.read_bytes() != flags_u.read_bytes():
            fail(errors, f"{name}: inproc and uds flag documents differ")
    return first[0]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--harness", required=True,
                        help="path to the scenario_harness binary")
    parser.add_argument("--repo", default=".",
                        help="repository root (trace/config paths in "
                             "golden.json are relative to it)")
    parser.add_argument("--golden", default="traces/golden.json",
                        help="golden digest manifest, relative to --repo")
    parser.add_argument("--uds", action="store_true",
                        help="also replay over a Unix-domain socket and "
                             "require the same digest")
    parser.add_argument("--only", action="append", default=[],
                        help="check only this trace name (repeatable)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the golden digests from the current "
                             "replays instead of checking them")
    args = parser.parse_args()

    repo = pathlib.Path(args.repo).resolve()
    harness = pathlib.Path(args.harness).resolve()
    golden_path = repo / args.golden
    errors = []

    try:
        golden = json.loads(golden_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot load {golden_path}: {error}", file=sys.stderr)
        return 1
    entries = golden.get("traces", {})
    if not entries:
        print(f"{golden_path}: no traces listed", file=sys.stderr)
        return 1

    # Every shipped trace must be golden-listed, and vice versa.
    shipped = {p.stem for p in (repo / "traces").glob("*.trace")}
    for name in sorted(shipped - set(entries)):
        fail(errors, f"traces/{name}.trace is shipped but has no golden "
                     f"entry")
    for name in sorted(set(entries) - shipped):
        fail(errors, f"golden entry '{name}' has no trace file under "
                     f"traces/")

    selected = {name: entry for name, entry in sorted(entries.items())
                if not args.only or name in args.only}
    if args.only and len(selected) != len(args.only):
        fail(errors, f"--only names not in golden.json: "
                     f"{sorted(set(args.only) - set(selected))}")

    with tempfile.TemporaryDirectory(prefix="replay_golden_") as tmpdir:
        tmp = pathlib.Path(tmpdir)
        for name, entry in selected.items():
            digest = check_entry(harness, repo, name, entry, args.uds, tmp,
                                 errors)
            if digest is None:
                continue
            if args.update:
                entry["flag_digest"] = digest
            elif digest != entry.get("flag_digest"):
                fail(errors, f"{name}: flag digest {digest} does not match "
                             f"golden {entry.get('flag_digest')} — if the "
                             f"scoring change is intended, re-run with "
                             f"--update and commit")
            else:
                print(f"ok {name}: {digest}"
                      + (" (inproc+uds)" if args.uds else ""))

    if args.update and not errors:
        golden_path.write_text(json.dumps(golden, indent=2, sort_keys=True)
                               + "\n")
        print(f"updated {golden_path}")

    for message in errors:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
