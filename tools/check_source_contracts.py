#!/usr/bin/env python3
"""Repo-specific source contracts that clang-tidy cannot express.

Enforced invariants (each rule names the discipline it protects):

  raw-mutex       Raw std::mutex / std::lock_guard / std::unique_lock /
                  std::condition_variable are banned in src/ outside the
                  annotated shim (src/common/mutex.hpp). Clang's
                  -Wthread-safety analysis only sees locks it can name, so
                  every lock must be an omg::Mutex (docs/STATIC_ANALYSIS.md).

  raw-clock       std::chrono::steady_clock is banned in src/ outside
                  src/obs/clock.* — obs::Clock is the injectable time
                  source; direct clock reads break trace determinism and
                  replay (docs/OBSERVABILITY.md).

  raw-ts-stream   Streaming obs::Clock::ToSeconds(...) straight into an
                  ostream is banned: default stream precision (6 sig figs)
                  truncates second-scale timestamps to ~micro resolution —
                  the PR 6 trace-timestamp regression class. Route doubles
                  through a fixed-precision formatter (e.g. the exporters'
                  %.9g Num helper).

  header-doc      Every header under src/ opens with a doc comment (line 1
                  is a // comment) — the house API-documentation style that
                  the Doxygen docs job builds from.

  include-path    Quoted includes resolve src/-relative (the single include
                  root CMake exports): #include "runtime/metrics.hpp", never
                  "./metrics.hpp" or "../runtime/metrics.hpp".

Scope: src/** only (tests/benches/examples may use std primitives
directly; they are not part of the annotated locking surface). Exit code 1
with file:line diagnostics on any violation; 0 on a clean tree.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Files allowed to touch the wrapped primitive: the shim itself.
MUTEX_SHIM = {"src/common/mutex.hpp"}
CLOCK_SHIM = {"src/obs/clock.hpp", "src/obs/clock.cpp"}

RAW_MUTEX = re.compile(
    r"std::(mutex|lock_guard|unique_lock|scoped_lock|shared_mutex|"
    r"shared_lock|recursive_mutex|condition_variable(_any)?)\b"
)
RAW_CLOCK = re.compile(r"std::chrono::steady_clock\b")
RAW_TS_STREAM = re.compile(r"<<\s*(obs::)?Clock::ToSeconds\s*\(")
QUOTED_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Lines carrying an explanatory comment mentioning the banned token (e.g.
# the shim ban notice itself) are still flagged unless the token only
# appears after //.
def code_part(line: str) -> str:
    return line.split("//", 1)[0]


def main() -> int:
    failures: list[str] = []

    def flag(path: Path, lineno: int, rule: str, message: str) -> None:
        rel = path.relative_to(REPO)
        failures.append(f"{rel}:{lineno}: [{rule}] {message}")

    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(REPO).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()

        if path.suffix == ".hpp" and not lines[0].startswith("//"):
            flag(path, 1, "header-doc",
                 "public header must open with a doc comment")

        for lineno, line in enumerate(lines, start=1):
            code = code_part(line)
            if rel not in MUTEX_SHIM and RAW_MUTEX.search(code):
                flag(path, lineno, "raw-mutex",
                     "use omg::Mutex/MutexLock/CondVar from "
                     "common/mutex.hpp (annotated shim)")
            if rel not in CLOCK_SHIM and RAW_CLOCK.search(code):
                flag(path, lineno, "raw-clock",
                     "use obs::Clock (injectable, replay-deterministic) "
                     "instead of std::chrono::steady_clock")
            if RAW_TS_STREAM.search(code):
                flag(path, lineno, "raw-ts-stream",
                     "don't stream ToSeconds() at default precision; "
                     "format through a %.9g helper")
            include = QUOTED_INCLUDE.match(code)
            if include and not (SRC / include.group(1)).is_file():
                flag(path, lineno, "include-path",
                     f'"{include.group(1)}" is not a src/-relative path '
                     "to an existing header")

    if failures:
        print("\n".join(failures))
        print(f"\ncheck_source_contracts: {len(failures)} violation(s)")
        return 1
    print("check_source_contracts: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
