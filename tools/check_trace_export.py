#!/usr/bin/env python3
"""Validates the observability layer's exported artifacts.

Three artifact checks plus one benchmark gate, all standard library only:

  --trace FILE    Chrome trace_event JSON (what serve::Monitor::
                  WriteChromeTrace emits): the file must parse, every
                  event must carry the trace_event schema fields, B/E
                  spans must nest and balance per lane (tid), async
                  b/e spans (control-lane flush/round/retrain) must
                  carry ids and pair up per (name, id), and the
                  stream labels must cover --min-domains distinct domains.
                  --require NAME (repeatable) asserts at least one event
                  with that name (e.g. evaluate, model_hot_swap).
  --prom FILE     Prometheus text exposition: every sample line must
                  parse, every metric family must be introduced by
                  matching # HELP and # TYPE comments, label values must
                  be properly quoted/escaped.
                  --prom-require-sample TEXT (repeatable) asserts at
                  least one sample line containing TEXT (name + labels,
                  substring match) with a value > 0 — e.g.
                  'omg_tenant_examples_total{tenant="alpha",outcome="quota_rejected"'
                  to prove per-tenant shedding surfaced.
  --jsonl FILE    metrics snapshots, one JSON object per line, with the
                  snapshot schema's required keys, non-decreasing
                  counters across lines.
  --bench FILE    BENCH_runtime.json gate: the "tracing" block's
                  attached-but-disabled run must match the no-tracer
                  baseline within --max-off-overhead (default 0.10 —
                  generous because CI boxes are noisy; the bench itself
                  already medians 5 interleaved runs).

Exits nonzero with a message per failed check, so CI fails on
observability regressions. Used by .github/workflows/ci.yml.
"""

import argparse
import json
import re
import sys

PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[0-9eE+.\-]+|NaN|[+-]Inf)$"
)
# One label pair inside {...}: value is a quoted string where only
# backslash escapes (\\, \", \n) may follow a backslash.
PROM_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\[\\"n])*"$'
)

JSONL_REQUIRED_KEYS = ("ts_ns", "examples_seen", "events", "assertions",
                       "streams", "shards")
JSONL_COUNTER_KEYS = ("examples_seen", "events")


def fail(errors, message):
    errors.append(message)


def check_trace(path, min_domains, required, errors):
    try:
        with open(path) as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(errors, f"{path}: cannot load trace JSON: {error}")
        return
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, f"{path}: traceEvents missing or empty")
        return

    names = set()
    domains = set()
    stacks = {}  # tid -> [name, ...] open B spans
    open_async = set()  # (name, id) open async 'b' spans
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph not in ("B", "E", "i", "M", "b", "e"):
            fail(errors, f"{path}: event {i} has unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                fail(errors, f"{path}: event {i} missing {key!r}")
        names.add(event.get("name"))
        stream = event.get("args", {}).get("stream", "")
        if isinstance(stream, str) and "/" in stream:
            domains.add(stream.split("/", 1)[0])
        tid = event.get("tid")
        if ph == "B":
            stacks.setdefault(tid, []).append(event.get("name"))
        elif ph == "E":
            stack = stacks.setdefault(tid, [])
            if not stack:
                fail(errors, f"{path}: event {i} E({event.get('name')!r}) "
                             f"on tid {tid} with no open span")
            elif stack[-1] != event.get("name"):
                fail(errors, f"{path}: event {i} E({event.get('name')!r}) "
                             f"on tid {tid} closes open {stack[-1]!r}")
                stack.pop()
            else:
                stack.pop()
        elif ph in ("b", "e"):
            if "id" not in event:
                fail(errors, f"{path}: event {i} async {ph!r} missing 'id'")
                continue
            key = (event.get("name"), event.get("id"))
            if ph == "b":
                if key in open_async:
                    fail(errors, f"{path}: event {i} duplicate async begin "
                                 f"{key}")
                open_async.add(key)
            elif key not in open_async:
                fail(errors, f"{path}: event {i} async end {key} with no "
                             f"open begin")
            else:
                open_async.discard(key)
    for tid, stack in stacks.items():
        if stack:
            fail(errors, f"{path}: tid {tid} ends with unclosed spans "
                         f"{stack}")
    for key in sorted(open_async):
        fail(errors, f"{path}: async span {key} never closed")
    for name in required:
        if name not in names:
            fail(errors, f"{path}: no {name!r} event (saw {sorted(names)})")
    if len(domains) < min_domains:
        fail(errors, f"{path}: stream labels cover {len(domains)} "
                     f"domain(s) {sorted(domains)}, need {min_domains}")


def check_prom(path, require_samples, errors):
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        fail(errors, f"{path}: {error}")
        return
    helped, typed, sampled = set(), set(), set()
    positive = []  # (name+labels, value) of every sample with value > 0
    for i, line in enumerate(lines, start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split(" ", 3)[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            typed.add(parts[2])
            if parts[3] not in ("counter", "gauge", "summary", "histogram",
                                "untyped"):
                fail(errors, f"{path}:{i}: unknown TYPE {parts[3]!r}")
            continue
        if line.startswith("#"):
            continue
        match = PROM_SAMPLE_RE.match(line)
        if not match:
            fail(errors, f"{path}:{i}: unparseable sample line: {line!r}")
            continue
        sampled.add(match.group("name"))
        labels = match.group("labels")
        if labels:
            for pair in split_labels(labels[1:-1]):
                if not PROM_LABEL_RE.match(pair):
                    fail(errors, f"{path}:{i}: bad label pair {pair!r}")
        try:
            if float(match.group("value")) > 0:
                positive.append(match.group("name") + (labels or ""))
        except ValueError:
            pass  # NaN/Inf: never satisfies a required-sample check
    if not sampled:
        fail(errors, f"{path}: no samples")
    for needle in require_samples:
        if not any(needle in series for series in positive):
            fail(errors, f"{path}: no sample containing {needle!r} with a "
                         f"value > 0")
    for name in sampled:
        # quantile series (omg_..._seconds{quantile=...}) share the family
        # name, so sampled names match HELP/TYPE names exactly here.
        if name not in helped:
            fail(errors, f"{path}: metric {name} has no # HELP")
        if name not in typed:
            fail(errors, f"{path}: metric {name} has no # TYPE")


def split_labels(body):
    """Splits 'a="x",b="y,z"' into pairs, commas inside quotes kept."""
    pairs, depth, start = [], False, 0
    i = 0
    while i < len(body):
        char = body[i]
        if char == '"' and (i == 0 or body[i - 1] != "\\"):
            depth = not depth
        elif char == "," and not depth:
            pairs.append(body[start:i])
            start = i + 1
        i += 1
    if start < len(body):
        pairs.append(body[start:])
    return pairs


def check_jsonl(path, errors):
    try:
        with open(path) as handle:
            lines = [line for line in handle.read().splitlines() if line]
    except OSError as error:
        fail(errors, f"{path}: {error}")
        return
    if not lines:
        fail(errors, f"{path}: no snapshot lines")
        return
    previous = None
    for i, line in enumerate(lines, start=1):
        try:
            snapshot = json.loads(line)
        except json.JSONDecodeError as error:
            fail(errors, f"{path}:{i}: unparseable JSON line: {error}")
            continue
        for key in JSONL_REQUIRED_KEYS:
            if key not in snapshot:
                fail(errors, f"{path}:{i}: snapshot missing {key!r}")
        if previous is not None:
            for key in JSONL_COUNTER_KEYS:
                if snapshot.get(key, 0) < previous.get(key, 0):
                    fail(errors, f"{path}:{i}: counter {key} decreased "
                                 f"({previous.get(key)} -> "
                                 f"{snapshot.get(key)})")
        previous = snapshot


def check_bench(path, max_off_overhead, errors):
    try:
        with open(path) as handle:
            bench = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(errors, f"{path}: cannot load bench JSON: {error}")
        return
    tracing = bench.get("tracing")
    if not isinstance(tracing, dict):
        fail(errors, f"{path}: no \"tracing\" block")
        return
    for key in ("baseline_examples_per_sec", "tracing_off_examples_per_sec",
                "tracing_on_examples_per_sec", "off_overhead_frac",
                "on_overhead_frac", "events_recorded"):
        if key not in tracing:
            fail(errors, f"{path}: tracing block missing {key!r}")
            return
    off = tracing["off_overhead_frac"]
    if off > max_off_overhead:
        fail(errors, f"{path}: tracer-attached-but-disabled overhead "
                     f"{off:.3f} exceeds the noise bound "
                     f"{max_off_overhead:.3f} (tracing off must be free)")
    if tracing["events_recorded"] <= 0:
        fail(errors, f"{path}: tracing-on run recorded no events")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", action="append", default=[])
    parser.add_argument("--prom", action="append", default=[])
    parser.add_argument("--jsonl", action="append", default=[])
    parser.add_argument("--bench")
    parser.add_argument("--min-domains", type=int, default=1,
                        help="distinct stream-label domains a trace must "
                             "cover (default 1)")
    parser.add_argument("--require", action="append", default=[],
                        help="event name every trace must contain "
                             "(repeatable)")
    parser.add_argument("--prom-require-sample", action="append",
                        default=[],
                        help="substring at least one positive-valued "
                             "sample in every --prom file must contain "
                             "(repeatable)")
    parser.add_argument("--max-off-overhead", type=float, default=0.10,
                        help="bench gate: allowed tracing-off vs baseline "
                             "throughput delta (default 0.10)")
    args = parser.parse_args()
    if not (args.trace or args.prom or args.jsonl or args.bench):
        parser.error("nothing to check: pass --trace/--prom/--jsonl/--bench")

    errors = []
    for path in args.trace:
        check_trace(path, args.min_domains, args.require, errors)
    for path in args.prom:
        check_prom(path, args.prom_require_sample, errors)
    for path in args.jsonl:
        check_jsonl(path, errors)
    if args.bench:
        check_bench(args.bench, args.max_off_overhead, errors)

    for message in errors:
        print(f"FAIL: {message}", file=sys.stderr)
    if errors:
        sys.exit(1)
    checked = len(args.trace) + len(args.prom) + len(args.jsonl)
    checked += 1 if args.bench else 0
    print(f"check_trace_export: {checked} artifact(s) OK")


if __name__ == "__main__":
    main()
