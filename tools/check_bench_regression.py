#!/usr/bin/env python3
"""Perf regression gate over BENCH_runtime.json, standard library only.

Three checks, each with an explicit failure message so CI output says
*what* regressed, not just that something did:

  facade tax      facade.overhead_frac (typed sharded path vs the
                  type-erased AnyExample facade over the same workload)
                  must stay at or below --max-facade-overhead
                  (default 0.02). The batch-level typed-scorer dispatch
                  and pooled spill allocation are what keep this small;
                  a regression here means per-example virtual dispatch
                  or allocator churn crept back into the hot path.

  shard scaling   shard_sweep examples_per_sec must be monotone
                  non-decreasing in shard count within a noise band:
                  eps[i+1] >= eps[i] * (1 - --scaling-tolerance)
                  (default 0.15 — CI boxes are small and noisy; the
                  pre-work-stealing knee this guards against was a
                  >2x collapse, far outside the band).

  tail latency    observe_to_flag_ms.p99 at the highest shard count
                  must stay at or below --max-p99-ms (default 7.97,
                  the committed 4-shard p99 before work stealing: the
                  largest shard count must now beat the old knee).

Exits nonzero listing every failed check. Used by .github/workflows/ci.yml.
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to BENCH_runtime.json")
    parser.add_argument("--max-facade-overhead", type=float, default=0.02)
    parser.add_argument("--scaling-tolerance", type=float, default=0.15)
    parser.add_argument("--max-p99-ms", type=float, default=7.97)
    args = parser.parse_args()

    with open(args.bench) as handle:
        bench = json.load(handle)
    errors = []

    facade = bench.get("facade")
    if not facade:
        errors.append("missing 'facade' block")
    else:
        overhead = facade.get("overhead_frac")
        if overhead is None:
            errors.append("facade block missing 'overhead_frac'")
        elif overhead > args.max_facade_overhead:
            errors.append(
                f"facade overhead_frac {overhead:.4f} exceeds budget "
                f"{args.max_facade_overhead:.4f}: type-erasure tax is back")

    sweep = bench.get("shard_sweep", [])
    if len(sweep) < 2:
        errors.append("shard_sweep needs at least two entries to gate scaling")
    entries = sorted(sweep, key=lambda entry: entry["shards"])
    for prev, curr in zip(entries, entries[1:]):
        floor = prev["examples_per_sec"] * (1.0 - args.scaling_tolerance)
        if curr["examples_per_sec"] < floor:
            errors.append(
                f"throughput knee: {curr['shards']} shards does "
                f"{curr['examples_per_sec']:.0f} eps, below "
                f"{prev['shards']}-shard floor {floor:.0f} "
                f"(tolerance {args.scaling_tolerance:.0%})")
    if entries:
        top = entries[-1]
        p99 = top.get("observe_to_flag_ms", {}).get("p99")
        if p99 is None:
            errors.append(
                f"{top['shards']}-shard entry missing observe_to_flag_ms.p99")
        elif p99 > args.max_p99_ms:
            errors.append(
                f"tail regression: {top['shards']}-shard p99 {p99:.3f} ms "
                f"exceeds bound {args.max_p99_ms:.3f} ms")

    if errors:
        for message in errors:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print(f"bench gate OK: facade {facade['overhead_frac']:.4f} <= "
          f"{args.max_facade_overhead}, scaling monotone within "
          f"{args.scaling_tolerance:.0%} through {entries[-1]['shards']} "
          f"shards, p99 {entries[-1]['observe_to_flag_ms']['p99']:.3f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
