// Shared configuration for the bench harnesses.
//
// Every table/figure binary uses these scaled-down-but-faithful experiment
// configurations so results are comparable across benches. All binaries
// accept --seed and print deterministic tables (see EXPERIMENTS.md for the
// recorded outputs).
#pragma once

#include <cstdint>

#include "av/pipeline.hpp"
#include "common/flags.hpp"
#include "ecg/pipeline.hpp"
#include "tvnews/news.hpp"
#include "video/pipeline.hpp"

namespace omg::bench {

/// Night-street: one "day" pool + a held-out test day (paper: 300k-frame
/// pool, 25k test frames, 100 labels/round; here scaled ~500x down).
inline video::VideoPipelineConfig VideoConfig() {
  video::VideoPipelineConfig config;
  config.pool_frames = 600;
  config.test_frames = 200;
  config.pretrain_positives = 500;
  config.pretrain_negatives = 700;
  config.world_seed = 42;
  return config;
}

/// NuScenes-like: pool/test scenes at 2 Hz (paper: 175 unlabeled scenes).
inline av::AvPipelineConfig AvConfig() {
  av::AvPipelineConfig config;
  config.pool_scenes = 18;
  config.test_scenes = 6;
  config.pretrain_positives = 400;
  config.pretrain_negatives = 600;
  config.world_seed = 37;
  return config;
}

/// CINC17-like: records split into train/unlabeled/test (paper: 8,528
/// points total).
inline ecg::EcgPipelineConfig EcgConfig() {
  ecg::EcgPipelineConfig config;
  config.pool_records = 80;
  config.test_records = 30;
  config.pretrain_windows = 700;
  config.world_seed = 7;
  return config;
}

/// TV-news generator config (50 hour-long segments in the paper; here a
/// stream of scenes with the same error processes).
inline tvnews::NewsConfig NewsConfig() { return tvnews::NewsConfig{}; }

/// Active-learning protocol shared by Figure 4/9 benches.
struct AlProtocol {
  std::size_t rounds = 5;
  std::size_t budget_video = 15;
  std::size_t budget_av = 20;
  std::size_t budget_ecg = 40;
  std::size_t trials_video = 3;
  std::size_t trials_av = 3;
  std::size_t trials_ecg = 8;  // as in the paper
};

}  // namespace omg::bench
