// Serving-runtime throughput: examples/sec of the multi-stream assertion
// runtime (runtime/service.hpp) vs. a per-example StreamingMonitor loop over
// the same workload (ISSUE 1 acceptance: sharded runtime with 4 workers must
// sustain >= 4x the baseline on an 8-stream workload), plus the sharded
// backpressure-aware fast path (runtime/sharded_service.hpp):
//
//   * a `--shards` sweep over ShardedMonitorService reporting throughput
//     and the p50/p95/p99 observe-to-flag latency per shard count,
//   * a saturation bench that paces offered load past capacity against a
//     small bounded queue under ShedBelowSeverity, recording the
//     throughput/latency knee — achieved eps tracks offered until the
//     knee, then plateaus while p99 hits the queue bound and the shed
//     counters (not the queue depth) absorb the overload, and
//   * a `--facade` comparison (on by default): the same workload through
//     the type-erased serve::Monitor (AnyExample wrapping + erased
//     dispatch + typed-scratch materialisation) vs. the directly templated
//     ShardedMonitorService at the same shard count — the erasure tax of
//     hosting heterogeneous domains in one runtime (target: <= 10%), and
//   * a `--net` networked saturation bench (on by default): a
//     net::IngestServer hosting a video+ecg monitor, driven flat-out by
//     net::RunLoadClient over a Unix-domain socket and over loopback TCP —
//     end-to-end wire throughput (encode + syscalls + reassembly + decode
//     + scoring) with the wire accounting identity checked:
//     offered == scored + shed + dropped + errored + quota_rejected
//     + decode_errors.
//
// The workload is synthetic but shaped like the paper's deployments: two
// pointwise assertions plus two bounded stream-level assertions (temporal
// radii 6 and 8) over feature-vector examples. The baseline feeds monitors
// one example at a time (what the seed runtime supported); the runtime
// ingests batches, so bounded-radius suffix re-scoring amortizes across the
// batch instead of being repeated per example.
//
// Prints tables and writes machine-readable results to --json (default
// BENCH_runtime.json) so the perf trajectory is trackable across PRs.
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/example_gen.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "config/monitor_loader.hpp"
#include "config/scenario.hpp"
#include "config/spec.hpp"
#include "core/assertion.hpp"
#include "core/monitor.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/tracer.hpp"
#include "replay/replay.hpp"
#include "replay/trace_file.hpp"
#include "runtime/admission.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/service.hpp"
#include "runtime/sharded_service.hpp"
#include "serve/domains.hpp"
#include "serve/monitor.hpp"

/// One model invocation: the shared generator module's feature-vector
/// sample (common::MakeBenchStream produces the streams). Aliased at
/// namespace scope so the facade's DomainTraits can be specialized for it
/// — the bench doubles as the "any type can be a domain" demonstration.
using Sample = omg::common::BenchSample;

namespace omg::serve {

/// Facade identity of the bench workload: domain "bench".
template <>
struct DomainTraits<Sample> {
  static constexpr std::string_view kDomain = "bench";
  static double SeverityHint(const Sample&) { return 0.0; }
  static std::string DebugString(const Sample& sample) {
    return "bench sample " + std::to_string(sample.index);
  }
};

}  // namespace omg::serve

namespace {

using namespace omg;

double Magnitude(const Sample& sample) {
  double total = 0.0;
  for (const double f : sample.features) total += std::abs(f);
  return total;
}

/// The bench suite: two pointwise + two bounded stream-level assertions.
void PopulateSuite(core::AssertionSuite<Sample>& suite) {
  suite.AddPointwise("range", [](const Sample& s) {
    double out_of_range = 0.0;
    for (const double f : s.features) {
      if (f < -4.0 || f > 4.0) out_of_range += 1.0;
    }
    return out_of_range;
  });
  suite.AddPointwise("energy", [](const Sample& s) {
    const double magnitude = Magnitude(s);
    return magnitude > 24.0 ? magnitude - 24.0 : 0.0;
  });
  // Severity of i: how far i's magnitude sits from the mean over
  // [i - 6, i + 6] — a flicker-style local-outlier check, radius 6.
  suite.AddFunction(
      "spike",
      [](std::span<const Sample> stream) {
        constexpr std::size_t r = 6;
        std::vector<double> severities(stream.size(), 0.0);
        for (std::size_t i = 0; i < stream.size(); ++i) {
          const std::size_t lo = i > r ? i - r : 0;
          const std::size_t hi = std::min(stream.size(), i + r + 1);
          double mean = 0.0;
          for (std::size_t j = lo; j < hi; ++j) mean += Magnitude(stream[j]);
          mean /= static_cast<double>(hi - lo);
          const double deviation = std::abs(Magnitude(stream[i]) - mean);
          if (deviation > 6.0) severities[i] = deviation;
        }
        return severities;
      },
      /*temporal_radius=*/6);
  // Severity of i: drift between the mean magnitude of [i - 8, i) and
  // (i, i + 8] — a sensor-drift check, radius 8.
  suite.AddFunction(
      "drift",
      [](std::span<const Sample> stream) {
        constexpr std::size_t r = 8;
        std::vector<double> severities(stream.size(), 0.0);
        for (std::size_t i = 0; i < stream.size(); ++i) {
          const std::size_t lo = i > r ? i - r : 0;
          const std::size_t hi = std::min(stream.size(), i + r + 1);
          if (i == lo || i + 1 == hi) continue;
          double before = 0.0;
          for (std::size_t j = lo; j < i; ++j) before += Magnitude(stream[j]);
          before /= static_cast<double>(i - lo);
          double after = 0.0;
          for (std::size_t j = i + 1; j < hi; ++j) after += Magnitude(stream[j]);
          after /= static_cast<double>(hi - i - 1);
          const double drift = std::abs(after - before);
          if (drift > 4.0) severities[i] = drift;
        }
        return severities;
      },
      /*temporal_radius=*/8);
}

struct RunResult {
  double seconds = 0.0;
  double examples_per_sec = 0.0;
  std::size_t events = 0;
};

/// One shard's occupancy accounting over a run (from ShardMetrics): where
/// its wall time went and how long batches sat queued before service.
struct ShardOccupancy {
  std::size_t shard = 0;
  double busy_frac = 0.0;
  double mean_queue_wait_ms = 0.0;
  double mean_service_ms = 0.0;
  std::size_t stolen_batches = 0;  ///< victim-side: taken from this queue
  double steal_ms = 0.0;           ///< thief-side: foreign scoring time
};

/// A sharded-service run: throughput plus the observe-to-flag latency
/// envelope aggregated across the shards.
struct ShardedRunResult {
  RunResult run;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<ShardOccupancy> occupancy;  ///< per shard, in shard order
};

/// The tracing-overhead comparison at the reference shard count.
struct TracingComparison {
  std::size_t shards = 0;
  std::uint64_t sample_every = 0;
  double baseline_eps = 0.0;  ///< no tracer attached
  double off_eps = 0.0;       ///< tracer attached, enabled = false
  double on_eps = 0.0;        ///< tracing on at 1/sample_every
  double off_overhead = 0.0;
  double on_overhead = 0.0;
  std::uint64_t events_recorded = 0;  ///< one tracing-on run's total
};

/// One offered-load point of the saturation sweep.
struct SaturationPoint {
  double offered_frac = 0.0;    ///< target rate / reference rate
  double offered_eps = 0.0;     ///< examples/sec actually submitted
  double achieved_eps = 0.0;    ///< examples/sec actually scored
  double p99_ms = 0.0;
  std::size_t scored = 0;
  std::size_t shed_examples = 0;
  std::size_t dropped_examples = 0;
  std::size_t queue_depth_peak = 0;
};

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// Baseline: one StreamingMonitor per stream, fed one example at a time,
/// round-robin across streams (the seed's only serving mode).
RunResult RunBaseline(const std::vector<std::vector<Sample>>& streams,
                      std::size_t window, std::size_t settle_lag) {
  std::vector<core::AssertionSuite<Sample>> suites(streams.size());
  std::vector<core::StreamingMonitor<Sample>> monitors;
  monitors.reserve(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    PopulateSuite(suites[s]);
    monitors.emplace_back(suites[s], window, settle_lag);
  }
  RunResult result;
  const auto begin = Clock::now();
  const std::size_t n = streams.front().size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < streams.size(); ++s) {
      result.events += monitors[s].Observe(streams[s][i]).size();
    }
  }
  result.seconds = Seconds(begin, Clock::now());
  result.examples_per_sec =
      static_cast<double>(n * streams.size()) / result.seconds;
  return result;
}

/// The serving runtime: streams sharded over `workers`, batched ingestion.
RunResult RunService(const std::vector<std::vector<Sample>>& streams,
                     std::size_t workers, std::size_t batch_size,
                     std::size_t window, std::size_t settle_lag) {
  runtime::RuntimeConfig config;
  config.workers = workers;
  config.window = window;
  config.settle_lag = settle_lag;
  runtime::MonitorService<Sample> service(config, [] {
    auto suite = std::make_shared<core::AssertionSuite<Sample>>();
    PopulateSuite(*suite);
    return runtime::MonitorService<Sample>::SuiteBundle{suite, {}};
  });
  auto counting = std::make_shared<runtime::CountingSink>();
  service.AddSink(counting);
  std::vector<runtime::StreamId> ids;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    ids.push_back(service.RegisterStream("stream-" + std::to_string(s)));
  }

  RunResult result;
  const auto begin = Clock::now();
  const std::size_t n = streams.front().size();
  for (std::size_t offset = 0; offset < n; offset += batch_size) {
    const std::size_t count = std::min(batch_size, n - offset);
    for (std::size_t s = 0; s < streams.size(); ++s) {
      service.ObserveBatch(
          ids[s], std::vector<Sample>(streams[s].begin() + offset,
                                      streams[s].begin() + offset + count));
    }
  }
  service.Flush();
  result.seconds = Seconds(begin, Clock::now());
  common::Check(service.Errors().empty(), "runtime ingestion errors");
  result.events = counting->count();
  result.examples_per_sec =
      static_cast<double>(n * streams.size()) / result.seconds;
  return result;
}

/// The backpressure-aware fast path, unsaturated: bounded queues sized so
/// the kBlock policy never engages, every batch admitted and scored.
/// `tracer` (optional) rides along for the tracing-overhead comparison.
ShardedRunResult RunSharded(const std::vector<std::vector<Sample>>& streams,
                            std::size_t shards, std::size_t batch_size,
                            std::size_t window, std::size_t settle_lag,
                            std::shared_ptr<obs::Tracer> tracer = nullptr) {
  runtime::ShardedRuntimeConfig config;
  config.shards = shards;
  config.window = window;
  config.settle_lag = settle_lag;
  // Fixed aggregate buffer budget: each shard gets its share (never less
  // than one batch). Without this, total buffered backlog — and with it
  // tail queue wait — grows linearly with the shard count, and the sweep
  // measures buffering instead of scaling.
  const std::size_t queue_budget = std::max<std::size_t>(batch_size * 16, 4096);
  config.queue_capacity = std::max(batch_size, queue_budget / shards);
  config.admission = runtime::AdmissionPolicy::kBlock;
  config.tracer = std::move(tracer);
  runtime::ShardedMonitorService<Sample> service(config, [] {
    auto suite = std::make_shared<core::AssertionSuite<Sample>>();
    PopulateSuite(*suite);
    return runtime::ShardedMonitorService<Sample>::SuiteBundle{suite, {}};
  });
  auto counting = std::make_shared<runtime::CountingSink>();
  service.AddSink(counting);
  std::vector<runtime::StreamId> ids;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    ids.push_back(service.RegisterStream("stream-" + std::to_string(s)));
  }

  ShardedRunResult result;
  const auto begin = Clock::now();
  const std::size_t n = streams.front().size();
  for (std::size_t offset = 0; offset < n; offset += batch_size) {
    const std::size_t count = std::min(batch_size, n - offset);
    for (std::size_t s = 0; s < streams.size(); ++s) {
      service.ObserveBatch(
          ids[s], std::vector<Sample>(streams[s].begin() + offset,
                                      streams[s].begin() + offset + count));
    }
  }
  service.Flush();
  result.run.seconds = Seconds(begin, Clock::now());
  common::Check(service.Errors().empty(), "sharded ingestion errors");
  result.run.events = counting->count();
  result.run.examples_per_sec =
      static_cast<double>(n * streams.size()) / result.run.seconds;
  const runtime::MetricsSnapshot snapshot = service.Metrics();
  const runtime::LatencyHistogram latency = snapshot.MergedLatency();
  result.p50_ms = latency.Quantile(0.50) * 1e3;
  result.p95_ms = latency.Quantile(0.95) * 1e3;
  result.p99_ms = latency.Quantile(0.99) * 1e3;
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    result.occupancy.push_back(
        {shard.shard, shard.BusyFraction(), shard.MeanQueueWaitSeconds() * 1e3,
         shard.MeanServiceSeconds() * 1e3, shard.stolen_batches,
         static_cast<double>(shard.steal_ns) / 1e6});
  }
  return result;
}

/// The same unsaturated workload as RunSharded, but through the type-erased
/// serve::Monitor facade: examples wrapped into AnyExample, the suite
/// erased under the "bench" domain, the counting sink attached via an
/// unfiltered subscription. The throughput delta against RunSharded at the
/// same shard count is the facade's dispatch overhead.
ShardedRunResult RunFacade(const std::vector<std::vector<Sample>>& streams,
                           std::size_t shards, std::size_t batch_size,
                           std::size_t window, std::size_t settle_lag) {
  runtime::ShardedRuntimeConfig config;
  config.shards = shards;
  config.window = window;
  config.settle_lag = settle_lag;
  // Same aggregate buffer budget as RunSharded, so the two paths see the
  // same queueing and the throughput delta isolates dispatch overhead.
  const std::size_t queue_budget = std::max<std::size_t>(batch_size * 16, 4096);
  config.queue_capacity = std::max(batch_size, queue_budget / shards);
  config.admission = runtime::AdmissionPolicy::kBlock;
  serve::Result<std::unique_ptr<serve::Monitor>> built =
      serve::Monitor::Builder().Runtime(config).Build();
  common::Check(built.ok(), "facade monitor build failed");
  const std::unique_ptr<serve::Monitor> monitor = std::move(built.value());
  auto counting = std::make_shared<runtime::CountingSink>();
  const serve::Subscription subscription =
      monitor->Subscribe(serve::EventFilter{}, counting);
  const serve::AnySuiteFactory factory =
      serve::EraseSuiteFactory<Sample>("bench", [] {
        auto suite = std::make_shared<core::AssertionSuite<Sample>>();
        PopulateSuite(*suite);
        return runtime::SuiteBundle<Sample>{suite, {}};
      });
  std::vector<serve::StreamHandle> handles;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    serve::StreamOptions options;
    options.name = "facade-" + std::to_string(s);
    serve::Result<serve::StreamHandle> handle =
        monitor->RegisterStream("bench", factory, options);
    common::Check(handle.ok(), "facade stream registration failed");
    handles.push_back(handle.value());
  }

  ShardedRunResult result;
  const auto begin = Clock::now();
  const std::size_t n = streams.front().size();
  for (std::size_t offset = 0; offset < n; offset += batch_size) {
    const std::size_t count = std::min(batch_size, n - offset);
    for (std::size_t s = 0; s < streams.size(); ++s) {
      common::Check(
          monitor
              ->ObserveBatch(handles[s],
                             serve::WrapBatch(std::span<const Sample>(
                                 streams[s].data() + offset, count)))
              .ok(),
          "facade ObserveBatch failed");
    }
  }
  monitor->Flush();
  result.run.seconds = Seconds(begin, Clock::now());
  common::Check(monitor->Errors().empty(), "facade ingestion errors");
  result.run.events = counting->count();
  result.run.examples_per_sec =
      static_cast<double>(n * streams.size()) / result.run.seconds;
  const runtime::LatencyHistogram latency =
      monitor->Metrics().MergedLatency();
  result.p50_ms = latency.Quantile(0.50) * 1e3;
  result.p95_ms = latency.Quantile(0.95) * 1e3;
  result.p99_ms = latency.Quantile(0.99) * 1e3;
  return result;
}

/// Per-batch severity hint for the saturation bench: the number of
/// anomaly-burst examples the batch carries (what an upstream cheap filter
/// would estimate). Shedding keeps burst-heavy batches under overload.
double BatchHint(std::span<const Sample> batch) {
  double bursts = 0.0;
  for (const Sample& sample : batch) {
    if (Magnitude(sample) > 30.0) bursts += 1.0;
  }
  return bursts;
}

/// Drives the sharded service at `offered_frac * reference_eps` against a
/// deliberately small queue under ShedBelowSeverity. Offered load is paced
/// by sleeping between submission rounds; past saturation the sleeps
/// vanish and the producer simply offers as fast as it can.
SaturationPoint RunSaturationPoint(
    const std::vector<std::vector<Sample>>& streams,
    const std::vector<std::vector<double>>& hints, double shed_floor,
    double offered_frac, double reference_eps, std::size_t shards,
    std::size_t batch_size, std::size_t window, std::size_t settle_lag,
    std::size_t queue_capacity) {
  runtime::ShardedRuntimeConfig config;
  config.shards = shards;
  config.window = window;
  config.settle_lag = settle_lag;
  config.queue_capacity = queue_capacity;
  config.admission = runtime::AdmissionPolicy::kShedBelowSeverity;
  config.shed_floor = shed_floor;
  runtime::ShardedMonitorService<Sample> service(config, [] {
    auto suite = std::make_shared<core::AssertionSuite<Sample>>();
    PopulateSuite(*suite);
    return runtime::ShardedMonitorService<Sample>::SuiteBundle{suite, {}};
  });
  std::vector<runtime::StreamId> ids;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    ids.push_back(service.RegisterStream("sat-" + std::to_string(s)));
  }

  SaturationPoint point;
  point.offered_frac = offered_frac;
  const double target_eps = offered_frac * reference_eps;
  const std::size_t n = streams.front().size();
  std::size_t submitted = 0;
  const auto begin = Clock::now();
  auto next_deadline = begin;
  for (std::size_t offset = 0; offset < n; offset += batch_size) {
    const std::size_t count = std::min(batch_size, n - offset);
    for (std::size_t s = 0; s < streams.size(); ++s) {
      service.ObserveBatch(
          ids[s],
          std::vector<Sample>(streams[s].begin() + offset,
                              streams[s].begin() + offset + count),
          hints[s][offset / batch_size]);
    }
    submitted += count * streams.size();
    next_deadline += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            static_cast<double>(count * streams.size()) / target_eps));
    std::this_thread::sleep_until(next_deadline);  // no-op once saturated
  }
  const double offer_seconds = Seconds(begin, Clock::now());
  service.Flush();
  const double total_seconds = Seconds(begin, Clock::now());
  common::Check(service.Errors().empty(), "saturation ingestion errors");

  const runtime::MetricsSnapshot snapshot = service.Metrics();
  point.offered_eps = static_cast<double>(submitted) / offer_seconds;
  point.scored = snapshot.examples_seen;
  point.achieved_eps = static_cast<double>(point.scored) / total_seconds;
  point.shed_examples = snapshot.TotalShedExamples();
  point.dropped_examples = snapshot.TotalDroppedExamples();
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    point.queue_depth_peak =
        std::max(point.queue_depth_peak, shard.queue_depth_peak);
  }
  point.p99_ms = snapshot.MergedLatency().Quantile(0.99) * 1e3;
  // The whole point of bounded queues: memory stays bounded and losses are
  // explicit, counted shedding rather than unbounded growth.
  common::Check(point.queue_depth_peak <= queue_capacity,
                "saturation bench: queue depth exceeded its bound");
  common::Check(point.scored + point.shed_examples + point.dropped_examples ==
                    submitted,
                "saturation bench: offered examples not fully accounted for");
  return point;
}

/// One transport's networked saturation run.
struct NetPoint {
  std::string transport;  ///< "uds" | "tcp"
  std::size_t connections = 0;
  std::uint64_t offered = 0;
  double examples_per_sec = 0.0;  ///< offered / client elapsed
  std::uint64_t wire_bytes = 0;
  std::uint64_t scored = 0;
  std::uint64_t shed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t errored = 0;
  std::uint64_t quota_rejected = 0;
  std::uint64_t decode_errors = 0;
  bool reconciled = false;
};

/// Drives a fresh video+ecg monitor behind a net::IngestServer with
/// net::RunLoadClient, flat out (unpaced — the client offers as fast as the
/// wire accepts, so achieved throughput IS the wire's saturation rate).
/// The server is open (no tenant roster): the load client's "bench" tenant
/// authenticates without a token and is never quota-limited, so the
/// identity reduces to offered == scored + shed + dropped + errored.
NetPoint RunNetPoint(bool uds, std::size_t connections,
                     std::size_t examples_per_connection,
                     std::size_t batch_size) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  const config::ScenarioSpec scenario =
      config::ConfigLoader::Load(config::SpecDocument::Parse(R"(
[scenario]
name = "bench-net"
[runtime]
shards = 2
window = 64
settle_lag = 8
queue_capacity = 8192
[suite video]
assertions = [video.multibox]
[suite ecg]
assertions = [ecg.oscillation]
[stream cam]
domain = video
[stream ward]
domain = ecg
)"));
  config::ScenarioMonitor hosted =
      config::BuildScenarioMonitor(scenario, domains);

  net::IngestServerOptions server_options;
  if (uds) {
    server_options.uds_path =
        "/tmp/omg_bench_net_" + std::to_string(::getpid()) + ".sock";
  } else {
    server_options.tcp = true;  // ephemeral loopback port
  }
  net::IngestServer server(server_options, *hosted.monitor, domains);
  for (const config::BoundStream& stream : hosted.streams) {
    server.ExposeStream(stream.handle);
  }
  const serve::Result<net::ServerEndpoints> endpoints = server.Start();
  common::Check(endpoints.ok(), "net bench: server failed to start");

  net::LoadClientOptions load;
  if (uds) {
    load.uds_path = endpoints.value().uds_path;
  } else {
    load.tcp_port = endpoints.value().tcp_port;
  }
  load.streams = {{"bench", "", "cam", "video", 0.0},
                  {"bench", "", "ward", "ecg", 0.0}};
  load.connections = connections;
  load.batch = batch_size;
  load.examples_per_connection = examples_per_connection;
  const serve::Result<net::LoadReport> driven =
      net::RunLoadClient(load, domains);
  common::Check(driven.ok(), "net bench: load client failed");
  const net::LoadReport& report = driven.value();
  server.Stop();

  NetPoint point;
  point.transport = uds ? "uds" : "tcp";
  point.connections = connections;
  point.offered = report.offered;
  point.examples_per_sec =
      report.elapsed_seconds > 0.0
          ? static_cast<double>(report.offered) / report.elapsed_seconds
          : 0.0;
  point.wire_bytes = report.wire_bytes;
  point.scored = report.scored;
  point.shed = report.shed;
  point.dropped = report.dropped;
  point.errored = report.errored;
  point.quota_rejected = report.server_quota_rejected;
  point.decode_errors = report.server_decode_errors;
  point.reconciled = report.reconciled;
  common::Check(report.connection_errors == 0,
                "net bench: connections died mid-run");
  common::Check(point.reconciled,
                "net bench: wire accounting did not reconcile");
  return point;
}

void WriteJson(
    const std::string& path, std::size_t streams, std::size_t examples,
    std::size_t window, std::size_t settle_lag, std::size_t workers,
    std::size_t batch_size, const RunResult& baseline,
    const RunResult& sharded_1w, const RunResult& sharded,
    const std::vector<std::pair<std::size_t, RunResult>>& sweep,
    const std::vector<std::pair<std::size_t, ShardedRunResult>>& shard_sweep,
    const ShardedRunResult* facade, std::size_t facade_shards,
    double facade_templated_eps, double facade_overhead,
    const TracingComparison& tracing, std::size_t saturation_shards,
    std::size_t saturation_capacity, double shed_floor,
    const std::vector<SaturationPoint>& saturation,
    const std::vector<NetPoint>& net) {
  std::ofstream out(path);
  common::Check(out.good(), "cannot open json output: " + path);
  out << "{\n"
      << "  \"bench\": \"runtime_throughput\",\n"
      << "  \"streams\": " << streams << ",\n"
      << "  \"examples_per_stream\": " << examples << ",\n"
      << "  \"window\": " << window << ",\n"
      << "  \"settle_lag\": " << settle_lag << ",\n"
      << "  \"workers\": " << workers << ",\n"
      << "  \"batch\": " << batch_size << ",\n"
      << "  \"baseline\": {\"mode\": \"per_example_monitor\", \"seconds\": "
      << baseline.seconds << ", \"examples_per_sec\": "
      << baseline.examples_per_sec << ", \"events\": " << baseline.events
      << "},\n"
      << "  \"sharded_single_worker\": {\"seconds\": " << sharded_1w.seconds
      << ", \"examples_per_sec\": " << sharded_1w.examples_per_sec
      << ", \"events\": " << sharded_1w.events << "},\n"
      << "  \"sharded\": {\"seconds\": " << sharded.seconds
      << ", \"examples_per_sec\": " << sharded.examples_per_sec
      << ", \"events\": " << sharded.events << "},\n"
      << "  \"speedup_sharded_vs_baseline\": "
      << sharded.examples_per_sec / baseline.examples_per_sec << ",\n"
      << "  \"worker_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    out << "    {\"workers\": " << sweep[i].first
        << ", \"seconds\": " << sweep[i].second.seconds
        << ", \"examples_per_sec\": " << sweep[i].second.examples_per_sec
        << ", \"speedup_vs_baseline\": "
        << sweep[i].second.examples_per_sec / baseline.examples_per_sec
        << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"shard_sweep\": [\n";
  for (std::size_t i = 0; i < shard_sweep.size(); ++i) {
    const ShardedRunResult& r = shard_sweep[i].second;
    out << "    {\"shards\": " << shard_sweep[i].first
        << ", \"seconds\": " << r.run.seconds
        << ", \"examples_per_sec\": " << r.run.examples_per_sec
        << ", \"events\": " << r.run.events
        << ", \"speedup_vs_baseline\": "
        << r.run.examples_per_sec / baseline.examples_per_sec
        << ", \"observe_to_flag_ms\": {\"p50\": " << r.p50_ms
        << ", \"p95\": " << r.p95_ms << ", \"p99\": " << r.p99_ms << "}"
        << ", \"shards_occupancy\": [";
    for (std::size_t j = 0; j < r.occupancy.size(); ++j) {
      const ShardOccupancy& o = r.occupancy[j];
      out << (j == 0 ? "" : ", ") << "{\"shard\": " << o.shard
          << ", \"busy_frac\": " << o.busy_frac
          << ", \"mean_queue_wait_ms\": " << o.mean_queue_wait_ms
          << ", \"mean_service_ms\": " << o.mean_service_ms
          << ", \"stolen_batches\": " << o.stolen_batches
          << ", \"steal_ms\": " << o.steal_ms << "}";
    }
    out << "]}" << (i + 1 < shard_sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  if (facade != nullptr) {
    out << "  \"facade\": {\"shards\": " << facade_shards
        << ", \"templated_examples_per_sec\": " << facade_templated_eps
        << ", \"facade_examples_per_sec\": "
        << facade->run.examples_per_sec
        << ", \"overhead_frac\": " << facade_overhead
        << ", \"observe_to_flag_ms\": {\"p50\": " << facade->p50_ms
        << ", \"p95\": " << facade->p95_ms << ", \"p99\": " << facade->p99_ms
        << "}},\n";
  }
  out << "  \"tracing\": {\"shards\": " << tracing.shards
      << ", \"sample_every\": " << tracing.sample_every
      << ", \"baseline_examples_per_sec\": " << tracing.baseline_eps
      << ", \"tracing_off_examples_per_sec\": " << tracing.off_eps
      << ", \"tracing_on_examples_per_sec\": " << tracing.on_eps
      << ", \"off_overhead_frac\": " << tracing.off_overhead
      << ", \"on_overhead_frac\": " << tracing.on_overhead
      << ", \"events_recorded\": " << tracing.events_recorded << "},\n";
  out << "  \"saturation\": {\n"
      << "    \"policy\": \"shed_below_severity\",\n"
      << "    \"shards\": " << saturation_shards << ",\n"
      << "    \"queue_capacity_examples\": " << saturation_capacity << ",\n"
      << "    \"shed_floor\": " << shed_floor << ",\n"
      << "    \"points\": [\n";
  for (std::size_t i = 0; i < saturation.size(); ++i) {
    const SaturationPoint& p = saturation[i];
    out << "      {\"offered_frac\": " << p.offered_frac
        << ", \"offered_examples_per_sec\": " << p.offered_eps
        << ", \"achieved_examples_per_sec\": " << p.achieved_eps
        << ", \"p99_observe_to_flag_ms\": " << p.p99_ms
        << ", \"scored\": " << p.scored
        << ", \"shed_examples\": " << p.shed_examples
        << ", \"dropped_examples\": " << p.dropped_examples
        << ", \"queue_depth_peak\": " << p.queue_depth_peak << "}"
        << (i + 1 < saturation.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }";
  if (!net.empty()) {
    out << ",\n  \"net\": [\n";
    for (std::size_t i = 0; i < net.size(); ++i) {
      const NetPoint& p = net[i];
      out << "    {\"transport\": \"" << p.transport
          << "\", \"connections\": " << p.connections
          << ", \"offered\": " << p.offered
          << ", \"examples_per_sec\": " << p.examples_per_sec
          << ", \"wire_bytes\": " << p.wire_bytes
          << ", \"scored\": " << p.scored << ", \"shed\": " << p.shed
          << ", \"dropped\": " << p.dropped
          << ", \"errored\": " << p.errored
          << ", \"quota_rejected\": " << p.quota_rejected
          << ", \"decode_errors\": " << p.decode_errors
          << ", \"reconciled\": " << (p.reconciled ? "true" : "false")
          << "}" << (i + 1 < net.size() ? "," : "") << "\n";
    }
    out << "  ]";
  }
  out << "\n}\n";
}

// ------------------------------------------------------------ replay mode ---

/// `--replay TRACE`: replays a recorded trace unpaced through a fresh
/// monitor twice (the second pass must reproduce the first's flag digest)
/// and writes a replay-only BENCH_runtime.json — a fixed-workload
/// throughput number that is comparable across commits because the input
/// bytes are committed to the repo, not regenerated.
int RunReplayBench(const std::string& trace_path, std::string config_path,
                   const std::string& json_path) {
  const serve::DomainRegistry domains = serve::MakeDefaultDomainRegistry();
  serve::Result<replay::TraceReader> reader =
      replay::TraceReader::Open(trace_path);
  if (!reader.ok()) {
    std::cerr << "replay bench: " << reader.error().message << "\n";
    return 1;
  }
  const replay::TraceInfo& info = reader.value().info();
  if (config_path.empty()) {
    // The shipped traces are named after their scenario configs; config
    // file names use underscores where scenario names use hyphens.
    std::string file_name = info.scenario;
    std::replace(file_name.begin(), file_name.end(), '-', '_');
    for (const char* prefix : {"configs/", "../configs/"}) {
      for (const std::string& stem : {info.scenario, file_name}) {
        const std::string candidate = prefix + stem + ".conf";
        if (std::filesystem::exists(candidate)) {
          config_path = candidate;
          break;
        }
      }
      if (!config_path.empty()) break;
    }
  }
  if (config_path.empty()) {
    std::cerr << "replay bench: cannot find configs/" << info.scenario
              << ".conf — pass --replay-config\n";
    return 1;
  }
  const config::ScenarioSpec scenario =
      config::ConfigLoader::LoadFile(config_path);

  replay::ReplayOptions options;
  options.speed = 0.0;  // unpaced: measure the runtime, not the recording
  replay::ReplayReport first;
  replay::ReplayReport second;
  for (replay::ReplayReport* report : {&first, &second}) {
    const serve::Result<replay::ReplayReport> replayed =
        replay::ReplayTrace(scenario, domains, reader.value(), options);
    if (!replayed.ok()) {
      std::cerr << "replay bench: " << replayed.error().message << "\n";
      return 1;
    }
    *report = replayed.value();
  }
  const bool deterministic = first.flags.digest == second.flags.digest;
  const double eps = first.elapsed_seconds > 0.0
                         ? static_cast<double>(first.offered) /
                               first.elapsed_seconds
                         : 0.0;
  char digest[17];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(first.flags.digest));

  std::cout << "replay bench: '" << info.scenario << "' (" << trace_path
            << ") " << first.offered << " examples in " << first.elapsed_seconds
            << "s = " << eps << " ex/s, " << first.flags.lines.size()
            << " flags, digest " << digest
            << (deterministic ? "" : " [NON-DETERMINISTIC]") << "\n";

  std::ofstream out(json_path);
  common::Check(out.good(), "cannot open json output: " + json_path);
  out << "{\n"
      << "  \"bench\": \"runtime_throughput\",\n"
      << "  \"mode\": \"replay\",\n"
      << "  \"trace\": \"" << trace_path << "\",\n"
      << "  \"scenario\": \"" << info.scenario << "\",\n"
      << "  \"records\": " << info.records << ",\n"
      << "  \"examples\": " << info.examples << ",\n"
      << "  \"offered\": " << first.offered << ",\n"
      << "  \"scored\": " << first.scored << ",\n"
      << "  \"shed\": " << first.shed << ",\n"
      << "  \"dropped\": " << first.dropped << ",\n"
      << "  \"errored\": " << first.errored << ",\n"
      << "  \"accounted\": " << (first.accounted ? "true" : "false") << ",\n"
      << "  \"seconds\": " << first.elapsed_seconds << ",\n"
      << "  \"examples_per_sec\": " << eps << ",\n"
      << "  \"flags\": " << first.flags.lines.size() << ",\n"
      << "  \"flag_digest\": \"" << digest << "\",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  if (!first.accounted || !deterministic) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed(
      {"streams", "examples", "workers", "shards", "capacity", "batch",
       "window", "settle", "seed", "json", "facade", "net",
       "net-examples", "replay", "replay-config"});
  if (const std::string replay_trace = flags.GetString("replay", "");
      !replay_trace.empty() && replay_trace != "true") {
    return RunReplayBench(replay_trace, flags.GetString("replay-config", ""),
                          flags.GetString("json", "BENCH_runtime.json"));
  }
  const auto n_streams = static_cast<std::size_t>(flags.GetInt("streams", 8));
  const auto examples = static_cast<std::size_t>(flags.GetInt("examples", 20000));
  // `--workers` accepts a comma-separated sweep (e.g. `--workers 1,2,4,8`);
  // the headline "sharded" row/JSON entry is the last (largest) setting.
  const std::vector<std::int64_t> worker_sweep =
      flags.GetIntList("workers", {4});
  common::Check(!worker_sweep.empty() &&
                    std::all_of(worker_sweep.begin(), worker_sweep.end(),
                                [](std::int64_t w) { return w >= 1; }),
                "--workers entries must be >= 1");
  const auto workers = static_cast<std::size_t>(worker_sweep.back());
  // `--shards` sweeps the backpressure-aware fast path
  // (ShardedMonitorService), e.g. `--shards 1,2,4,8`.
  const std::vector<std::int64_t> shard_counts =
      flags.GetIntList("shards", {1, 2, 4, 8});
  common::Check(!shard_counts.empty() &&
                    std::all_of(shard_counts.begin(), shard_counts.end(),
                                [](std::int64_t s) { return s >= 1; }),
                "--shards entries must be >= 1");
  const auto batch_size = static_cast<std::size_t>(flags.GetInt("batch", 256));
  const auto window = static_cast<std::size_t>(flags.GetInt("window", 128));
  const auto settle_lag = static_cast<std::size_t>(flags.GetInt("settle", 16));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.GetString("json", "BENCH_runtime.json");
  // The suite's largest temporal radius is 8 ("drift"). Equivalence across
  // per-example and batched configurations needs settled verdicts to be
  // final (settle >= radius) and suffix re-scoring to keep its 2r context
  // (window > 2 * radius).
  constexpr std::size_t kMaxRadius = 8;
  common::Check(settle_lag >= kMaxRadius,
                "--settle must be >= 8, the largest assertion radius");
  common::Check(window > 2 * kMaxRadius && settle_lag < window,
                "--window must be > 16 (2x the largest radius) and > settle");

  std::vector<std::vector<Sample>> streams;
  for (std::size_t s = 0; s < n_streams; ++s) {
    streams.push_back(common::MakeBenchStream(seed + s, examples));
  }

  const RunResult baseline = RunBaseline(streams, window, settle_lag);
  std::vector<std::pair<std::size_t, RunResult>> sweep;
  for (const std::int64_t w : worker_sweep) {
    sweep.emplace_back(
        static_cast<std::size_t>(w),
        RunService(streams, static_cast<std::size_t>(w), batch_size, window,
                   settle_lag));
  }
  std::vector<std::pair<std::size_t, ShardedRunResult>> shard_sweep;
  for (const std::int64_t s : shard_counts) {
    shard_sweep.emplace_back(
        static_cast<std::size_t>(s),
        RunSharded(streams, static_cast<std::size_t>(s), batch_size, window,
                   settle_lag));
    common::Check(baseline.events == shard_sweep.back().second.run.events,
                  "sharded fast path emitted a different event count");
  }

  // The sweep entry closest to 2 shards anchors both the facade
  // comparison and the saturation pacing: past ~4 shards a single-core
  // box is oversubscribed and run-to-run scheduler noise swamps the
  // few-percent effects being measured.
  const auto reference = std::min_element(
      shard_sweep.begin(), shard_sweep.end(), [](const auto& a, const auto& b) {
        const auto distance = [](std::size_t s) {
          return s > 2 ? s - 2 : 2 - s;
        };
        return distance(a.first) < distance(b.first);
      });

  // Facade-vs-templated: the same workload through serve::Monitor at the
  // reference shard count; the throughput delta is the erasure tax. Both
  // sides run interleaved, median-of-5 (same noise reasoning: run-to-run
  // scheduler variance on this box exceeds the effect being measured, and
  // a median is robust where a best-of amplifies one side's lucky run).
  const bool facade_enabled = flags.GetBool("facade", true);
  const std::size_t facade_shards = reference->first;
  ShardedRunResult facade_templated;
  ShardedRunResult facade_result;
  double facade_overhead = 0.0;
  if (facade_enabled) {
    // Best-of-N, interleaved. Scheduler noise on a shared box only ever
    // *slows* a run, so the fastest rep of each path is the noise-robust
    // estimator for a throughput ratio — a median still carries whatever
    // interference its middle rep happened to absorb.
    constexpr int kReps = 7;
    std::vector<ShardedRunResult> templated_runs;
    std::vector<ShardedRunResult> facade_runs;
    for (int rep = 0; rep < kReps; ++rep) {
      templated_runs.push_back(RunSharded(streams, facade_shards,
                                          batch_size, window, settle_lag));
      common::Check(baseline.events == templated_runs.back().run.events,
                    "templated rerun emitted a different event count");
      facade_runs.push_back(RunFacade(streams, facade_shards, batch_size,
                                      window, settle_lag));
      common::Check(baseline.events == facade_runs.back().run.events,
                    "facade emitted a different event count");
    }
    const auto fastest = [](std::vector<ShardedRunResult>& runs) {
      std::sort(runs.begin(), runs.end(),
                [](const ShardedRunResult& a, const ShardedRunResult& b) {
                  return a.run.examples_per_sec > b.run.examples_per_sec;
                });
      return runs.front();
    };
    facade_templated = fastest(templated_runs);
    facade_result = fastest(facade_runs);
    facade_overhead = 1.0 - facade_result.run.examples_per_sec /
                                facade_templated.run.examples_per_sec;
  }

  // Tracing overhead at the reference shard count: no tracer vs a tracer
  // attached but disabled (a production binary with tracing compiled in and
  // switched off — must cost nothing beyond noise) vs tracing on at 1/16
  // sampling (the recommended always-on setting — target <= 2%). Median-of-5
  // interleaved, same scheduler-noise reasoning as the facade comparison.
  TracingComparison tracing;
  tracing.shards = reference->first;
  tracing.sample_every = 16;
  {
    constexpr int kReps = 5;
    const auto make_tracer = [&](bool enabled) {
      obs::TracerOptions options;
      options.shard_lanes = tracing.shards;
      options.ring_capacity = 4096;
      options.sample_every = tracing.sample_every;
      options.enabled = enabled;
      return std::make_shared<obs::Tracer>(options);
    };
    std::vector<double> base_eps, off_eps, on_eps;
    for (int rep = 0; rep < kReps; ++rep) {
      base_eps.push_back(RunSharded(streams, tracing.shards, batch_size,
                                    window, settle_lag)
                             .run.examples_per_sec);
      off_eps.push_back(RunSharded(streams, tracing.shards, batch_size,
                                   window, settle_lag, make_tracer(false))
                            .run.examples_per_sec);
      const auto on_tracer = make_tracer(true);
      on_eps.push_back(RunSharded(streams, tracing.shards, batch_size,
                                  window, settle_lag, on_tracer)
                           .run.examples_per_sec);
      const obs::TraceSnapshot snapshot = on_tracer->Drain();
      tracing.events_recorded = 0;
      for (const obs::LaneTrace& lane : snapshot.lanes) {
        tracing.events_recorded += lane.recorded;
      }
      common::Check(tracing.events_recorded > 0,
                    "tracing-on run recorded no events");
    }
    const auto median = [](std::vector<double>& eps) {
      std::sort(eps.begin(), eps.end());
      return eps[eps.size() / 2];
    };
    tracing.baseline_eps = median(base_eps);
    tracing.off_eps = median(off_eps);
    tracing.on_eps = median(on_eps);
    tracing.off_overhead = 1.0 - tracing.off_eps / tracing.baseline_eps;
    tracing.on_overhead = 1.0 - tracing.on_eps / tracing.baseline_eps;
  }

  // Saturation: a small bounded queue under ShedBelowSeverity, offered
  // load paced at fractions of the unsaturated 2-shard (or closest) rate.
  const std::size_t saturation_shards = reference->first;
  const double reference_eps = reference->second.run.examples_per_sec;
  // Default per-shard queue bound: two submission rounds' worth of the
  // streams one shard owns, so a paced producer below the knee never sheds
  // (submission arrives in per-round bursts, not smoothly).
  const auto saturation_capacity = static_cast<std::size_t>(flags.GetInt(
      "capacity", static_cast<std::int64_t>(std::max<std::size_t>(
                      2 * batch_size *
                          (n_streams + saturation_shards - 1) /
                          saturation_shards,
                      2048))));
  // Per-batch severity hints (anomaly-burst counts); the shed floor is
  // their 75th percentile, so ~a quarter of the offered batches count as
  // important and survive overload.
  std::vector<std::vector<double>> hints(n_streams);
  std::vector<double> all_hints;
  for (std::size_t s = 0; s < n_streams; ++s) {
    for (std::size_t offset = 0; offset < examples; offset += batch_size) {
      const std::size_t count = std::min(batch_size, examples - offset);
      hints[s].push_back(BatchHint(
          std::span<const Sample>(streams[s].data() + offset, count)));
      all_hints.push_back(hints[s].back());
    }
  }
  std::sort(all_hints.begin(), all_hints.end());
  const double shed_floor =
      std::max(1.0, all_hints[all_hints.size() * 3 / 4] + 0.5);
  std::vector<SaturationPoint> saturation;
  for (const double frac : {0.5, 1.0, 2.0, 4.0}) {
    saturation.push_back(RunSaturationPoint(
        streams, hints, shed_floor, frac, reference_eps, saturation_shards,
        batch_size, window, settle_lag, saturation_capacity));
  }

  // Networked saturation: both transports, unpaced, 4 connections (two per
  // exposed stream). `--net-examples` scales the per-connection volume.
  const bool net_enabled = flags.GetBool("net", true);
  const auto net_examples =
      static_cast<std::size_t>(flags.GetInt("net-examples", 50000));
  std::vector<NetPoint> net_points;
  if (net_enabled) {
    for (const bool uds : {true, false}) {
      net_points.push_back(RunNetPoint(uds, /*connections=*/4, net_examples,
                                       /*batch_size=*/256));
    }
  }
  common::Check(saturation.back().shed_examples > 0,
                "saturation bench: overload must shed under "
                "ShedBelowSeverity, not grow the queue");
  // The 1-worker reference (per-stream batching win without parallelism):
  // reuse the sweep's run when the sweep already covers it.
  const auto one_worker =
      std::find_if(sweep.begin(), sweep.end(),
                   [](const auto& entry) { return entry.first == 1; });
  const RunResult sharded_1w =
      one_worker != sweep.end()
          ? one_worker->second
          : RunService(streams, 1, batch_size, window, settle_lag);
  const RunResult& sharded = sweep.back().second;
  common::Check(baseline.events == sharded_1w.events,
                "configurations emitted different event counts");
  for (const auto& [w, run] : sweep) {
    common::Check(baseline.events == run.events,
                  "configurations emitted different event counts");
  }

  std::cout << "=== runtime throughput (" << n_streams << " streams x "
            << examples << " examples, window " << window << ", settle "
            << settle_lag << ") ===\n\n";
  common::TextTable table(
      {"Configuration", "Seconds", "Examples/sec", "Events", "Speedup"});
  const auto row = [&](const std::string& name, const RunResult& r) {
    table.AddRow({name, common::FormatDouble(r.seconds, 3),
                  common::FormatDouble(r.examples_per_sec, 0),
                  std::to_string(r.events),
                  common::FormatDouble(
                      r.examples_per_sec / baseline.examples_per_sec, 2) +
                      "x"});
  };
  row("per-example monitor loop", baseline);
  if (one_worker == sweep.end()) {
    row("sharded runtime, 1 worker, batch " + std::to_string(batch_size),
        sharded_1w);
  }
  for (const auto& [w, run] : sweep) {
    row("sharded runtime, " + std::to_string(w) +
            (w == 1 ? " worker, batch " : " workers, batch ") +
            std::to_string(batch_size),
        run);
  }
  table.Print(std::cout);

  std::cout << "\n=== backpressure-aware fast path (--shards sweep) ===\n\n";
  common::TextTable fast_table({"Shards", "Seconds", "Examples/sec",
                                "Speedup", "p50 ms", "p95 ms", "p99 ms",
                                "Busy %", "Q-wait ms"});
  for (const auto& [s, result] : shard_sweep) {
    double busy = 0.0;
    double wait = 0.0;
    for (const ShardOccupancy& o : result.occupancy) {
      busy += o.busy_frac;
      wait += o.mean_queue_wait_ms;
    }
    const auto shard_count = static_cast<double>(result.occupancy.size());
    fast_table.AddRow(
        {std::to_string(s), common::FormatDouble(result.run.seconds, 3),
         common::FormatDouble(result.run.examples_per_sec, 0),
         common::FormatDouble(
             result.run.examples_per_sec / baseline.examples_per_sec, 2) +
             "x",
         common::FormatDouble(result.p50_ms, 3),
         common::FormatDouble(result.p95_ms, 3),
         common::FormatDouble(result.p99_ms, 3),
         common::FormatDouble(busy / shard_count * 100.0, 1),
         common::FormatDouble(wait / shard_count, 3)});
  }
  fast_table.Print(std::cout);

  if (facade_enabled) {
    std::cout << "\n=== type-erased facade vs templated ("
              << facade_shards << " shards) ===\n\n";
    common::TextTable facade_table(
        {"Configuration", "Examples/sec", "p99 ms", "Overhead"});
    facade_table.AddRow(
        {"templated ShardedMonitorService",
         common::FormatDouble(facade_templated.run.examples_per_sec, 0),
         common::FormatDouble(facade_templated.p99_ms, 3), "-"});
    facade_table.AddRow(
        {"serve::Monitor (AnyExample dispatch)",
         common::FormatDouble(facade_result.run.examples_per_sec, 0),
         common::FormatDouble(facade_result.p99_ms, 3),
         common::FormatDouble(facade_overhead * 100.0, 1) + "%"});
    facade_table.Print(std::cout);
    if (facade_overhead > 0.10) {
      std::cout << "WARNING: facade overhead above the 10% target\n";
    }
  }

  std::cout << "\n=== tracing overhead (" << tracing.shards
            << " shards, sample 1/" << tracing.sample_every << ") ===\n\n";
  common::TextTable trace_table({"Configuration", "Examples/sec",
                                 "Overhead"});
  trace_table.AddRow({"no tracer",
                      common::FormatDouble(tracing.baseline_eps, 0), "-"});
  trace_table.AddRow({"tracer attached, disabled",
                      common::FormatDouble(tracing.off_eps, 0),
                      common::FormatDouble(tracing.off_overhead * 100.0, 1) +
                          "%"});
  trace_table.AddRow({"tracing on, 1/" +
                          std::to_string(tracing.sample_every) + " sampling",
                      common::FormatDouble(tracing.on_eps, 0),
                      common::FormatDouble(tracing.on_overhead * 100.0, 1) +
                          "%"});
  trace_table.Print(std::cout);
  if (tracing.on_overhead > 0.02) {
    std::cout << "WARNING: sampled tracing overhead above the 2% target\n";
  }

  std::cout << "\n=== saturation (shed_below_severity, "
            << saturation_shards << " shards, queue "
            << saturation_capacity << " examples, floor "
            << common::FormatDouble(shed_floor, 1) << ") ===\n\n";
  common::TextTable sat_table({"Offered", "Offered ex/s", "Achieved ex/s",
                               "p99 ms", "Shed", "Dropped", "Peak depth"});
  for (const SaturationPoint& p : saturation) {
    sat_table.AddRow({common::FormatDouble(p.offered_frac, 2) + "x",
                      common::FormatDouble(p.offered_eps, 0),
                      common::FormatDouble(p.achieved_eps, 0),
                      common::FormatDouble(p.p99_ms, 3),
                      std::to_string(p.shed_examples),
                      std::to_string(p.dropped_examples),
                      std::to_string(p.queue_depth_peak)});
  }
  sat_table.Print(std::cout);

  if (net_enabled) {
    std::cout << "\n=== networked ingestion (video+ecg monitor behind "
                 "net::IngestServer, 4 connections, unpaced) ===\n\n";
    common::TextTable net_table({"Transport", "Offered", "Examples/sec",
                                 "Wire MB", "Scored", "Shed",
                                 "Reconciled"});
    for (const NetPoint& p : net_points) {
      net_table.AddRow(
          {p.transport, std::to_string(p.offered),
           common::FormatDouble(p.examples_per_sec, 0),
           common::FormatDouble(static_cast<double>(p.wire_bytes) / 1e6, 1),
           std::to_string(p.scored), std::to_string(p.shed),
           p.reconciled ? "yes" : "NO"});
    }
    net_table.Print(std::cout);
  }

  WriteJson(json_path, n_streams, examples, window, settle_lag, workers,
            batch_size, baseline, sharded_1w, sharded, sweep, shard_sweep,
            facade_enabled ? &facade_result : nullptr, facade_shards,
            facade_templated.run.examples_per_sec, facade_overhead, tracing,
            saturation_shards, saturation_capacity, shed_floor, saturation,
            net_points);
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
