// Table 4: pretrained vs weakly-supervised model quality for the video,
// AV and ECG domains — no human labels involved.
//
//   * video: 750-frame budget dominated by flicker-flagged frames plus
//     random fillers; corrections become weak labels (imputed boxes from
//     nearby occurrences; brief-appearance removals).
//   * AV: 2D boxes imputed from the fixed LIDAR model's 3D predictions.
//   * ECG: brief-episode windows relabeled with the surrounding class.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"seed"});
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 11));

  common::TextTable table({"Domain", "Pretrained", "Weakly supervised",
                           "Relative gain", "Weak labels"});

  {
    video::VideoPipeline pipeline(bench::VideoConfig());
    // Paper protocol: 1,000 frames — 750 that triggered flicker + 250
    // random.
    const auto result = RunVideoWeakSupervision(pipeline, 450, 150, seed);
    table.AddRow(
        {"Video analytics (mAP)",
         common::FormatDouble(100.0 * result.pretrained_metric, 1),
         common::FormatDouble(100.0 * result.weakly_supervised_metric, 1),
         common::FormatPercent(result.RelativeImprovement(), 1),
         std::to_string(result.weak_positives + result.weak_negatives)});
  }
  {
    av::AvPipeline pipeline(bench::AvConfig());
    const auto result = RunAvWeakSupervision(
        pipeline, pipeline.pool().size(), seed);
    table.AddRow(
        {"AVs (mAP)",
         common::FormatDouble(100.0 * result.pretrained_metric, 1),
         common::FormatDouble(100.0 * result.weakly_supervised_metric, 1),
         common::FormatPercent(result.RelativeImprovement(), 1),
         std::to_string(result.weak_positives)});
  }
  {
    ecg::EcgPipeline pipeline(bench::EcgConfig());
    const auto result = RunEcgWeakSupervision(pipeline, 1000, seed);
    table.AddRow(
        {"ECG (% accuracy)",
         common::FormatDouble(100.0 * result.pretrained_metric, 1),
         common::FormatDouble(100.0 * result.weakly_supervised_metric, 1),
         common::FormatPercent(result.RelativeImprovement(), 1),
         std::to_string(result.weak_positives)});
  }

  std::cout << "=== Table 4: weak supervision, no human labels ===\n\n";
  table.Print(std::cout);
  std::cout << "\nPaper reference: video 34.4 -> 49.9 mAP (+46% relative),\n"
            << "AV 10.6 -> 14.1 mAP (+33%), ECG 70.7 -> 72.1 accuracy.\n"
            << "Expected shape: large relative video gain, moderate AV\n"
            << "gain, small ECG gain.\n";
  return 0;
}
