// Online improvement-loop convergence on the video domain (the paper's
// Figure-1 cycle run live, ISSUE 2 acceptance): does closing the loop —
// flag -> BAL-select -> label -> background-retrain -> hot-swap — reduce
// the flagged-example rate of live traffic across rounds, versus serving
// the same traffic with the pretrained model forever?
//
// Each arm serves `--rounds` rounds of `--frames` night-street frames
// through the multi-stream runtime with the full video suite (multibox +
// consistency-generated flicker/appear). The loop arms run one bandit round
// after each traffic round: candidates come from the live FlagStore, labels
// from the simulator's ground truth (the "human" of §3) — and in the
// "bal+weak" arm additionally from consistency corrections at reduced
// weight (§5.5) — and the fine-tuned model is published to the registry,
// which serving picks up between batches without pausing ingestion.
//
// Writes machine-readable results to --json (default BENCH_loop.json).
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bandit/bal.hpp"
#include "bandit/strategy.hpp"
#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "eval/detection_metrics.hpp"
#include "loop/improvement_loop.hpp"
#include "runtime/service.hpp"
#include "video/assertions.hpp"
#include "video/detector.hpp"
#include "video/pipeline.hpp"
#include "video/world.hpp"

namespace {

using namespace omg;

struct BenchConfig {
  std::size_t rounds = 8;
  std::size_t frames_per_round = 250;
  std::size_t budget = 35;
  std::size_t workers = 2;
  std::size_t batch = 25;
  /// Frames served before round 0 so the road reaches steady-state density
  /// and the window primes; excluded from round stats.
  std::size_t warmup_frames = 60;
  std::uint64_t seed = 42;
};

struct RoundPoint {
  /// Distinct flagged frames / frames over this round's traffic — the
  /// flagged-example rate the loop is trying to push down.
  double flagged_rate = 0.0;
  double events_per_example = 0.0;
  std::size_t events = 0;
  std::map<std::string, std::size_t> events_by_assertion;
  std::uint64_t model_version = 0;
  double test_map = 0.0;
};

/// Counts distinct flagged examples (one stream), drained per round.
class DistinctFlaggedSink final : public runtime::EventSink {
 public:
  void Consume(const runtime::StreamEvent& event) override {
    std::lock_guard<std::mutex> lock(mutex_);
    flagged_.insert(event.example_index);
  }

  /// Distinct flagged examples since the last drain.
  std::size_t Drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t count = flagged_.size();
    flagged_.clear();
    return count;
  }

 private:
  std::mutex mutex_;
  std::set<std::size_t> flagged_;
};

struct ArmResult {
  std::string name;
  std::vector<RoundPoint> rounds;
  double ingest_seconds = 0.0;  ///< wall time spent serving traffic
  double total_seconds = 0.0;   ///< serving + rounds + retraining
  std::size_t examples = 0;
  std::size_t weak_labels = 0;
  std::size_t human_labels = 0;

  double IngestExamplesPerSec() const {
    return ingest_seconds > 0.0
               ? static_cast<double>(examples) / ingest_seconds
               : 0.0;
  }
};

/// mAP of `detector` over held-out frames (the fixed test "day").
double TestMap(const video::SsdDetector& detector,
               const std::vector<video::Frame>& test_frames) {
  std::vector<eval::FrameEval> evals;
  evals.reserve(test_frames.size());
  for (const auto& frame : test_frames) {
    eval::FrameEval fe;
    fe.detections = detector.DetectForEval(frame);
    fe.truths = frame.truths;
    evals.push_back(std::move(fe));
  }
  return eval::MeanAveragePrecision(evals);
}

enum class Arm { kControl, kBal, kBalWeak };

ArmResult RunArm(Arm arm, const std::string& name, const BenchConfig& bench) {
  using Clock = std::chrono::steady_clock;
  const auto arm_begin = Clock::now();

  // Identical worlds/models per arm: same seeds, same call order.
  video::NightStreetWorld world(video::WorldConfig{}, bench.seed);
  nn::Dataset pretrain = world.PretrainingSet(500, 700);
  video::NightStreetWorld test_world(video::WorldConfig{}, bench.seed + 999);
  const std::vector<video::Frame> test_frames = test_world.GenerateFrames(120);
  video::SsdDetector detector(video::DetectorConfig{},
                              world.config().feature_dim, bench.seed);
  detector.Pretrain(pretrain);

  // Retained live traffic: candidate keys index into these, and the weak
  // oracle re-derives corrections from the deployed outputs recorded here.
  std::vector<video::Frame> frames;
  std::vector<video::VideoExample> deployed;
  auto correction_suite = std::make_shared<video::VideoSuite>(
      video::BuildVideoSuite());  // weak oracle's own analyzer

  auto human = std::make_shared<loop::GroundTruthOracle>(
      [&frames](const loop::CandidateKey& key) {
        return video::NightStreetWorld::LabelFrame(
            frames.at(key.example_index));
      });
  std::shared_ptr<loop::LabelOracle> oracle = human;
  if (arm == Arm::kBalWeak) {
    auto weak = std::make_shared<loop::WeakLabelOracle>(
        [&frames, &deployed, correction_suite](
            std::span<const loop::CandidateKey> keys) {
          std::set<std::size_t> chosen;
          for (const auto& key : keys) chosen.insert(key.example_index);
          correction_suite->consistency->Invalidate();
          return video::MakeWeakLabelDataset(*correction_suite, frames,
                                             deployed, chosen);
        },
        /*weak_weight=*/0.25);
    oracle = std::make_shared<loop::MixedOracle>(human, weak);
  }

  loop::ImprovementLoopConfig config;
  config.assertion_names = {"multibox", "flicker", "appear"};
  config.store.capacity = 512;
  config.round.budget = bench.budget;
  config.round.min_candidates = 1;
  config.retrain.sgd = video::DetectorConfig{}.finetune_sgd;
  config.retrain.sgd.epochs = 20;      // each retrain re-fits the full set
  config.retrain.replay_weight = 1.0;  // LabelAndTrain replays pretraining
  config.retrain.seed = bench.seed ^ 0x5EEDULL;
  config.seed = bench.seed + 7;
  loop::ImprovementLoop improvement(
      config,
      std::make_unique<bandit::BalStrategy>(
          bandit::BalConfig{}, std::make_unique<bandit::RandomStrategy>()),
      oracle, detector.model(), pretrain);

  runtime::RuntimeConfig service_config;
  service_config.workers = bench.workers;
  service_config.window = 48;
  service_config.settle_lag = 8;
  runtime::MonitorService<video::VideoExample> service(service_config, [] {
    auto built =
        std::make_shared<video::VideoSuite>(video::BuildVideoSuite());
    return runtime::MonitorService<video::VideoExample>::SuiteBundle{
        std::shared_ptr<core::AssertionSuite<video::VideoExample>>(
            built, &built->suite),
        [built] { built->consistency->Invalidate(); }};
  });
  service.AddSink(improvement.sink());
  auto distinct = std::make_shared<DistinctFlaggedSink>();
  service.AddSink(distinct);
  const runtime::StreamId id = service.RegisterStream("cam-live");

  ArmResult result;
  result.name = name;
  std::size_t events_before = 0;
  std::size_t examples_before = 0;
  std::map<std::string, std::size_t> fires_before;
  std::uint64_t served_version = 0;

  // Scores `count` fresh frames with the registry-current model and serves
  // them; the model is picked up between batches — never mid-batch, and
  // never by pausing ingestion.
  const auto serve = [&](std::size_t count) {
    const std::vector<video::Frame> fresh = world.GenerateFrames(count);
    const auto ingest_begin = Clock::now();
    std::vector<video::VideoExample> batch;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      if (batch.empty()) {
        const loop::ModelHandle handle = improvement.registry().Current();
        if (handle.version != served_version) {
          detector.SetModel(*handle.model);
          served_version = handle.version;
        }
      }
      const video::Frame& frame = fresh[i];
      video::VideoExample example{frame.index, frame.timestamp,
                                  detector.Detect(frame)};
      frames.push_back(frame);
      deployed.push_back(example);
      batch.push_back(std::move(example));
      if (batch.size() == bench.batch || i + 1 == fresh.size()) {
        service.ObserveBatch(id, std::move(batch));
        batch.clear();
      }
    }
    service.Flush();
    result.ingest_seconds +=
        std::chrono::duration<double>(Clock::now() - ingest_begin).count();
  };

  // Warmup: fill the road to steady-state density and prime the window so
  // round 0 measures the same regime later rounds do.
  serve(bench.warmup_frames);
  {
    const runtime::MetricsSnapshot snapshot = service.Metrics();
    events_before = snapshot.events;
    examples_before = snapshot.examples_seen;
    for (const auto& [assertion, cell] : snapshot.assertions) {
      fires_before[assertion] = cell.fires;
    }
    (void)distinct->Drain();
  }

  for (std::size_t round = 0; round < bench.rounds; ++round) {
    serve(bench.frames_per_round);

    const runtime::MetricsSnapshot snapshot = service.Metrics();
    RoundPoint point;
    const std::size_t round_examples =
        snapshot.examples_seen - examples_before;
    point.events = snapshot.events - events_before;
    point.flagged_rate = static_cast<double>(distinct->Drain()) /
                         static_cast<double>(round_examples);
    point.events_per_example = static_cast<double>(point.events) /
                               static_cast<double>(round_examples);
    for (const auto& [assertion, cell] : snapshot.assertions) {
      point.events_by_assertion[assertion] =
          cell.fires - fires_before[assertion];
      fires_before[assertion] = cell.fires;
    }
    events_before = snapshot.events;
    examples_before = snapshot.examples_seen;
    point.model_version = served_version;
    point.test_map = TestMap(detector, test_frames);
    result.rounds.push_back(point);

    if (arm != Arm::kControl) {
      improvement.RunRound();
      improvement.WaitForRetrains();  // next round serves the new version
    }
  }
  common::Check(service.Errors().empty(), "loop arm hit ingestion errors");
  result.examples = examples_before;
  for (const loop::RoundStats& stats : improvement.History()) {
    result.human_labels += stats.human_labels;
    result.weak_labels += stats.weak_labels;
  }
  result.total_seconds =
      std::chrono::duration<double>(Clock::now() - arm_begin).count();
  return result;
}

void WriteJson(const std::string& path, const BenchConfig& bench,
               const std::vector<ArmResult>& arms) {
  std::ofstream out(path);
  common::Check(out.good(), "cannot open json output: " + path);
  out << "{\n  \"bench\": \"loop_convergence\",\n"
      << "  \"rounds\": " << bench.rounds << ",\n"
      << "  \"frames_per_round\": " << bench.frames_per_round << ",\n"
      << "  \"budget_per_round\": " << bench.budget << ",\n"
      << "  \"workers\": " << bench.workers << ",\n"
      << "  \"seed\": " << bench.seed << ",\n  \"arms\": [\n";
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const ArmResult& arm = arms[a];
    out << "    {\"name\": \"" << arm.name << "\", \"examples\": "
        << arm.examples << ", \"ingest_seconds\": " << arm.ingest_seconds
        << ", \"ingest_examples_per_sec\": " << arm.IngestExamplesPerSec()
        << ", \"total_seconds\": " << arm.total_seconds
        << ", \"human_labels\": " << arm.human_labels
        << ", \"weak_labels\": " << arm.weak_labels << ",\n"
        << "     \"rounds\": [\n";
    for (std::size_t r = 0; r < arm.rounds.size(); ++r) {
      const RoundPoint& point = arm.rounds[r];
      out << "       {\"round\": " << r << ", \"flagged_rate\": "
          << point.flagged_rate
          << ", \"events_per_example\": " << point.events_per_example
          << ", \"events\": " << point.events
          << ", \"model_version\": " << point.model_version
          << ", \"test_map\": " << point.test_map << "}"
          << (r + 1 < arm.rounds.size() ? "," : "") << "\n";
    }
    out << "     ]}" << (a + 1 < arms.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"rounds", "frames", "budget", "workers", "batch",
                      "warmup", "seed", "json"});
  BenchConfig bench;
  bench.rounds = static_cast<std::size_t>(flags.GetInt("rounds", 8));
  bench.frames_per_round =
      static_cast<std::size_t>(flags.GetInt("frames", 250));
  bench.budget = static_cast<std::size_t>(flags.GetInt("budget", 35));
  bench.warmup_frames =
      static_cast<std::size_t>(flags.GetInt("warmup", 60));
  bench.workers = static_cast<std::size_t>(flags.GetInt("workers", 2));
  bench.batch = static_cast<std::size_t>(flags.GetInt("batch", 25));
  bench.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.GetString("json", "BENCH_loop.json");
  common::Check(bench.rounds >= 3,
                "--rounds must be >= 3 to show convergence");

  std::cout << "=== online improvement-loop convergence (video, "
            << bench.rounds << " rounds x " << bench.frames_per_round
            << " frames, budget " << bench.budget << "/round) ===\n\n";

  std::vector<ArmResult> arms;
  arms.push_back(RunArm(Arm::kControl, "control (no retrain)", bench));
  arms.push_back(RunArm(Arm::kBal, "bal + human labels", bench));
  arms.push_back(RunArm(Arm::kBalWeak, "bal + human + weak labels", bench));

  common::TextTable table({"Arm", "Round", "Flagged", "Ev/ex", "Multibox",
                           "Flicker", "Appear", "Model v", "Test mAP"});
  const auto by = [](const RoundPoint& point, const std::string& name) {
    const auto it = point.events_by_assertion.find(name);
    return it == point.events_by_assertion.end() ? std::size_t{0}
                                                 : it->second;
  };
  for (const ArmResult& arm : arms) {
    for (std::size_t r = 0; r < arm.rounds.size(); ++r) {
      const RoundPoint& point = arm.rounds[r];
      table.AddRow({r == 0 ? arm.name : "", std::to_string(r),
                    common::FormatDouble(point.flagged_rate, 3),
                    common::FormatDouble(point.events_per_example, 3),
                    std::to_string(by(point, "multibox")),
                    std::to_string(by(point, "flicker")),
                    std::to_string(by(point, "appear")),
                    std::to_string(point.model_version),
                    common::FormatDouble(point.test_map, 3)});
    }
  }
  table.Print(std::cout);

  std::cout << "\n";
  for (const ArmResult& arm : arms) {
    std::cout << arm.name << ": " << arm.examples << " examples at "
              << common::FormatDouble(arm.IngestExamplesPerSec(), 0)
              << " examples/sec ingest (" << arm.human_labels
              << " human + " << arm.weak_labels << " weak labels, "
              << common::FormatDouble(arm.total_seconds, 2)
              << " s total)\n";
  }

  // Convergence check, averaged over round windows (per-round rates are
  // noisy: fresh traffic differs round to round, and partially-trained
  // models transiently fire *more* — a half-detected dark car flickers
  // where an undetected one stays silent). The converged regime is the
  // last half of the rounds.
  const auto mean_rate = [](const ArmResult& arm, std::size_t begin,
                            std::size_t end) {
    double total = 0.0;
    for (std::size_t r = begin; r < end; ++r) {
      total += arm.rounds[r].flagged_rate;
    }
    return total / static_cast<double>(end - begin);
  };
  const ArmResult& control = arms[0];
  const ArmResult& bal = arms[1];
  const std::size_t half = bench.rounds / 2;
  const double bal_early = mean_rate(bal, 0, 2);
  const double bal_late = mean_rate(bal, half, bench.rounds);
  const double control_late = mean_rate(control, half, bench.rounds);
  std::cout << "\nloop flagged-rate: " << common::FormatDouble(bal_early, 3)
            << " (rounds 0-1) -> " << common::FormatDouble(bal_late, 3)
            << " (rounds " << half << "-" << bench.rounds - 1
            << "); control over the same late rounds: "
            << common::FormatDouble(control_late, 3) << "\n";
  common::Check(bal_late < bal_early,
                "loop did not reduce its own flagged rate");
  common::Check(bal_late < control_late,
                "loop did not undercut the no-retrain control");

  WriteJson(json_path, bench, arms);
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
