// Figure 5: active learning on the ECG dataset with the single ECG
// assertion (random vs least-confident uncertainty vs BAL, 8 trials).
//
// The paper's point: even one assertion lets BAL match uncertainty sampling
// and beat random sampling.
#include <iostream>

#include "bandit/bal.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"seed", "rounds", "trials"});
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 2000));
  bench::AlProtocol protocol;
  const auto rounds =
      static_cast<std::size_t>(flags.GetInt("rounds", protocol.rounds));
  const auto trials = static_cast<std::size_t>(
      flags.GetInt("trials", protocol.trials_ecg));

  ecg::EcgPipeline pipeline(bench::EcgConfig());

  std::vector<bandit::ActiveLearningCurve> curves;
  bandit::RandomStrategy random;
  curves.push_back(bandit::RunActiveLearningTrials(
      pipeline, random, rounds, protocol.budget_ecg, trials, seed));
  bandit::UncertaintyStrategy uncertainty;
  curves.push_back(bandit::RunActiveLearningTrials(
      pipeline, uncertainty, rounds, protocol.budget_ecg, trials, seed));
  // The paper lets the user pick BAL's fallback; with a single assertion
  // whose flagged pool is small, uncertainty sampling is the natural
  // choice (Algorithm 2: "default to random sampling or uncertainty
  // sampling, as specified by the user").
  bandit::BalStrategy bal(bandit::BalConfig{},
                          std::make_unique<bandit::UncertaintyStrategy>());
  curves.push_back(bandit::RunActiveLearningTrials(
      pipeline, bal, rounds, protocol.budget_ecg, trials, seed));

  std::cout << "=== Figure 5: ECG active learning, single assertion ("
            << trials << " trials, " << protocol.budget_ecg
            << " labels/round) ===\n\n";
  common::TextTable table(
      {"Round (accuracy %)", "random", "uncertainty", "bal"});
  for (std::size_t r = 0; r <= rounds; ++r) {
    std::vector<std::string> cells = {
        r == 0 ? "pretrained" : std::to_string(r)};
    for (const auto& curve : curves) {
      cells.push_back(
          common::FormatDouble(100.0 * curve.metric_per_round[r], 1));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: with one assertion, BAL matches\n"
            << "uncertainty sampling and outperforms random sampling.\n";
  return 0;
}
