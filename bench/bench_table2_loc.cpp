// Table 2: lines of code per assertion, without and including shared
// helpers (helpers double-counted between assertions, as in the paper).
//
// The numbers are measured over this repository's own sources at run time:
// each assertion's "main body" is the function(s) a developer writes to
// deploy it (the severity function, or the Id/Attrs extractor for
// consistency assertions), and the helpers are the shared utilities it
// calls (IoU, tracking, projection).
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "loc_counter.hpp"

#ifndef OMG_SOURCE_DIR
#define OMG_SOURCE_DIR "."
#endif

int main(int argc, char** argv) {
  using namespace omg;
  using bench::FunctionRef;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"repo"});
  const std::string root = flags.GetString("repo", OMG_SOURCE_DIR);

  struct Entry {
    std::string assertion;
    std::vector<FunctionRef> body;
    std::vector<FunctionRef> helpers;
  };

  const FunctionRef iou{"src/geometry/box.cpp",
                        "double Iou(const Box2D& a, const Box2D& b)"};
  const FunctionRef tracker_update{
      "src/geometry/tracker.cpp",
      "std::vector<TrackedDetection> IouTracker::Update"};
  const FunctionRef project_box{"src/geometry/box.cpp",
                                "Box2D Camera::ProjectBox"};

  const std::vector<Entry> entries = {
      // Consistency assertions: the developer writes the Id/Attrs extractor.
      {"news",
       {{"src/tvnews/news.cpp",
         "core::ConsistencyExtraction ExtractNewsRecords"}},
       {{"src/tvnews/news.cpp", "std::string SlotIdentifier"}}},
      {"ECG",
       {{"src/ecg/ecg.cpp", "core::ConsistencyExtraction ExtractEcgRecords"},
        {"src/ecg/ecg.cpp", "EcgSuite BuildEcgSuite"}},
       {{"src/ecg/ecg.cpp", "std::string RhythmName"}}},
      {"flicker",
       {{"src/video/assertions.cpp",
         "core::ConsistencyExtraction ExtractVideoRecords"}},
       {iou, tracker_update}},
      {"appear",
       {{"src/video/assertions.cpp",
         "core::ConsistencyExtraction ExtractVideoRecords"}},
       {iou, tracker_update}},
      // Custom assertions: the developer writes the severity function.
      {"multibox",
       {{"src/video/assertions.cpp", "double MultiboxSeverity"}},
       {iou}},
      {"agree",
       {{"src/av/assertions.cpp", "double AgreeSeverity"}},
       {iou, project_box}},
  };

  std::cout << "=== Table 2: lines of code per assertion ===\n"
            << "(measured over this repository's sources; helpers are\n"
            << " double-counted between assertions, as in the paper)\n\n";
  common::TextTable table(
      {"Assertion", "LOC (no helpers)", "LOC (inc. helpers)"});
  for (const auto& entry : entries) {
    const std::size_t body = bench::CountTotalLoc(root, entry.body);
    const std::size_t with_helpers =
        body + bench::CountTotalLoc(root, entry.helpers);
    table.AddRow({entry.assertion, std::to_string(body),
                  std::to_string(with_helpers)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: every assertion main body <= 25 LOC,\n"
            << "<= 60 LOC including helpers.\n";
  return 0;
}
