// Table 6 (Appendix E): validating human labels with a model assertion.
//
// 1,000 night-street frames are labeled by a simulated annotation service
// whose mistakes are mostly consistent confusions (an object that looks
// like a truck is always labeled "truck") plus occasional per-frame slips.
// An IoU tracker assigns identities across frames and the class-consistency
// assertion flags labels that disagree within a track.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "labels/labels.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"seed", "frames"});
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 21));
  const auto n_frames =
      static_cast<std::size_t>(flags.GetInt("frames", 1000));

  video::NightStreetWorld world(bench::VideoConfig().world, seed);
  const auto frames = world.GenerateFrames(n_frames);
  labels::AnnotatorSim annotator(labels::AnnotatorConfig{}, seed + 1);
  const auto labeled = annotator.LabelFrames(frames);
  const auto report = labels::ValidateLabels(labeled);

  std::cout << "=== Table 6: errors in human labels caught by the\n"
            << "    class-consistency assertion (" << n_frames
            << " frames) ===\n\n";
  common::TextTable table({"Description", "Number"});
  table.AddRow({"All labels", std::to_string(report.total_labels)});
  table.AddRow({"Errors", std::to_string(report.errors)});
  table.AddRow({"Errors caught", std::to_string(report.errors_caught)});
  table.Print(std::cout);
  std::cout << "\nCatch rate: "
            << common::FormatPercent(report.CatchRate(), 1)
            << " (paper: 469 labels, 32 errors, 4 caught = 12.5%).\n"
            << "Consistent confusions are invisible to the assertion;\n"
            << "per-frame slips on multi-frame tracks are caught.\n";
  return 0;
}
