// Ablation: BAL's design choices (§3, Algorithm 2), on night-street.
//
//   * exploration share (paper fixes 25% of each round's budget),
//   * severity-rank weighting inside an assertion (power 0 = uniform),
//   * fallback trigger threshold (paper: all marginal reductions < 1%).
//
// Each variant reports final-round mAP; the defaults should be at or near
// the top, and the degenerate variants (no exploration, uniform rank)
// visibly worse or equal.
#include <iostream>

#include "bandit/bal.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"seed", "trials"});
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 5000));
  const auto trials =
      static_cast<std::size_t>(flags.GetInt("trials", 3));
  const bench::AlProtocol protocol;

  video::VideoPipeline pipeline(bench::VideoConfig());

  struct Variant {
    std::string name;
    bandit::BalConfig config;
  };
  const std::vector<Variant> variants = {
      {"default (explore 25%, rank^1, fallback 1%)", {}},
      {"no exploration (explore 0%)", {0.0, 0.01, 1.0}},
      {"all exploration (explore 100%)", {1.0, 0.01, 1.0}},
      {"uniform within assertion (rank^0)", {0.25, 0.01, 0.0}},
      {"sharp rank weighting (rank^3)", {0.25, 0.01, 3.0}},
      {"eager fallback (threshold 20%)", {0.25, 0.20, 1.0}},
      {"no fallback (threshold 0%)", {0.25, 0.0, 1.0}},
  };

  std::cout << "=== Ablation: BAL design choices (night-street, " << trials
            << " trials) ===\n\n";
  common::TextTable table({"Variant", "mAP r1", "mAP r3", "mAP final"});
  for (const auto& variant : variants) {
    bandit::BalStrategy bal(variant.config,
                            std::make_unique<bandit::RandomStrategy>());
    const auto curve = bandit::RunActiveLearningTrials(
        pipeline, bal, protocol.rounds, protocol.budget_video, trials,
        seed);
    table.AddRow(
        {variant.name,
         common::FormatDouble(100.0 * curve.metric_per_round[1], 1),
         common::FormatDouble(100.0 * curve.metric_per_round[3], 1),
         common::FormatDouble(100.0 * curve.metric_per_round.back(), 1)});
  }
  table.Print(std::cout);
  return 0;
}
