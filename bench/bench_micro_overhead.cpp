// Microbenchmarks (google-benchmark): runtime overhead of the OMG pieces.
//
// §7 of the paper notes that assertions may add overhead to systems with
// tight actuation latency; these benches quantify this implementation's
// per-frame costs: assertion checking (pointwise and consistency), the
// streaming monitor, BAL selection, and mAP evaluation.
#include <benchmark/benchmark.h>

#include "bandit/bal.hpp"
#include "bench_util.hpp"
#include "core/monitor.hpp"
#include "eval/detection_metrics.hpp"

namespace {

using namespace omg;

video::VideoPipeline& SharedPipeline() {
  static video::VideoPipeline pipeline([] {
    auto config = bench::VideoConfig();
    config.pool_frames = 300;
    config.test_frames = 100;
    return config;
  }());
  return pipeline;
}

void BM_MultiboxSeverity(benchmark::State& state) {
  auto& pipeline = SharedPipeline();
  const auto examples = pipeline.MakeExamples(pipeline.pool());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(video::MultiboxSeverity(
        examples[i % examples.size()].detections, 0.3));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MultiboxSeverity);

void BM_FullSuiteOverPool(benchmark::State& state) {
  auto& pipeline = SharedPipeline();
  const auto examples = pipeline.MakeExamples(pipeline.pool());
  for (auto _ : state) {
    pipeline.suite().consistency->Invalidate();
    benchmark::DoNotOptimize(pipeline.suite().suite.CheckAll(examples));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(examples.size()));
}
BENCHMARK(BM_FullSuiteOverPool);

void BM_StreamingMonitorPerFrame(benchmark::State& state) {
  auto& pipeline = SharedPipeline();
  const auto examples = pipeline.MakeExamples(pipeline.pool());
  video::VideoSuite suite = video::BuildVideoSuite();
  core::StreamingMonitor<video::VideoExample> monitor(suite.suite, 16, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    suite.consistency->Invalidate();
    benchmark::DoNotOptimize(monitor.Observe(examples[i % examples.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamingMonitorPerFrame);

void BM_BalSelection(benchmark::State& state) {
  auto& pipeline = SharedPipeline();
  const core::SeverityMatrix severities = pipeline.ComputeSeverities();
  const std::vector<double> confidences = pipeline.Confidences();
  common::Rng rng(1);
  for (auto _ : state) {
    bandit::BalStrategy bal(bandit::BalConfig{},
                            std::make_unique<bandit::RandomStrategy>());
    bandit::RoundContext context;
    context.severities = &severities;
    context.confidences = confidences;
    benchmark::DoNotOptimize(bal.Select(context, 40, rng));
  }
}
BENCHMARK(BM_BalSelection);

void BM_DetectorInference(benchmark::State& state) {
  auto& pipeline = SharedPipeline();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.detector().Detect(pipeline.pool()[i % pipeline.pool().size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DetectorInference);

void BM_MapEvaluation(benchmark::State& state) {
  auto& pipeline = SharedPipeline();
  std::vector<eval::FrameEval> evals;
  for (const auto& frame : pipeline.test()) {
    eval::FrameEval fe;
    fe.detections = pipeline.detector().DetectForEval(frame);
    fe.truths = frame.truths;
    evals.push_back(std::move(fe));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::MeanAveragePrecision(evals));
  }
}
BENCHMARK(BM_MapEvaluation);

}  // namespace

BENCHMARK_MAIN();
