// Figure 3: confidence percentile of the top-10 errors caught by each video
// assertion, ranked by model confidence.
//
// The x-axis is the error's rank; the y-axis is the percentile of its
// confidence among all deployed detections. The paper's point: assertions
// find errors in the top ~94th percentile of confidence, which
// uncertainty-based monitoring cannot flag.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "eval/stats.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"seed", "topk"});
  const auto top_k = static_cast<std::size_t>(flags.GetInt("topk", 10));

  video::VideoPipeline pipeline(bench::VideoConfig());
  const auto rows = video::AnalyzeHighConfidenceErrors(pipeline, top_k);

  std::cout << "=== Figure 3: confidence percentile of top-" << top_k
            << " errors caught (video) ===\n\n";
  std::vector<std::string> headers = {"Rank"};
  for (const auto& row : rows) headers.push_back(row.assertion);
  common::TextTable table(std::move(headers));
  for (std::size_t rank = 0; rank < top_k; ++rank) {
    std::vector<std::string> cells = {std::to_string(rank + 1)};
    for (const auto& row : rows) {
      cells.push_back(rank < row.percentiles.size()
                          ? common::FormatDouble(row.percentiles[rank], 1)
                          : "-");
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);

  double best = 0.0;
  for (const auto& row : rows) {
    if (!row.percentiles.empty()) best = std::max(best, row.percentiles[0]);
  }
  std::cout << "\nTop caught error sits at the "
            << common::FormatDouble(best, 1)
            << "th percentile of confidence among all deployed boxes.\n"
            << "Paper reference: up to the 94th percentile — errors that\n"
            << "uncertainty-based monitoring would never flag.\n";
  return 0;
}
