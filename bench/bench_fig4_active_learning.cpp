// Figures 4a/4b and 9a/9b: active learning on night-street and the
// NuScenes-like AV dataset with four selection strategies — random,
// least-confident uncertainty, uniform sampling from assertion-flagged
// data, and BAL (Algorithm 2).
//
// Prints every round (the appendix Figure 9 view; Figure 4 is rounds 2-5 of
// the same data) plus the paper's headline label-saving statistic: the
// round at which BAL reaches the best baseline's final metric.
#include <iostream>

#include "bandit/bal.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace omg;

void RunDomain(const std::string& title, bandit::ActiveLearningProblem& problem,
               std::size_t rounds, std::size_t budget, std::size_t trials,
               std::uint64_t seed, const std::string& metric_name) {
  std::cout << "=== " << title << " (" << trials << " trials, " << budget
            << " labels/round) ===\n\n";

  std::vector<bandit::ActiveLearningCurve> curves;
  bandit::RandomStrategy random;
  curves.push_back(bandit::RunActiveLearningTrials(problem, random, rounds,
                                                   budget, trials, seed));
  bandit::UncertaintyStrategy uncertainty;
  curves.push_back(bandit::RunActiveLearningTrials(
      problem, uncertainty, rounds, budget, trials, seed));
  bandit::UniformAssertionStrategy uniform_ma;
  curves.push_back(bandit::RunActiveLearningTrials(
      problem, uniform_ma, rounds, budget, trials, seed));
  bandit::BalStrategy bal(bandit::BalConfig{},
                          std::make_unique<bandit::RandomStrategy>());
  curves.push_back(bandit::RunActiveLearningTrials(problem, bal, rounds,
                                                   budget, trials, seed));

  std::vector<std::string> headers = {"Round (" + metric_name + ")"};
  for (const auto& curve : curves) headers.push_back(curve.strategy);
  common::TextTable table(std::move(headers));
  for (std::size_t r = 0; r <= rounds; ++r) {
    std::vector<std::string> cells = {
        r == 0 ? "pretrained" : std::to_string(r)};
    for (const auto& curve : curves) {
      cells.push_back(
          common::FormatDouble(100.0 * curve.metric_per_round[r], 1));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);

  // Label-saving headline: when does BAL reach the strongest baseline's
  // final metric?
  const double baseline_final =
      std::max(curves[0].metric_per_round.back(),
               curves[1].metric_per_round.back());
  const std::size_t bal_round =
      bandit::RoundsToReach(curves[3], baseline_final);
  if (bal_round > 0 && bal_round < rounds) {
    const double saving = 100.0 * (1.0 - static_cast<double>(bal_round) /
                                             static_cast<double>(rounds));
    std::cout << "\nBAL reaches the best baseline's final "
              << metric_name << " ("
              << common::FormatDouble(100.0 * baseline_final, 1)
              << ") at round " << bal_round << " of " << rounds << " — "
              << common::FormatDouble(saving, 0)
              << "% fewer labels (paper: up to 40%).\n";
  } else {
    std::cout << "\nBAL final: "
              << common::FormatDouble(
                     100.0 * curves[3].metric_per_round.back(), 1)
              << " vs best baseline "
              << common::FormatDouble(100.0 * baseline_final, 1) << ".\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"seed", "rounds", "trials"});
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1000));
  bench::AlProtocol protocol;
  protocol.rounds =
      static_cast<std::size_t>(flags.GetInt("rounds", protocol.rounds));

  {
    video::VideoPipeline pipeline(bench::VideoConfig());
    RunDomain("Figure 4a / 9a: active learning, night-street", pipeline,
              protocol.rounds, protocol.budget_video,
              flags.Has("trials")
                  ? static_cast<std::size_t>(flags.GetInt("trials", 1))
                  : protocol.trials_video,
              seed, "mAP");
  }
  {
    av::AvPipeline pipeline(bench::AvConfig());
    RunDomain("Figure 4b / 9b: active learning, NuScenes-like AV", pipeline,
              protocol.rounds, protocol.budget_av,
              flags.Has("trials")
                  ? static_cast<std::size_t>(flags.GetInt("trials", 1))
                  : protocol.trials_av,
              seed, "mAP");
  }
  return 0;
}
