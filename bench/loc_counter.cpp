#include "loc_counter.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace omg::bench {

namespace {

bool IsCountableLine(const std::string& line) {
  for (const char c : line) {
    if (c == ' ' || c == '\t') continue;
    if (c == '/') return false;  // comment-only line (// or /*)
    return true;
  }
  return false;  // blank
}

}  // namespace

std::size_t CountFunctionLoc(const std::string& repo_root,
                             const FunctionRef& ref) {
  std::ifstream in(repo_root + "/" + ref.file);
  common::Check(in.good(), "cannot open " + ref.file);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  std::size_t start = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find(ref.signature) != std::string::npos) {
      start = i;
      break;
    }
  }
  common::Check(start < lines.size(),
                "signature not found in " + ref.file + ": " + ref.signature);

  // Walk to the matching closing brace of the function body.
  int depth = 0;
  bool body_started = false;
  std::size_t loc = 0;
  for (std::size_t i = start; i < lines.size(); ++i) {
    if (IsCountableLine(lines[i])) ++loc;
    for (const char c : lines[i]) {
      if (c == '{') {
        ++depth;
        body_started = true;
      } else if (c == '}') {
        --depth;
      }
    }
    if (body_started && depth == 0) return loc;
  }
  throw common::CheckError("unbalanced braces after " + ref.signature);
}

std::size_t CountTotalLoc(const std::string& repo_root,
                          const std::vector<FunctionRef>& refs) {
  std::size_t total = 0;
  for (const auto& ref : refs) total += CountFunctionLoc(repo_root, ref);
  return total;
}

}  // namespace omg::bench
