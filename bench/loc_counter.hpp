// Counts lines of code of named functions in this repository's sources, for
// the Table 2 reproduction (LOC per assertion, with and without helpers).
//
// The count is a real measurement over the checked-in C++: a function's LOC
// is the number of non-blank, non-pure-comment lines from its signature line
// to the matching closing brace.
#pragma once

#include <string>
#include <vector>

namespace omg::bench {

/// One function to count: file path relative to the repository root plus a
/// substring that uniquely identifies the signature line.
struct FunctionRef {
  std::string file;
  std::string signature;
};

/// LOC of one function; throws CheckError when the file or signature is not
/// found (so Table 2 fails loudly if an assertion implementation moves).
std::size_t CountFunctionLoc(const std::string& repo_root,
                             const FunctionRef& ref);

/// Sum of LOC over several functions.
std::size_t CountTotalLoc(const std::string& repo_root,
                          const std::vector<FunctionRef>& refs);

}  // namespace omg::bench
