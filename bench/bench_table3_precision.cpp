// Table 3: precision of the deployed assertions, measured on up to 50
// randomly sampled firings per assertion, against simulator ground truth.
//
// Two columns as in the paper: counting only ML-model output errors, and
// additionally counting identification-function errors (tracker identity
// breaks, anchor-slot collisions). "N/A" marks custom assertions without an
// identification function.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"seed", "samples"});
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 3));
  const auto samples =
      static_cast<std::size_t>(flags.GetInt("samples", 50));

  common::TextTable table({"Assertion", "Sampled",
                           "Precision (identifier and output)",
                           "Precision (model output only)"});
  auto add = [&](const std::string& name, std::size_t sampled,
                 std::size_t with_id, std::size_t output_only,
                 bool has_identifier) {
    if (sampled == 0) {
      table.AddRow({name, "0", "-", "-"});
      return;
    }
    const auto pct = [&](std::size_t k) {
      return common::FormatPercent(static_cast<double>(k) /
                                   static_cast<double>(sampled), 0);
    };
    table.AddRow({name, std::to_string(sampled),
                  has_identifier ? pct(with_id) : "N/A", pct(output_only)});
  };

  // TV news (consistency assertions).
  {
    tvnews::NewsGenerator generator(bench::NewsConfig(), seed);
    const auto frames = generator.Generate(4000);
    for (const auto& sample :
         tvnews::MeasureNewsAssertionPrecision(frames, samples, seed)) {
      add("news " + sample.assertion, sample.sampled,
          sample.correct_with_identifier, sample.correct_model_output,
          true);
    }
  }

  // ECG (consistency assertion, 30 s window).
  {
    ecg::EcgPipeline pipeline(bench::EcgConfig());
    for (const auto& sample :
         ecg::MeasureEcgAssertionPrecision(pipeline, samples, seed)) {
      add(sample.assertion, sample.sampled,
          sample.correct_with_identifier, sample.correct_model_output,
          true);
    }
  }

  // Video (flicker/appear consistency + multibox custom).
  {
    video::VideoPipeline pipeline(bench::VideoConfig());
    for (const auto& sample :
         video::MeasureVideoAssertionPrecision(pipeline, samples, seed)) {
      const bool has_identifier = sample.assertion != "multibox";
      add(sample.assertion, sample.sampled,
          sample.correct_with_identifier, sample.correct_model_output,
          has_identifier);
    }
  }

  // AV (agree + multibox custom assertions).
  {
    av::AvPipeline pipeline(bench::AvConfig());
    for (const auto& sample :
         av::MeasureAvAssertionPrecision(pipeline, samples, seed)) {
      add(sample.assertion + " (AV)", sample.sampled,
          sample.correct_with_identifier, sample.correct_model_output,
          false);
    }
  }

  std::cout << "=== Table 3: assertion precision on sampled firings ===\n\n";
  table.Print(std::cout);
  std::cout << "\nPaper reference: 88-100% precision (model output only)\n"
            << "across all assertions; 100% when identifier errors count.\n";
  return 0;
}
