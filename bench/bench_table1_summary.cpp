// Table 1: summary of tasks, models, and assertions used in the evaluation.
//
// This bench instantiates every domain suite and prints the inventory the
// paper tabulates, verifying programmatically that each listed assertion is
// actually registered in the corresponding suite.
#include <cstdio>
#include <iostream>

#include "av/assertions.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "ecg/ecg.hpp"
#include "tvnews/news.hpp"
#include "video/assertions.hpp"

int main(int argc, char** argv) {
  using namespace omg;
  const auto flags = common::Flags::Parse(argc, argv);
  flags.CheckAllowed({"seed"});

  std::cout << "=== Table 1: tasks, models, and assertions ===\n\n";

  common::TextTable table({"Task", "Model", "Assertions"});

  tvnews::NewsSuite news = tvnews::BuildNewsSuite();
  std::string news_assertions;
  for (const auto& name : news.suite.Names()) {
    if (!news_assertions.empty()) news_assertions += ", ";
    news_assertions += name;
  }
  table.AddRow({"TV news", "Custom (attribute pipeline)",
                "Consistency (sec. 4, news): " + news_assertions});

  video::VideoSuite video_suite = video::BuildVideoSuite();
  std::string video_assertions;
  for (const auto& name : video_suite.suite.Names()) {
    if (!video_assertions.empty()) video_assertions += ", ";
    video_assertions += name;
  }
  table.AddRow({"Object detection (video)", "SSD-like proposal scorer",
                video_assertions + " (flicker/appear via consistency API)"});

  av::AvSuite av_suite = av::BuildAvSuite();
  std::string av_assertions;
  for (const auto& name : av_suite.suite.Names()) {
    if (!av_assertions.empty()) av_assertions += ", ";
    av_assertions += name;
  }
  table.AddRow({"Vehicle detection (AVs)",
                "Second-like LIDAR (fixed) + SSD-like camera",
                av_assertions + " (agreement of point cloud and image)"});

  ecg::EcgSuite ecg_suite = ecg::BuildEcgSuite();
  std::string ecg_assertions;
  for (const auto& name : ecg_suite.suite.Names()) {
    if (!ecg_assertions.empty()) ecg_assertions += ", ";
    ecg_assertions += name;
  }
  table.AddRow({"AF classification", "MLP window classifier (ResNet stand-in)",
                ecg_assertions + " (consistency in a 30 s window)"});

  table.Print(std::cout);
  std::cout << "\nAll assertions above are live objects registered in their"
               " domain suites.\n";
  return 0;
}
