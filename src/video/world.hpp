// Synthetic "night-street" traffic world — the video-analytics substrate.
//
// The paper deploys an SSD object detector (pretrained on MS-COCO still
// images) on the night-street traffic video and observes systematic errors:
// cars flicker in and out of detections (Figure 1), spurious boxes overlap
// real ones (multibox, Figure 7), and some errors carry high confidence
// (Figure 3). This simulator reproduces those mechanisms without pixels:
//
//   * Cars drive across a multi-lane road; each frame yields ground-truth
//     boxes plus *proposals* (candidate regions with feature vectors) that a
//     trainable scoring model (video/detector.hpp) turns into detections.
//   * Sub-populations drive the systematic errors. "Easy" cars match the
//     daytime pretraining distribution. "Dark" cars sit near the pretrained
//     decision boundary with high per-frame feature noise, so their
//     detections flicker. "Reflective" cars spawn short-lived reflection
//     proposals whose features look exactly like easy cars to the pretrained
//     model (the distinguishing feature dimension is uninformative in the
//     pretraining set), producing high-confidence false positives, multibox
//     stacks, and brief `appear` tracks.
//   * A small fraction of cars transit only a screen corner for under a
//     second — genuine brief appearances that bound the `appear` assertion's
//     precision below 100%, as in Table 3.
//
// Labeling a frame reveals the true class of each of its proposals, so
// training on assertion-flagged frames genuinely teaches the model the
// feature dimensions that separate dark cars and reflections — this is what
// makes the active-learning and weak-supervision experiments move.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "eval/detection_metrics.hpp"
#include "geometry/box.hpp"
#include "nn/trainer.hpp"

namespace omg::video {

/// Sub-population of a simulated car.
enum class CarKind {
  kEasy,        ///< matches the pretraining distribution
  kDark,        ///< boundary features + high frame noise -> flicker
  kReflective,  ///< spawns reflection distractors -> multibox/appear
  kShortTransit ///< genuinely on screen < 1 s (bounds appear precision)
};

/// One candidate region in a frame, with its (simulated) feature vector.
struct Proposal {
  geometry::Box2D box;
  std::vector<double> features;
  /// Ground truth of the region; never shown to the model. True for real
  /// cars (including dark ones), false for background and reflections.
  bool is_car = false;
  /// Ground-truth car id, or -1 for background/reflection proposals.
  std::int64_t truth_id = -1;
};

/// One simulated frame: proposals (model input) plus ground truth.
struct Frame {
  std::size_t index = 0;
  double timestamp = 0.0;
  std::vector<Proposal> proposals;
  std::vector<eval::GroundTruthBox> truths;
  std::vector<std::int64_t> truth_ids;  ///< parallel to `truths`
};

/// World parameters. Defaults are the ones used by the benches.
struct WorldConfig {
  double fps = 5.0;
  double frame_width = 1280.0;
  double frame_height = 720.0;
  std::size_t num_lanes = 3;
  /// Expected new cars per frame.
  double spawn_rate = 0.22;
  /// Sub-population mix (must sum to <= 1; remainder is easy). The hard
  /// sub-populations are deliberately rare: random sampling encounters
  /// them slowly, which is what gives assertion-driven selection its edge.
  double frac_dark = 0.22;
  double frac_reflective = 0.10;
  double frac_short_transit = 0.04;
  /// Feature dimensionality of proposals.
  std::size_t feature_dim = 8;
  /// Expected background-clutter proposals per frame.
  double clutter_rate = 1.5;
  /// Probability that a car yields no proposal in a frame (sensor dropout —
  /// a miss no amount of training fixes).
  double proposal_dropout = 0.01;
};

/// Deterministic night-street world.
class NightStreetWorld {
 public:
  NightStreetWorld(WorldConfig config, std::uint64_t seed);

  const WorldConfig& config() const { return config_; }

  /// Generates the next `count` frames of the stream (stateful: cars persist
  /// across calls).
  std::vector<Frame> GenerateFrames(std::size_t count);

  /// A "COCO-like" pretraining set: easy-car positives and generic-clutter
  /// negatives only — no dark cars, no reflections. The feature dimensions
  /// that distinguish those sub-populations carry no signal here, which is
  /// exactly why the pretrained model fails on them at deployment.
  nn::Dataset PretrainingSet(std::size_t positives, std::size_t negatives);

  /// Labels every proposal of `frame` (the human labeler): returns a dataset
  /// of (features, is_car).
  static nn::Dataset LabelFrame(const Frame& frame);

 private:
  struct Car {
    std::int64_t id;
    CarKind kind;
    std::size_t lane;
    double x;               // center, moves rightward
    double speed;           // px per frame
    double length, height;
    std::size_t archetype = 0;              // dark/reflective cluster id
    std::vector<double> appearance_offset;  // persistent per-car
    int reflection_frames_left = 0;         // active reflection burst
    int reflection_cooldown = 0;            // frames until the next burst
  };

  void SpawnCars();
  void StepCars();
  double LaneSpeed(std::size_t lane) const;
  geometry::Box2D CarBox(const Car& car) const;
  std::vector<double> CarFeatures(const Car& car);
  std::vector<double> ReflectionFeatures(const Car& car);
  std::vector<double> ClutterFeatures();
  double LaneY(std::size_t lane) const;

  WorldConfig config_;
  common::Rng rng_;
  std::uint64_t lane_speed_salt_ = 0;
  /// Archetype cluster centres over dims 4+ for the dark and reflective
  /// sub-populations; shared between pool and test streams so labels on
  /// pool archetypes generalise to unseen cars of the same archetype.
  std::vector<std::vector<double>> dark_archetypes_;
  std::vector<std::vector<double>> reflection_archetypes_;
  std::vector<Car> cars_;
  std::int64_t next_car_id_ = 0;
  std::size_t frame_index_ = 0;
};

}  // namespace omg::video
