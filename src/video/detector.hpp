// Trainable SSD-like detector over night-street proposals.
//
// The detector scores each proposal with a small MLP (P(car)), keeps scored
// proposals above a confidence threshold, and applies NMS — a faithful
// miniature of a single-class proposal-scoring detector. It is "pretrained"
// on the COCO-like set and then fine-tuned with whatever labels active
// learning or weak supervision provides.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/box.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"
#include "video/world.hpp"

namespace omg::video {

/// Detector hyper-parameters (defaults used by all benches).
struct DetectorConfig {
  std::vector<std::size_t> hidden = {24};
  /// Deployment threshold: detections the downstream system sees.
  double confidence_threshold = 0.5;
  /// Low evaluation threshold: kept for mAP PR-curve computation.
  double eval_threshold = 0.05;
  double nms_iou = 0.5;
  nn::SgdConfig pretrain_sgd{0.08, 0.9, 1e-4, 32, 40};
  nn::SgdConfig finetune_sgd{0.02, 0.9, 1e-4, 32, 8};
};

/// MLP-scored proposal detector.
class SsdDetector {
 public:
  SsdDetector(DetectorConfig config, std::size_t feature_dim,
              std::uint64_t seed);

  /// Trains from scratch on the pretraining set.
  void Pretrain(const nn::Dataset& data);

  /// Fine-tunes on accumulated labels (call with the full labeled set).
  void FineTune(const nn::Dataset& data);

  /// P(car) for one proposal.
  double Score(const Proposal& proposal) const;

  /// Thresholded + NMS detections, as the deployed system would emit them.
  std::vector<geometry::Detection> Detect(const Frame& frame) const;

  /// Low-threshold detections for mAP evaluation.
  std::vector<geometry::Detection> DetectForEval(const Frame& frame) const;

  /// Mean over proposals of the max-class probability: the frame-level
  /// confidence used by least-confident uncertainty sampling.
  double FrameConfidence(const Frame& frame) const;

  /// Replaces the scoring model (hot-swap pickup from a loop::ModelRegistry;
  /// the architecture must match the current one).
  void SetModel(nn::Mlp model);

  const nn::Mlp& model() const { return model_; }
  const DetectorConfig& config() const { return config_; }

 private:
  std::vector<geometry::Detection> DetectWithThreshold(
      const Frame& frame, double threshold) const;

  DetectorConfig config_;
  common::Rng train_rng_;  // declared before model_: also seeds weight init
  nn::Mlp model_;
};

}  // namespace omg::video
