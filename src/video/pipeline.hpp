// End-to-end night-street pipeline: world + detector + assertions, wired as
// an active-learning problem (Figure 4a / 9a), a weak-supervision experiment
// (Table 4), a high-confidence-error analysis (Figure 3) and an assertion
// precision measurement (Table 3).
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "bandit/active_learning.hpp"
#include "core/severity_matrix.hpp"
#include "video/assertions.hpp"
#include "video/detector.hpp"
#include "video/world.hpp"

namespace omg::video {

/// Scaled-down analogue of the paper's setup (§5.1 and Appendix C): one
/// "day" of video split into an unlabeled pool and a held-out test day.
struct VideoPipelineConfig {
  WorldConfig world;
  DetectorConfig detector;
  VideoAssertionConfig assertions;
  std::size_t pool_frames = 400;
  std::size_t test_frames = 150;
  std::size_t pretrain_positives = 500;
  std::size_t pretrain_negatives = 700;
  /// Seed for the *data* (fixed across trials; trials vary model seeds).
  std::uint64_t world_seed = 42;
};

/// The night-street active-learning problem.
class VideoPipeline final : public bandit::ActiveLearningProblem {
 public:
  explicit VideoPipeline(VideoPipelineConfig config);

  // --- bandit::ActiveLearningProblem ---
  std::size_t PoolSize() const override { return pool_.size(); }
  core::SeverityMatrix ComputeSeverities() override;
  std::vector<double> Confidences() override;
  void LabelAndTrain(std::span<const std::size_t> indices) override;
  double Evaluate() override;
  void Reset(std::uint64_t seed) override;

  // --- direct access for experiments ---
  const VideoPipelineConfig& config() const { return config_; }
  const std::vector<Frame>& pool() const { return pool_; }
  const std::vector<Frame>& test() const { return test_; }
  SsdDetector& detector() { return *detector_; }
  VideoSuite& suite() { return suite_; }
  const nn::Dataset& pretrain_set() const { return pretrain_set_; }

  /// Runs the current detector over `frames` and packages the deployed
  /// outputs for the assertion layer.
  std::vector<VideoExample> MakeExamples(
      std::span<const Frame> frames) const;

  /// mAP of the current detector over `frames`.
  double EvaluateMap(std::span<const Frame> frames) const;

 private:
  VideoPipelineConfig config_;
  NightStreetWorld world_;
  std::vector<Frame> pool_;
  std::vector<Frame> test_;
  nn::Dataset pretrain_set_;
  std::unique_ptr<SsdDetector> detector_;
  VideoSuite suite_;
  nn::Dataset labeled_;
};

/// Result of the weak-supervision experiment (§5.5).
struct WeakSupervisionResult {
  double pretrained_metric = 0.0;
  double weakly_supervised_metric = 0.0;
  std::size_t weak_positives = 0;
  std::size_t weak_negatives = 0;
  std::size_t flagged_frames_used = 0;
  std::size_t random_frames_used = 0;

  double RelativeImprovement() const {
    return pretrained_metric > 0.0
               ? (weakly_supervised_metric - pretrained_metric) /
                     pretrained_metric
               : 0.0;
  }
};

/// Counts of weak labels materialised by MakeWeakLabelDataset.
struct WeakLabelCounts {
  std::size_t positives = 0;
  std::size_t negatives = 0;
};

/// Materialises the §5.5 WeakLabel rules over one scored stream: every
/// consistency correction touching a `chosen` frame becomes a training row —
/// a flicker gap imputes a positive by averaging the track's adjacent boxes
/// and marking the best-IoU proposal; a brief appearance marks the removed
/// detection's proposal negative. `examples` must be `frames`' deployed
/// outputs, index-aligned. Shared by the offline weak-supervision
/// experiment and the online loop's WeakLabelOracle.
nn::Dataset MakeWeakLabelDataset(VideoSuite& suite,
                                 std::span<const Frame> frames,
                                 std::span<const VideoExample> examples,
                                 const std::set<std::size_t>& chosen,
                                 WeakLabelCounts* counts = nullptr);

/// §5.5 video protocol: starting from the pretrained model, take
/// `flicker_frames` frames that triggered flicker plus `random_frames`
/// random frames, convert the consistency corrections on them into weak
/// labels (flicker gaps -> imputed positive boxes via the WeakLabel rule of
/// averaging nearby occurrences; brief appearances -> removals, i.e.
/// negatives), fine-tune on the weak labels only, and compare test mAP.
WeakSupervisionResult RunVideoWeakSupervision(VideoPipeline& pipeline,
                                              std::size_t flicker_frames,
                                              std::size_t random_frames,
                                              std::uint64_t seed);

/// One assertion's top-K errors ranked by model confidence, each expressed
/// as a percentile of confidence among all deployed detections (Figure 3).
struct HighConfidenceErrors {
  std::string assertion;
  std::vector<double> percentiles;  ///< descending, size <= top_k
};

/// Figure 3 analysis over the pipeline's pool with the current model.
/// For box errors (multibox/appear) the confidence is the erroneous box's
/// own confidence; for flicker (a missing box) it is the mean confidence of
/// the adjacent occurrences of the same track, as in the paper.
std::vector<HighConfidenceErrors> AnalyzeHighConfidenceErrors(
    VideoPipeline& pipeline, std::size_t top_k);

/// Precision of one assertion measured as in Table 3: sample up to
/// `sample_size` firings and check against simulator ground truth.
struct AssertionPrecisionSample {
  std::string assertion;
  std::size_t sampled = 0;
  /// Firings where the ML model's output was genuinely wrong.
  std::size_t correct_model_output = 0;
  /// Firings where the model output *or* the identification function
  /// (the tracker) was wrong — the laxer column of Table 3.
  std::size_t correct_with_identifier = 0;
};

std::vector<AssertionPrecisionSample> MeasureVideoAssertionPrecision(
    VideoPipeline& pipeline, std::size_t sample_size, std::uint64_t seed);

}  // namespace omg::video
