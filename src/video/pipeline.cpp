#include "video/pipeline.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.hpp"
#include "eval/detection_metrics.hpp"
#include "eval/stats.hpp"

namespace omg::video {

using common::Check;

VideoPipeline::VideoPipeline(VideoPipelineConfig config)
    : config_(std::move(config)),
      world_(config_.world, config_.world_seed),
      suite_(BuildVideoSuite(config_.assertions)) {
  pool_ = world_.GenerateFrames(config_.pool_frames);
  // A gap of frames separates the pool from the test "day".
  (void)world_.GenerateFrames(50);
  test_ = world_.GenerateFrames(config_.test_frames);
  pretrain_set_ = world_.PretrainingSet(config_.pretrain_positives,
                                        config_.pretrain_negatives);
  Reset(config_.world_seed ^ 0x9E3779B97F4A7C15ULL);
}

void VideoPipeline::Reset(std::uint64_t seed) {
  detector_ = std::make_unique<SsdDetector>(
      config_.detector, config_.world.feature_dim, seed);
  detector_->Pretrain(pretrain_set_);
  labeled_ = nn::Dataset{};
  suite_.consistency->Invalidate();
}

std::vector<VideoExample> VideoPipeline::MakeExamples(
    std::span<const Frame> frames) const {
  std::vector<VideoExample> examples;
  examples.reserve(frames.size());
  for (const auto& frame : frames) {
    VideoExample example;
    example.frame_index = frame.index;
    example.timestamp = frame.timestamp;
    example.detections = detector_->Detect(frame);
    examples.push_back(std::move(example));
  }
  return examples;
}

core::SeverityMatrix VideoPipeline::ComputeSeverities() {
  suite_.consistency->Invalidate();
  const std::vector<VideoExample> examples = MakeExamples(pool_);
  return suite_.suite.CheckAll(examples);
}

std::vector<double> VideoPipeline::Confidences() {
  std::vector<double> confidences;
  confidences.reserve(pool_.size());
  for (const auto& frame : pool_) {
    confidences.push_back(detector_->FrameConfidence(frame));
  }
  return confidences;
}

void VideoPipeline::LabelAndTrain(std::span<const std::size_t> indices) {
  for (const std::size_t i : indices) {
    Check(i < pool_.size(), "label index out of range");
    labeled_.Append(NightStreetWorld::LabelFrame(pool_[i]));
  }
  if (labeled_.empty()) return;
  // Replay the original training distribution alongside the new labels, as
  // the paper's retraining procedure does.
  nn::Dataset combined = pretrain_set_;
  combined.Append(labeled_);
  detector_->FineTune(combined);
}

double VideoPipeline::EvaluateMap(std::span<const Frame> frames) const {
  std::vector<eval::FrameEval> evals;
  evals.reserve(frames.size());
  for (const auto& frame : frames) {
    eval::FrameEval fe;
    fe.detections = detector_->DetectForEval(frame);
    fe.truths = frame.truths;
    evals.push_back(std::move(fe));
  }
  return eval::MeanAveragePrecision(evals);
}

double VideoPipeline::Evaluate() { return EvaluateMap(test_); }

namespace {

/// Per-frame match info of the deployed detections against ground truth.
struct FrameErrorInfo {
  std::vector<bool> detection_correct;
  bool has_false_positive = false;
  bool has_missed_truth = false;
};

FrameErrorInfo AnalyzeFrameErrors(const Frame& frame,
                                  const VideoExample& example) {
  eval::FrameEval fe;
  fe.detections = example.detections;
  fe.truths = frame.truths;
  const eval::MatchResult match = eval::MatchFrame(fe);
  FrameErrorInfo info;
  info.detection_correct = match.detection_correct;
  for (const bool correct : match.detection_correct) {
    if (!correct) info.has_false_positive = true;
  }
  for (const bool matched : match.truth_matched) {
    if (!matched) info.has_missed_truth = true;
  }
  return info;
}

/// Best-IoU proposal index for a box, or -1 when nothing overlaps >= 0.3.
std::int64_t FindProposal(const Frame& frame, const geometry::Box2D& box) {
  double best = 0.3;
  std::int64_t best_index = -1;
  for (std::size_t p = 0; p < frame.proposals.size(); ++p) {
    const double iou = geometry::Iou(frame.proposals[p].box, box);
    if (iou >= best) {
      best = iou;
      best_index = static_cast<std::int64_t>(p);
    }
  }
  return best_index;
}

}  // namespace

nn::Dataset MakeWeakLabelDataset(VideoSuite& suite,
                                 std::span<const Frame> frames,
                                 std::span<const VideoExample> examples,
                                 const std::set<std::size_t>& chosen,
                                 WeakLabelCounts* counts) {
  Check(frames.size() == examples.size(),
        "frames and deployed examples must be index-aligned");
  const auto& corrections = suite.consistency->Corrections(examples);
  const auto& records = suite.consistency->LatestRecords();

  nn::Dataset weak;
  WeakLabelCounts local;
  for (const auto& correction : corrections) {
    if (!chosen.contains(correction.example_index)) continue;
    const Frame& frame = frames[correction.example_index];
    if (correction.kind == core::CorrectionKind::kAddOutput) {
      // The WeakLabel rule: impute the box by averaging the identifier's
      // adjacent occurrences, then mark the matching proposal positive.
      std::vector<geometry::Box2D> support_boxes;
      for (const std::size_t r : correction.support_records) {
        const auto& record = records[r];
        const auto& source = examples[record.example_index];
        if (record.output_index >= 0 &&
            static_cast<std::size_t>(record.output_index) <
                source.detections.size()) {
          support_boxes.push_back(
              source.detections[record.output_index].box);
        }
      }
      if (support_boxes.empty()) continue;
      const geometry::Box2D imputed = geometry::MeanBox(support_boxes);
      const std::int64_t p = FindProposal(frame, imputed);
      if (p < 0) continue;
      weak.Add(frame.proposals[static_cast<std::size_t>(p)].features, 1,
               1.0);
      ++local.positives;
    } else if (correction.kind == core::CorrectionKind::kRemoveOutput) {
      const auto& example = examples[correction.example_index];
      if (correction.output_index < 0 ||
          static_cast<std::size_t>(correction.output_index) >=
              example.detections.size()) {
        continue;
      }
      const std::int64_t p = FindProposal(
          frame, example.detections[correction.output_index].box);
      if (p < 0) continue;
      weak.Add(frame.proposals[static_cast<std::size_t>(p)].features, 0,
               1.0);
      ++local.negatives;
    }
  }
  if (counts != nullptr) *counts = local;
  return weak;
}

WeakSupervisionResult RunVideoWeakSupervision(VideoPipeline& pipeline,
                                              std::size_t flicker_frames,
                                              std::size_t random_frames,
                                              std::uint64_t seed) {
  common::Rng rng(seed);
  pipeline.Reset(seed);
  WeakSupervisionResult result;
  result.pretrained_metric = pipeline.Evaluate();

  VideoSuite& suite = pipeline.suite();
  suite.consistency->Invalidate();
  const std::vector<VideoExample> examples =
      pipeline.MakeExamples(pipeline.pool());
  const core::SeverityMatrix severities = suite.suite.CheckAll(examples);

  // Pick the frame subset: flicker-flagged frames plus random fillers.
  std::vector<std::size_t> flagged =
      severities.ExamplesFiring(suite.flicker_index);
  rng.Shuffle(flagged);
  if (flagged.size() > flicker_frames) flagged.resize(flicker_frames);
  std::set<std::size_t> chosen(flagged.begin(), flagged.end());
  result.flagged_frames_used = chosen.size();
  std::vector<std::size_t> everyone(pipeline.pool().size());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
  rng.Shuffle(everyone);
  for (const std::size_t i : everyone) {
    if (result.random_frames_used == random_frames) break;
    if (chosen.insert(i).second) ++result.random_frames_used;
  }

  WeakLabelCounts counts;
  nn::Dataset weak = MakeWeakLabelDataset(suite, pipeline.pool(), examples,
                                          chosen, &counts);
  result.weak_positives = counts.positives;
  result.weak_negatives = counts.negatives;

  // Fine-tune on the weak labels with the original training data replayed
  // at reduced weight — the paper fine-tunes the pretrained SSD at a tiny
  // learning rate for the same reason: the weak labels must shift the
  // model without erasing what it already knows.
  if (!weak.empty()) {
    nn::Dataset combined;
    for (std::size_t i = 0; i < pipeline.pretrain_set().size(); ++i) {
      combined.Add(pipeline.pretrain_set().features[i],
                   pipeline.pretrain_set().labels[i], 0.5);
    }
    combined.Append(weak);
    pipeline.detector().FineTune(combined);
  }
  result.weakly_supervised_metric = pipeline.Evaluate();
  return result;
}

std::vector<HighConfidenceErrors> AnalyzeHighConfidenceErrors(
    VideoPipeline& pipeline, std::size_t top_k) {
  VideoSuite& suite = pipeline.suite();
  suite.consistency->Invalidate();
  const std::vector<VideoExample> examples =
      pipeline.MakeExamples(pipeline.pool());
  const core::SeverityMatrix severities = suite.suite.CheckAll(examples);
  const auto& corrections = suite.consistency->Corrections(examples);
  const auto& records = suite.consistency->LatestRecords();

  // All deployed detection confidences (the reference population).
  std::vector<double> all_confidences;
  std::vector<FrameErrorInfo> frame_errors(examples.size());
  for (std::size_t e = 0; e < examples.size(); ++e) {
    for (const auto& det : examples[e].detections) {
      all_confidences.push_back(det.confidence);
    }
    frame_errors[e] = AnalyzeFrameErrors(pipeline.pool()[e], examples[e]);
  }

  const double multibox_iou = pipeline.config().assertions.multibox_iou;
  std::vector<double> multibox_confidences;
  std::vector<double> appear_confidences;
  std::vector<double> flicker_confidences;

  // multibox: false-positive detections participating in an overlap triple.
  for (std::size_t e = 0; e < examples.size(); ++e) {
    if (!severities.Fired(e, suite.multibox_index)) continue;
    const auto& dets = examples[e].detections;
    for (std::size_t i = 0; i < dets.size(); ++i) {
      if (frame_errors[e].detection_correct[i]) continue;
      std::size_t overlapping = 0;
      for (std::size_t j = 0; j < dets.size(); ++j) {
        if (j != i && geometry::Iou(dets[i].box, dets[j].box) >
                          multibox_iou) {
          ++overlapping;
        }
      }
      if (overlapping >= 2) {
        multibox_confidences.push_back(dets[i].confidence);
      }
    }
  }

  // appear / flicker: from the consistency corrections.
  for (const auto& correction : corrections) {
    const std::size_t e = correction.example_index;
    if (correction.kind == core::CorrectionKind::kRemoveOutput) {
      if (correction.output_index < 0 ||
          static_cast<std::size_t>(correction.output_index) >=
              examples[e].detections.size()) {
        continue;
      }
      // Only genuine errors (false positives) count as caught errors.
      if (!frame_errors[e]
               .detection_correct[static_cast<std::size_t>(
                   correction.output_index)]) {
        appear_confidences.push_back(
            examples[e].detections[correction.output_index].confidence);
      }
    } else if (correction.kind == core::CorrectionKind::kAddOutput) {
      if (!frame_errors[e].has_missed_truth) continue;
      // A missing box has no confidence of its own; the paper uses the
      // average of the surrounding boxes of the same track.
      std::vector<double> support;
      for (const std::size_t r : correction.support_records) {
        const auto& record = records[r];
        if (record.output_index >= 0 &&
            static_cast<std::size_t>(record.output_index) <
                examples[record.example_index].detections.size()) {
          support.push_back(examples[record.example_index]
                                .detections[record.output_index]
                                .confidence);
        }
      }
      if (!support.empty()) {
        flicker_confidences.push_back(eval::Mean(support));
      }
    }
  }

  auto to_rows = [&](std::string name, std::vector<double> confidences) {
    std::sort(confidences.rbegin(), confidences.rend());
    if (confidences.size() > top_k) confidences.resize(top_k);
    HighConfidenceErrors row;
    row.assertion = std::move(name);
    for (const double c : confidences) {
      row.percentiles.push_back(
          eval::PercentileRank(all_confidences, c));
    }
    return row;
  };
  return {to_rows("appear", std::move(appear_confidences)),
          to_rows("multibox", std::move(multibox_confidences)),
          to_rows("flicker", std::move(flicker_confidences))};
}

std::vector<AssertionPrecisionSample> MeasureVideoAssertionPrecision(
    VideoPipeline& pipeline, std::size_t sample_size, std::uint64_t seed) {
  common::Rng rng(seed);
  VideoSuite& suite = pipeline.suite();
  suite.consistency->Invalidate();
  const std::vector<VideoExample> examples =
      pipeline.MakeExamples(pipeline.pool());
  const core::SeverityMatrix severities = suite.suite.CheckAll(examples);

  std::vector<FrameErrorInfo> frame_errors(examples.size());
  for (std::size_t e = 0; e < examples.size(); ++e) {
    frame_errors[e] = AnalyzeFrameErrors(pipeline.pool()[e], examples[e]);
  }

  // Number of pool frames each ground-truth car is visible in; used to
  // distinguish genuine brief appearances from tracker identifier breaks.
  std::map<std::int64_t, std::size_t> truth_visibility;
  for (const auto& frame : pipeline.pool()) {
    for (const std::int64_t id : frame.truth_ids) ++truth_visibility[id];
  }
  const double fps = pipeline.config().world.fps;
  const double threshold = pipeline.config().assertions.temporal_threshold;
  const auto brief_truth = [&](std::int64_t id) {
    const auto it = truth_visibility.find(id);
    return it != truth_visibility.end() &&
           static_cast<double>(it->second) < threshold * fps + 1.0;
  };

  std::vector<AssertionPrecisionSample> out;
  const auto names = suite.suite.Names();
  for (std::size_t a = 0; a < names.size(); ++a) {
    AssertionPrecisionSample sample;
    sample.assertion = names[a];
    std::vector<std::size_t> fired = severities.ExamplesFiring(a);
    rng.Shuffle(fired);
    if (fired.size() > sample_size) fired.resize(sample_size);
    sample.sampled = fired.size();
    for (const std::size_t e : fired) {
      bool output_error = false;
      bool with_identifier = false;
      if (names[a] == "multibox") {
        // Correct catch: a false positive participates in an overlap stack.
        const auto& dets = examples[e].detections;
        for (std::size_t i = 0; i < dets.size() && !output_error; ++i) {
          if (frame_errors[e].detection_correct[i]) continue;
          for (std::size_t j = 0; j < dets.size(); ++j) {
            if (j != i &&
                geometry::Iou(dets[i].box, dets[j].box) >
                    pipeline.config().assertions.multibox_iou) {
              output_error = true;
              break;
            }
          }
        }
        with_identifier = output_error;
      } else if (names[a] == "flicker") {
        output_error = frame_errors[e].has_missed_truth;
        // A flicker firing with no missed truth means the tracker broke the
        // identifier — an identification-function error, counted by the
        // laxer Table 3 column.
        with_identifier = true;
      } else if (names[a] == "appear") {
        // A brief track is an error when it is a false positive, or when
        // it is the visible sliver of a car the model keeps missing — the
        // adjacent frames then show the misses.
        output_error = frame_errors[e].has_false_positive ||
                       (e > 0 && frame_errors[e - 1].has_missed_truth) ||
                       (e + 1 < examples.size() &&
                        frame_errors[e + 1].has_missed_truth);
        if (output_error) {
          with_identifier = true;
        } else {
          // No false positive: the brief track covers a real car. If that
          // car is genuinely short-lived the assertion was simply wrong;
          // otherwise the tracker split a long-lived car's identity.
          bool genuine_brief = false;
          for (const auto& det : examples[e].detections) {
            if (det.truth_id >= 0 && brief_truth(det.truth_id)) {
              genuine_brief = true;
              break;
            }
          }
          with_identifier = !genuine_brief;
        }
      }
      if (output_error) ++sample.correct_model_output;
      if (with_identifier) ++sample.correct_with_identifier;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace omg::video
