// Declarative-config registration of the night-street assertions.
//
// Registers the video suite's building blocks with an
// config::AssertionFactory so scenario files (configs/*.conf) can
// instantiate them by name; `[video.multibox, video.consistency]` in that
// order reproduces BuildVideoSuite exactly (tested in tests/test_config.cpp).
#pragma once

#include "config/assertion_factory.hpp"
#include "video/assertions.hpp"

namespace omg::video {

/// Registers the night-street assertions:
///   * `video.multibox`    { iou }  — the custom triple-overlap assertion
///   * `video.consistency` { temporal_threshold, tracker_iou,
///                           tracker_max_misses } — the consistency source
///     generating `flicker` and `appear` (§4), with its invalidation hook
void RegisterVideoAssertions(config::AssertionFactory<VideoExample>& factory);

}  // namespace omg::video
