// Declarative-config + facade registration of the night-street assertions.
//
// Registers the video suite's building blocks with a
// config::AssertionFactory so scenario files (configs/*.conf) can
// instantiate them by name; `[video.multibox, video.consistency]` in that
// order reproduces BuildVideoSuite exactly (tested in tests/test_config.cpp).
// The DomainTraits specialization below makes VideoExample servable through
// the type-erased serve::Monitor facade, and RegisterVideoDomain exposes the
// factory as the facade's "video" domain.
#pragma once

#include <string>
#include <string_view>

#include "config/assertion_factory.hpp"
#include "serve/any_example.hpp"
#include "serve/domain_registry.hpp"
#include "video/assertions.hpp"

namespace omg::serve {

/// Facade identity of VideoExample: domain tag "video"; the severity hint
/// is the frame's detection count (a cheap crowding proxy an upstream
/// producer could compute without scoring).
template <>
struct DomainTraits<video::VideoExample> {
  static constexpr std::string_view kDomain = "video";
  static double SeverityHint(const video::VideoExample& example);
  static std::string DebugString(const video::VideoExample& example);
};

}  // namespace omg::serve

namespace omg::video {

/// Registers the night-street assertions:
///   * `video.multibox`    { iou }  — the custom triple-overlap assertion
///   * `video.consistency` { temporal_threshold, tracker_iou,
///                           tracker_max_misses } — the consistency source
///     generating `flicker` and `appear` (§4), with its invalidation hook
void RegisterVideoAssertions(config::AssertionFactory<VideoExample>& factory);

/// Registers the "video" domain with the facade registry: erased builders
/// over RegisterVideoAssertions (event names qualified "video/...").
void RegisterVideoDomain(serve::DomainRegistry& registry);

}  // namespace omg::video
