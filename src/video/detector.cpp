#include "video/detector.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace omg::video {

namespace {

nn::MlpConfig MakeMlpConfig(const DetectorConfig& config,
                            std::size_t feature_dim) {
  nn::MlpConfig mlp;
  mlp.input_dim = feature_dim;
  mlp.hidden = config.hidden;
  mlp.num_classes = 2;
  return mlp;
}

}  // namespace

SsdDetector::SsdDetector(DetectorConfig config, std::size_t feature_dim,
                         std::uint64_t seed)
    : config_(std::move(config)),
      train_rng_(seed),
      model_(MakeMlpConfig(config_, feature_dim), train_rng_) {}

void SsdDetector::Pretrain(const nn::Dataset& data) {
  nn::SoftmaxTrainer trainer(config_.pretrain_sgd);
  trainer.Train(model_, data, train_rng_);
}

void SsdDetector::FineTune(const nn::Dataset& data) {
  nn::SoftmaxTrainer trainer(config_.finetune_sgd);
  trainer.Train(model_, data, train_rng_);
}

void SsdDetector::SetModel(nn::Mlp model) {
  common::Check(model.config().input_dim == model_.config().input_dim &&
                    model.config().num_classes == model_.config().num_classes,
                "swapped-in model shape mismatch");
  model_ = std::move(model);
}

double SsdDetector::Score(const Proposal& proposal) const {
  return model_.PredictProba(proposal.features)[1];
}

std::vector<geometry::Detection> SsdDetector::DetectWithThreshold(
    const Frame& frame, double threshold) const {
  std::vector<geometry::Detection> detections;
  for (const auto& proposal : frame.proposals) {
    const double score = Score(proposal);
    if (score < threshold) continue;
    geometry::Detection det;
    det.box = proposal.box;
    det.label = "car";
    det.confidence = score;
    det.truth_id = proposal.truth_id;
    detections.push_back(std::move(det));
  }
  return geometry::Nms(std::move(detections), config_.nms_iou);
}

std::vector<geometry::Detection> SsdDetector::Detect(
    const Frame& frame) const {
  return DetectWithThreshold(frame, config_.confidence_threshold);
}

std::vector<geometry::Detection> SsdDetector::DetectForEval(
    const Frame& frame) const {
  return DetectWithThreshold(frame, config_.eval_threshold);
}

double SsdDetector::FrameConfidence(const Frame& frame) const {
  if (frame.proposals.empty()) return 1.0;
  double total = 0.0;
  for (const auto& proposal : frame.proposals) {
    const double p = Score(proposal);
    total += std::max(p, 1.0 - p);
  }
  return total / static_cast<double>(frame.proposals.size());
}

}  // namespace omg::video
