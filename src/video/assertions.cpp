#include "video/assertions.hpp"

#include <string>

namespace omg::video {

double MultiboxSeverity(std::span<const geometry::Detection> detections,
                        double iou) {
  const std::size_t n = detections.size();
  double triples = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (geometry::Iou(detections[i].box, detections[j].box) <= iou) {
        continue;
      }
      for (std::size_t k = j + 1; k < n; ++k) {
        if (geometry::Iou(detections[i].box, detections[k].box) > iou &&
            geometry::Iou(detections[j].box, detections[k].box) > iou) {
          triples += 1.0;
        }
      }
    }
  }
  return triples;
}

core::ConsistencyExtraction ExtractVideoRecords(
    std::span<const VideoExample> examples,
    const geometry::TrackerConfig& tracker_config) {
  core::ConsistencyExtraction extraction;
  geometry::IouTracker tracker(tracker_config);
  for (std::size_t e = 0; e < examples.size(); ++e) {
    extraction.frames.push_back(
        core::ConsistencyFrame{e, examples[e].timestamp, "video"});
    const auto tracked = tracker.Update(examples[e].detections);
    for (std::size_t d = 0; d < tracked.size(); ++d) {
      core::ConsistencyRecord record;
      record.example_index = e;
      record.output_index = static_cast<std::int64_t>(d);
      record.timestamp = examples[e].timestamp;
      record.group = "video";
      record.identifier = "track-" + std::to_string(tracked[d].track_id);
      // The detected class is the consistency attribute (§4.1); with a
      // single class it never mismatches but documents the API shape.
      record.attributes.emplace_back("class", tracked[d].detection.label);
      extraction.records.push_back(std::move(record));
    }
  }
  return extraction;
}

VideoSuite BuildVideoSuite(const VideoAssertionConfig& config) {
  VideoSuite built;
  built.suite.AddPointwise(
      "multibox", [iou = config.multibox_iou](const VideoExample& example) {
        return MultiboxSeverity(example.detections, iou);
      });

  core::ConsistencyConfig consistency;
  consistency.temporal_threshold = config.temporal_threshold;
  // No attribute keys: with one class the generated columns are exactly
  // {flicker, appear}.
  built.consistency = core::AddConsistencyAssertion<VideoExample>(
      built.suite, consistency,
      [tracker = config.tracker](std::span<const VideoExample> examples) {
        return ExtractVideoRecords(examples, tracker);
      });
  built.multibox_index = 0;
  built.flicker_index = built.suite.IndexOf("flicker");
  built.appear_index = built.suite.IndexOf("appear");
  return built;
}

}  // namespace omg::video
