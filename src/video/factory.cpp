#include "video/factory.hpp"

#include <memory>
#include <ostream>
#include <span>
#include <utility>

#include "common/table.hpp"
#include "core/consistency.hpp"
#include "core/consistency_adapter.hpp"
#include "serve/domains.hpp"

namespace omg::serve {

double DomainTraits<video::VideoExample>::SeverityHint(
    const video::VideoExample& example) {
  return static_cast<double>(example.detections.size());
}

std::string DomainTraits<video::VideoExample>::DebugString(
    const video::VideoExample& example) {
  return "video frame " + std::to_string(example.frame_index) + " @" +
         common::FormatDouble(example.timestamp, 2) + "s, " +
         std::to_string(example.detections.size()) + " detections";
}

}  // namespace omg::serve

namespace omg::video {

void RegisterVideoAssertions(
    config::AssertionFactory<VideoExample>& factory) {
  const VideoAssertionConfig defaults;

  factory.Register(
      "video.multibox",
      "three detections should not highly overlap (Figure 7); severity is "
      "the count of mutually-overlapping triples",
      {{"iou", config::ParamType::kDouble, "0.30",
        "pairwise IoU above which boxes count as highly overlapping"}},
      [defaults](const config::SpecSection& params,
                 config::AssertionFactory<VideoExample>::BuildContext&
                     context) {
        const double iou = params.GetDouble("iou", defaults.multibox_iou);
        context.suite.AddPointwise(
            "multibox", [iou](const VideoExample& example) {
              return MultiboxSeverity(example.detections, iou);
            });
      });

  factory.Register(
      "video.consistency",
      "the IoU-tracker consistency source (§4) generating `flicker` and "
      "`appear` with temporal threshold T",
      {{"temporal_threshold", config::ParamType::kDouble, "1.0",
        "T in seconds; identifiers absent/present for < T fire"},
       {"tracker_iou", config::ParamType::kDouble, "0.2",
        "association IoU of the Id function's tracker"},
       {"tracker_max_misses", config::ParamType::kInt, "2",
        "frames a track coasts unmatched before retiring"}},
      [defaults](const config::SpecSection& params,
                 config::AssertionFactory<VideoExample>::BuildContext&
                     context) {
        core::ConsistencyConfig consistency;
        consistency.temporal_threshold = params.GetDouble(
            "temporal_threshold", defaults.temporal_threshold);
        geometry::TrackerConfig tracker = defaults.tracker;
        tracker.min_iou = params.GetDouble("tracker_iou", tracker.min_iou);
        tracker.max_coast_frames =
            params.GetSize("tracker_max_misses", tracker.max_coast_frames);
        auto analyzer = core::AddConsistencyAssertion<VideoExample>(
            context.suite, consistency,
            [tracker](std::span<const VideoExample> examples) {
              return ExtractVideoRecords(examples, tracker);
            });
        context.invalidators.push_back(
            [analyzer] { analyzer->Invalidate(); });
      });
}

void RegisterVideoDomain(serve::DomainRegistry& registry) {
  serve::RegisterDomain<VideoExample>(registry, "video",
                                     &RegisterVideoAssertions);
}

}  // namespace omg::video
