#include "video/world.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace omg::video {

using common::Check;

namespace {

// Feature-space geometry. Dimensions 0-1 are "appearance" (what a daytime
// still-image model keys on), dimension 2 marks dark-car texture, dimension
// 3 marks specular reflections; dimensions 4-7 carry *archetype* structure.
//
// Three mechanisms shape the learning dynamics (and hence Figures 4/9):
//   1. A pervasive mild shift: deployment cars sit at (1.3, 1.3) instead of
//      the pretraining (2.0, 2.0) — every strategy fixes this within a
//      round or two, which is why all curves rise early.
//   2. Dark cars are rare and sit almost on the clutter boundary in dims
//      0-1 (flicker), with their correctable signal spread across ~10
//      archetype clusters in dims 4-7: generalising requires labels near
//      *each* archetype, so targeted sampling keeps paying off.
//   3. Reflections mimic easy cars in dims 0-1 (high-confidence false
//      positives, Figure 3) and also scatter across archetypes in dims
//      4-7.
// The pretraining set varies only dims 0-1 between classes, so the
// pretrained model is blind to dims 2-7.
constexpr double kEasyPretrainMean[4] = {2.0, 2.0, 0.0, 0.0};
constexpr double kEasyDeployMean[4] = {1.3, 1.3, 0.2, 0.0};
constexpr double kDarkMean[4] = {-0.45, -0.45, 1.8, 0.0};
constexpr double kClutterMean[4] = {-1.8, -1.8, 0.0, 0.0};
constexpr double kNightClutterMean[4] = {-0.3, -0.3, -1.0, 0.0};
constexpr double kReflectionMean[4] = {2.0, 2.0, 0.2, 2.2};

constexpr double kEasyNoise = 0.50;
constexpr double kDarkFrameNoise = 0.85;  // drives flicker
constexpr double kClutterNoise = 0.70;
constexpr double kReflectionNoise = 0.35;

constexpr std::size_t kNumArchetypes = 12;
constexpr double kArchetypeSpread = 1.6;   // between-archetype scatter
constexpr double kWithinArchetype = 0.60;  // within-archetype scatter

}  // namespace

NightStreetWorld::NightStreetWorld(WorldConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      lane_speed_salt_(seed * 0x2545F4914F6CDD1DULL) {
  Check(config_.feature_dim >= 5, "feature_dim must be >= 5");
  Check(config_.num_lanes >= 1, "need at least one lane");
  Check(config_.frac_dark + config_.frac_reflective +
                config_.frac_short_transit <=
            1.0,
        "sub-population fractions exceed 1");
  const std::size_t archetype_dims = config_.feature_dim - 4;
  auto make_archetypes = [&] {
    std::vector<std::vector<double>> centers(kNumArchetypes);
    for (auto& center : centers) {
      center.resize(archetype_dims);
      for (double& v : center) v = rng_.Normal(0.0, kArchetypeSpread);
    }
    return centers;
  };
  dark_archetypes_ = make_archetypes();
  reflection_archetypes_ = make_archetypes();
}

double NightStreetWorld::LaneY(std::size_t lane) const {
  const double lane_height =
      config_.frame_height / static_cast<double>(config_.num_lanes + 1);
  return lane_height * static_cast<double>(lane + 1);
}

geometry::Box2D NightStreetWorld::CarBox(const Car& car) const {
  const double y = LaneY(car.lane);
  return geometry::Box2D{car.x - car.length / 2.0, y - car.height / 2.0,
                         car.x + car.length / 2.0, y + car.height / 2.0};
}

void NightStreetWorld::SpawnCars() {
  // Poisson-ish spawning: up to two independent spawn chances per frame.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!rng_.Bernoulli(std::min(1.0, config_.spawn_rate / 2.0))) continue;
    Car car;
    const double mix = rng_.Uniform();
    if (mix < config_.frac_dark) {
      car.kind = CarKind::kDark;
    } else if (mix < config_.frac_dark + config_.frac_reflective) {
      car.kind = CarKind::kReflective;
    } else if (mix < config_.frac_dark + config_.frac_reflective +
                         config_.frac_short_transit) {
      car.kind = CarKind::kShortTransit;
    } else {
      car.kind = CarKind::kEasy;
    }
    car.lane = static_cast<std::size_t>(rng_.UniformInt(
        0, static_cast<std::int64_t>(config_.num_lanes) - 1));
    car.length = rng_.Uniform(110.0, 170.0);
    car.height = rng_.Uniform(55.0, 85.0);
    // Traffic flows at one speed per lane, so cars in a lane never overtake
    // or overlap one another (as on the real night-street feed).
    car.speed = LaneSpeed(car.lane);
    if (car.kind == CarKind::kShortTransit) {
      // Clips a corner: starts most of the way across and moves fast, so it
      // is on screen for only ~2-4 frames — a genuine brief appearance.
      car.x = config_.frame_width - rng_.Uniform(60.0, 140.0);
      car.speed = rng_.Uniform(60.0, 90.0);
    } else {
      car.x = -car.length / 2.0 + 1.0;
      // Keep a clear headway behind the previous car in this lane.
      bool entry_blocked = false;
      for (const auto& other : cars_) {
        if (other.lane == car.lane &&
            other.x - other.length / 2.0 <
                car.x + car.length / 2.0 + 40.0) {
          entry_blocked = true;
          break;
        }
      }
      if (entry_blocked) continue;
    }
    car.id = next_car_id_++;
    car.archetype = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(kNumArchetypes) - 1));
    car.appearance_offset.resize(config_.feature_dim, 0.0);
    for (double& v : car.appearance_offset) v = rng_.Normal(0.0, 0.25);
    cars_.push_back(std::move(car));
  }
}

double NightStreetWorld::LaneSpeed(std::size_t lane) const {
  // Deterministic per-lane speed in [30, 52] px/frame derived from the
  // world seed so lanes differ but are stable across calls.
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ (lane * 0xD1342543DE82EF95ULL);
  h ^= lane_speed_salt_;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  const double unit =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return 30.0 + 22.0 * unit;
}

void NightStreetWorld::StepCars() {
  for (auto& car : cars_) {
    car.x += car.speed;
    if (car.reflection_frames_left > 0) {
      --car.reflection_frames_left;
      // A burst that just ended starts a cooldown long enough that the
      // next burst reads as a fresh brief appearance, not a flicker gap.
      if (car.reflection_frames_left == 0) car.reflection_cooldown = 7;
    } else if (car.reflection_cooldown > 0) {
      --car.reflection_cooldown;
    }
    if (car.kind == CarKind::kReflective &&
        car.reflection_frames_left == 0 && car.reflection_cooldown == 0 &&
        rng_.Bernoulli(0.45)) {
      car.reflection_frames_left = static_cast<int>(rng_.UniformInt(1, 3));
    }
  }
  std::erase_if(cars_, [this](const Car& car) {
    return car.x - car.length / 2.0 > config_.frame_width;
  });
}

std::vector<double> NightStreetWorld::CarFeatures(const Car& car) {
  std::vector<double> f(config_.feature_dim, 0.0);
  const double* mean = nullptr;
  double frame_noise = kEasyNoise;
  switch (car.kind) {
    case CarKind::kEasy:
    case CarKind::kShortTransit:
      mean = kEasyDeployMean;
      frame_noise = kEasyNoise;
      break;
    case CarKind::kDark:
      mean = kDarkMean;
      frame_noise = kDarkFrameNoise;
      break;
    case CarKind::kReflective:
      mean = kEasyDeployMean;
      frame_noise = kEasyNoise;
      break;
  }
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    const double base = i < 4 ? mean[i] : 0.0;
    f[i] = base + car.appearance_offset[i] + rng_.Normal(0.0, frame_noise);
  }
  // Dark cars carry their correctable signal in the archetype subspace:
  // each car belongs to one of kNumArchetypes clusters in dims 4+.
  if (car.kind == CarKind::kDark) {
    const auto& center = dark_archetypes_[car.archetype];
    for (std::size_t i = 4; i < config_.feature_dim; ++i) {
      f[i] += center[i - 4] + rng_.Normal(0.0, kWithinArchetype);
    }
  }
  return f;
}

std::vector<double> NightStreetWorld::ReflectionFeatures(const Car& car) {
  std::vector<double> f(config_.feature_dim, 0.0);
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    const double base = i < 4 ? kReflectionMean[i] : 0.0;
    f[i] = base + 0.5 * car.appearance_offset[i] +
           rng_.Normal(0.0, kReflectionNoise);
  }
  const auto& center = reflection_archetypes_[car.archetype];
  for (std::size_t i = 4; i < config_.feature_dim; ++i) {
    f[i] += center[i - 4] + rng_.Normal(0.0, kWithinArchetype);
  }
  return f;
}

std::vector<double> NightStreetWorld::ClutterFeatures() {
  std::vector<double> f(config_.feature_dim, 0.0);
  // Half the clutter is generic (easy to reject), half is night clutter
  // that sits nearer the boundary.
  const bool night = rng_.Bernoulli(0.5);
  const double* mean = night ? kNightClutterMean : kClutterMean;
  for (std::size_t i = 0; i < config_.feature_dim; ++i) {
    const double base = i < 4 ? mean[i] : 0.0;
    f[i] = base + rng_.Normal(0.0, kClutterNoise);
  }
  return f;
}

std::vector<Frame> NightStreetWorld::GenerateFrames(std::size_t count) {
  std::vector<Frame> frames;
  frames.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    SpawnCars();
    Frame frame;
    frame.index = frame_index_;
    frame.timestamp = static_cast<double>(frame_index_) / config_.fps;
    ++frame_index_;

    for (auto& car : cars_) {
      const geometry::Box2D box = CarBox(car);
      // Ground truth: the visible part of the car.
      geometry::Box2D visible{std::max(box.x_min, 0.0),
                              std::max(box.y_min, 0.0),
                              std::min(box.x_max, config_.frame_width),
                              std::min(box.y_max, config_.frame_height)};
      if (!visible.Valid() || visible.Area() < 0.25 * box.Area()) continue;
      frame.truths.push_back(eval::GroundTruthBox{visible, "car"});
      frame.truth_ids.push_back(car.id);

      if (!rng_.Bernoulli(config_.proposal_dropout)) {
        Proposal proposal;
        proposal.box = visible.Translated(rng_.Normal(0.0, 3.0),
                                          rng_.Normal(0.0, 3.0));
        proposal.features = CarFeatures(car);
        proposal.is_car = true;
        proposal.truth_id = car.id;
        frame.proposals.push_back(std::move(proposal));
      }

      // Active reflection bursts spawn 1-2 distractor proposals whose boxes
      // overlap the car (road reflections / glare doubles).
      if (car.kind == CarKind::kReflective &&
          car.reflection_frames_left > 0) {
        // Reflection bursts come in pairs (road reflection + glare double),
        // so a detected burst stacks three boxes on the car (Figure 7).
        for (int c = 0; c < 2; ++c) {
          Proposal reflection;
          // Offsets put each reflection at IoU ~0.35-0.45 against the car
          // and against its sibling: overlapping enough for a multibox
          // triple, separated enough that NMS (IoU 0.5) keeps all three.
          const double dy = car.height * rng_.Uniform(0.28, 0.45);
          const double dx = (c == 0 ? -1.0 : 1.0) * car.length *
                            rng_.Uniform(0.12, 0.20);
          reflection.box = visible.Translated(dx, dy);
          reflection.box.y_max =
              std::min(reflection.box.y_max, config_.frame_height);
          if (!reflection.box.Valid()) continue;
          reflection.features = ReflectionFeatures(car);
          reflection.is_car = false;
          reflection.truth_id = -1;
          frame.proposals.push_back(std::move(reflection));
        }
      }
    }

    // Background clutter proposals.
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (!rng_.Bernoulli(std::min(1.0, config_.clutter_rate / 3.0))) {
        continue;
      }
      Proposal clutter;
      const double w = rng_.Uniform(60.0, 160.0);
      const double h = rng_.Uniform(40.0, 90.0);
      const double x = rng_.Uniform(0.0, config_.frame_width - w);
      const double y = rng_.Uniform(0.0, config_.frame_height - h);
      clutter.box = geometry::Box2D{x, y, x + w, y + h};
      clutter.features = ClutterFeatures();
      clutter.is_car = false;
      clutter.truth_id = -1;
      frame.proposals.push_back(std::move(clutter));
    }

    frames.push_back(std::move(frame));
    StepCars();
  }
  return frames;
}

nn::Dataset NightStreetWorld::PretrainingSet(std::size_t positives,
                                             std::size_t negatives) {
  nn::Dataset data;
  for (std::size_t i = 0; i < positives; ++i) {
    std::vector<double> f(config_.feature_dim, 0.0);
    for (std::size_t d = 0; d < config_.feature_dim; ++d) {
      const double base = d < 4 ? kEasyPretrainMean[d] : 0.0;
      f[d] = base + rng_.Normal(0.0, kEasyNoise + 0.15);
    }
    data.Add(std::move(f), 1);
  }
  for (std::size_t i = 0; i < negatives; ++i) {
    std::vector<double> f(config_.feature_dim, 0.0);
    for (std::size_t d = 0; d < config_.feature_dim; ++d) {
      const double base = d < 4 ? kClutterMean[d] : 0.0;
      f[d] = base + rng_.Normal(0.0, kClutterNoise + 0.15);
    }
    data.Add(std::move(f), 0);
  }
  return data;
}

nn::Dataset NightStreetWorld::LabelFrame(const Frame& frame) {
  nn::Dataset data;
  for (const auto& proposal : frame.proposals) {
    data.Add(proposal.features, proposal.is_car ? 1 : 0);
  }
  return data;
}

}  // namespace omg::video
