#include "config/scenario.hpp"

#include <algorithm>

#include "bandit/bal.hpp"
#include "common/check.hpp"
#include "net/server.hpp"

namespace omg::config {
namespace {

/// Section kinds a scenario document may contain.
const char* const kKnownKinds[] = {"scenario", "runtime", "admission",
                                   "suite",    "assertion", "stream",
                                   "loop",     "observability", "replay",
                                   "server",   "tenant"};

RuntimeSpec ReadRuntime(const SpecSection& section) {
  RuntimeSpec spec;
  spec.shards = section.GetSize("shards", spec.shards);
  spec.window = section.GetSize("window", spec.window);
  spec.settle_lag = section.GetSize("settle_lag", spec.settle_lag);
  spec.queue_capacity =
      section.GetSize("queue_capacity", spec.queue_capacity);
  spec.stealing = section.GetBool("stealing", spec.stealing);
  section.RejectUnknownKeys();
  return spec;
}

AdmissionSpec ReadAdmission(const SpecSection& section) {
  AdmissionSpec spec;
  const std::string policy =
      section.GetString("policy", std::string(runtime::AdmissionPolicyName(
                                      spec.policy)));
  try {
    spec.policy = runtime::ParseAdmissionPolicy(policy);
  } catch (const common::CheckError& error) {
    throw section.ErrorAt("policy", error.what());
  }
  spec.shed_floor = section.GetDouble("shed_floor", spec.shed_floor);
  spec.target_p99_ms =
      section.GetDouble("target_p99_ms", spec.target_p99_ms);
  section.RejectUnknownKeys();
  return spec;
}

LoopSpec ReadLoop(const SpecSection& section) {
  LoopSpec spec;
  spec.enabled = section.GetBool("enabled", spec.enabled);
  spec.strategy = section.GetString("strategy", spec.strategy);
  if (spec.strategy != "bal" && spec.strategy != "bal-uncertainty" &&
      spec.strategy != "uncertainty" && spec.strategy != "random") {
    throw section.ErrorAt(
        "strategy", "unknown strategy '" + spec.strategy +
                        "' (bal, bal-uncertainty, uncertainty, random)");
  }
  spec.oracle = section.GetString("oracle", spec.oracle);
  if (spec.oracle != "human" && spec.oracle != "mixed") {
    throw section.ErrorAt("oracle", "unknown oracle '" + spec.oracle +
                                        "' (human, mixed)");
  }
  spec.budget = section.GetSize("budget", spec.budget);
  spec.min_candidates =
      section.GetSize("min_candidates", spec.min_candidates);
  spec.rounds = section.GetSize("rounds", spec.rounds);
  spec.store_capacity =
      section.GetSize("store_capacity", spec.store_capacity);
  spec.weak_weight = section.GetDouble("weak_weight", spec.weak_weight);
  if (spec.weak_weight <= 0.0 || spec.weak_weight > 1.0) {
    throw section.ErrorAt("weak_weight", "weak_weight must be in (0, 1]");
  }
  spec.retrain_epochs =
      section.GetSize("retrain_epochs", spec.retrain_epochs);
  spec.seed = static_cast<std::uint64_t>(
      section.GetInt("seed", static_cast<std::int64_t>(spec.seed)));
  section.RejectUnknownKeys();
  return spec;
}

ObservabilitySpec ReadObservability(const SpecSection& section) {
  ObservabilitySpec spec;
  spec.trace = section.GetBool("trace", spec.trace);
  spec.ring_capacity = section.GetSize("ring_capacity", spec.ring_capacity);
  if (spec.ring_capacity == 0) {
    throw section.ErrorAt("ring_capacity", "ring_capacity must be >= 1");
  }
  spec.sample_every = section.GetSize("sample_every", spec.sample_every);
  if (spec.sample_every == 0) {
    throw section.ErrorAt("sample_every",
                          "sample_every must be >= 1 (1 = every batch)");
  }
  spec.trace_path = section.GetString("trace_path", spec.trace_path);
  spec.export_period_ms =
      section.GetSize("export_period_ms", spec.export_period_ms);
  if (spec.export_period_ms == 0) {
    throw section.ErrorAt("export_period_ms",
                          "export_period_ms must be >= 1");
  }
  spec.metrics_jsonl_path =
      section.GetString("metrics_jsonl_path", spec.metrics_jsonl_path);
  spec.metrics_prometheus_path = section.GetString(
      "metrics_prometheus_path", spec.metrics_prometheus_path);
  section.RejectUnknownKeys();
  return spec;
}

ReplaySpec ReadReplay(const SpecSection& section) {
  ReplaySpec spec;
  spec.trace_path = section.GetString("trace_path", spec.trace_path);
  spec.speed = section.GetDouble("speed", spec.speed);
  if (spec.speed < 0.0) {
    throw section.ErrorAt("speed", "speed must be >= 0 (0 = unpaced)");
  }
  spec.record_eps = section.GetDouble("record_eps", spec.record_eps);
  if (spec.record_eps <= 0.0) {
    throw section.ErrorAt("record_eps", "record_eps must be > 0");
  }
  section.RejectUnknownKeys();
  return spec;
}

ServerSpec ReadServer(const SpecSection& section) {
  ServerSpec spec;
  spec.enabled = section.GetBool("enabled", true);
  spec.uds_path = section.GetString("uds_path", spec.uds_path);
  spec.tcp = section.GetBool("tcp", spec.tcp);
  spec.tcp_port = static_cast<std::size_t>(
      section.GetInt("tcp_port", static_cast<std::int64_t>(spec.tcp_port)));
  if (spec.tcp_port > 65535) {
    throw section.ErrorAt("tcp_port", "tcp_port must be in [0, 65535]");
  }
  spec.handler_threads =
      section.GetSize("handler_threads", spec.handler_threads);
  if (spec.handler_threads == 0) {
    throw section.ErrorAt("handler_threads", "handler_threads must be >= 1");
  }
  spec.max_frame_bytes =
      section.GetSize("max_frame_bytes", spec.max_frame_bytes);
  if (spec.max_frame_bytes == 0) {
    throw section.ErrorAt("max_frame_bytes", "max_frame_bytes must be >= 1");
  }
  if (spec.uds_path.empty() && !spec.tcp) {
    throw section.ErrorHere(
        "[server] needs a transport: set uds_path and/or tcp = true");
  }
  section.RejectUnknownKeys();
  return spec;
}

TenantSpec ReadTenant(const SpecSection& section) {
  if (section.label().empty()) {
    throw section.ErrorHere("[tenant] needs a name: [tenant <name>]");
  }
  TenantSpec spec;
  spec.name = section.label();
  if (!net::IngestServer::ValidTenantName(spec.name)) {
    throw section.ErrorHere("tenant name '" + spec.name +
                            "' is not a legal tenant id "
                            "([A-Za-z0-9_-], 1-64 chars)");
  }
  spec.token = section.GetString("token", spec.token);
  spec.quota_eps = section.GetDouble("quota_eps", spec.quota_eps);
  if (spec.quota_eps < 0.0) {
    throw section.ErrorAt("quota_eps",
                          "quota_eps must be >= 0 (0 = unlimited)");
  }
  spec.burst = section.GetDouble("burst", spec.burst);
  if (spec.burst < 0.0) {
    throw section.ErrorAt("burst", "burst must be >= 0 (0 = quota_eps)");
  }
  if (section.Find("shed_floor") != nullptr) {
    spec.shed_floor = section.GetDouble("shed_floor", 0.0);
    spec.has_shed_floor = true;
  }
  section.RejectUnknownKeys();
  return spec;
}

StreamSpec ReadStream(const SpecSection& section) {
  if (section.label().empty()) {
    throw section.ErrorHere("[stream] needs a name: [stream <name>]");
  }
  StreamSpec spec;
  spec.name = section.label();
  spec.domain = section.RequireString("domain");
  spec.examples = section.GetSize("examples", spec.examples);
  if (spec.examples == 0) {
    throw section.ErrorAt("examples", "stream needs examples >= 1");
  }
  spec.batch = section.GetSize("batch", spec.batch);
  if (spec.batch == 0) {
    throw section.ErrorAt("batch", "stream needs batch >= 1");
  }
  spec.seed = static_cast<std::uint64_t>(
      section.GetInt("seed", static_cast<std::int64_t>(spec.seed)));
  spec.severity_hint =
      section.GetDouble("severity_hint", spec.severity_hint);
  spec.tenant = section.GetString("tenant", spec.tenant);
  section.RejectUnknownKeys();
  return spec;
}

}  // namespace

const SuiteSpec* ScenarioSpec::SuiteFor(const std::string& domain) const {
  for (const SuiteSpec& suite : suites) {
    if (suite.domain == domain) return &suite;
  }
  return nullptr;
}

std::vector<std::string> ScenarioSpec::Domains() const {
  std::vector<std::string> domains;
  for (const StreamSpec& stream : streams) {
    if (std::find(domains.begin(), domains.end(), stream.domain) ==
        domains.end()) {
      domains.push_back(stream.domain);
    }
  }
  return domains;
}

ScenarioSpec ConfigLoader::Load(const SpecDocument& doc) {
  ScenarioSpec scenario;
  scenario.source = doc.source();

  // Reject unknown section kinds up front, with the header position; the
  // singleton kinds must be unlabeled, or `[runtime main]` would silently
  // shadow `[runtime]` and bypass every key below it.
  for (const SpecSection& section : doc.sections()) {
    const bool known =
        std::any_of(std::begin(kKnownKinds), std::end(kKnownKinds),
                    [&](const char* kind) { return section.kind() == kind; });
    if (!known) {
      throw section.ErrorHere("unknown section kind [" + section.kind() +
                              "] (scenario, runtime, admission, suite, "
                              "assertion, stream, loop, observability, "
                              "replay, server, tenant)");
    }
    const bool singleton = section.kind() == "scenario" ||
                           section.kind() == "runtime" ||
                           section.kind() == "admission" ||
                           section.kind() == "loop" ||
                           section.kind() == "observability" ||
                           section.kind() == "replay" ||
                           section.kind() == "server";
    if (singleton && !section.label().empty()) {
      throw section.ErrorHere("[" + section.kind() +
                              "] does not take a label");
    }
    if (section.kind() == "assertion" && section.label().empty()) {
      throw section.ErrorHere(
          "[assertion] needs a name: [assertion <name>]");
    }
  }

  const SpecSection& header = doc.Require("scenario");
  scenario.name = header.GetString("name", "");
  if (scenario.name.empty()) {
    throw header.ErrorHere("[scenario] needs a non-empty name");
  }
  scenario.description = header.GetString("description", "");
  header.RejectUnknownKeys();

  if (const SpecSection* runtime = doc.Find("runtime")) {
    scenario.runtime = ReadRuntime(*runtime);
  }
  if (const SpecSection* admission = doc.Find("admission")) {
    scenario.admission = ReadAdmission(*admission);
  }
  if (const SpecSection* loop = doc.Find("loop")) {
    scenario.loop = ReadLoop(*loop);
  }
  if (const SpecSection* obs = doc.Find("observability")) {
    scenario.observability = ReadObservability(*obs);
  }
  if (const SpecSection* replay = doc.Find("replay")) {
    scenario.replay = ReadReplay(*replay);
  }
  if (const SpecSection* server = doc.Find("server")) {
    scenario.server = ReadServer(*server);
  }

  // Tenants only mean something as a server roster; a [tenant] in a
  // scenario without a [server] is dead configuration, so reject it.
  for (const SpecSection* section : doc.OfKind("tenant")) {
    if (doc.Find("server") == nullptr) {
      throw section->ErrorHere("[tenant " + section->label() +
                               "] requires a [server] section");
    }
    // Duplicate [tenant <name>] sections are a parser-level "duplicate
    // section" error, so names are unique here by construction.
    scenario.tenants.push_back(ReadTenant(*section));
  }

  // Suites: [suite <domain>] with an assertions list; parameters come from
  // matching [assertion <name>] sections.
  std::vector<const SpecSection*> assertion_sections = doc.OfKind("assertion");
  std::vector<bool> assertion_referenced(assertion_sections.size(), false);
  for (const SpecSection* section : doc.OfKind("suite")) {
    if (section->label().empty()) {
      throw section->ErrorHere("[suite] needs a domain: [suite <domain>]");
    }
    SuiteSpec suite;
    suite.domain = section->label();
    const SpecValue* names = section->Find("assertions");
    if (names == nullptr) {
      throw section->ErrorHere("[suite " + suite.domain +
                               "] needs an assertions = [...] list");
    }
    section->MarkConsumed("assertions");
    const std::vector<SpecValue> listed =
        names->type == SpecValue::Type::kList ? names->list
                                              : std::vector<SpecValue>{*names};
    if (listed.empty()) {
      throw section->ErrorAt("assertions",
                             "assertions list must not be empty");
    }
    for (const SpecValue& value : listed) {
      if (value.type != SpecValue::Type::kString) {
        throw SpecError(doc.source(), value.line, value.col,
                        "assertion names must be bare names or strings");
      }
      const bool duplicate =
          std::any_of(suite.assertions.begin(), suite.assertions.end(),
                      [&](const AssertionSpec& a) {
                        return a.name == value.string_value;
                      });
      if (duplicate) {
        throw SpecError(doc.source(), value.line, value.col,
                        "assertion '" + value.string_value +
                            "' listed twice in [suite " + suite.domain + "]");
      }
      AssertionSpec assertion;
      assertion.name = value.string_value;
      assertion.source = doc.source();
      assertion.line = value.line;
      assertion.col = value.col;
      for (std::size_t i = 0; i < assertion_sections.size(); ++i) {
        if (assertion_sections[i]->label() == assertion.name) {
          assertion.params = *assertion_sections[i];
          assertion_referenced[i] = true;
          break;
        }
      }
      suite.assertions.push_back(std::move(assertion));
    }
    section->RejectUnknownKeys();
    scenario.suites.push_back(std::move(suite));
  }
  for (std::size_t i = 0; i < assertion_sections.size(); ++i) {
    if (!assertion_referenced[i]) {
      throw assertion_sections[i]->ErrorHere(
          "[assertion " + assertion_sections[i]->label() +
          "] is not referenced by any suite");
    }
  }

  // Duplicate [stream <name>] sections are already a parser-level
  // "duplicate section" error, so names are unique here by construction.
  for (const SpecSection* section : doc.OfKind("stream")) {
    StreamSpec stream = ReadStream(*section);
    // ObserveBatch rejects batches larger than a shard's whole queue; catch
    // the mismatch here, positioned, instead of at serving time.
    if (stream.batch > scenario.runtime.queue_capacity) {
      throw section->ErrorAt(
          "batch", "stream '" + stream.name + "' batch (" +
                       std::to_string(stream.batch) +
                       ") exceeds [runtime] queue_capacity (" +
                       std::to_string(scenario.runtime.queue_capacity) +
                       ")");
    }
    if (scenario.SuiteFor(stream.domain) == nullptr) {
      throw section->ErrorAt("domain",
                             "stream '" + stream.name + "' names domain '" +
                                 stream.domain + "' but there is no [suite " +
                                 stream.domain + "]");
    }
    // A stream's tenant restriction is a wire-binding rule; without a
    // [server] nothing ever binds, and against a closed roster it must
    // name a declared tenant or no client could ever bind the stream.
    if (!stream.tenant.empty()) {
      if (doc.Find("server") == nullptr) {
        throw section->ErrorAt("tenant",
                               "stream '" + stream.name +
                                   "' restricts binding to tenant '" +
                                   stream.tenant +
                                   "' but there is no [server] section");
      }
      const bool declared = std::any_of(
          scenario.tenants.begin(), scenario.tenants.end(),
          [&](const TenantSpec& t) { return t.name == stream.tenant; });
      if (!scenario.tenants.empty() && !declared) {
        throw section->ErrorAt("tenant",
                               "stream '" + stream.name +
                                   "' names undeclared tenant '" +
                                   stream.tenant +
                                   "' (no matching [tenant] section)");
      }
      if (scenario.tenants.empty() &&
          !net::IngestServer::ValidTenantName(stream.tenant)) {
        throw section->ErrorAt("tenant",
                               "tenant '" + stream.tenant +
                                   "' is not a legal tenant id "
                                   "([A-Za-z0-9_-], 1-64 chars)");
      }
    }
    scenario.streams.push_back(std::move(stream));
  }
  if (scenario.streams.empty()) {
    throw SpecError(doc.source(), 0, 0,
                    "scenario declares no [stream ...] sections");
  }

  // Every declared suite must be exercised by a stream: an orphaned suite
  // would never be built, so its assertion names and parameters would
  // never be validated — a misspelled domain would go silently dead.
  for (const SpecSection* section : doc.OfKind("suite")) {
    const bool served = std::any_of(
        scenario.streams.begin(), scenario.streams.end(),
        [&](const StreamSpec& s) { return s.domain == section->label(); });
    if (!served) {
      throw section->ErrorHere("[suite " + section->label() +
                               "] has no [stream ...] with domain = " +
                               section->label());
    }
  }

  // The loop resolves CandidateKeys against traffic retained in ingestion
  // order; any lossy admission policy would shift the runtime's example
  // indices relative to that record and the oracle would label the wrong
  // examples. Lossless backpressure is the only safe pairing.
  if (scenario.loop.enabled &&
      scenario.admission.policy != runtime::AdmissionPolicy::kBlock) {
    throw doc.Require("loop").ErrorAt(
        "enabled",
        "[loop] requires block admission: a lossy policy desynchronises "
        "candidate keys from the retained traffic the oracle labels");
  }

  // Shed-below-severity only does something when some producer's hint can
  // clear the floor; a scenario violating that would silently never shed.
  // (Admitting everything is still legal — hints default to 0.0 — so this
  // is only checked when the policy is shed_below_severity.)
  if (scenario.admission.policy ==
      runtime::AdmissionPolicy::kShedBelowSeverity) {
    const bool any_above = std::any_of(
        scenario.streams.begin(), scenario.streams.end(),
        [&](const StreamSpec& s) {
          return s.severity_hint >= scenario.admission.shed_floor;
        });
    if (!any_above) {
      throw doc.Require("admission")
          .ErrorAt("shed_floor",
                   "shed_below_severity admission with every stream's "
                   "severity_hint below shed_floor would shed all overload "
                   "traffic; raise a stream's severity_hint or lower the "
                   "floor");
    }
  }

  // Surface invalid runtime geometry here, positioned at [runtime].
  try {
    MakeRuntimeConfig(scenario).Validate();
  } catch (const common::CheckError& error) {
    const SpecSection* runtime = doc.Find("runtime");
    if (runtime != nullptr) throw runtime->ErrorHere(error.what());
    throw SpecError(doc.source(), 0, 0, error.what());
  }
  return scenario;
}

ScenarioSpec ConfigLoader::LoadFile(const std::string& path) {
  return Load(SpecDocument::ParseFile(path));
}

runtime::ShardedRuntimeConfig ConfigLoader::MakeRuntimeConfig(
    const ScenarioSpec& scenario) {
  runtime::ShardedRuntimeConfig config;
  config.shards = scenario.runtime.shards;
  config.window = scenario.runtime.window;
  config.settle_lag = scenario.runtime.settle_lag;
  config.queue_capacity = scenario.runtime.queue_capacity;
  config.stealing = scenario.runtime.stealing;
  config.admission = scenario.admission.policy;
  config.shed_floor = scenario.admission.shed_floor;
  config.latency_target_ms = scenario.admission.target_p99_ms;
  return config;
}

loop::ImprovementLoopConfig ConfigLoader::MakeLoopConfig(
    const LoopSpec& loop, std::vector<std::string> assertion_names,
    nn::SgdConfig finetune_sgd) {
  loop::ImprovementLoopConfig config;
  config.assertion_names = std::move(assertion_names);
  config.store.capacity = loop.store_capacity;
  config.round.budget = loop.budget;
  config.round.min_candidates = loop.min_candidates;
  if (loop.retrain_epochs > 0) finetune_sgd.epochs = loop.retrain_epochs;
  config.retrain.sgd = finetune_sgd;
  config.seed = loop.seed;
  return config;
}

std::unique_ptr<bandit::SelectionStrategy> ConfigLoader::MakeStrategy(
    const std::string& name) {
  if (name == "random") return std::make_unique<bandit::RandomStrategy>();
  if (name == "uncertainty") {
    return std::make_unique<bandit::UncertaintyStrategy>();
  }
  if (name == "bal") {
    return std::make_unique<bandit::BalStrategy>(
        bandit::BalConfig{}, std::make_unique<bandit::RandomStrategy>());
  }
  if (name == "bal-uncertainty") {
    return std::make_unique<bandit::BalStrategy>(
        bandit::BalConfig{}, std::make_unique<bandit::UncertaintyStrategy>());
  }
  throw common::CheckError("unknown selection strategy: " + name);
}

std::string_view ParamTypeName(ParamType type) {
  switch (type) {
    case ParamType::kInt: return "int";
    case ParamType::kDouble: return "double";
    case ParamType::kString: return "string";
    case ParamType::kBool: return "bool";
    case ParamType::kStringList: return "string list";
  }
  return "?";
}

}  // namespace omg::config
