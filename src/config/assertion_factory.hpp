// The assertion name -> builder registry behind declarative suites.
//
// Each domain registers its assertions under dotted names
// ("video.multibox", "ecg.oscillation", ...) together with a parameter
// schema; a [suite] section of a scenario file then instantiates them by
// name, with parameters supplied in matching [assertion <name>] sections.
// A registered *builder* may add one assertion or several — consistency
// sources (§4 of the paper) register one name that expands to their whole
// generated family (flicker + appear, one "consistent:<key>" per
// attribute) and contribute the invalidation hook the runtime's unbounded
// re-evaluation needs.
//
// The factory validates parameters against the schema *before* building:
// unknown parameter keys, wrong types, and unknown assertion names all
// fail with a SpecError positioned in the config file. Schemas double as
// documentation — the scenario harness's --describe and
// docs/CONFIGURATION.md are generated from / checked against them.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "config/spec.hpp"
#include "core/assertion.hpp"
#include "runtime/suite_bundle.hpp"

namespace omg::config {

/// Declared type of one assertion parameter.
enum class ParamType { kInt, kDouble, kString, kBool, kStringList };

/// Human-readable ParamType name ("int", "double", ...).
std::string_view ParamTypeName(ParamType type);

/// One parameter a registered assertion accepts: its key, type, default
/// (rendered as text, for listings) and one-line description.
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kDouble;
  std::string default_text;
  std::string description;
};

/// Registry of named assertion builders for one Example type.
///
/// Builders receive the validated parameter section (empty when the
/// scenario supplied none) and a BuildContext to register into. The suite
/// under construction is shared: builders that allocate stateful helpers
/// (trackers, consistency analyzers) keep them alive by capturing
/// shared_ptrs in the closures they register.
template <typename Example>
class AssertionFactory {
 public:
  /// What a builder appends to: the suite plus the invalidation hooks that
  /// will be folded into the stream's SuiteBundle::invalidate.
  struct BuildContext {
    core::AssertionSuite<Example>& suite;
    std::vector<std::function<void()>>& invalidators;
  };

  /// Appends assertions configured by `params` to the context.
  using Builder =
      std::function<void(const SpecSection& params, BuildContext& context)>;

  /// One registry row (exposed for listings / documentation checks).
  struct Registration {
    std::string name;
    std::string description;
    std::vector<ParamSpec> params;
    Builder builder;
  };

  /// Registers `builder` under `name`. Names must be unique; the
  /// convention is "<domain>.<assertion>".
  void Register(std::string name, std::string description,
                std::vector<ParamSpec> params, Builder builder) {
    common::Check(static_cast<bool>(builder), "null assertion builder");
    common::Check(registry_.find(name) == registry_.end(),
                  "duplicate assertion registration: " + name);
    std::string key = name;
    registry_.emplace(std::move(key),
                      Registration{std::move(name), std::move(description),
                                   std::move(params), std::move(builder)});
  }

  /// True when `name` is registered.
  bool Has(const std::string& name) const {
    return registry_.find(name) != registry_.end();
  }

  /// Registered names, sorted.
  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(registry_.size());
    for (const auto& [name, registration] : registry_) names.push_back(name);
    return names;
  }

  /// The registry row for `name`; throws CheckError when absent.
  const Registration& At(const std::string& name) const {
    const auto it = registry_.find(name);
    if (it == registry_.end()) {
      throw common::CheckError("unknown assertion: " + name);
    }
    return it->second;
  }

  /// "a, b, c" over the registered names (for error messages/listings).
  std::string JoinedNames() const {
    std::string joined;
    for (const auto& [name, registration] : registry_) {
      if (!joined.empty()) joined += ", ";
      joined += name;
    }
    return joined;
  }

  /// Validates `params` against `name`'s schema (unknown keys and type
  /// mismatches throw SpecError at the offending entry), then invokes the
  /// builder. Unknown names throw CheckError — callers holding a config
  /// position (scenario.hpp's BuildSuiteBundle) check Has() first to
  /// produce a positioned SpecError instead.
  void Build(const std::string& name, const SpecSection& params,
             BuildContext& context) const {
    const auto it = registry_.find(name);
    if (it == registry_.end()) {
      throw common::CheckError("unknown assertion '" + name +
                               "' (registered: " + JoinedNames() + ")");
    }
    const Registration& registration = it->second;
    for (const SpecEntry& entry : params.entries()) {
      const ParamSpec* spec = nullptr;
      for (const ParamSpec& candidate : registration.params) {
        if (candidate.key == entry.key) {
          spec = &candidate;
          break;
        }
      }
      if (spec == nullptr) {
        throw SpecError(params.source(), entry.line, entry.col,
                        "assertion '" + name + "' has no parameter '" +
                            entry.key + "'");
      }
      CheckType(params, entry, spec->type);
    }
    // Every present key is now schema-checked (and consumed); the builder
    // only ever sees validated parameters.
    registration.builder(params, context);
  }

 private:
  /// Reads `entry` through the matching typed getter so a mismatch throws
  /// a positioned SpecError (and the key is marked consumed).
  static void CheckType(const SpecSection& params, const SpecEntry& entry,
                        ParamType type) {
    switch (type) {
      case ParamType::kInt: params.GetInt(entry.key, 0); break;
      case ParamType::kDouble: params.GetDouble(entry.key, 0.0); break;
      case ParamType::kString: params.GetString(entry.key, ""); break;
      case ParamType::kBool: params.GetBool(entry.key, false); break;
      case ParamType::kStringList: params.GetStringList(entry.key, {}); break;
    }
  }

  std::map<std::string, Registration> registry_;
};

/// Writes `factory`'s registered-assertion listing — one "name — description"
/// line per assertion, indented "key (type, default) — description" lines
/// per parameter. Shared by the scenario harness's --describe and the
/// facade's DomainRegistry describe hooks.
template <typename Example>
void DescribeAssertions(std::ostream& out,
                        const AssertionFactory<Example>& factory) {
  for (const std::string& name : factory.Names()) {
    const auto& registration = factory.At(name);
    out << name << " — " << registration.description << "\n";
    for (const ParamSpec& param : registration.params) {
      out << "    " << param.key << " (" << ParamTypeName(param.type)
          << ", default " << param.default_text << ") — "
          << param.description << "\n";
    }
  }
}

}  // namespace omg::config
