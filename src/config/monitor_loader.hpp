// ConfigLoader's facade back end: one serve::Monitor per scenario document.
//
// PR 4's loader instantiated one templated ShardedMonitorService per
// domain, so a mixed scenario ran one runtime silo per example type. The
// facade collapses that: BuildScenarioMonitor turns a validated
// ScenarioSpec into a single serve::Monitor whose shards, admission policy,
// and metrics are shared by every stream of every domain the document
// declares — the runtime geometry the [runtime]/[admission] sections
// describe now bounds the *whole* scenario, not one domain's slice.
//
// Domain resolution goes through a serve::DomainRegistry (normally
// serve::MakeDefaultDomainRegistry()): a stream's `domain` key picks the
// registry entry, the matching [suite <domain>] spec is compiled into an
// erased suite factory, and the stream is registered under its file name.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/scenario.hpp"
#include "serve/domain_registry.hpp"
#include "serve/monitor.hpp"

namespace omg::config {

/// One [stream ...] section bound to its registered facade stream.
struct BoundStream {
  StreamSpec spec;
  serve::StreamHandle handle;
};

/// A whole scenario hosted in one facade Monitor.
struct ScenarioMonitor {
  std::unique_ptr<serve::Monitor> monitor;
  /// Streams in file order; handles carry the registered name/domain.
  std::vector<BoundStream> streams;
  /// Qualified assertion names per domain ("video" -> {"video/multibox",
  /// "video/flicker", ...}), in suite emission (column) order — what
  /// FlagCollectorSink and the improvement loop key their columns on.
  std::map<std::string, std::vector<std::string>> assertion_names;
};

/// Instantiates `scenario` as one serve::Monitor: builds the runtime from
/// [runtime]/[admission] (attaching a tracer when [observability] says
/// trace = true), registers every [stream ...] (each stream's
/// suite erased from its domain's [suite ...] via `domains`, its
/// severity_hint installed as the stream's default admission hint).
///
/// Throws SpecError (positioned at the offending stream) when a stream
/// names a domain `domains` does not register, and CheckError if the
/// facade rejects a registration the loader's validation should have
/// caught (a bug, not a config error).
ScenarioMonitor BuildScenarioMonitor(const ScenarioSpec& scenario,
                                     const serve::DomainRegistry& domains);

}  // namespace omg::config
