#include "config/monitor_loader.hpp"

#include <utility>

#include "common/check.hpp"

namespace omg::config {

ScenarioMonitor BuildScenarioMonitor(const ScenarioSpec& scenario,
                                     const serve::DomainRegistry& domains) {
  ScenarioMonitor out;

  serve::Monitor::Builder builder;
  builder.Runtime(ConfigLoader::MakeRuntimeConfig(scenario));
  if (scenario.observability.trace) {
    obs::TracerOptions trace;
    trace.ring_capacity = scenario.observability.ring_capacity;
    trace.sample_every = scenario.observability.sample_every;
    builder.Trace(trace);  // Build() sizes shard_lanes to the shard count
  }
  serve::Result<std::unique_ptr<serve::Monitor>> built = builder.Build();
  // Load() already ran Validate() on this geometry; a failure here is a
  // loader/facade disagreement, not a config error.
  if (!built.ok()) throw common::CheckError(built.error().message);
  out.monitor = std::move(built.value());

  // Compile each declared domain's suite spec once; every stream of the
  // domain gets a private bundle from the shared erased factory.
  std::map<std::string, serve::AnySuiteFactory> factories;
  for (const StreamSpec& stream : scenario.streams) {
    if (factories.find(stream.domain) != factories.end()) continue;
    if (!domains.Has(stream.domain)) {
      throw SpecError(scenario.source, 0, 0,
                      "stream '" + stream.name + "' names domain '" +
                          stream.domain + "' but no such domain is "
                          "registered (registered: " +
                          domains.JoinedNames() + ")");
    }
    const SuiteSpec* suite = scenario.SuiteFor(stream.domain);
    common::Check(suite != nullptr,
                  "validated scenario lost its suite for domain " +
                      stream.domain);
    factories.emplace(stream.domain,
                      domains.At(stream.domain).make_suite_factory(*suite));

    // Column order for loop/collector wiring: probe one erased bundle.
    const serve::AnySuiteBundle probe = factories.at(stream.domain)();
    common::Check(probe.suite != nullptr,
                  "domain '" + stream.domain + "' produced a null suite");
    out.assertion_names.emplace(stream.domain, probe.suite->Names());
  }

  for (const StreamSpec& stream : scenario.streams) {
    serve::StreamOptions options;
    options.name = stream.name;
    options.severity_hint = stream.severity_hint;
    serve::Result<serve::StreamHandle> handle = out.monitor->RegisterStream(
        stream.domain, factories.at(stream.domain), std::move(options));
    if (!handle.ok()) {
      throw common::CheckError("RegisterStream('" + stream.name +
                               "'): " + handle.error().message);
    }
    out.streams.push_back({stream, handle.value()});
  }
  return out;
}

}  // namespace omg::config
