#include "config/spec.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace omg::config {
namespace {

bool IsBareChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':' || c == '/';
}

bool IsIdentifier(std::string_view token) {
  if (token.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(token.front())) &&
      token.front() != '_') {
    return false;
  }
  for (const char c : token) {
    if (!IsBareChar(c)) return false;
  }
  return true;
}

/// Classifies a bare (unquoted) token into bool / int / double / string.
SpecValue ClassifyBare(std::string token, std::size_t line, std::size_t col,
                       const std::string& source) {
  SpecValue value;
  value.line = line;
  value.col = col;
  if (token == "true" || token == "false") {
    value.type = SpecValue::Type::kBool;
    value.bool_value = token == "true";
    return value;
  }
  // Integer: optional sign, digits only.
  {
    std::size_t i = (token[0] == '+' || token[0] == '-') ? 1 : 0;
    bool all_digits = i < token.size();
    for (std::size_t j = i; j < token.size(); ++j) {
      if (!std::isdigit(static_cast<unsigned char>(token[j]))) {
        all_digits = false;
        break;
      }
    }
    if (all_digits) {
      try {
        value.int_value = std::stoll(token);
      } catch (const std::out_of_range&) {
        throw SpecError(source, line, col,
                        "integer out of range: " + token);
      }
      value.type = SpecValue::Type::kInt;
      return value;
    }
  }
  // Double: must start with sign/digit/dot and parse completely.
  if (token[0] == '+' || token[0] == '-' || token[0] == '.' ||
      std::isdigit(static_cast<unsigned char>(token[0]))) {
    std::size_t parsed = 0;
    bool ok = true;
    double parsed_value = 0.0;
    try {
      parsed_value = std::stod(token, &parsed);
    } catch (const std::invalid_argument&) {
      ok = false;
    } catch (const std::out_of_range&) {
      throw SpecError(source, line, col, "number out of range: " + token);
    }
    if (ok && parsed == token.size()) {
      value.type = SpecValue::Type::kDouble;
      value.double_value = parsed_value;
      return value;
    }
    // Tokens like `3x` or `1.2.3` reach here: they *look* numeric but are
    // not — calling them strings would hide typos in numeric keys.
    throw SpecError(source, line, col, "malformed number: " + token);
  }
  value.type = SpecValue::Type::kString;
  value.string_value = std::move(token);
  return value;
}

/// Cursor over one logical line; columns are 1-based.
struct LineCursor {
  const std::string& source;
  std::string_view text;
  std::size_t line;
  std::size_t pos = 0;

  std::size_t Col() const { return pos + 1; }
  bool AtEnd() const { return pos >= text.size() || text[pos] == '#'; }
  char Peek() const { return text[pos]; }

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r')) {
      ++pos;
    }
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw SpecError(source, line, Col(), message);
  }

  /// Parses a double-quoted string starting at the cursor.
  SpecValue QuotedString() {
    SpecValue value;
    value.type = SpecValue::Type::kString;
    value.line = line;
    value.col = Col();
    ++pos;  // opening quote
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos];
      if (c == '\\') {
        if (pos + 1 >= text.size()) Fail("dangling escape in string");
        const char escaped = text[pos + 1];
        switch (escaped) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default:
            Fail(std::string("unknown escape \\") + escaped);
        }
        ++pos;
      }
      out.push_back(c);
      ++pos;
    }
    if (pos >= text.size()) {
      throw SpecError(source, line, value.col, "unterminated string");
    }
    ++pos;  // closing quote
    value.string_value = std::move(out);
    return value;
  }

  /// Parses a bare token starting at the cursor.
  SpecValue BareToken() {
    const std::size_t start = pos;
    const std::size_t col = Col();
    while (pos < text.size() && IsBareChar(text[pos])) ++pos;
    if (pos == start) {
      Fail(std::string("unexpected character '") + text[pos] + "'");
    }
    return ClassifyBare(std::string(text.substr(start, pos - start)), line,
                        col, source);
  }

  /// Parses one scalar (quoted string or bare token).
  SpecValue Scalar() {
    if (Peek() == '"') return QuotedString();
    if (Peek() == '[') Fail("nested lists are not supported");
    return BareToken();
  }

  /// Parses a value: scalar or `[v, v, ...]` list (single line).
  SpecValue Value() {
    if (Peek() != '[') return Scalar();
    SpecValue value;
    value.type = SpecValue::Type::kList;
    value.line = line;
    value.col = Col();
    ++pos;  // '['
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos;
      return value;
    }
    for (;;) {
      SkipSpace();
      if (AtEnd()) Fail("unterminated list");
      value.list.push_back(Scalar());
      SkipSpace();
      if (AtEnd()) Fail("unterminated list");
      if (Peek() == ']') {
        ++pos;
        return value;
      }
      if (Peek() != ',') Fail("expected ',' or ']' in list");
      ++pos;  // ','
    }
  }
};

}  // namespace

SpecError::SpecError(const std::string& source, std::size_t line,
                     std::size_t col, const std::string& message)
    : std::runtime_error(source + ":" + std::to_string(line) + ":" +
                         std::to_string(col) + ": " + message),
      line_(line),
      col_(col) {}

std::string_view SpecValue::TypeName(Type type) {
  switch (type) {
    case Type::kString: return "string";
    case Type::kInt: return "int";
    case Type::kDouble: return "double";
    case Type::kBool: return "bool";
    case Type::kList: return "list";
  }
  return "?";
}

SpecSection::SpecSection(std::string source, std::string kind,
                         std::string label, std::size_t line, std::size_t col)
    : source_(std::move(source)),
      kind_(std::move(kind)),
      label_(std::move(label)),
      line_(line),
      col_(col) {}

std::vector<std::string> SpecSection::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& entry : entries_) keys.push_back(entry.key);
  return keys;
}

bool SpecSection::Has(const std::string& key) const {
  return Find(key) != nullptr;
}

const SpecValue* SpecSection::Find(const std::string& key) const {
  for (const auto& entry : entries_) {
    if (entry.key == key) return &entry.value;
  }
  return nullptr;
}

const SpecValue& SpecSection::Require(const std::string& key) const {
  const SpecValue* value = Find(key);
  if (value == nullptr) {
    throw ErrorHere("missing required key '" + key + "' in [" + kind_ +
                    (label_.empty() ? "" : " " + label_) + "]");
  }
  consumed_.insert(key);
  return *value;
}

std::string SpecSection::GetString(const std::string& key,
                                   const std::string& fallback) const {
  const SpecValue* value = Find(key);
  if (value == nullptr) return fallback;
  consumed_.insert(key);
  if (value->type != SpecValue::Type::kString) {
    throw SpecError(source_, value->line, value->col,
                    "key '" + key + "' expects a string, got " +
                        std::string(SpecValue::TypeName(value->type)));
  }
  return value->string_value;
}

std::int64_t SpecSection::GetInt(const std::string& key,
                                 std::int64_t fallback) const {
  const SpecValue* value = Find(key);
  if (value == nullptr) return fallback;
  consumed_.insert(key);
  if (value->type != SpecValue::Type::kInt) {
    throw SpecError(source_, value->line, value->col,
                    "key '" + key + "' expects an int, got " +
                        std::string(SpecValue::TypeName(value->type)));
  }
  return value->int_value;
}

double SpecSection::GetDouble(const std::string& key, double fallback) const {
  const SpecValue* value = Find(key);
  if (value == nullptr) return fallback;
  consumed_.insert(key);
  // Int -> double is the one lossless coercion the format allows.
  if (value->type == SpecValue::Type::kInt) {
    return static_cast<double>(value->int_value);
  }
  if (value->type != SpecValue::Type::kDouble) {
    throw SpecError(source_, value->line, value->col,
                    "key '" + key + "' expects a number, got " +
                        std::string(SpecValue::TypeName(value->type)));
  }
  return value->double_value;
}

bool SpecSection::GetBool(const std::string& key, bool fallback) const {
  const SpecValue* value = Find(key);
  if (value == nullptr) return fallback;
  consumed_.insert(key);
  if (value->type != SpecValue::Type::kBool) {
    throw SpecError(source_, value->line, value->col,
                    "key '" + key + "' expects true or false, got " +
                        std::string(SpecValue::TypeName(value->type)));
  }
  return value->bool_value;
}

std::vector<std::string> SpecSection::GetStringList(
    const std::string& key, std::vector<std::string> fallback) const {
  const SpecValue* value = Find(key);
  if (value == nullptr) return fallback;
  consumed_.insert(key);
  // A single string reads as a one-element list.
  if (value->type == SpecValue::Type::kString) {
    return {value->string_value};
  }
  if (value->type != SpecValue::Type::kList) {
    throw SpecError(source_, value->line, value->col,
                    "key '" + key + "' expects a list of strings, got " +
                        std::string(SpecValue::TypeName(value->type)));
  }
  std::vector<std::string> out;
  out.reserve(value->list.size());
  for (const SpecValue& element : value->list) {
    if (element.type != SpecValue::Type::kString) {
      throw SpecError(source_, element.line, element.col,
                      "key '" + key + "' expects string elements, got " +
                          std::string(SpecValue::TypeName(element.type)));
    }
    out.push_back(element.string_value);
  }
  return out;
}

std::string SpecSection::RequireString(const std::string& key) const {
  Require(key);
  return GetString(key, "");
}

std::int64_t SpecSection::RequireInt(const std::string& key) const {
  Require(key);
  return GetInt(key, 0);
}

std::size_t SpecSection::GetSize(const std::string& key,
                                 std::size_t fallback) const {
  const std::int64_t raw =
      GetInt(key, static_cast<std::int64_t>(fallback));
  if (raw < 0) {
    throw ErrorAt(key, "key '" + key + "' must be >= 0, got " +
                           std::to_string(raw));
  }
  return static_cast<std::size_t>(raw);
}

void SpecSection::RejectUnknownKeys() const {
  for (const auto& entry : entries_) {
    if (consumed_.count(entry.key) == 0) {
      throw SpecError(source_, entry.line, entry.col,
                      "unknown key '" + entry.key + "' in [" + kind_ +
                          (label_.empty() ? "" : " " + label_) + "]");
    }
  }
}

SpecError SpecSection::ErrorHere(const std::string& message) const {
  return SpecError(source_, line_, col_, message);
}

SpecError SpecSection::ErrorAt(const std::string& key,
                               const std::string& message) const {
  const SpecValue* value = Find(key);
  if (value == nullptr) return ErrorHere(message);
  return SpecError(source_, value->line, value->col, message);
}

void SpecSection::Append(SpecEntry entry) {
  if (Has(entry.key)) {
    throw SpecError(source_, entry.line, entry.col,
                    "duplicate key '" + entry.key + "' in [" + kind_ +
                        (label_.empty() ? "" : " " + label_) + "]");
  }
  entries_.push_back(std::move(entry));
}

SpecDocument SpecDocument::Parse(std::string_view text, std::string source) {
  SpecDocument doc;
  doc.source_ = std::move(source);

  std::size_t line_number = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find('\n', begin);
    std::string_view line = text.substr(
        begin, end == std::string_view::npos ? text.size() - begin
                                             : end - begin);
    ++line_number;
    begin = end == std::string_view::npos ? text.size() + 1 : end + 1;

    LineCursor cursor{doc.source_, line, line_number};
    cursor.SkipSpace();
    if (cursor.AtEnd()) continue;

    if (cursor.Peek() == '[') {
      // Section header: [kind] or [kind label] or [kind "label"].
      const std::size_t header_col = cursor.Col();
      ++cursor.pos;
      cursor.SkipSpace();
      if (cursor.AtEnd()) cursor.Fail("unterminated section header");
      const SpecValue kind = cursor.BareToken();
      if (kind.type != SpecValue::Type::kString ||
          !IsIdentifier(kind.string_value)) {
        throw SpecError(doc.source_, line_number, kind.col,
                        "section kind must be an identifier");
      }
      cursor.SkipSpace();
      std::string label;
      if (!cursor.AtEnd() && cursor.Peek() != ']') {
        const SpecValue parsed = cursor.Scalar();
        // Any scalar shape is accepted as a label and kept verbatim
        // (stream names like "ward-1" classify as strings; "42" as int).
        switch (parsed.type) {
          case SpecValue::Type::kString: label = parsed.string_value; break;
          case SpecValue::Type::kInt:
            label = std::to_string(parsed.int_value);
            break;
          default:
            throw SpecError(doc.source_, line_number, parsed.col,
                            "section label must be a name or string");
        }
        cursor.SkipSpace();
      }
      if (cursor.AtEnd() || cursor.Peek() != ']') {
        cursor.Fail("expected ']' to close section header");
      }
      ++cursor.pos;
      cursor.SkipSpace();
      if (!cursor.AtEnd()) cursor.Fail("junk after section header");

      if (doc.Find(kind.string_value, label) != nullptr) {
        throw SpecError(doc.source_, line_number, header_col,
                        "duplicate section [" + kind.string_value +
                            (label.empty() ? "" : " " + label) + "]");
      }
      doc.sections_.emplace_back(doc.source_, kind.string_value, label,
                                 line_number, header_col);
      continue;
    }

    // key = value entry.
    const SpecValue key = cursor.BareToken();
    if (key.type != SpecValue::Type::kString ||
        !IsIdentifier(key.string_value)) {
      throw SpecError(doc.source_, line_number, key.col,
                      "entry key must be an identifier");
    }
    cursor.SkipSpace();
    if (cursor.AtEnd() || cursor.Peek() != '=') {
      cursor.Fail("expected '=' after key '" + key.string_value + "'");
    }
    ++cursor.pos;
    cursor.SkipSpace();
    if (cursor.AtEnd()) {
      cursor.Fail("missing value for key '" + key.string_value + "'");
    }
    SpecValue value = cursor.Value();
    cursor.SkipSpace();
    if (!cursor.AtEnd()) cursor.Fail("junk after value");

    if (doc.sections_.empty()) {
      throw SpecError(doc.source_, line_number, key.col,
                      "key '" + key.string_value +
                          "' appears before any [section]");
    }
    doc.sections_.back().Append(
        SpecEntry{key.string_value, std::move(value), line_number, key.col});
  }
  return doc;
}

SpecDocument SpecDocument::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw SpecError(path, 0, 0, "cannot open spec file");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str(), path);
}

const SpecSection* SpecDocument::Find(const std::string& kind,
                                      const std::string& label) const {
  for (const auto& section : sections_) {
    if (section.kind() == kind && section.label() == label) return &section;
  }
  return nullptr;
}

const SpecSection& SpecDocument::Require(const std::string& kind,
                                         const std::string& label) const {
  const SpecSection* section = Find(kind, label);
  if (section == nullptr) {
    throw SpecError(source_, 0, 0,
                    "missing required section [" + kind +
                        (label.empty() ? "" : " " + label) + "]");
  }
  return *section;
}

std::vector<const SpecSection*> SpecDocument::OfKind(
    const std::string& kind) const {
  std::vector<const SpecSection*> out;
  for (const auto& section : sections_) {
    if (section.kind() == kind) out.push_back(&section);
  }
  return out;
}

}  // namespace omg::config
