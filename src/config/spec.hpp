// The declarative scenario/spec format (docs/CONFIGURATION.md).
//
// Every suite, admission policy, and loop parameter in this repo used to be
// hard-coded in C++ main()s — adding a scenario meant recompiling. This
// layer makes "new workload" a config file instead: a dependency-free
// INI/TOML-subset parser producing positioned, typed sections that
// config::ConfigLoader (scenario.hpp) turns into real runtime objects.
//
// Grammar (line oriented; `#` starts a comment anywhere):
//
//   [kind]               # a section
//   [kind label]         # a labeled section (label may be quoted)
//   key = value          # entries belong to the preceding section
//
// Values are typed at parse time:
//
//   name  = "cam north"  # quoted string (\" \\ \n \t escapes)
//   shards = 4           # integer
//   floor  = 1.5         # double
//   live   = true        # boolean (true/false)
//   policy = block       # bare string (letters, digits, _ - . : /)
//   names  = [a, b, c]   # list of scalars (no nested lists)
//
// Every section, key, and value carries its 1-based line/column so
// validation errors anywhere up the stack (typed getters, schema checks,
// the loader) point at the offending spot in the file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace omg::config {

/// Error thrown by the parser, the typed getters, and the loader; the
/// message is prefixed "<source>:<line>:<col>: " so it points into the
/// offending config text.
class SpecError : public std::runtime_error {
 public:
  SpecError(const std::string& source, std::size_t line, std::size_t col,
            const std::string& message);

  /// 1-based line of the offending token (0 when unknown).
  std::size_t line() const { return line_; }
  /// 1-based column of the offending token (0 when unknown).
  std::size_t col() const { return col_; }

 private:
  std::size_t line_;
  std::size_t col_;
};

/// One parsed value with its source position and parse-time type.
struct SpecValue {
  /// Parse-time type of a value. Bare tokens that look like numbers or
  /// booleans are typed as such; anything else bare is a string.
  enum class Type { kString, kInt, kDouble, kBool, kList };

  Type type = Type::kString;
  std::string string_value;        ///< set for kString
  std::int64_t int_value = 0;      ///< set for kInt
  double double_value = 0.0;       ///< set for kDouble
  bool bool_value = false;         ///< set for kBool
  std::vector<SpecValue> list;     ///< set for kList (scalar elements only)

  std::size_t line = 0;  ///< 1-based source line
  std::size_t col = 0;   ///< 1-based source column

  /// Human-readable type name ("string", "int", ...), for error messages.
  static std::string_view TypeName(Type type);
};

/// One `key = value` entry of a section, in file order.
struct SpecEntry {
  std::string key;
  SpecValue value;
  std::size_t line = 0;
  std::size_t col = 0;
};

/// One `[kind]` / `[kind label]` section: an ordered flat map of typed
/// entries plus the machinery for unknown-key rejection.
///
/// The typed getters coerce where lossless (int -> double; a single scalar
/// -> a one-element list) and throw SpecError at the value's position
/// otherwise. Each getter marks its key *consumed*; after a consumer has
/// read everything it understands, RejectUnknownKeys() turns any leftover
/// key into an error at that key's position — so typos in config files
/// fail loudly instead of silently falling back to defaults.
class SpecSection {
 public:
  SpecSection() = default;
  SpecSection(std::string source, std::string kind, std::string label,
              std::size_t line, std::size_t col);

  /// Section kind — the bare word of the header (`[runtime]` -> "runtime").
  const std::string& kind() const { return kind_; }
  /// Section label (`[stream cam-north]` -> "cam-north"; "" when absent).
  const std::string& label() const { return label_; }
  /// Source name the section was parsed from (for error messages).
  const std::string& source() const { return source_; }
  /// 1-based header line.
  std::size_t line() const { return line_; }
  /// 1-based header column.
  std::size_t col() const { return col_; }

  /// Entries in file order.
  const std::vector<SpecEntry>& entries() const { return entries_; }
  /// All keys, in file order.
  std::vector<std::string> Keys() const;
  /// True when the key is present.
  bool Has(const std::string& key) const;
  /// The raw value of `key`, or nullptr when absent (does not consume).
  const SpecValue* Find(const std::string& key) const;

  // Typed getters with fallbacks; each throws SpecError on a type mismatch
  // and marks the key consumed when present.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  std::vector<std::string> GetStringList(
      const std::string& key, std::vector<std::string> fallback) const;

  // Required variants: throw SpecError at the section header when absent.
  std::string RequireString(const std::string& key) const;
  std::int64_t RequireInt(const std::string& key) const;

  /// GetInt + a >= 0 check, converted to size_t (queue sizes, counts...).
  std::size_t GetSize(const std::string& key, std::size_t fallback) const;

  /// Throws SpecError at the first key no getter has consumed. Call after
  /// reading every key a consumer understands.
  void RejectUnknownKeys() const;

  /// Marks a key consumed without reading it (for keys handled out of
  /// band, e.g. a schema validator that inspects raw values).
  void MarkConsumed(const std::string& key) const { consumed_.insert(key); }

  /// A SpecError positioned at this section's header.
  SpecError ErrorHere(const std::string& message) const;
  /// A SpecError positioned at `key`'s value (or the header when absent).
  SpecError ErrorAt(const std::string& key, const std::string& message) const;

  /// Appends an entry (parser-side; duplicate keys throw).
  void Append(SpecEntry entry);

 private:
  const SpecValue& Require(const std::string& key) const;

  std::string source_;
  std::string kind_;
  std::string label_;
  std::size_t line_ = 0;
  std::size_t col_ = 0;
  std::vector<SpecEntry> entries_;
  /// Keys read through the typed getters; mutable because reading a value
  /// is logically const. Copied sections track consumption independently.
  mutable std::set<std::string> consumed_;
};

/// A parsed spec file: the ordered list of its sections.
class SpecDocument {
 public:
  /// Parses `text`. `source` names the input in error messages.
  static SpecDocument Parse(std::string_view text,
                            std::string source = "<string>");
  /// Reads and parses a file; throws SpecError when unreadable.
  static SpecDocument ParseFile(const std::string& path);

  /// Source name given at parse time.
  const std::string& source() const { return source_; }
  /// Sections in file order.
  const std::vector<SpecSection>& sections() const { return sections_; }

  /// First section of `kind` with `label`, or nullptr.
  const SpecSection* Find(const std::string& kind,
                          const std::string& label = "") const;
  /// Find() or throw a SpecError naming the missing section.
  const SpecSection& Require(const std::string& kind,
                             const std::string& label = "") const;
  /// All sections of `kind`, in file order.
  std::vector<const SpecSection*> OfKind(const std::string& kind) const;

 private:
  std::string source_;
  std::vector<SpecSection> sections_;
};

}  // namespace omg::config
