// Typed scenario specs + the loader that turns them into real objects.
//
// A *scenario* file (configs/*.conf, format in spec.hpp and
// docs/CONFIGURATION.md) declares a complete serving workload:
//
//   [scenario]            name / description
//   [runtime]             ShardedMonitorService geometry
//   [admission]           full-queue policy + shed floor
//   [suite <domain>]      assertions = [<factory names>]   (one per domain)
//   [assertion <name>]    parameters for one factory-registered assertion
//   [stream <name>]       one traffic stream (domain, examples, seed, ...)
//   [loop]                the improvement loop's round/oracle settings
//   [observability]       trace rings, sampling, metrics exporter sinks
//   [replay]              trace record/replay defaults (replay/replay.hpp)
//   [server]              network ingestion front door (net::IngestServer)
//   [tenant <name>]       one tenant's token + admission quota
//
// ConfigLoader::Load validates the whole document — unknown sections,
// unknown keys, type mismatches, streams without a matching suite,
// unreferenced [assertion] sections — into a ScenarioSpec of plain typed
// structs, then the Make* helpers and BuildSuiteBundle instantiate the
// corresponding runtime/loop/suite objects. Everything throws SpecError
// positioned in the config text.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bandit/strategy.hpp"
#include "config/assertion_factory.hpp"
#include "config/spec.hpp"
#include "loop/improvement_loop.hpp"
#include "runtime/admission.hpp"
#include "runtime/suite_bundle.hpp"

namespace omg::config {

/// One assertion a suite instantiates: its factory name, the (possibly
/// empty) parameter section, and the name's position for error reporting.
struct AssertionSpec {
  std::string name;
  SpecSection params;  ///< copy of [assertion <name>]; empty when absent
  std::string source;
  std::size_t line = 0;
  std::size_t col = 0;
};

/// One domain's declarative suite: the ordered assertion list.
struct SuiteSpec {
  std::string domain;  ///< the [suite <domain>] label
  std::vector<AssertionSpec> assertions;
};

/// [runtime] — ShardedMonitorService geometry (see ShardedRuntimeConfig).
struct RuntimeSpec {
  std::size_t shards = 2;
  std::size_t window = 48;
  std::size_t settle_lag = 8;
  std::size_t queue_capacity = 1024;
  bool stealing = true;  ///< idle shard workers steal from the deepest peer
};

/// [admission] — what a full shard queue does with an incoming batch.
struct AdmissionSpec {
  runtime::AdmissionPolicy policy = runtime::AdmissionPolicy::kBlock;
  double shed_floor = 1.0;
  double target_p99_ms = 50.0;  ///< latency_target policy's SLO
};

/// [observability] — tracing and metrics export. `trace` defaults to
/// false: the tracer costs a few percent of throughput at sample_every=1,
/// so scenarios opt in (or the harness forces it with --trace).
struct ObservabilitySpec {
  /// Attach a Tracer to the monitor (per-shard trace rings + control lane).
  bool trace = false;
  /// Events each lane retains before the oldest are evicted.
  std::size_t ring_capacity = 4096;
  /// Trace every Nth batch per shard lane (1 = every batch).
  std::size_t sample_every = 1;
  /// Chrome trace JSON output path; empty = harness picks one under the
  /// --trace directory.
  std::string trace_path;
  /// Background MetricsExporter cadence.
  std::size_t export_period_ms = 200;
  /// Snapshot sinks; empty disables that format.
  std::string metrics_jsonl_path;
  std::string metrics_prometheus_path;

  /// Whether any exporter sink is configured.
  bool ExporterEnabled() const {
    return !metrics_jsonl_path.empty() || !metrics_prometheus_path.empty();
  }
};

/// [loop] — the improvement loop's round/oracle settings. `enabled`
/// defaults to false: most scenarios only monitor.
struct LoopSpec {
  bool enabled = false;
  /// Selection strategy: "bal", "bal-uncertainty", "uncertainty", "random".
  std::string strategy = "bal";
  /// Label source: "human" (ground truth) or "mixed" (human + consistency
  /// weak labels at `weak_weight`).
  std::string oracle = "human";
  std::size_t budget = 16;
  std::size_t min_candidates = 1;
  /// Traffic waves the harness serves, one loop round after each.
  std::size_t rounds = 4;
  std::size_t store_capacity = 512;
  double weak_weight = 0.25;
  /// Fine-tune epochs; 0 keeps the domain's default.
  std::size_t retrain_epochs = 0;
  std::uint64_t seed = 42;
};

/// [stream <name>] — one traffic stream of a scenario.
struct StreamSpec {
  std::string name;
  std::string domain;
  std::size_t examples = 240;
  std::size_t batch = 32;
  std::uint64_t seed = 42;
  /// Producer-side severity hint passed with every batch (what
  /// shed_below_severity admission compares against the shed floor).
  double severity_hint = 0.0;
  /// Wire-binding restriction: non-empty names the only [tenant <name>]
  /// allowed to bind this stream over the network. Empty = any tenant.
  std::string tenant;
};

/// [replay] — defaults for trace recording and replay (replay/replay.hpp).
/// Absent = the built-in defaults; the harness's --record/--replay flags
/// override trace_path, and --speed overrides speed.
struct ReplaySpec {
  /// Default trace file for --record/--replay given without a path.
  std::string trace_path;
  /// Replay delta divisor (1 = recorded pacing, 0 = unpaced).
  double speed = 1.0;
  /// Synthetic offered rate the recorder encodes into inter-arrival
  /// deltas, examples per second.
  double record_eps = 5000.0;
};

/// [server] — the net::IngestServer front door. Absent = no server. The
/// harness only listens under --serve (so running every shipped config in
/// a batch never blocks waiting for network clients); `enabled = false`
/// keeps a [server] section around without serving it.
struct ServerSpec {
  bool enabled = false;  ///< true when a [server] section is present
  /// Unix-domain socket path (empty = no UDS listener).
  std::string uds_path;
  /// Also listen on loopback TCP.
  bool tcp = false;
  /// TCP port (0 = ephemeral).
  std::size_t tcp_port = 0;
  std::size_t handler_threads = 2;
  /// Largest accepted frame payload, bytes.
  std::size_t max_frame_bytes = 4u << 20;
};

/// [tenant <name>] — one tenant of the server's roster (see
/// net::TenantOptions for the semantics of each field).
struct TenantSpec {
  std::string name;  ///< the [tenant <name>] label
  std::string token;
  /// Admission quota, examples per second (0 = unlimited).
  double quota_eps = 0.0;
  /// Token-bucket burst, examples (0 = one second of quota).
  double burst = 0.0;
  /// Hints >= this floor bypass an exhausted quota.
  double shed_floor = 0.0;
  bool has_shed_floor = false;
};

/// A fully validated scenario.
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::string source;  ///< file/source the scenario was parsed from
  RuntimeSpec runtime;
  AdmissionSpec admission;
  ObservabilitySpec observability;
  LoopSpec loop;
  ReplaySpec replay;
  ServerSpec server;
  std::vector<TenantSpec> tenants;  ///< file order; empty = open server
  std::vector<SuiteSpec> suites;    ///< one per domain, file order
  std::vector<StreamSpec> streams;  ///< file order

  /// The suite declared for `domain`; nullptr when absent.
  const SuiteSpec* SuiteFor(const std::string& domain) const;
  /// Distinct stream domains, in first-appearance order.
  std::vector<std::string> Domains() const;
};

/// Parses + validates scenario documents and instantiates the runtime and
/// loop objects they describe.
class ConfigLoader {
 public:
  /// Validates `doc` into a ScenarioSpec (see the file comment for what is
  /// checked). Throws SpecError positioned in the document.
  static ScenarioSpec Load(const SpecDocument& doc);

  /// Convenience: ParseFile + Load.
  static ScenarioSpec LoadFile(const std::string& path);

  /// The ShardedRuntimeConfig a scenario's [runtime]+[admission] describe
  /// (already Validate()d by Load).
  static runtime::ShardedRuntimeConfig MakeRuntimeConfig(
      const ScenarioSpec& scenario);

  /// The ImprovementLoopConfig a scenario's [loop] describes.
  /// `assertion_names` must be the monitored suite's emitted names (store
  /// column order); `finetune_sgd` is the domain's fine-tune recipe, whose
  /// epoch count `loop.retrain_epochs` overrides when nonzero.
  static loop::ImprovementLoopConfig MakeLoopConfig(
      const LoopSpec& loop, std::vector<std::string> assertion_names,
      nn::SgdConfig finetune_sgd);

  /// Builds the selection strategy `LoopSpec::strategy` names; throws
  /// CheckError on an unknown name (Load already rejects those).
  static std::unique_ptr<bandit::SelectionStrategy> MakeStrategy(
      const std::string& name);
};

/// Instantiates one stream's SuiteBundle from a declarative suite: builds
/// every listed assertion through the factory (schema-validated) and folds
/// the builders' invalidation hooks into the bundle.
template <typename Example>
runtime::SuiteBundle<Example> BuildSuiteBundle(
    const AssertionFactory<Example>& factory, const SuiteSpec& spec) {
  auto suite = std::make_shared<core::AssertionSuite<Example>>();
  auto invalidators = std::make_shared<std::vector<std::function<void()>>>();
  typename AssertionFactory<Example>::BuildContext context{*suite,
                                                           *invalidators};
  for (const AssertionSpec& assertion : spec.assertions) {
    if (!factory.Has(assertion.name)) {
      throw SpecError(assertion.source, assertion.line, assertion.col,
                      "unknown assertion '" + assertion.name +
                          "' for domain '" + spec.domain +
                          "' (registered: " + factory.JoinedNames() + ")");
    }
    factory.Build(assertion.name, assertion.params, context);
  }
  runtime::SuiteBundle<Example> bundle;
  bundle.suite = std::move(suite);
  if (!invalidators->empty()) {
    bundle.invalidate = [invalidators] {
      for (const auto& invalidate : *invalidators) invalidate();
    };
  }
  return bundle;
}

/// A SuiteFactory (one bundle per registered stream) over a declarative
/// suite. The factory object must outlive the returned closure.
template <typename Example>
runtime::SuiteFactory<Example> MakeSuiteFactory(
    const AssertionFactory<Example>& factory, SuiteSpec spec) {
  return [&factory, spec = std::move(spec)] {
    return BuildSuiteBundle(factory, spec);
  };
}

}  // namespace omg::config
