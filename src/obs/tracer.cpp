#include "obs/tracer.hpp"

#include <utility>

#include "common/check.hpp"
#include "obs/clock.hpp"

namespace omg::obs {

std::size_t TraceSnapshot::TotalEvents() const {
  std::size_t total = 0;
  for (const LaneTrace& lane : lanes) total += lane.events.size();
  return total;
}

std::size_t TraceSnapshot::TotalEvicted() const {
  std::size_t total = 0;
  for (const LaneTrace& lane : lanes) total += lane.evicted;
  return total;
}

Tracer::Tracer(TracerOptions options)
    : options_(options),
      enabled_(options.enabled),
      sample_counters_(options.shard_lanes),
      control_ring_(options.ring_capacity) {
  common::Check(options_.shard_lanes >= 1, "tracer needs at least one lane");
  common::Check(options_.sample_every >= 1,
                "trace sampling period must be at least 1");
  shard_rings_.reserve(options_.shard_lanes);
  for (std::size_t i = 0; i < options_.shard_lanes; ++i) {
    shard_rings_.push_back(std::make_unique<TraceRing>(options_.ring_capacity));
  }
}

bool Tracer::SampleBatch(std::size_t shard) {
  if (!enabled()) return false;
  common::CheckIndex(static_cast<std::ptrdiff_t>(shard), 0,
                     static_cast<std::ptrdiff_t>(sample_counters_.size()),
                     "tracer shard lane");
  return (sample_counters_[shard].count++ % options_.sample_every) == 0;
}

void Tracer::EmitShard(std::size_t shard, TraceEventKind kind,
                       TracePhase phase, std::uint64_t stream_id,
                       std::uint64_t arg0, std::uint64_t arg1) {
  if (!enabled()) return;
  common::CheckIndex(static_cast<std::ptrdiff_t>(shard), 0,
                     static_cast<std::ptrdiff_t>(shard_rings_.size()),
                     "tracer shard lane");
  shard_rings_[shard]->Push(
      {Clock::NowNs(), kind, phase, stream_id, arg0, arg1});
}

void Tracer::EmitControl(TraceEventKind kind, TracePhase phase,
                         std::uint64_t stream_id, std::uint64_t arg0,
                         std::uint64_t arg1) {
  if (!enabled()) return;
  MutexLock lock(control_mutex_);
  // Timestamp under the lock so control-lane events stay in timestamp
  // order (the ring is SPSC; the mutex makes "one producer" true).
  control_ring_.Push({Clock::NowNs(), kind, phase, stream_id, arg0, arg1});
}

TraceSnapshot Tracer::Drain() {
  MutexLock lock(drain_mutex_);
  TraceSnapshot snapshot;
  snapshot.lanes.reserve(shard_rings_.size() + 1);
  for (std::size_t i = 0; i < shard_rings_.size(); ++i) {
    LaneTrace lane;
    lane.name = "shard-" + std::to_string(i);
    const TraceRing::DrainStats stats = shard_rings_[i]->Drain(lane.events);
    lane.evicted = stats.evicted;
    lane.recorded = stats.recorded;
    snapshot.lanes.push_back(std::move(lane));
  }
  LaneTrace control;
  control.name = "control";
  const TraceRing::DrainStats stats = control_ring_.Drain(control.events);
  control.evicted = stats.evicted;
  control.recorded = stats.recorded;
  snapshot.lanes.push_back(std::move(control));
  return snapshot;
}

}  // namespace omg::obs
