#include "obs/clock.hpp"

#include <chrono>

namespace omg::obs {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::atomic<Clock::NowFn> Clock::source_{nullptr};

std::uint64_t Clock::NowNs() {
  const NowFn source = source_.load(std::memory_order_relaxed);
  return source != nullptr ? source() : SteadyNowNs();
}

void Clock::InstallSource(NowFn source) {
  source_.store(source, std::memory_order_relaxed);
}

}  // namespace omg::obs
