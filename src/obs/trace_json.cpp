#include "obs/trace_json.hpp"

#include <cstdio>
#include <ostream>

#include "runtime/event_sink.hpp"  // runtime::JsonEscape

namespace omg::obs {

namespace {

/// Chrome phase letter for a TracePhase.
char PhaseLetter(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return 'B';
    case TracePhase::kEnd:
      return 'E';
    case TracePhase::kInstant:
      break;
  }
  return 'i';
}

/// Names for (arg0, arg1) per kind; empty = omit the arg.
struct ArgNames {
  const char* arg0;
  const char* arg1;
};

ArgNames ArgNamesOf(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kBatchDequeue:
      return {"examples", "queue_depth"};
    case TraceEventKind::kEvaluate:
      return {"examples", "events"};
    case TraceEventKind::kFlush:
      return {"", ""};
    case TraceEventKind::kAdmissionShed:
    case TraceEventKind::kAdmissionDrop:
      return {"examples", "shard"};
    case TraceEventKind::kModelHotSwap:
      return {"version", ""};
    case TraceEventKind::kRound:
      return {"round", "value"};
    case TraceEventKind::kRetrain:
      return {"rows", "version"};
    case TraceEventKind::kConnOpen:
      return {"transport", "conn"};
    case TraceEventKind::kConnClose:
      return {"conn", "frames"};
    case TraceEventKind::kFrameDecode:
      return {"examples", "bytes"};
    case TraceEventKind::kWireReject:
      return {"examples", "code"};
  }
  return {"", ""};
}

/// Writes ts_ns as microseconds with the 3-digit nanosecond remainder.
/// Integer arithmetic, not operator<<(double): production timestamps are
/// steady-clock ns since boot (~1e14), which default stream precision
/// (6 significant digits) would quantize to >= 10ms, collapsing every
/// span in a run to a handful of identical ts values.
void WriteTimestampMicros(std::ostream& out, std::uint64_t ts_ns) {
  char frac[8];
  std::snprintf(frac, sizeof(frac), ".%03u",
                static_cast<unsigned>(ts_ns % 1000));
  out << ts_ns / 1000 << frac;
}

/// Writes one trace event. With `async_id` set, a Begin/End event is
/// emitted as an async phase ('b'/'e') carrying that id — used for
/// control-lane spans, which may overlap within one kind.
void WriteEvent(const TraceEvent& event, std::size_t tid, std::ostream& out,
                const std::vector<std::string>& stream_labels,
                const std::uint64_t* async_id = nullptr) {
  const bool async =
      async_id != nullptr && event.phase != TracePhase::kInstant;
  char phase = PhaseLetter(event.phase);
  if (async) phase = event.phase == TracePhase::kBegin ? 'b' : 'e';
  out << "{\"name\":\"" << TraceEventKindName(event.kind)
      << "\",\"ph\":\"" << phase << "\",\"pid\":1,\"tid\":" << tid
      << ",\"ts\":";
  WriteTimestampMicros(out, event.ts_ns);
  if (async) out << ",\"cat\":\"control\",\"id\":\"" << *async_id << "\"";
  if (event.phase == TracePhase::kInstant) out << ",\"s\":\"t\"";
  out << ",\"args\":{";
  bool first = true;
  const auto arg = [&](const char* name, std::uint64_t value) {
    if (name == nullptr || *name == '\0') return;
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << value;
  };
  if (event.stream_id != TraceEvent::kNoStream) {
    if (event.stream_id < stream_labels.size() &&
        !stream_labels[event.stream_id].empty()) {
      out << "\"stream\":\""
          << runtime::JsonEscape(stream_labels[event.stream_id]) << "\"";
      first = false;
    } else {
      arg("stream_id", event.stream_id);
    }
  }
  const ArgNames names = ArgNamesOf(event.kind);
  arg(names.arg0, event.arg0);
  arg(names.arg1, event.arg1);
  out << "}}";
}

}  // namespace

void WriteChromeTrace(const TraceSnapshot& snapshot, std::ostream& out,
                      const std::vector<std::string>& stream_labels) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto thread_name = [&](std::size_t tid, const std::string& name) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << runtime::JsonEscape(name) << "\"}}";
  };
  for (std::size_t index = 0; index < snapshot.lanes.size(); ++index) {
    const LaneTrace& lane = snapshot.lanes[index];
    if (lane.name != "control") {
      thread_name(index, lane.name);
      for (const TraceEvent& event : lane.events) {
        out << ",\n";
        WriteEvent(event, index, out, stream_labels);
      }
      continue;
    }
    // The control lane aggregates emitters from many threads (admission on
    // producer threads, Flush callers, the improvement loop's scheduler and
    // retrain worker); on one Chrome track their concurrent spans would
    // mis-nest, so instant kinds each get their own "control:<kind>" track
    // (kind tids start past the lane indices so they never collide), and
    // span kinds become async 'b'/'e' events — even within one kind two
    // spans can overlap (EmitControl allows concurrent Flush callers), and
    // async ids let Perfetto lay overlapping spans on parallel rows
    // instead of stacking them B/B/E/E on a thread track. Ids pair FIFO:
    // the oldest open begin of a kind is closed first, so concurrent
    // same-kind spans stay well-formed (their durations may swap, their
    // extents cannot mis-nest).
    const std::size_t base = snapshot.lanes.size();
    bool present[kTraceEventKinds] = {};
    for (const TraceEvent& event : lane.events) {
      present[static_cast<std::size_t>(event.kind)] = true;
    }
    for (std::size_t kind = 0; kind < kTraceEventKinds; ++kind) {
      if (!present[kind]) continue;
      thread_name(base + kind,
                  "control:" + std::string(TraceEventKindName(
                                   static_cast<TraceEventKind>(kind))));
    }
    std::uint64_t next_async_id = 1;
    std::vector<std::uint64_t> open_ids[kTraceEventKinds];
    for (const TraceEvent& event : lane.events) {
      out << ",\n";
      const std::size_t tid = base + static_cast<std::size_t>(event.kind);
      if (event.phase == TracePhase::kInstant) {
        WriteEvent(event, tid, out, stream_labels);
        continue;
      }
      std::vector<std::uint64_t>& open =
          open_ids[static_cast<std::size_t>(event.kind)];
      std::uint64_t id;
      if (event.phase == TracePhase::kBegin) {
        id = next_async_id++;
        open.push_back(id);
      } else if (!open.empty()) {
        id = open.front();
        open.erase(open.begin());
      } else {
        // The matching begin was evicted from the ring; a fresh id keeps
        // the orphan end from closing some other span.
        id = next_async_id++;
      }
      WriteEvent(event, tid, out, stream_labels, &id);
    }
  }
  out << "]}\n";
}

}  // namespace omg::obs
