#include "obs/trace_json.hpp"

#include <ostream>

#include "runtime/event_sink.hpp"  // runtime::JsonEscape

namespace omg::obs {

namespace {

/// Chrome phase letter for a TracePhase.
char PhaseLetter(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return 'B';
    case TracePhase::kEnd:
      return 'E';
    case TracePhase::kInstant:
      break;
  }
  return 'i';
}

/// Names for (arg0, arg1) per kind; empty = omit the arg.
struct ArgNames {
  const char* arg0;
  const char* arg1;
};

ArgNames ArgNamesOf(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kBatchDequeue:
      return {"examples", "queue_depth"};
    case TraceEventKind::kEvaluate:
      return {"examples", "events"};
    case TraceEventKind::kFlush:
      return {"", ""};
    case TraceEventKind::kAdmissionShed:
    case TraceEventKind::kAdmissionDrop:
      return {"examples", "shard"};
    case TraceEventKind::kModelHotSwap:
      return {"version", ""};
    case TraceEventKind::kRound:
      return {"round", "value"};
    case TraceEventKind::kRetrain:
      return {"rows", "version"};
  }
  return {"", ""};
}

void WriteEvent(const TraceEvent& event, std::size_t tid, std::ostream& out,
                const std::vector<std::string>& stream_labels) {
  out << "{\"name\":\"" << TraceEventKindName(event.kind)
      << "\",\"ph\":\"" << PhaseLetter(event.phase) << "\",\"pid\":1,\"tid\":"
      << tid << ",\"ts\":" << static_cast<double>(event.ts_ns) / 1000.0;
  if (event.phase == TracePhase::kInstant) out << ",\"s\":\"t\"";
  out << ",\"args\":{";
  bool first = true;
  const auto arg = [&](const char* name, std::uint64_t value) {
    if (name == nullptr || *name == '\0') return;
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << value;
  };
  if (event.stream_id != TraceEvent::kNoStream) {
    if (event.stream_id < stream_labels.size() &&
        !stream_labels[event.stream_id].empty()) {
      out << "\"stream\":\""
          << runtime::JsonEscape(stream_labels[event.stream_id]) << "\"";
      first = false;
    } else {
      arg("stream_id", event.stream_id);
    }
  }
  const ArgNames names = ArgNamesOf(event.kind);
  arg(names.arg0, event.arg0);
  arg(names.arg1, event.arg1);
  out << "}}";
}

}  // namespace

void WriteChromeTrace(const TraceSnapshot& snapshot, std::ostream& out,
                      const std::vector<std::string>& stream_labels) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto thread_name = [&](std::size_t tid, const std::string& name) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << runtime::JsonEscape(name) << "\"}}";
  };
  for (std::size_t index = 0; index < snapshot.lanes.size(); ++index) {
    const LaneTrace& lane = snapshot.lanes[index];
    if (lane.name != "control") {
      thread_name(index, lane.name);
      for (const TraceEvent& event : lane.events) {
        out << ",\n";
        WriteEvent(event, index, out, stream_labels);
      }
      continue;
    }
    // The control lane aggregates emitters from many threads (admission on
    // producer threads, Flush callers, the improvement loop's scheduler and
    // retrain worker); on one Chrome track their concurrent spans would
    // mis-nest, so each event kind gets its own "control:<kind>" track.
    // Kind tids start past the lane indices so they never collide.
    const std::size_t base = snapshot.lanes.size();
    bool present[kTraceEventKinds] = {};
    for (const TraceEvent& event : lane.events) {
      present[static_cast<std::size_t>(event.kind)] = true;
    }
    for (std::size_t kind = 0; kind < kTraceEventKinds; ++kind) {
      if (!present[kind]) continue;
      thread_name(base + kind,
                  "control:" + std::string(TraceEventKindName(
                                   static_cast<TraceEventKind>(kind))));
    }
    for (const TraceEvent& event : lane.events) {
      out << ",\n";
      WriteEvent(event, base + static_cast<std::size_t>(event.kind), out,
                 stream_labels);
    }
  }
  out << "]}\n";
}

}  // namespace omg::obs
