// obs::Clock — the single time source for latency and trace timestamps.
//
// Every hot-path timestamp in the serving runtime (queue-wait accounting,
// observe-to-flag latency, trace-event times) reads this shim instead of
// calling a std::chrono clock directly. Two reasons:
//
//   * Monotonicity. Wall clocks (system_clock) step under NTP; a latency
//     sample taken across a step can go negative. The default source is
//     steady_clock, so durations are always well-formed.
//   * Testability. Tests install a fake source (InstallSource) and drive
//     time deterministically — occupancy arithmetic and exporter output
//     become exact assertions instead of sleeps and tolerances.
//
// Timestamps are nanoseconds since the steady clock's (arbitrary) epoch:
// meaningful for differences within one process, not across processes or
// reboots.
#pragma once

#include <atomic>
#include <cstdint>

namespace omg::obs {

/// Process-wide monotonic nanosecond clock with an injectable source.
class Clock {
 public:
  /// A replacement time source: returns nanoseconds, must be monotonic
  /// non-decreasing and callable from any thread.
  using NowFn = std::uint64_t (*)();

  /// Nanoseconds now, from the installed source (steady_clock by default).
  static std::uint64_t NowNs();

  /// Converts a nanosecond count (or difference) to seconds.
  static double ToSeconds(std::uint64_t ns) {
    return static_cast<double>(ns) * 1e-9;
  }

  /// `later - earlier`, clamped to 0 — durations never underflow even if a
  /// test's fake source is driven carelessly.
  static std::uint64_t ElapsedNs(std::uint64_t earlier, std::uint64_t later) {
    return later > earlier ? later - earlier : 0;
  }

  /// Installs `source` as the process-wide time source; nullptr restores
  /// steady_clock. Intended for tests only — install before the threads
  /// under test start, restore after they join.
  static void InstallSource(NowFn source);

 private:
  static std::atomic<NowFn> source_;
};

}  // namespace omg::obs
