// Lock-free fixed-capacity SPSC trace ring with overwrite-oldest semantics.
//
// One ring per trace lane: exactly one producer (the shard worker) pushes
// encoded TraceEvents; a drainer copies them out on demand. The design goal
// is a push path with no locks, no allocation, and no waiting — tracing a
// batch must never stall scoring — so when the ring is full the producer
// overwrites the oldest slot and the drainer counts the lost event as
// *evicted* instead of the producer blocking.
//
// Each slot is a miniature seqlock: an atomic version word plus the event's
// payload words as relaxed atomics. The producer marks the slot busy
// (version = 2*seq+1), writes the payload, then publishes (version =
// 2*seq+2); the drainer reads the version, copies the payload, and
// re-validates the version — a mismatch means the producer lapped it
// mid-copy and the slot is counted evicted. Payload words are atomics, so
// the concurrent overwrite is a race only in the benign, counted sense —
// TSan-clean by construction.
//
// Concurrency contract: one producer thread, and at most one drainer at a
// time (the Tracer serialises drains). Producer and drainer may run
// concurrently.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace_event.hpp"

namespace omg::obs {

/// See the file comment. Capacity is rounded up to a power of two (min 2).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Slot count after rounding.
  std::size_t capacity() const { return slots_.size(); }

  /// Events ever pushed (monotonic; drained + evicted + pending == recorded).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Records `event`, overwriting the oldest slot when full. Producer
  /// thread only. Never blocks, never allocates.
  void Push(const TraceEvent& event);

  /// Outcome of one Drain call.
  struct DrainStats {
    /// Events appended to `out` by this call.
    std::size_t drained = 0;
    /// Events lost since the previous drain (overwritten before reading).
    std::size_t evicted = 0;
    /// Total events ever pushed, as of this drain.
    std::uint64_t recorded = 0;
  };

  /// Copies every event pushed since the last drain (oldest first) into
  /// `out`, skipping and counting evicted ones. At most one drainer at a
  /// time; safe against a concurrently pushing producer.
  DrainStats Drain(std::vector<TraceEvent>& out);

 private:
  /// One seqlock slot. version == 2*seq+1: producer writing event `seq`;
  /// version == 2*seq+2: event `seq` complete; 0: never written.
  struct Slot {
    std::atomic<std::uint64_t> version{0};
    std::array<std::atomic<std::uint64_t>, TraceEvent::kWords> words{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_;
  /// Producer-owned push count (== head_ between pushes).
  std::uint64_t next_seq_ = 0;
  /// Published push count: events [0, head_) are complete.
  std::atomic<std::uint64_t> head_{0};
  /// Drain cursor: events [0, cursor_) were drained or counted evicted.
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace omg::obs
