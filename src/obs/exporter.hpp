// MetricsExporter — periodic snapshot export to JSON-lines and Prometheus.
//
// The exporter owns a background thread that snapshots a metrics source
// (any callable returning runtime::MetricsSnapshot — in practice
// Monitor::Metrics or ShardedMonitorService::Metrics) every `period` and
// renders it to up to two file sinks:
//
//   * JSON-lines (`jsonl_path`): one self-contained JSON object appended
//     per export — a time series a notebook or the planned cluster router
//     can aggregate across processes.
//   * Prometheus text exposition (`prometheus_path`): the file is
//     rewritten atomically-enough (truncate + write) per export, matching
//     how node_exporter's textfile collector consumes metrics.
//
// Domain-qualified assertion names ("video/flicker") and stream names are
// label *values*, never metric names, so the '/' qualifier survives both
// formats verbatim (escaped per format rules). The free Write* functions
// do the rendering and are the unit-tested surface; the exporter is the
// scheduling shell around them. Stop() (and the destructor) performs one
// final export so short runs still produce output.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "common/mutex.hpp"
#include "runtime/metrics.hpp"

namespace omg::obs {

/// Exporter schedule and sinks; empty paths disable that sink.
struct MetricsExporterOptions {
  /// Snapshot cadence of the background thread.
  std::chrono::milliseconds period{1000};
  /// JSON-lines sink (appended; one object per export). "" = off.
  std::string jsonl_path;
  /// Prometheus text-exposition sink (rewritten per export). "" = off.
  std::string prometheus_path;
};

/// Renders `snapshot` in Prometheus text exposition format (with HELP/TYPE
/// headers). Qualified assertion/stream names appear as escaped label
/// values.
void WritePrometheusText(const runtime::MetricsSnapshot& snapshot,
                         std::ostream& out);

/// Renders `snapshot` as one JSON object line, stamped `ts_ns` (obs::Clock
/// time).
void WriteMetricsJsonLine(const runtime::MetricsSnapshot& snapshot,
                          std::uint64_t ts_ns, std::ostream& out);

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string PrometheusEscapeLabel(std::string_view value);

/// See the file comment. Start() is not implicit — construct, then Start().
class MetricsExporter {
 public:
  using SnapshotFn = std::function<runtime::MetricsSnapshot()>;

  /// `snapshot` must be callable from the exporter thread for the
  /// exporter's whole lifetime (it is invoked once more during Stop()).
  MetricsExporter(MetricsExporterOptions options, SnapshotFn snapshot);

  /// Stops the thread (final export included).
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Spawns the background thread; idempotent.
  void Start();

  /// Joins the thread after one final export; idempotent and safe to call
  /// from several threads at once (one caller joins and writes the final
  /// export, the rest return immediately). Exports written so far stay on
  /// disk.
  void Stop();

  /// Performs one synchronous export (also what the background thread
  /// calls). Thread-safe. Returns the number of exports performed so far.
  std::size_t ExportOnce();

  const MetricsExporterOptions& options() const { return options_; }

 private:
  /// Thread body; `stop` is the run's own stop token (see stop_).
  void Run(std::shared_ptr<bool> stop);

  MetricsExporterOptions options_;
  SnapshotFn snapshot_;

  Mutex io_mutex_;  ///< serialises ExportOnce bodies
  std::size_t exports_ OMG_GUARDED_BY(io_mutex_) = 0;

  Mutex run_mutex_;  ///< guards stop_/thread lifecycle
  CondVar wake_;
  /// Stop token of the current run, one per Start() (the thread holds its
  /// own reference and re-reads the flag under run_mutex_). Per-run tokens
  /// keep a Start() racing a Stop() from resurrecting the claimed thread.
  std::shared_ptr<bool> stop_ OMG_GUARDED_BY(run_mutex_)
      OMG_PT_GUARDED_BY(run_mutex_);
  std::thread thread_ OMG_GUARDED_BY(run_mutex_);
};

}  // namespace omg::obs
