#include "obs/exporter.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "common/check.hpp"
#include "obs/clock.hpp"
#include "runtime/event_sink.hpp"  // runtime::JsonEscape

namespace omg::obs {

namespace {

/// Shortest round-trippable rendering of a double (Prometheus and JSON both
/// accept it).
std::string Num(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

void Header(std::ostream& out, const char* name, const char* type,
            const char* help) {
  out << "# HELP " << name << " " << help << "\n# TYPE " << name << " "
      << type << "\n";
}

/// Splits a "tenant/<id>/<outcome>" named-counter key (the net layer's
/// per-tenant accounting convention); false for any other shape.
bool SplitTenantKey(const std::string& key, std::string_view& tenant,
                    std::string_view& outcome) {
  constexpr std::string_view kPrefix = "tenant/";
  if (key.size() <= kPrefix.size() || key.compare(0, kPrefix.size(), kPrefix)) {
    return false;
  }
  const std::size_t slash = key.find('/', kPrefix.size());
  if (slash == std::string::npos || slash == kPrefix.size() ||
      slash + 1 == key.size()) {
    return false;
  }
  const std::string_view view = key;
  tenant = view.substr(kPrefix.size(), slash - kPrefix.size());
  outcome = view.substr(slash + 1);
  return outcome.find('/') == std::string_view::npos;
}

}  // namespace

std::string PrometheusEscapeLabel(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      default:
        escaped += c;
    }
  }
  return escaped;
}

void WritePrometheusText(const runtime::MetricsSnapshot& snapshot,
                         std::ostream& out) {
  Header(out, "omg_examples_seen_total", "counter",
         "Examples scored across all streams.");
  out << "omg_examples_seen_total " << snapshot.examples_seen << "\n";
  Header(out, "omg_events_total", "counter",
         "Assertion events emitted across all streams.");
  out << "omg_events_total " << snapshot.events << "\n";

  Header(out, "omg_assertion_fires_total", "counter",
         "Events per qualified assertion.");
  for (const auto& [name, slot] : snapshot.assertions) {
    out << "omg_assertion_fires_total{assertion=\""
        << PrometheusEscapeLabel(name) << "\"} " << slot.fires << "\n";
  }
  Header(out, "omg_assertion_max_severity", "gauge",
         "Largest severity per qualified assertion.");
  for (const auto& [name, slot] : snapshot.assertions) {
    out << "omg_assertion_max_severity{assertion=\""
        << PrometheusEscapeLabel(name) << "\"} " << Num(slot.max_severity)
        << "\n";
  }

  Header(out, "omg_stream_examples_total", "counter",
         "Examples scored per stream.");
  for (const runtime::StreamMetrics& stream : snapshot.streams) {
    if (stream.stream.empty()) continue;
    out << "omg_stream_examples_total{stream=\""
        << PrometheusEscapeLabel(stream.stream) << "\"} "
        << stream.examples_seen << "\n";
  }
  Header(out, "omg_stream_events_total", "counter",
         "Assertion events per stream.");
  for (const runtime::StreamMetrics& stream : snapshot.streams) {
    if (stream.stream.empty()) continue;
    out << "omg_stream_events_total{stream=\""
        << PrometheusEscapeLabel(stream.stream) << "\"} " << stream.events
        << "\n";
  }

  const auto shard_counter = [&](const char* name, const char* help,
                                 auto value_of) {
    Header(out, name, "counter", help);
    for (const runtime::ShardMetrics& shard : snapshot.shards) {
      out << name << "{shard=\"" << shard.shard << "\"} " << value_of(shard)
          << "\n";
    }
  };
  shard_counter("omg_shard_batches_total", "Batches scored per shard.",
                [](const auto& s) { return s.batches; });
  shard_counter("omg_shard_examples_total", "Examples scored per shard.",
                [](const auto& s) { return s.examples; });
  shard_counter("omg_shard_shed_examples_total",
                "Examples shed at admission per shard.",
                [](const auto& s) { return s.shed_examples; });
  shard_counter("omg_shard_dropped_examples_total",
                "Examples dropped from the queue per shard.",
                [](const auto& s) { return s.dropped_examples; });
  shard_counter("omg_shard_errored_examples_total",
                "Examples in batches whose scoring threw, per shard.",
                [](const auto& s) { return s.errored_examples; });

  Header(out, "omg_shard_queue_depth", "gauge",
         "Examples queued at snapshot time per shard.");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    out << "omg_shard_queue_depth{shard=\"" << shard.shard << "\"} "
        << shard.queue_depth << "\n";
  }
  Header(out, "omg_shard_queue_depth_peak", "gauge",
         "Largest queue depth ever observed per shard.");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    out << "omg_shard_queue_depth_peak{shard=\"" << shard.shard << "\"} "
        << shard.queue_depth_peak << "\n";
  }

  Header(out, "omg_shard_busy_seconds_total", "counter",
         "Worker time spent scoring batches per shard.");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    out << "omg_shard_busy_seconds_total{shard=\"" << shard.shard << "\"} "
        << Num(Clock::ToSeconds(shard.busy_ns)) << "\n";
  }
  Header(out, "omg_shard_idle_seconds_total", "counter",
         "Worker time spent waiting for work per shard.");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    out << "omg_shard_idle_seconds_total{shard=\"" << shard.shard << "\"} "
        << Num(Clock::ToSeconds(shard.idle_ns)) << "\n";
  }
  Header(out, "omg_shard_steal_seconds_total", "counter",
         "Worker time spent scoring batches stolen from other shards "
         "(thief-side).");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    out << "omg_shard_steal_seconds_total{shard=\"" << shard.shard << "\"} "
        << Num(Clock::ToSeconds(shard.steal_ns)) << "\n";
  }
  Header(out, "omg_shard_stolen_batches_total", "counter",
         "Batches stolen from this shard's queue by idle neighbours "
         "(victim-side).");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    out << "omg_shard_stolen_batches_total{shard=\"" << shard.shard << "\"} "
        << shard.stolen_batches << "\n";
  }
  Header(out, "omg_shard_stolen_examples_total", "counter",
         "Examples stolen from this shard's queue by idle neighbours "
         "(victim-side).");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    out << "omg_shard_stolen_examples_total{shard=\"" << shard.shard
        << "\"} " << shard.stolen_examples << "\n";
  }
  Header(out, "omg_shard_queue_wait_seconds_total", "counter",
         "Summed enqueue-to-dequeue wait per shard.");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    out << "omg_shard_queue_wait_seconds_total{shard=\"" << shard.shard
        << "\"} " << Num(Clock::ToSeconds(shard.queue_wait_ns)) << "\n";
  }
  Header(out, "omg_shard_busy_ratio", "gauge",
         "(busy + steal) / (busy + idle + steal) per shard since start.");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    out << "omg_shard_busy_ratio{shard=\"" << shard.shard << "\"} "
        << Num(shard.BusyFraction()) << "\n";
  }

  Header(out, "omg_shard_latency_seconds", "gauge",
         "Observe-to-flag latency quantiles per shard.");
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    for (const double q : {0.5, 0.95, 0.99}) {
      out << "omg_shard_latency_seconds{shard=\"" << shard.shard
          << "\",quantile=\"" << Num(q) << "\"} "
          << Num(shard.latency.Quantile(q)) << "\n";
    }
  }

  // Named counters. Per-tenant wire accounting renders as ONE family with
  // tenant/outcome labels (not one family per tenant — label cardinality is
  // the Prometheus-native shape); any other named key gets the generic
  // family below.
  bool any_tenant = false;
  bool any_other = false;
  for (const auto& [key, value] : snapshot.named) {
    std::string_view tenant, outcome;
    (SplitTenantKey(key, tenant, outcome) ? any_tenant : any_other) = true;
  }
  if (any_tenant) {
    Header(out, "omg_tenant_examples_total", "counter",
           "Per-tenant ingestion outcomes (offered, admitted, scored, "
           "shed, quota_rejected, decode_errors, ...).");
    for (const auto& [key, value] : snapshot.named) {
      std::string_view tenant, outcome;
      if (!SplitTenantKey(key, tenant, outcome)) continue;
      out << "omg_tenant_examples_total{tenant=\""
          << PrometheusEscapeLabel(tenant) << "\",outcome=\""
          << PrometheusEscapeLabel(outcome) << "\"} " << value << "\n";
    }
  }
  if (any_other) {
    Header(out, "omg_named_counter", "counter",
           "Free-form named counters (MetricsRegistry::RecordNamed).");
    for (const auto& [key, value] : snapshot.named) {
      std::string_view tenant, outcome;
      if (SplitTenantKey(key, tenant, outcome)) continue;
      out << "omg_named_counter{name=\"" << PrometheusEscapeLabel(key)
          << "\"} " << value << "\n";
    }
  }
}

void WriteMetricsJsonLine(const runtime::MetricsSnapshot& snapshot,
                          std::uint64_t ts_ns, std::ostream& out) {
  out << "{\"ts_ns\":" << ts_ns
      << ",\"examples_seen\":" << snapshot.examples_seen
      << ",\"events\":" << snapshot.events << ",\"assertions\":{";
  bool first = true;
  for (const auto& [name, slot] : snapshot.assertions) {
    if (!first) out << ",";
    first = false;
    out << "\"" << runtime::JsonEscape(name) << "\":{\"fires\":" << slot.fires
        << ",\"max_severity\":" << Num(slot.max_severity)
        << ",\"mean_severity\":" << Num(slot.MeanSeverity()) << "}";
  }
  out << "},\"streams\":{";
  first = true;
  for (const runtime::StreamMetrics& stream : snapshot.streams) {
    if (stream.stream.empty()) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << runtime::JsonEscape(stream.stream)
        << "\":{\"examples\":" << stream.examples_seen
        << ",\"events\":" << stream.events << "}";
  }
  out << "},\"shards\":[";
  first = true;
  for (const runtime::ShardMetrics& shard : snapshot.shards) {
    if (!first) out << ",";
    first = false;
    out << "{\"shard\":" << shard.shard << ",\"batches\":" << shard.batches
        << ",\"examples\":" << shard.examples
        << ",\"shed_examples\":" << shard.shed_examples
        << ",\"dropped_examples\":" << shard.dropped_examples
        << ",\"errored_examples\":" << shard.errored_examples
        << ",\"queue_depth_peak\":" << shard.queue_depth_peak
        << ",\"stolen_batches\":" << shard.stolen_batches
        << ",\"stolen_examples\":" << shard.stolen_examples
        << ",\"busy_seconds\":" << Num(Clock::ToSeconds(shard.busy_ns))
        << ",\"idle_seconds\":" << Num(Clock::ToSeconds(shard.idle_ns))
        << ",\"steal_seconds\":" << Num(Clock::ToSeconds(shard.steal_ns))
        << ",\"busy_ratio\":" << Num(shard.BusyFraction())
        << ",\"mean_queue_wait_seconds\":"
        << Num(shard.MeanQueueWaitSeconds())
        << ",\"mean_service_seconds\":" << Num(shard.MeanServiceSeconds())
        << ",\"p99_latency_seconds\":" << Num(shard.latency.Quantile(0.99))
        << "}";
  }
  out << "],\"named\":{";
  first = true;
  for (const auto& [key, value] : snapshot.named) {
    if (!first) out << ",";
    first = false;
    out << "\"" << runtime::JsonEscape(key) << "\":" << value;
  }
  out << "}}\n";
}

MetricsExporter::MetricsExporter(MetricsExporterOptions options,
                                 SnapshotFn snapshot)
    : options_(std::move(options)), snapshot_(std::move(snapshot)) {
  common::Check(static_cast<bool>(snapshot_),
                "metrics exporter needs a snapshot source");
  common::Check(options_.period.count() > 0,
                "metrics exporter period must be positive");
  // Truncate the JSONL sink up front so one run's series is one file.
  if (!options_.jsonl_path.empty()) {
    std::ofstream reset(options_.jsonl_path, std::ios::trunc);
    common::Check(reset.good(),
                  "metrics exporter cannot open the JSONL sink");
  }
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Start() {
  MutexLock lock(run_mutex_);
  if (thread_.joinable()) return;
  stop_ = std::make_shared<bool>(false);
  thread_ = std::thread([this, stop = stop_] { Run(std::move(stop)); });
}

void MetricsExporter::Stop() {
  // Claim the thread under the lock and join the local copy: of several
  // concurrent Stop() callers exactly one sees a joinable thread_, joins
  // it, and writes the final export; the rest return immediately. A
  // concurrent Start() either runs before the claim (this Stop joins the
  // fresh thread too) or after it (the exporter ends up running, which is
  // the Start caller's stated intent).
  std::thread worker;
  {
    MutexLock lock(run_mutex_);
    if (!thread_.joinable()) return;
    *stop_ = true;
    stop_.reset();
    worker = std::move(thread_);
    wake_.NotifyAll();
  }
  worker.join();
  ExportOnce();  // final point-in-time export
}

std::size_t MetricsExporter::ExportOnce() {
  const runtime::MetricsSnapshot snapshot = snapshot_();
  const std::uint64_t now_ns = Clock::NowNs();
  MutexLock lock(io_mutex_);
  if (!options_.jsonl_path.empty()) {
    std::ofstream jsonl(options_.jsonl_path, std::ios::app);
    WriteMetricsJsonLine(snapshot, now_ns, jsonl);
  }
  if (!options_.prometheus_path.empty()) {
    std::ofstream prom(options_.prometheus_path, std::ios::trunc);
    WritePrometheusText(snapshot, prom);
  }
  return ++exports_;
}

void MetricsExporter::Run(std::shared_ptr<bool> stop) {
  for (;;) {
    {
      MutexLock lock(run_mutex_);
      // A spurious wake just exports one period early — harmless jitter.
      if (!*stop) wake_.WaitFor(run_mutex_, options_.period);
      if (*stop) return;  // Stop() writes the final export
    }
    ExportOnce();
  }
}

}  // namespace omg::obs
