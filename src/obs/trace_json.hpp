// Chrome trace_event JSON serialisation of a TraceSnapshot.
//
// The output is the "JSON Object Format" the Chrome tracing ecosystem
// (Perfetto, chrome://tracing, speedscope) loads directly: one process
// (pid 1), one Perfetto track per shard lane (tid = lane index, named via
// thread_name metadata), timestamps in microseconds. kBegin/kEnd events
// become "B"/"E" duration pairs, kInstant becomes "i". The control lane —
// whose events come from many concurrent threads and so would mis-nest on
// one track — is split into per-kind "control:<kind>" tracks instead.
//
// Open the file in https://ui.perfetto.dev to see shard occupancy at a
// glance: evaluate spans back-to-back mean a saturated shard, gaps mean
// queue starvation; the control tracks carry flush waits, admission
// losses, hot-swaps, and improvement-loop rounds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/tracer.hpp"

namespace omg::obs {

/// Writes `snapshot` as Chrome trace_event JSON. `stream_labels[id]` (when
/// provided and non-empty) is attached as the "stream" arg of events on
/// stream `id` — the serving facade passes domain-qualified
/// "<domain>/<name>" labels so multi-domain traces stay attributable;
/// unlabeled stream ids fall back to a numeric "stream_id" arg.
void WriteChromeTrace(const TraceSnapshot& snapshot, std::ostream& out,
                      const std::vector<std::string>& stream_labels = {});

}  // namespace omg::obs
