// obs::Tracer — per-shard trace lanes plus a shared control lane.
//
// The tracer owns one lock-free SPSC TraceRing per shard worker (the only
// thread allowed to EmitShard on that lane) and one additional
// mutex-guarded *control* lane for every emitter that is not a shard
// worker: producers shedding/dropping at admission, Flush callers, the
// model registry's hot-swaps, the retrain worker, and the round scheduler.
// The split keeps the scoring hot path lock-free while still capturing the
// whole event taxonomy in one drainable trace.
//
// Sampling: SampleBatch(shard) implements deterministic 1-in-N batch
// sampling with a per-lane counter owned by the producer — batch k of a
// shard is traced iff k % sample_every == 0, independent of timing, so
// traces are reproducible. Control-lane events are rare and always
// recorded (subject to the master enable switch).
//
// Compile-out: building with -DOMG_OBS_DISABLE_TRACING (CMake option
// OMG_DISABLE_TRACING) turns every OMG_TRACE(...) statement into nothing
// and folds obs::kTracingCompiled to false, so instrumented call sites
// vanish entirely — the zero-cost path for latency-critical builds.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_ring.hpp"

#if defined(OMG_OBS_DISABLE_TRACING)
/// Wraps a tracing statement; compiled out under OMG_OBS_DISABLE_TRACING.
#define OMG_TRACE(statement) \
  do {                       \
  } while (false)
#else
#define OMG_TRACE(statement) \
  do {                       \
    statement;               \
  } while (false)
#endif

namespace omg::obs {

/// True when OMG_TRACE statements are compiled in.
#if defined(OMG_OBS_DISABLE_TRACING)
inline constexpr bool kTracingCompiled = false;
#else
inline constexpr bool kTracingCompiled = true;
#endif

/// Tracer geometry and sampling policy.
struct TracerOptions {
  /// Number of shard lanes (== the serving runtime's shard count).
  std::size_t shard_lanes = 1;
  /// Slots per lane ring; rounded up to a power of two. When a lane
  /// overflows, its oldest events are evicted (counted, not blocking).
  std::size_t ring_capacity = 4096;
  /// Trace 1 of every N batches per shard lane (1 = every batch).
  std::uint64_t sample_every = 1;
  /// Master switch; a disabled tracer records nothing but keeps its rings
  /// (set_enabled can turn it back on).
  bool enabled = true;
};

/// Everything drained from one lane.
struct LaneTrace {
  /// "shard-<i>" or "control".
  std::string name;
  /// Events in push order (timestamps are monotone per lane).
  std::vector<TraceEvent> events;
  /// Events lost to ring overwrite since the previous drain.
  std::size_t evicted = 0;
  /// Events ever recorded on the lane.
  std::uint64_t recorded = 0;
};

/// One Drain() result: shard lanes in index order, control lane last.
struct TraceSnapshot {
  std::vector<LaneTrace> lanes;

  /// Sum of events across lanes.
  std::size_t TotalEvents() const;
  /// Sum of evictions across lanes.
  std::size_t TotalEvicted() const;
};

/// See the file comment. Emit paths are wait-free (shard lanes) or take one
/// short mutex (control lane); Drain may run concurrently with emitters.
class Tracer {
 public:
  explicit Tracer(TracerOptions options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TracerOptions& options() const { return options_; }
  std::size_t shard_lanes() const { return shard_rings_.size(); }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Deterministic 1-in-N sampling decision for the next batch on `shard`.
  /// Shard worker thread only (advances that lane's producer-owned
  /// counter). Always false while disabled, without consuming a tick.
  bool SampleBatch(std::size_t shard);

  /// Records an event on `shard`'s lane. Shard worker thread only.
  /// Callers gate span events on SampleBatch's decision for the batch.
  void EmitShard(std::size_t shard, TraceEventKind kind, TracePhase phase,
                 std::uint64_t stream_id = TraceEvent::kNoStream,
                 std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  /// Records an event on the shared control lane. Any thread.
  void EmitControl(TraceEventKind kind, TracePhase phase,
                   std::uint64_t stream_id = TraceEvent::kNoStream,
                   std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  /// Drains every lane (shard lanes first, control last). Thread-safe and
  /// incremental: each call returns only events since the previous drain.
  TraceSnapshot Drain();

 private:
  /// Per-lane sampling counter, padded so adjacent shard workers don't
  /// false-share.
  struct alignas(64) SampleCounter {
    std::uint64_t count = 0;
  };

  TracerOptions options_;
  std::atomic<bool> enabled_;
  std::vector<std::unique_ptr<TraceRing>> shard_rings_;
  std::vector<SampleCounter> sample_counters_;
  /// SPSC ring with two lock domains — producers serialise under
  /// control_mutex_, the drain side under drain_mutex_ — so no single
  /// capability guards it; deliberately unannotated (like shard_rings_,
  /// whose producer side is lock-free single-writer).
  TraceRing control_ring_;
  Mutex control_mutex_;  ///< serialises control-lane producers
  Mutex drain_mutex_;    ///< serialises drains (rings are SPSC)
};

}  // namespace omg::obs
