// The trace-event taxonomy of the observability layer.
//
// A TraceEvent is one fixed-size record in a shard's trace ring: what
// happened (kind), whether it opens/closes a span or stands alone (phase),
// when (obs::Clock nanoseconds), on which stream, plus two kind-specific
// integer arguments. Events are encoded to a fixed array of 64-bit words so
// the ring can store them in lock-free atomic slots; strings (stream names,
// kind names) are resolved only at drain/serialisation time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace omg::obs {

/// What a trace event records. Begin/End pairs of the same kind form a span
/// on the emitting lane; kInstant kinds are point events.
enum class TraceEventKind : std::uint8_t {
  kBatchDequeue = 0,  ///< worker popped a batch (instant; args: examples, depth)
  kEvaluate,          ///< scoring a batch (span; args: examples, events at end)
  kFlush,             ///< Flush() quiescence wait (span)
  kAdmissionShed,     ///< batch refused at admission (instant; examples, shard)
  kAdmissionDrop,     ///< queued batches evicted (instant; examples, shard)
  kModelHotSwap,      ///< registry published a model (instant; arg0 = version)
  kRound,             ///< one BAL improvement round (span; arg0 = round index)
  kRetrain,           ///< background retrain (span; args: rows, version at end)
  kConnOpen,          ///< ingest connection accepted (instant; transport, conn)
  kConnClose,         ///< ingest connection closed (instant; conn, frames)
  kFrameDecode,       ///< DATA frame decoded + admitted (instant; examples, bytes)
  kWireReject,        ///< frame/examples refused at the wire (instant; examples, code)
};

/// Number of TraceEventKind values (for tables indexed by kind).
inline constexpr std::size_t kTraceEventKinds = 12;

/// Stable snake_case name ("batch_dequeue", "evaluate", ...); also the event
/// name in exported Chrome traces.
std::string_view TraceEventKindName(TraceEventKind kind);

/// Span phase of an event.
enum class TracePhase : std::uint8_t {
  kInstant = 0,
  kBegin,
  kEnd,
};

/// One fixed-size trace record; see the file comment.
struct TraceEvent {
  /// stream_id value for events not tied to a stream (hot-swap, round...).
  static constexpr std::uint64_t kNoStream = ~std::uint64_t{0};
  /// Number of 64-bit words in the encoded form.
  static constexpr std::size_t kWords = 5;

  /// obs::Clock timestamp.
  std::uint64_t ts_ns = 0;
  TraceEventKind kind = TraceEventKind::kBatchDequeue;
  TracePhase phase = TracePhase::kInstant;
  /// Runtime stream id, or kNoStream.
  std::uint64_t stream_id = kNoStream;
  /// Kind-specific arguments (see TraceEventKind).
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;

  /// Packs the event into kWords ring words.
  std::array<std::uint64_t, kWords> Encode() const {
    return {ts_ns,
            static_cast<std::uint64_t>(kind) |
                (static_cast<std::uint64_t>(phase) << 8),
            stream_id, arg0, arg1};
  }

  /// Inverse of Encode.
  static TraceEvent Decode(const std::array<std::uint64_t, kWords>& words) {
    TraceEvent event;
    event.ts_ns = words[0];
    event.kind = static_cast<TraceEventKind>(words[1] & 0xff);
    event.phase = static_cast<TracePhase>((words[1] >> 8) & 0xff);
    event.stream_id = words[2];
    event.arg0 = words[3];
    event.arg1 = words[4];
    return event;
  }
};

}  // namespace omg::obs
