#include "obs/trace_ring.hpp"

#include "common/check.hpp"

namespace omg::obs {

namespace {

std::size_t RoundUpPow2(std::size_t value) {
  std::size_t pow2 = 2;
  while (pow2 < value) pow2 <<= 1;
  return pow2;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : slots_(RoundUpPow2(capacity)), mask_(slots_.size() - 1) {
  common::Check(capacity >= 1, "trace ring capacity must be positive");
}

void TraceRing::Push(const TraceEvent& event) {
  const std::uint64_t seq = next_seq_++;
  Slot& slot = slots_[seq & mask_];
  // Seqlock write protocol (Boehm, "Can seqlocks get along with programming
  // language memory models?"): odd version, release fence, payload, even
  // version with release. The fence orders the busy mark before the payload
  // stores for any reader that later observes them.
  slot.version.store(2 * seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  const auto words = event.Encode();
  for (std::size_t i = 0; i < TraceEvent::kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.version.store(2 * seq + 2, std::memory_order_release);
  head_.store(seq + 1, std::memory_order_release);
}

TraceRing::DrainStats TraceRing::Drain(std::vector<TraceEvent>& out) {
  DrainStats stats;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t cursor = cursor_.load(std::memory_order_relaxed);
  stats.recorded = head;
  // Events below head - capacity were certainly overwritten: skip them
  // wholesale instead of validating each slot.
  const std::uint64_t floor =
      head > slots_.size() ? head - slots_.size() : 0;
  if (cursor < floor) {
    stats.evicted += static_cast<std::size_t>(floor - cursor);
    cursor = floor;
  }
  for (std::uint64_t seq = cursor; seq < head; ++seq) {
    Slot& slot = slots_[seq & mask_];
    const std::uint64_t expect = 2 * seq + 2;
    const std::uint64_t before = slot.version.load(std::memory_order_acquire);
    if (before != expect) {
      // The producer lapped this slot (a newer event's busy/complete
      // version) before we reached it.
      ++stats.evicted;
      continue;
    }
    std::array<std::uint64_t, TraceEvent::kWords> words;
    for (std::size_t i = 0; i < TraceEvent::kWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) != expect) {
      ++stats.evicted;  // overwritten mid-copy
      continue;
    }
    out.push_back(TraceEvent::Decode(words));
    ++stats.drained;
  }
  cursor_.store(head, std::memory_order_relaxed);
  return stats;
}

}  // namespace omg::obs
