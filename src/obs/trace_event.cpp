#include "obs/trace_event.hpp"

namespace omg::obs {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kBatchDequeue:
      return "batch_dequeue";
    case TraceEventKind::kEvaluate:
      return "evaluate";
    case TraceEventKind::kFlush:
      return "flush";
    case TraceEventKind::kAdmissionShed:
      return "admission_shed";
    case TraceEventKind::kAdmissionDrop:
      return "admission_drop";
    case TraceEventKind::kModelHotSwap:
      return "model_hot_swap";
    case TraceEventKind::kRound:
      return "round";
    case TraceEventKind::kRetrain:
      return "retrain";
    case TraceEventKind::kConnOpen:
      return "conn_open";
    case TraceEventKind::kConnClose:
      return "conn_close";
    case TraceEventKind::kFrameDecode:
      return "frame_decode";
    case TraceEventKind::kWireReject:
      return "wire_reject";
  }
  return "unknown";
}

}  // namespace omg::obs
