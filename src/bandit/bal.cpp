#include "bandit/bal.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace omg::bandit {

using common::Check;

BalStrategy::BalStrategy(BalConfig config,
                         std::unique_ptr<SelectionStrategy> fallback)
    : config_(config), fallback_(std::move(fallback)) {
  Check(fallback_ != nullptr, "BAL requires a fallback strategy");
  common::CheckInRange(config_.explore_fraction, 0.0, 1.0,
                       "explore_fraction");
  common::CheckNonNegative(config_.rank_power, "rank_power");
}

void BalStrategy::Reset() {
  has_previous_counts_ = false;
  previous_fire_counts_.clear();
  last_reductions_.clear();
  used_fallback_ = false;
  fallback_->Reset();
}

bool BalStrategy::SampleFromAssertion(const RoundContext& context,
                                      std::size_t m,
                                      const std::vector<bool>& taken,
                                      common::Rng& rng,
                                      std::size_t& out_index) const {
  // Unlabeled, untaken examples flagged by assertion m.
  std::vector<std::size_t> candidates;
  for (const std::size_t e : context.severities->ExamplesFiring(m)) {
    if (!taken[e]) candidates.push_back(e);
  }
  if (candidates.empty()) return false;
  // Severity-rank weighting: shuffle to break ties randomly, stable-sort by
  // descending severity, then weight the k-th ranked item by (n-k)^p.
  rng.Shuffle(candidates);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](std::size_t a, std::size_t b) {
                     return context.severities->At(a, m) >
                            context.severities->At(b, m);
                   });
  std::vector<double> weights(candidates.size());
  const double n = static_cast<double>(candidates.size());
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    weights[k] = std::pow(n - static_cast<double>(k), config_.rank_power);
  }
  out_index = candidates[rng.Categorical(weights)];
  return true;
}

std::vector<std::size_t> BalStrategy::Select(const RoundContext& context,
                                             std::size_t budget,
                                             common::Rng& rng) {
  Check(context.severities != nullptr, "RoundContext missing severities");
  const std::size_t n = context.severities->num_examples();
  const std::size_t d = context.severities->num_assertions();
  const std::vector<std::size_t> current_counts =
      context.severities->FireCounts();
  used_fallback_ = false;
  last_reductions_.clear();

  std::vector<bool> taken(n, false);
  for (const std::size_t e : context.already_labeled) taken[e] = true;

  auto run_fallback = [&](std::size_t amount,
                          std::vector<std::size_t>& selected) {
    if (amount == 0) return;
    // The fallback must not re-pick anything already selected this round.
    std::vector<std::size_t> blocked(context.already_labeled.begin(),
                                     context.already_labeled.end());
    blocked.insert(blocked.end(), selected.begin(), selected.end());
    RoundContext sub = context;
    sub.already_labeled = blocked;
    for (const std::size_t e : fallback_->Select(sub, amount, rng)) {
      taken[e] = true;
      selected.push_back(e);
    }
  };

  std::vector<std::size_t> selected;
  selected.reserve(budget);

  // Assertion-sampling weights for the exploit phase. Round 0 (or any call
  // before counts exist) is all-exploration: uniform over assertions.
  std::vector<double> exploit_weights;
  bool exploit_available = false;
  if (has_previous_counts_ && previous_fire_counts_.size() == d) {
    last_reductions_.resize(d);
    for (std::size_t m = 0; m < d; ++m) {
      const double prev = static_cast<double>(previous_fire_counts_[m]);
      const double cur = static_cast<double>(current_counts[m]);
      last_reductions_[m] =
          prev > 0.0 ? std::max(0.0, (prev - cur) / prev) : 0.0;
    }
    const bool any_reducing =
        std::any_of(last_reductions_.begin(), last_reductions_.end(),
                    [&](double r) { return r >= config_.min_marginal_reduction; });
    if (!any_reducing) {
      // Algorithm 2: "if all r_m < 1% fall back to baseline method".
      used_fallback_ = true;
      run_fallback(budget, selected);
      previous_fire_counts_ = current_counts;
      return selected;
    }
    exploit_weights = last_reductions_;
    exploit_available = true;
  }
  previous_fire_counts_ = current_counts;
  has_previous_counts_ = true;

  const std::size_t explore_budget =
      exploit_available
          ? static_cast<std::size_t>(
                std::llround(config_.explore_fraction *
                             static_cast<double>(budget)))
          : budget;

  // Exploit phase: assertions proportional to marginal reduction.
  std::size_t exploit_remaining =
      exploit_available ? budget - explore_budget : 0;
  while (exploit_remaining > 0) {
    // Zero out assertions with no available flagged examples.
    std::vector<double> weights = exploit_weights;
    double total = 0.0;
    for (std::size_t m = 0; m < d; ++m) {
      // Availability probe: any untaken flagged example for assertion m?
      bool available = false;
      for (const std::size_t e : context.severities->ExamplesFiring(m)) {
        if (!taken[e]) {
          available = true;
          break;
        }
      }
      if (!available) weights[m] = 0.0;
      total += weights[m];
    }
    if (total <= 0.0) break;
    const std::size_t m = rng.Categorical(weights);
    std::size_t picked;
    if (!SampleFromAssertion(context, m, taken, rng, picked)) break;
    taken[picked] = true;
    selected.push_back(picked);
    --exploit_remaining;
  }

  // Exploration phase: uniform over assertions that still have candidates.
  std::size_t explore_remaining =
      explore_budget + exploit_remaining;  // roll over anything unfilled
  while (explore_remaining > 0 && selected.size() < budget) {
    std::vector<double> weights(d, 0.0);
    double total = 0.0;
    for (std::size_t m = 0; m < d; ++m) {
      for (const std::size_t e : context.severities->ExamplesFiring(m)) {
        if (!taken[e]) {
          weights[m] = 1.0;
          total += 1.0;
          break;
        }
      }
    }
    if (total <= 0.0) break;
    const std::size_t m = rng.Categorical(weights);
    std::size_t picked;
    if (!SampleFromAssertion(context, m, taken, rng, picked)) break;
    taken[picked] = true;
    selected.push_back(picked);
    --explore_remaining;
  }

  // If the flagged pool ran dry before the budget was spent, fill the rest
  // with the fallback baseline so the label budget is never wasted.
  if (selected.size() < budget) {
    run_fallback(budget - selected.size(), selected);
  }
  return selected;
}

}  // namespace omg::bandit
