#include "bandit/ccmab.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace omg::bandit {

using common::Check;

CcMab::CcMab(std::size_t dims, CcMabConfig config)
    : dims_(dims), config_(config) {
  Check(dims_ >= 1, "CcMab requires at least one context dimension");
  Check(config_.cubes_per_dim >= 1, "cubes_per_dim must be >= 1");
  Check(config_.alpha > 0.0, "alpha must be positive");
  std::size_t total = 1;
  for (std::size_t i = 0; i < dims_; ++i) {
    Check(total <= 1'000'000 / config_.cubes_per_dim,
          "context partition too large");
    total *= config_.cubes_per_dim;
  }
  counts_.assign(total, 0);
  reward_sums_.assign(total, 0.0);
}

std::size_t CcMab::CubeIndex(std::span<const double> context) const {
  Check(context.size() == dims_, "context dimensionality mismatch");
  std::size_t index = 0;
  for (const double value : context) {
    common::CheckInRange(value, 0.0, 1.0, "context entry");
    auto bucket = static_cast<std::size_t>(
        value * static_cast<double>(config_.cubes_per_dim));
    if (bucket == config_.cubes_per_dim) --bucket;  // value == 1.0
    index = index * config_.cubes_per_dim + bucket;
  }
  return index;
}

double CcMab::ExplorationThreshold(std::size_t round) const {
  Check(round >= 1, "rounds start at 1");
  const double t = static_cast<double>(round);
  const double d = static_cast<double>(dims_);
  const double exponent =
      2.0 * config_.alpha / (3.0 * config_.alpha + d);
  return std::pow(t, exponent) * std::log(t + 1.0);
}

std::size_t CcMab::CubeCount(std::span<const double> context) const {
  return counts_[CubeIndex(context)];
}

double CcMab::CubeMean(std::span<const double> context) const {
  const std::size_t cube = CubeIndex(context);
  if (counts_[cube] == 0) return 0.0;
  return reward_sums_[cube] / static_cast<double>(counts_[cube]);
}

std::vector<std::size_t> CcMab::SelectArms(
    std::span<const std::vector<double>> contexts, std::size_t budget,
    std::size_t round, common::Rng& rng) {
  const double threshold = ExplorationThreshold(round);

  // Arms whose cube is under-explored.
  std::vector<std::size_t> underexplored;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    if (static_cast<double>(counts_[CubeIndex(contexts[i])]) < threshold) {
      underexplored.push_back(i);
    }
  }

  std::vector<std::size_t> selected;
  selected.reserve(budget);
  std::vector<bool> taken(contexts.size(), false);

  // Phase 1 (Algorithm 1): random arms from under-explored cubes.
  rng.Shuffle(underexplored);
  for (const std::size_t i : underexplored) {
    if (selected.size() == budget) break;
    taken[i] = true;
    selected.push_back(i);
  }

  // Phase 2: greedy by estimated marginal gain. The estimate for an arm is
  // its cube's mean reward times diminishing^(picks already made from the
  // same cube this round) — a submodular surrogate for Delta R({j}, S).
  std::vector<std::size_t> cube_of(contexts.size());
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    cube_of[i] = CubeIndex(contexts[i]);
  }
  std::vector<std::size_t> picks_per_cube(counts_.size(), 0);
  for (const std::size_t i : selected) ++picks_per_cube[cube_of[i]];

  while (selected.size() < budget) {
    double best_gain = -1.0;
    std::size_t best_arm = contexts.size();
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      if (taken[i]) continue;
      const std::size_t cube = cube_of[i];
      const double mean =
          counts_[cube] == 0
              ? 0.0
              : reward_sums_[cube] / static_cast<double>(counts_[cube]);
      const double gain =
          mean * std::pow(config_.diminishing,
                          static_cast<double>(picks_per_cube[cube]));
      if (gain > best_gain) {
        best_gain = gain;
        best_arm = i;
      }
    }
    if (best_arm == contexts.size()) break;  // no arms left
    taken[best_arm] = true;
    ++picks_per_cube[cube_of[best_arm]];
    selected.push_back(best_arm);
  }
  return selected;
}

void CcMab::ObserveReward(std::span<const double> context, double reward) {
  const std::size_t cube = CubeIndex(context);
  ++counts_[cube];
  reward_sums_[cube] += reward;
}

}  // namespace omg::bandit
