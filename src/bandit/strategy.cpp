#include "bandit/strategy.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace omg::bandit {

using common::Check;

std::vector<std::size_t> UnlabeledIndices(const RoundContext& context) {
  Check(context.severities != nullptr, "RoundContext missing severities");
  const std::set<std::size_t> labeled(context.already_labeled.begin(),
                                      context.already_labeled.end());
  std::vector<std::size_t> unlabeled;
  const std::size_t n = context.severities->num_examples();
  unlabeled.reserve(n - labeled.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!labeled.contains(i)) unlabeled.push_back(i);
  }
  return unlabeled;
}

std::vector<std::size_t> RandomStrategy::Select(const RoundContext& context,
                                                std::size_t budget,
                                                common::Rng& rng) {
  auto unlabeled = UnlabeledIndices(context);
  rng.Shuffle(unlabeled);
  if (unlabeled.size() > budget) unlabeled.resize(budget);
  return unlabeled;
}

std::vector<std::size_t> UncertaintyStrategy::Select(
    const RoundContext& context, std::size_t budget, common::Rng& rng) {
  auto unlabeled = UnlabeledIndices(context);
  Check(context.confidences.size() == context.severities->num_examples(),
        "confidence vector size mismatch");
  // Shuffle first so ties are broken randomly, then stable-sort ascending by
  // confidence: least confident first.
  rng.Shuffle(unlabeled);
  std::stable_sort(unlabeled.begin(), unlabeled.end(),
                   [&](std::size_t a, std::size_t b) {
                     return context.confidences[a] < context.confidences[b];
                   });
  if (unlabeled.size() > budget) unlabeled.resize(budget);
  return unlabeled;
}

std::vector<std::size_t> UniformAssertionStrategy::Select(
    const RoundContext& context, std::size_t budget, common::Rng& rng) {
  const auto unlabeled = UnlabeledIndices(context);
  std::vector<std::size_t> flagged;
  std::vector<std::size_t> unflagged;
  for (const std::size_t i : unlabeled) {
    if (context.severities->AnyFired(i)) {
      flagged.push_back(i);
    } else {
      unflagged.push_back(i);
    }
  }
  rng.Shuffle(flagged);
  if (flagged.size() >= budget) {
    flagged.resize(budget);
    return flagged;
  }
  // Not enough flagged data: fill the remainder uniformly from the rest.
  rng.Shuffle(unflagged);
  for (const std::size_t i : unflagged) {
    if (flagged.size() == budget) break;
    flagged.push_back(i);
  }
  return flagged;
}

}  // namespace omg::bandit
