// Data-selection strategies for active learning (§3 and §5.4 of the paper).
//
// A strategy sees, each round, the current severity matrix of the unlabeled
// pool (one column per assertion — the bandit "contexts"), the model's
// confidence per pool item, and the set of already-labeled items, and picks
// `budget` new items to label. The four strategies evaluated in Figure 4 are
// implemented: random sampling, least-confident uncertainty sampling,
// uniform sampling from assertion-flagged data, and BAL (bandit/bal.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/severity_matrix.hpp"

namespace omg::bandit {

/// Everything a strategy may look at in one selection round.
struct RoundContext {
  /// Severities of every assertion over the whole unlabeled pool.
  const core::SeverityMatrix* severities = nullptr;
  /// Model confidence per pool item (max softmax probability; used by
  /// uncertainty sampling).
  std::span<const double> confidences;
  /// Round number, starting at 0.
  std::size_t round = 0;
  /// Pool items labeled in earlier rounds; strategies must not re-select.
  std::span<const std::size_t> already_labeled;
};

/// Interface for a selection strategy.
class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;

  /// Display name ("random", "uncertainty", "uniform-ma", "bal", ...).
  virtual std::string Name() const = 0;

  /// Picks up to `budget` distinct unlabeled pool indices.
  virtual std::vector<std::size_t> Select(const RoundContext& context,
                                          std::size_t budget,
                                          common::Rng& rng) = 0;

  /// Resets any cross-round state (between trials).
  virtual void Reset() {}
};

/// Uniform random sampling over the unlabeled pool.
class RandomStrategy final : public SelectionStrategy {
 public:
  std::string Name() const override { return "random"; }
  std::vector<std::size_t> Select(const RoundContext& context,
                                  std::size_t budget,
                                  common::Rng& rng) override;
};

/// "Least confident" uncertainty sampling (Settles 2009): picks the
/// unlabeled items whose model confidence is lowest.
class UncertaintyStrategy final : public SelectionStrategy {
 public:
  std::string Name() const override { return "uncertainty"; }
  std::vector<std::size_t> Select(const RoundContext& context,
                                  std::size_t budget,
                                  common::Rng& rng) override;
};

/// Uniform sampling from the set of items flagged by at least one assertion;
/// tops up from the rest of the pool when too few items are flagged.
class UniformAssertionStrategy final : public SelectionStrategy {
 public:
  std::string Name() const override { return "uniform-ma"; }
  std::vector<std::size_t> Select(const RoundContext& context,
                                  std::size_t budget,
                                  common::Rng& rng) override;
};

/// Helper shared by strategies: the unlabeled pool indices.
std::vector<std::size_t> UnlabeledIndices(const RoundContext& context);

}  // namespace omg::bandit
