// CC-MAB — the resource-unconstrained reference algorithm (Algorithm 1,
// after Chen et al. 2018, "Contextual combinatorial multi-armed bandits with
// volatile arms and submodular reward").
//
// The paper uses CC-MAB as the starting point that BAL simplifies: CC-MAB
// needs a per-arm reward observation (a label + a retrain) which is
// infeasible for deep models, so BAL replaces it with batch-level marginal
// reductions. We implement CC-MAB faithfully enough to validate its regret
// behaviour on synthetic submodular rewards in the test suite:
//
//   * the context space [0,1]^d is partitioned into hypercubes;
//   * a hypercube is under-explored at round t while its observation count
//     is below K(t) = t^(2a/(3a+d)) * log(t);
//   * when under-explored cubes have arriving arms, arms are drawn from
//     them at random; otherwise arms are selected greedily by estimated
//     marginal gain, where an arm's value estimate is its cube's observed
//     mean reward discounted by how many arms were already taken from the
//     same cube this round (a submodular diminishing-returns surrogate).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace omg::bandit {

/// CC-MAB hyper-parameters.
struct CcMabConfig {
  /// Hypercubes per context dimension (h_T in the paper).
  std::size_t cubes_per_dim = 4;
  /// Hoelder smoothness parameter alpha.
  double alpha = 1.0;
  /// Within-round diminishing factor for repeated picks from one cube.
  double diminishing = 0.5;
};

/// Reference implementation of Algorithm 1.
class CcMab {
 public:
  /// `dims` is the context dimensionality (number of assertions).
  CcMab(std::size_t dims, CcMabConfig config);

  /// Selects up to `budget` arms from the arriving `contexts` (each a
  /// d-dimensional vector with entries in [0, 1]). `round` starts at 1.
  std::vector<std::size_t> SelectArms(
      std::span<const std::vector<double>> contexts, std::size_t budget,
      std::size_t round, common::Rng& rng);

  /// Reports the observed reward of an arm previously selected.
  void ObserveReward(std::span<const double> context, double reward);

  /// Exploration threshold K(t).
  double ExplorationThreshold(std::size_t round) const;

  /// Number of observations recorded for the cube containing `context`.
  std::size_t CubeCount(std::span<const double> context) const;

  /// Mean observed reward of the cube containing `context` (0 if unseen).
  double CubeMean(std::span<const double> context) const;

 private:
  std::size_t CubeIndex(std::span<const double> context) const;

  std::size_t dims_;
  CcMabConfig config_;
  std::vector<std::size_t> counts_;
  std::vector<double> reward_sums_;
};

}  // namespace omg::bandit
