// BAL — the paper's bandit-based active-learning algorithm (Algorithm 2).
//
// Round 0 samples uniformly at random from the d model assertions. In later
// rounds BAL computes, per assertion m, the marginal reduction r_m in the
// number of times m fired relative to the previous round; if every r_m is
// below 1% it falls back to a user-chosen baseline (random or uncertainty
// sampling), otherwise it selects assertions proportional to r_m and, within
// an assertion, samples flagged examples proportional to severity-score
// rank. 25% of each round's budget is always spent exploring assertions
// uniformly (ε-greedy style) so no context is starved as training progresses.
#pragma once

#include <memory>
#include <vector>

#include "bandit/strategy.hpp"

namespace omg::bandit {

/// Tunable knobs of BAL; defaults follow the paper.
struct BalConfig {
  /// Share of the budget spent on uniform exploration over assertions.
  double explore_fraction = 0.25;
  /// Fallback triggers when every relative reduction is below this.
  double min_marginal_reduction = 0.01;
  /// Rank-weighted sampling within an assertion: weight of the k-th highest
  /// severity item is (n - k)^rank_power, normalised. 1.0 = linear-in-rank;
  /// 0.0 degenerates to uniform over flagged items.
  double rank_power = 1.0;
};

/// Algorithm 2 of the paper.
class BalStrategy final : public SelectionStrategy {
 public:
  /// `fallback` is the baseline used when no assertion's fire count is
  /// reducing (the paper defaults to random or uncertainty sampling, as
  /// specified by the user).
  BalStrategy(BalConfig config, std::unique_ptr<SelectionStrategy> fallback);

  std::string Name() const override { return "bal"; }

  std::vector<std::size_t> Select(const RoundContext& context,
                                  std::size_t budget,
                                  common::Rng& rng) override;

  void Reset() override;

  /// Relative per-assertion fire-count reductions computed in the most
  /// recent Select call (empty on round 0); exposed for tests and ablations.
  const std::vector<double>& LastMarginalReductions() const {
    return last_reductions_;
  }

  /// True when the most recent Select call used the fallback baseline.
  bool UsedFallback() const { return used_fallback_; }

 private:
  /// Samples one unlabeled example flagged by assertion `m`, weighted by
  /// severity rank; returns false when none remain.
  bool SampleFromAssertion(const RoundContext& context, std::size_t m,
                           const std::vector<bool>& taken, common::Rng& rng,
                           std::size_t& out_index) const;

  BalConfig config_;
  std::unique_ptr<SelectionStrategy> fallback_;
  bool has_previous_counts_ = false;
  std::vector<std::size_t> previous_fire_counts_;
  std::vector<double> last_reductions_;
  bool used_fallback_ = false;
};

}  // namespace omg::bandit
