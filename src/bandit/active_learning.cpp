#include "bandit/active_learning.hpp"

#include "common/check.hpp"

namespace omg::bandit {

using common::Check;

ActiveLearningCurve RunActiveLearning(ActiveLearningProblem& problem,
                                      SelectionStrategy& strategy,
                                      std::size_t rounds,
                                      std::size_t budget_per_round,
                                      std::uint64_t seed) {
  Check(budget_per_round > 0, "budget must be positive");
  common::Rng rng(seed);
  problem.Reset(seed);
  strategy.Reset();

  ActiveLearningCurve curve;
  curve.strategy = strategy.Name();
  curve.metric_per_round.push_back(problem.Evaluate());

  std::vector<std::size_t> labeled;
  for (std::size_t t = 0; t < rounds; ++t) {
    const core::SeverityMatrix severities = problem.ComputeSeverities();
    Check(severities.num_examples() == problem.PoolSize(),
          "severity matrix size mismatch");
    const std::vector<double> confidences = problem.Confidences();

    RoundContext context;
    context.severities = &severities;
    context.confidences = confidences;
    context.round = t;
    context.already_labeled = labeled;

    const std::vector<std::size_t> picked =
        strategy.Select(context, budget_per_round, rng);
    Check(picked.size() <= budget_per_round, "strategy exceeded budget");
    for (const std::size_t e : picked) {
      Check(e < problem.PoolSize(), "strategy picked out-of-range index");
      for (const std::size_t prior : labeled) {
        Check(prior != e, "strategy re-picked a labeled example");
      }
    }
    labeled.insert(labeled.end(), picked.begin(), picked.end());
    problem.LabelAndTrain(picked);
    curve.metric_per_round.push_back(problem.Evaluate());
  }
  return curve;
}

ActiveLearningCurve RunActiveLearningTrials(ActiveLearningProblem& problem,
                                            SelectionStrategy& strategy,
                                            std::size_t rounds,
                                            std::size_t budget_per_round,
                                            std::size_t trials,
                                            std::uint64_t base_seed) {
  Check(trials >= 1, "need at least one trial");
  ActiveLearningCurve mean_curve;
  mean_curve.strategy = strategy.Name();
  mean_curve.metric_per_round.assign(rounds + 1, 0.0);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const ActiveLearningCurve curve = RunActiveLearning(
        problem, strategy, rounds, budget_per_round,
        base_seed + 1000003ULL * trial);
    for (std::size_t r = 0; r < curve.metric_per_round.size(); ++r) {
      mean_curve.metric_per_round[r] +=
          curve.metric_per_round[r] / static_cast<double>(trials);
    }
  }
  return mean_curve;
}

std::size_t RoundsToReach(const ActiveLearningCurve& curve, double target) {
  for (std::size_t r = 1; r < curve.metric_per_round.size(); ++r) {
    if (curve.metric_per_round[r] >= target) return r;
  }
  return 0;
}

}  // namespace omg::bandit
