// Round-based active-learning driver (§3: "BAL assumes that a set of data
// points has been collected and a subset will be labeled in bulk").
//
// A domain exposes its pool/model/metric through ActiveLearningProblem; the
// driver runs T rounds of select -> label -> retrain -> evaluate with any
// SelectionStrategy, which is how Figures 4, 5 and 9 are produced.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bandit/strategy.hpp"
#include "common/rng.hpp"
#include "core/severity_matrix.hpp"

namespace omg::bandit {

/// Domain adapter for active learning.
class ActiveLearningProblem {
 public:
  virtual ~ActiveLearningProblem() = default;

  /// Size of the unlabeled pool.
  virtual std::size_t PoolSize() const = 0;

  /// Runs the registered assertions over the pool with the *current* model
  /// and returns the severity matrix (recomputed every round: predictions,
  /// and therefore assertions, change as the model trains).
  virtual core::SeverityMatrix ComputeSeverities() = 0;

  /// Current model confidence per pool item.
  virtual std::vector<double> Confidences() = 0;

  /// Reveals ground-truth labels for `indices` (the human labeler), adds
  /// them to the training set, and retrains the model.
  virtual void LabelAndTrain(std::span<const std::size_t> indices) = 0;

  /// Evaluates the current model on held-out data (mAP or accuracy).
  virtual double Evaluate() = 0;

  /// Restores the freshly-pretrained state for a new trial.
  virtual void Reset(std::uint64_t seed) = 0;
};

/// Metric trajectory of one strategy: entry 0 is the pretrained model,
/// entry t (t >= 1) the model after round t.
struct ActiveLearningCurve {
  std::string strategy;
  std::vector<double> metric_per_round;
};

/// Runs `rounds` rounds with `budget_per_round` labels each.
ActiveLearningCurve RunActiveLearning(ActiveLearningProblem& problem,
                                      SelectionStrategy& strategy,
                                      std::size_t rounds,
                                      std::size_t budget_per_round,
                                      std::uint64_t seed);

/// Repeats RunActiveLearning over `trials` seeds and averages the curves
/// point-wise (the paper averages 2-8 trials depending on the domain).
ActiveLearningCurve RunActiveLearningTrials(ActiveLearningProblem& problem,
                                            SelectionStrategy& strategy,
                                            std::size_t rounds,
                                            std::size_t budget_per_round,
                                            std::size_t trials,
                                            std::uint64_t base_seed);

/// First round (1-based) at which the curve reaches `target`; 0 when never.
std::size_t RoundsToReach(const ActiveLearningCurve& curve, double target);

}  // namespace omg::bandit
