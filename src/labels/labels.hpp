// Human-label validation (Appendix E of the paper, Table 6).
//
// The paper bought labels for 1,000 night-street frames from a production
// labeling service, tracked objects across frames with an automated method,
// and asserted that the same object carries the same class in every frame —
// catching 4 of the 32 classification errors (12.5%).
//
// We simulate the annotation process: each ground-truth vehicle gets a true
// class; annotators make two kinds of mistakes — *consistent* confusions
// (an object that genuinely looks like a truck is labeled "truck" in every
// frame; uncatchable by a consistency check) and *random* per-frame slips
// (catchable when the object is visible in several frames). The validation
// harness runs an IoU tracker over the labeled boxes and a consistency
// assertion over the class attribute.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geometry/tracker.hpp"
#include "video/world.hpp"

namespace omg::labels {

/// One human-labeled box.
struct HumanLabel {
  geometry::Box2D box;
  std::string labeled_class;
  // Simulator truth (hidden from the validator).
  std::string true_class;
  std::int64_t truth_id = -1;
};

/// One labeled frame.
struct LabeledFrame {
  std::size_t frame_index = 0;
  double timestamp = 0.0;
  std::vector<HumanLabel> labels;
};

/// Annotator behaviour.
struct AnnotatorConfig {
  std::vector<std::string> classes = {"car", "truck", "bus"};
  std::vector<double> class_priors = {0.75, 0.18, 0.07};
  /// Probability an object is *consistently* mislabeled in every frame.
  double consistent_confusion_rate = 0.055;
  /// Per-box probability of a random slip.
  double random_error_rate = 0.012;
};

/// Deterministic annotation simulator over night-street frames.
class AnnotatorSim {
 public:
  AnnotatorSim(AnnotatorConfig config, std::uint64_t seed);

  /// Labels the ground-truth boxes of each frame (boxes are correct, as in
  /// the paper: "there were no localization errors"; only classes err).
  std::vector<LabeledFrame> LabelFrames(
      std::span<const video::Frame> frames);

  /// The true class assigned to a ground-truth object id.
  std::string TrueClassOf(std::int64_t truth_id);

 private:
  std::string SampleClass();

  AnnotatorConfig config_;
  common::Rng rng_;
  std::map<std::int64_t, std::string> true_class_;
  std::map<std::int64_t, std::string> consistent_label_;  // if confused
};

/// Table 6 outcome.
struct LabelValidationReport {
  std::size_t total_labels = 0;
  std::size_t errors = 0;
  std::size_t errors_caught = 0;

  double CatchRate() const {
    return errors == 0 ? 0.0
                       : static_cast<double>(errors_caught) /
                             static_cast<double>(errors);
  }
};

/// Runs the tracker + class-consistency assertion over labeled frames and
/// counts labels, true errors, and caught errors.
LabelValidationReport ValidateLabels(
    std::span<const LabeledFrame> frames,
    const geometry::TrackerConfig& tracker_config = {});

}  // namespace omg::labels
