#include "labels/labels.hpp"

#include <map>

#include "common/check.hpp"
#include "core/consistency.hpp"

namespace omg::labels {

using common::Check;

AnnotatorSim::AnnotatorSim(AnnotatorConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  Check(config_.classes.size() == config_.class_priors.size(),
        "classes/priors size mismatch");
  Check(config_.classes.size() >= 2, "need at least two classes");
}

std::string AnnotatorSim::SampleClass() {
  return config_.classes[rng_.Categorical(config_.class_priors)];
}

std::string AnnotatorSim::TrueClassOf(std::int64_t truth_id) {
  const auto it = true_class_.find(truth_id);
  if (it != true_class_.end()) return it->second;
  const std::string sampled = SampleClass();
  true_class_[truth_id] = sampled;
  return sampled;
}

std::vector<LabeledFrame> AnnotatorSim::LabelFrames(
    std::span<const video::Frame> frames) {
  std::vector<LabeledFrame> out;
  out.reserve(frames.size());
  for (const auto& frame : frames) {
    LabeledFrame labeled;
    labeled.frame_index = frame.index;
    labeled.timestamp = frame.timestamp;
    for (std::size_t t = 0; t < frame.truths.size(); ++t) {
      HumanLabel label;
      label.box = frame.truths[t].box;
      label.truth_id = frame.truth_ids[t];
      label.true_class = TrueClassOf(label.truth_id);

      // Consistent confusion: decided once per object, applied always.
      auto consistent = consistent_label_.find(label.truth_id);
      if (consistent == consistent_label_.end()) {
        std::string assigned = label.true_class;
        if (rng_.Bernoulli(config_.consistent_confusion_rate)) {
          do {
            assigned = config_.classes[static_cast<std::size_t>(
                rng_.UniformInt(
                    0,
                    static_cast<std::int64_t>(config_.classes.size()) - 1))];
          } while (assigned == label.true_class);
        }
        consistent =
            consistent_label_.emplace(label.truth_id, assigned).first;
      }
      label.labeled_class = consistent->second;

      // Random per-frame slip on top.
      if (rng_.Bernoulli(config_.random_error_rate)) {
        std::string slipped;
        do {
          slipped = config_.classes[static_cast<std::size_t>(
              rng_.UniformInt(
                  0,
                  static_cast<std::int64_t>(config_.classes.size()) - 1))];
        } while (slipped == label.labeled_class);
        label.labeled_class = slipped;
      }
      labeled.labels.push_back(std::move(label));
    }
    out.push_back(std::move(labeled));
  }
  return out;
}

LabelValidationReport ValidateLabels(
    std::span<const LabeledFrame> frames,
    const geometry::TrackerConfig& tracker_config) {
  LabelValidationReport report;

  // Track the labeled boxes across frames; the human plays the role of the
  // "ML model" whose outputs the assertion checks (§2.3).
  geometry::IouTracker tracker(tracker_config);
  std::vector<core::ConsistencyFrame> cframes;
  std::vector<core::ConsistencyRecord> records;
  std::vector<bool> record_is_error;
  for (std::size_t e = 0; e < frames.size(); ++e) {
    cframes.push_back(
        core::ConsistencyFrame{e, frames[e].timestamp, "video"});
    std::vector<geometry::Detection> detections;
    for (const auto& label : frames[e].labels) {
      geometry::Detection det;
      det.box = label.box;
      det.label = label.labeled_class;
      det.confidence = 1.0;  // human labels carry full confidence
      detections.push_back(std::move(det));
    }
    // Track on geometry only: class changes must not break the track (that
    // is exactly what we want to catch), so strip labels before updating.
    std::vector<geometry::Detection> geometry_only = detections;
    for (auto& det : geometry_only) det.label = "object";
    const auto tracked = tracker.Update(geometry_only);
    for (std::size_t d = 0; d < tracked.size(); ++d) {
      core::ConsistencyRecord record;
      record.example_index = e;
      record.output_index = static_cast<std::int64_t>(d);
      record.timestamp = frames[e].timestamp;
      record.group = "video";
      record.identifier = "track-" + std::to_string(tracked[d].track_id);
      record.attributes.emplace_back("class",
                                     frames[e].labels[d].labeled_class);
      records.push_back(std::move(record));
      record_is_error.push_back(frames[e].labels[d].labeled_class !=
                                frames[e].labels[d].true_class);
      ++report.total_labels;
      if (record_is_error.back()) ++report.errors;
    }
  }

  core::ConsistencyConfig config;
  config.attribute_keys = {"class"};
  const core::ConsistencyEngine engine(config);
  const core::ConsistencyResult result =
      engine.Analyze(cframes, records, frames.size());

  // A caught error is an erroneous label that received a set-attribute
  // correction proposing a different class.
  for (const auto& correction : result.corrections) {
    if (correction.kind != core::CorrectionKind::kSetAttribute) continue;
    for (std::size_t r = 0; r < records.size(); ++r) {
      if (records[r].example_index == correction.example_index &&
          records[r].output_index == correction.output_index &&
          record_is_error[r]) {
        ++report.errors_caught;
        break;
      }
    }
  }
  return report;
}

}  // namespace omg::labels
