// Object-detection evaluation: PR curves and (mean) average precision.
//
// Implements the standard VOC-style protocol used (via COCO tooling) by the
// paper's Figure 4/9 and Table 4: detections are matched to ground truth
// greedily by descending confidence at a fixed IoU threshold, each ground
// truth can match at most one detection, and AP is the area under the
// interpolated precision-recall curve (all-points interpolation).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "geometry/box.hpp"

namespace omg::eval {

/// A ground-truth object within one frame.
struct GroundTruthBox {
  geometry::Box2D box;
  std::string label = "car";
};

/// One frame's detections together with its ground truth.
struct FrameEval {
  std::vector<geometry::Detection> detections;
  std::vector<GroundTruthBox> truths;
};

/// One point on a precision-recall curve.
struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
  double confidence = 0.0;  ///< threshold that produced this point
};

/// Precision-recall curve for one class over a set of frames.
std::vector<PrPoint> PrecisionRecallCurve(std::span<const FrameEval> frames,
                                          const std::string& label,
                                          double iou_threshold = 0.5);

/// Average precision (all-points interpolated area under the PR curve) for
/// one class. Returns 0 when the class never appears in the ground truth.
double AveragePrecision(std::span<const FrameEval> frames,
                        const std::string& label,
                        double iou_threshold = 0.5);

/// Mean AP over every class present in the ground truth.
double MeanAveragePrecision(std::span<const FrameEval> frames,
                            double iou_threshold = 0.5);

/// Greedy matching outcome for one frame.
struct MatchResult {
  /// Entry i: detection i (stored order) matched a same-label truth.
  std::vector<bool> detection_correct;
  /// Entry t: truth t was claimed by some detection.
  std::vector<bool> truth_matched;
};

/// Matches one frame's detections to its truths: detections claim their
/// best unclaimed same-label truth at IoU >= threshold, in descending
/// confidence order.
MatchResult MatchFrame(const FrameEval& frame, double iou_threshold = 0.5);

/// Per-detection correctness only (convenience wrapper over MatchFrame).
std::vector<bool> MatchDetections(const FrameEval& frame,
                                  double iou_threshold = 0.5);

}  // namespace omg::eval
