#include "eval/detection_metrics.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace omg::eval {

namespace {

/// A detection flattened across frames for global PR computation.
struct Flat {
  double confidence;
  std::size_t frame;
  std::size_t index;  // within the frame
};

}  // namespace

std::vector<PrPoint> PrecisionRecallCurve(std::span<const FrameEval> frames,
                                          const std::string& label,
                                          double iou_threshold) {
  std::size_t total_truths = 0;
  std::vector<Flat> flats;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    for (const auto& t : frames[f].truths) {
      if (t.label == label) ++total_truths;
    }
    for (std::size_t d = 0; d < frames[f].detections.size(); ++d) {
      if (frames[f].detections[d].label == label) {
        flats.push_back(Flat{frames[f].detections[d].confidence, f, d});
      }
    }
  }
  if (total_truths == 0) return {};
  std::sort(flats.begin(), flats.end(), [](const Flat& a, const Flat& b) {
    return a.confidence > b.confidence;
  });

  // Greedy global matching: walk detections by descending confidence and let
  // each claim its best unclaimed same-frame truth.
  std::vector<std::vector<bool>> truth_used(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    truth_used[f].assign(frames[f].truths.size(), false);
  }

  std::vector<PrPoint> curve;
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (const auto& flat : flats) {
    const auto& det = frames[flat.frame].detections[flat.index];
    double best_iou = 0.0;
    std::size_t best_truth = 0;
    bool found = false;
    const auto& truths = frames[flat.frame].truths;
    for (std::size_t t = 0; t < truths.size(); ++t) {
      if (truths[t].label != label || truth_used[flat.frame][t]) continue;
      const double iou = geometry::Iou(det.box, truths[t].box);
      if (iou >= iou_threshold && iou > best_iou) {
        best_iou = iou;
        best_truth = t;
        found = true;
      }
    }
    if (found) {
      truth_used[flat.frame][best_truth] = true;
      ++tp;
    } else {
      ++fp;
    }
    curve.push_back(PrPoint{
        static_cast<double>(tp) / static_cast<double>(total_truths),
        static_cast<double>(tp) / static_cast<double>(tp + fp),
        flat.confidence});
  }
  return curve;
}

double AveragePrecision(std::span<const FrameEval> frames,
                        const std::string& label, double iou_threshold) {
  const auto curve = PrecisionRecallCurve(frames, label, iou_threshold);
  if (curve.empty()) return 0.0;
  // All-points interpolation: precision at recall r is the max precision at
  // any recall >= r; AP is the area under that staircase.
  std::vector<double> precision(curve.size());
  double running_max = 0.0;
  for (std::size_t i = curve.size(); i-- > 0;) {
    running_max = std::max(running_max, curve[i].precision);
    precision[i] = running_max;
  }
  double ap = 0.0;
  double prev_recall = 0.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    ap += (curve[i].recall - prev_recall) * precision[i];
    prev_recall = curve[i].recall;
  }
  return ap;
}

double MeanAveragePrecision(std::span<const FrameEval> frames,
                            double iou_threshold) {
  std::set<std::string> labels;
  for (const auto& frame : frames) {
    for (const auto& t : frame.truths) labels.insert(t.label);
  }
  if (labels.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& label : labels) {
    sum += AveragePrecision(frames, label, iou_threshold);
  }
  return sum / static_cast<double>(labels.size());
}

MatchResult MatchFrame(const FrameEval& frame, double iou_threshold) {
  std::vector<std::size_t> order(frame.detections.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return frame.detections[a].confidence > frame.detections[b].confidence;
  });
  MatchResult result;
  result.truth_matched.assign(frame.truths.size(), false);
  result.detection_correct.assign(frame.detections.size(), false);
  for (const std::size_t d : order) {
    const auto& det = frame.detections[d];
    double best_iou = 0.0;
    std::size_t best_truth = 0;
    bool found = false;
    for (std::size_t t = 0; t < frame.truths.size(); ++t) {
      if (result.truth_matched[t] || frame.truths[t].label != det.label) {
        continue;
      }
      const double iou = geometry::Iou(det.box, frame.truths[t].box);
      if (iou >= iou_threshold && iou > best_iou) {
        best_iou = iou;
        best_truth = t;
        found = true;
      }
    }
    if (found) {
      result.truth_matched[best_truth] = true;
      result.detection_correct[d] = true;
    }
  }
  return result;
}

std::vector<bool> MatchDetections(const FrameEval& frame,
                                  double iou_threshold) {
  return MatchFrame(frame, iou_threshold).detection_correct;
}

}  // namespace omg::eval
