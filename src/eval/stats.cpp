#include "eval/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace omg::eval {

using common::Check;

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleStddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double Percentile(std::span<const double> values, double p) {
  Check(!values.empty(), "Percentile of empty span");
  common::CheckInRange(p, 0.0, 100.0, "percentile");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double PercentileRank(std::span<const double> values, double value) {
  Check(!values.empty(), "PercentileRank of empty span");
  std::size_t below = 0;
  std::size_t ties = 0;
  for (double v : values) {
    if (v < value) ++below;
    if (v == value) ++ties;
  }
  return 100.0 *
         (static_cast<double>(below) + 0.5 * static_cast<double>(ties)) /
         static_cast<double>(values.size());
}

double Min(std::span<const double> values) {
  Check(!values.empty(), "Min of empty span");
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  Check(!values.empty(), "Max of empty span");
  return *std::max_element(values.begin(), values.end());
}

TrialSummary Summarize(std::span<const double> trial_values) {
  TrialSummary summary;
  summary.trials = trial_values.size();
  summary.mean = Mean(trial_values);
  if (summary.trials >= 2) {
    summary.stderr_mean = SampleStddev(trial_values) /
                          std::sqrt(static_cast<double>(summary.trials));
  }
  return summary;
}

}  // namespace omg::eval
