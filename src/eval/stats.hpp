// Scalar statistics used across the benches: means, percentiles, and
// percentile ranks (Figure 3 plots errors by confidence percentile).
#pragma once

#include <span>
#include <vector>

namespace omg::eval {

/// Arithmetic mean; 0 for an empty span.
double Mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 when size < 2.
double SampleStddev(std::span<const double> values);

/// p-th percentile (p in [0, 100]) with linear interpolation between order
/// statistics. Requires a non-empty span.
double Percentile(std::span<const double> values, double p);

/// Percentile rank of `value` within `values`: the percentage of entries
/// strictly below `value` plus half the ties (midrank convention).
/// Requires a non-empty span. Result is in [0, 100].
double PercentileRank(std::span<const double> values, double value);

/// Min / max helpers (require non-empty spans).
double Min(std::span<const double> values);
double Max(std::span<const double> values);

/// Summary of repeated trials: mean and the standard error of the mean.
struct TrialSummary {
  double mean = 0.0;
  double stderr_mean = 0.0;
  std::size_t trials = 0;
};

/// Aggregates per-trial scalars.
TrialSummary Summarize(std::span<const double> trial_values);

}  // namespace omg::eval
