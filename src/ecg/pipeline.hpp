// ECG pipeline: generator + classifier + the 30 s assertion, wired for
// single-assertion active learning (Figure 5), weak supervision (Table 4)
// and precision measurement (Table 3).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bandit/active_learning.hpp"
#include "ecg/ecg.hpp"
#include "video/pipeline.hpp"  // WeakSupervisionResult, AssertionPrecisionSample

namespace omg::ecg {

/// Scaled-down analogue of the paper's CINC17 splits (Appendix C).
struct EcgPipelineConfig {
  EcgConfig generator;
  EcgClassifierConfig classifier;
  std::size_t pool_records = 60;
  std::size_t test_records = 25;
  std::size_t pretrain_windows = 700;
  double temporal_threshold = 30.0;
  std::uint64_t world_seed = 7;
};

/// Active-learning problem over ECG windows with the single ECG assertion.
class EcgPipeline final : public bandit::ActiveLearningProblem {
 public:
  explicit EcgPipeline(EcgPipelineConfig config);

  // --- bandit::ActiveLearningProblem ---
  std::size_t PoolSize() const override { return pool_.size(); }
  core::SeverityMatrix ComputeSeverities() override;
  std::vector<double> Confidences() override;
  void LabelAndTrain(std::span<const std::size_t> indices) override;
  double Evaluate() override;
  void Reset(std::uint64_t seed) override;

  // --- direct access ---
  const EcgPipelineConfig& config() const { return config_; }
  const std::vector<EcgWindow>& pool() const { return pool_; }
  const std::vector<EcgWindow>& test() const { return test_; }
  EcgClassifier& classifier() { return *classifier_; }
  EcgSuite& suite() { return suite_; }
  const nn::Dataset& pretrain_set() const { return pretrain_set_; }

  /// Current predictions over `windows`, packaged for the assertion layer.
  std::vector<EcgExample> MakeExamples(
      std::span<const EcgWindow> windows) const;

  /// Classification accuracy over `windows`.
  double EvaluateAccuracy(std::span<const EcgWindow> windows) const;

 private:
  EcgPipelineConfig config_;
  EcgGenerator generator_;
  std::vector<EcgWindow> pool_;
  std::vector<EcgWindow> test_;
  nn::Dataset pretrain_set_;
  std::unique_ptr<EcgClassifier> classifier_;
  EcgSuite suite_;
  nn::Dataset labeled_;
};

/// §5.5 ECG protocol: windows inside flagged brief episodes get the
/// neighbouring episode's class as a weak label (the "most common value"
/// correction); fine-tune on up to `max_weak_labels` of them and compare
/// test accuracy.
video::WeakSupervisionResult RunEcgWeakSupervision(
    EcgPipeline& pipeline, std::size_t max_weak_labels, std::uint64_t seed);

/// Table 3 precision: a firing counts as correct when some window within
/// the temporal threshold of the flagged window is misclassified (a brief
/// predicted episode always sits on a real model error in this protocol —
/// either the episode windows or their neighbours are wrong, since true
/// rhythms never change twice within 30 s).
std::vector<video::AssertionPrecisionSample> MeasureEcgAssertionPrecision(
    EcgPipeline& pipeline, std::size_t sample_size, std::uint64_t seed);

}  // namespace omg::ecg
