#include "ecg/ecg.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace omg::ecg {

using common::Check;

std::string RhythmName(Rhythm rhythm) {
  switch (rhythm) {
    case Rhythm::kNormal:
      return "normal";
    case Rhythm::kAf:
      return "af";
    case Rhythm::kOther:
      return "other";
  }
  return "unknown";
}

namespace {

// Feature geometry. Clean records carry the class signal in dims 0-1.
// Noisy-signal (hard) records — absent from the pretraining hospital — have
// that signal strongly attenuated; their class information lives mostly in
// dims 3-4 (a different morphology the pretrained model never learned),
// with dim 2 marking the sub-population. A model trained on clean data
// therefore performs modestly on hard records and its per-window errors
// oscillate; labels on hard windows teach dims 3-4 and recover accuracy.
constexpr double kClassMeans[kNumRhythms][2] = {
    {2.0, 0.0}, {-1.0, 1.7}, {-1.0, -1.7}};
constexpr double kCleanNoise = 0.55;
constexpr double kHardNoise = 0.85;
constexpr double kHardShrink = 0.30;    // attenuation of dims 0-1
constexpr double kHardAltScale = 1.15;  // class signal in dims 3-4
constexpr double kHardMarker = 2.0;     // dim 2 mean for hard records
constexpr std::size_t kNumArchetypes = 8;
constexpr double kMarkerSpread = 1.5;   // archetype markers in dims 5-6

}  // namespace

EcgGenerator::EcgGenerator(EcgConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  Check(config_.feature_dim >= 7, "feature_dim must be >= 7");
  Check(config_.mean_dwell_seconds >= 30.0,
        "true rhythm dwell must respect the 30 s guideline");
  for (std::size_t k = 0; k < kNumArchetypes; ++k) {
    archetype_angles_.push_back(rng_.Uniform(0.0, 2.0 * 3.14159265358979));
    archetype_markers_.push_back({rng_.Normal(0.0, kMarkerSpread),
                                  rng_.Normal(0.0, kMarkerSpread)});
  }
}

std::vector<double> EcgGenerator::WindowFeatures(
    Rhythm rhythm, bool hard, std::size_t archetype,
    std::span<const double> patient_offset) {
  std::vector<double> f(config_.feature_dim, 0.0);
  const auto c = static_cast<std::size_t>(rhythm);
  const double shrink = hard ? kHardShrink : 1.0;
  const double noise = hard ? kHardNoise : kCleanNoise;
  const double angle = hard ? archetype_angles_[archetype] : 0.0;
  // Archetype-specific rotation of the class signal: the model must learn
  // each archetype's orientation separately (conditioned on the dims 5-6
  // marker) rather than one global rule.
  const double rot_x = kHardAltScale * (std::cos(angle) * kClassMeans[c][0] -
                                        std::sin(angle) * kClassMeans[c][1]);
  const double rot_y = kHardAltScale * (std::sin(angle) * kClassMeans[c][0] +
                                        std::cos(angle) * kClassMeans[c][1]);
  for (std::size_t d = 0; d < config_.feature_dim; ++d) {
    double base = 0.0;
    if (d < 2) base = shrink * kClassMeans[c][d];
    if (d == 2) base = hard ? kHardMarker : 0.0;
    if (hard && d == 3) base = rot_x;
    if (hard && d == 4) base = rot_y;
    if (hard && (d == 5 || d == 6)) {
      base = archetype_markers_[archetype][d - 5];
    }
    f[d] = base + patient_offset[d] + rng_.Normal(0.0, noise);
  }
  return f;
}

std::vector<EcgWindow> EcgGenerator::GenerateRecords(std::size_t count) {
  std::vector<EcgWindow> windows;
  windows.reserve(count * config_.windows_per_record);
  for (std::size_t r = 0; r < count; ++r) {
    const std::string record_name =
        "record-" + std::to_string(record_counter_++);
    const bool hard = rng_.Bernoulli(config_.frac_hard_records);
    const auto archetype = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(kNumArchetypes) - 1));
    std::vector<double> patient_offset(config_.feature_dim, 0.0);
    for (double& o : patient_offset) o = rng_.Normal(0.0, 0.3);

    // Semi-Markov rhythm process with dwell >= 30 s.
    auto next_dwell = [&] {
      return 30.0 +
             rng_.Exponential(1.0 /
                              std::max(1.0, config_.mean_dwell_seconds - 30.0));
    };
    auto rhythm = static_cast<Rhythm>(rng_.UniformInt(0, kNumRhythms - 1));
    double dwell_left = next_dwell();

    for (std::size_t w = 0; w < config_.windows_per_record; ++w) {
      EcgWindow window;
      window.record = record_name;
      window.window_index = w;
      window.timestamp = static_cast<double>(w) * config_.window_seconds;
      window.truth = rhythm;
      window.hard_record = hard;
      window.features = WindowFeatures(rhythm, hard, archetype, patient_offset);
      windows.push_back(std::move(window));

      dwell_left -= config_.window_seconds;
      if (dwell_left <= 0.0) {
        // Switch to a different rhythm.
        const auto current = static_cast<std::size_t>(rhythm);
        const auto step = static_cast<std::size_t>(
            rng_.UniformInt(1, kNumRhythms - 1));
        rhythm = static_cast<Rhythm>((current + step) % kNumRhythms);
        dwell_left = next_dwell();
      }
    }
  }
  return windows;
}

nn::Dataset EcgGenerator::PretrainingSet(std::size_t count_windows) {
  nn::Dataset data;
  while (data.size() < count_windows) {
    std::vector<double> patient_offset(config_.feature_dim, 0.0);
    for (double& o : patient_offset) o = rng_.Normal(0.0, 0.3);
    const auto rhythm =
        static_cast<Rhythm>(rng_.UniformInt(0, kNumRhythms - 1));
    // Clean-records-only pretraining distribution.
    data.Add(WindowFeatures(rhythm, /*hard=*/false, /*archetype=*/0,
                            patient_offset),
             static_cast<std::size_t>(rhythm));
  }
  return data;
}

namespace {

nn::MlpConfig MakeMlpConfig(const EcgClassifierConfig& config,
                            std::size_t feature_dim) {
  nn::MlpConfig mlp;
  mlp.input_dim = feature_dim;
  mlp.hidden = config.hidden;
  mlp.num_classes = kNumRhythms;
  return mlp;
}

}  // namespace

EcgClassifier::EcgClassifier(EcgClassifierConfig config,
                             std::size_t feature_dim, std::uint64_t seed)
    : config_(std::move(config)),
      train_rng_(seed),
      model_(MakeMlpConfig(config_, feature_dim), train_rng_) {}

void EcgClassifier::Pretrain(const nn::Dataset& data) {
  nn::SoftmaxTrainer trainer(config_.pretrain_sgd);
  trainer.Train(model_, data, train_rng_);
}

void EcgClassifier::FineTune(const nn::Dataset& data) {
  FineTune(data, config_.finetune_sgd);
}

void EcgClassifier::FineTune(const nn::Dataset& data,
                             const nn::SgdConfig& sgd) {
  nn::SoftmaxTrainer trainer(sgd);
  trainer.Train(model_, data, train_rng_);
}

void EcgClassifier::SetModel(nn::Mlp model) {
  common::Check(model.config().input_dim == model_.config().input_dim &&
                    model.config().num_classes == model_.config().num_classes,
                "swapped-in model shape mismatch");
  model_ = std::move(model);
}

Rhythm EcgClassifier::Predict(const EcgWindow& window) const {
  return static_cast<Rhythm>(model_.Predict(window.features));
}

double EcgClassifier::Confidence(const EcgWindow& window) const {
  return model_.Confidence(window.features);
}

core::ConsistencyExtraction ExtractEcgRecords(
    std::span<const EcgExample> examples) {
  core::ConsistencyExtraction extraction;
  for (std::size_t e = 0; e < examples.size(); ++e) {
    extraction.frames.push_back(core::ConsistencyFrame{
        e, examples[e].timestamp, examples[e].record});
    core::ConsistencyRecord record;
    record.example_index = e;
    record.output_index = 0;
    record.timestamp = examples[e].timestamp;
    record.group = examples[e].record;
    record.identifier = "class-" + RhythmName(examples[e].predicted);
    extraction.records.push_back(std::move(record));
  }
  return extraction;
}

EcgSuite BuildEcgSuite(double temporal_threshold) {
  EcgSuite built;
  core::ConsistencyConfig config;
  config.temporal_threshold = temporal_threshold;
  built.consistency = std::make_shared<core::ConsistencyAnalyzer<EcgExample>>(
      config, [](std::span<const EcgExample> examples) {
        return ExtractEcgRecords(examples);
      });
  // The engine generates {flicker, appear}; the deployed ECG assertion is
  // the `appear` column (a class present for < T seconds between absences
  // is exactly an A -> B -> A oscillation within T).
  built.suite.Add(std::make_unique<core::GeneratedConsistencyAssertion<
                      EcgExample>>("ECG", built.consistency, 1));
  return built;
}

}  // namespace omg::ecg
