// Declarative-config registration of the ECG assertion.
//
// `[ecg.oscillation]` reproduces BuildEcgSuite exactly.
#pragma once

#include "config/assertion_factory.hpp"
#include "ecg/ecg.hpp"

namespace omg::ecg {

/// Registers the deployed ECG assertion:
///   * `ecg.oscillation` { temporal_threshold } — the consistency-generated
///     "ECG" assertion (Id = predicted class, T = 30 s by default): a class
///     present for < T seconds between absences is an A -> B -> A
///     oscillation, which the ESC guideline forbids calling.
void RegisterEcgAssertions(config::AssertionFactory<EcgExample>& factory);

}  // namespace omg::ecg
