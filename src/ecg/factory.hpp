// Declarative-config + facade registration of the ECG assertion.
//
// `[ecg.oscillation]` reproduces BuildEcgSuite exactly. The DomainTraits
// specialization makes EcgExample servable through the type-erased
// serve::Monitor facade; RegisterEcgDomain exposes the factory as the
// facade's "ecg" domain.
#pragma once

#include <string>
#include <string_view>

#include "config/assertion_factory.hpp"
#include "ecg/ecg.hpp"
#include "serve/any_example.hpp"
#include "serve/domain_registry.hpp"

namespace omg::serve {

/// Facade identity of EcgExample: domain tag "ecg"; the severity hint is 1
/// for an abnormal-rhythm prediction (AF / other), 0 for normal — the
/// importance signal a ward-level producer has before any scoring.
template <>
struct DomainTraits<ecg::EcgExample> {
  static constexpr std::string_view kDomain = "ecg";
  static double SeverityHint(const ecg::EcgExample& example);
  static std::string DebugString(const ecg::EcgExample& example);
};

}  // namespace omg::serve

namespace omg::ecg {

/// Registers the deployed ECG assertion:
///   * `ecg.oscillation` { temporal_threshold } — the consistency-generated
///     "ECG" assertion (Id = predicted class, T = 30 s by default): a class
///     present for < T seconds between absences is an A -> B -> A
///     oscillation, which the ESC guideline forbids calling.
void RegisterEcgAssertions(config::AssertionFactory<EcgExample>& factory);

/// Registers the "ecg" domain with the facade registry: erased builders
/// over RegisterEcgAssertions (event names qualified "ecg/...").
void RegisterEcgDomain(serve::DomainRegistry& registry);

}  // namespace omg::ecg
