#include "ecg/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.hpp"

namespace omg::ecg {

using common::Check;

EcgPipeline::EcgPipeline(EcgPipelineConfig config)
    : config_(std::move(config)),
      generator_(config_.generator, config_.world_seed),
      suite_(BuildEcgSuite(config_.temporal_threshold)) {
  pool_ = generator_.GenerateRecords(config_.pool_records);
  test_ = generator_.GenerateRecords(config_.test_records);
  pretrain_set_ = generator_.PretrainingSet(config_.pretrain_windows);
  Reset(config_.world_seed ^ 0x9E3779B97F4A7C15ULL);
}

void EcgPipeline::Reset(std::uint64_t seed) {
  classifier_ = std::make_unique<EcgClassifier>(
      config_.classifier, config_.generator.feature_dim, seed);
  classifier_->Pretrain(pretrain_set_);
  labeled_ = nn::Dataset{};
  suite_.consistency->Invalidate();
}

std::vector<EcgExample> EcgPipeline::MakeExamples(
    std::span<const EcgWindow> windows) const {
  std::vector<EcgExample> examples;
  examples.reserve(windows.size());
  for (const auto& window : windows) {
    EcgExample example;
    example.record = window.record;
    example.timestamp = window.timestamp;
    example.predicted = classifier_->Predict(window);
    examples.push_back(std::move(example));
  }
  return examples;
}

core::SeverityMatrix EcgPipeline::ComputeSeverities() {
  suite_.consistency->Invalidate();
  const std::vector<EcgExample> examples = MakeExamples(pool_);
  return suite_.suite.CheckAll(examples);
}

std::vector<double> EcgPipeline::Confidences() {
  std::vector<double> confidences;
  confidences.reserve(pool_.size());
  for (const auto& window : pool_) {
    confidences.push_back(classifier_->Confidence(window));
  }
  return confidences;
}

void EcgPipeline::LabelAndTrain(std::span<const std::size_t> indices) {
  for (const std::size_t i : indices) {
    Check(i < pool_.size(), "label index out of range");
    labeled_.Add(pool_[i].features,
                 static_cast<std::size_t>(pool_[i].truth));
  }
  if (labeled_.empty()) return;
  // Retrain with the original training split replayed alongside the new
  // labels, as the paper's per-domain training code does — fine-tuning on
  // the flagged distribution alone would forget the clean population.
  nn::Dataset combined = pretrain_set_;
  combined.Append(labeled_);
  classifier_->FineTune(combined);
}

double EcgPipeline::EvaluateAccuracy(
    std::span<const EcgWindow> windows) const {
  if (windows.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& window : windows) {
    if (classifier_->Predict(window) == window.truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(windows.size());
}

double EcgPipeline::Evaluate() { return EvaluateAccuracy(test_); }

video::WeakSupervisionResult RunEcgWeakSupervision(
    EcgPipeline& pipeline, std::size_t max_weak_labels, std::uint64_t seed) {
  common::Rng rng(seed);
  pipeline.Reset(seed);
  video::WeakSupervisionResult result;
  result.pretrained_metric = pipeline.Evaluate();

  EcgSuite& suite = pipeline.suite();
  suite.consistency->Invalidate();
  const std::vector<EcgExample> examples =
      pipeline.MakeExamples(pipeline.pool());
  (void)suite.suite.CheckAll(examples);
  const auto& corrections = suite.consistency->Corrections(examples);

  // Weak label for a brief-episode window: the surrounding episode's class
  // (the mode of the identifier's neighbourhood — the paper's default
  // correction rule). We require the classes before and after the episode
  // to agree (the A -> B -> A pattern) so each weak label has two
  // independent witnesses.
  // Trust only records where the model is mostly coherent: a record whose
  // predictions oscillate massively offers no reliable "surrounding class"
  // to borrow, so its corrections are skipped (the paper's weak labels
  // likewise smooth occasional blips, not wholesale confusion).
  std::map<std::string, std::size_t> removals_per_record;
  for (const auto& correction : corrections) {
    if (correction.kind == core::CorrectionKind::kRemoveOutput) {
      ++removals_per_record[examples[correction.example_index].record];
    }
  }
  constexpr std::size_t kMaxRemovalsPerTrustedRecord = 6;

  nn::Dataset weak;
  std::vector<std::size_t> correction_order(corrections.size());
  for (std::size_t i = 0; i < correction_order.size(); ++i) {
    correction_order[i] = i;
  }
  rng.Shuffle(correction_order);
  for (const std::size_t c : correction_order) {
    if (result.weak_positives >= max_weak_labels) break;
    const auto& correction = corrections[c];
    if (correction.kind != core::CorrectionKind::kRemoveOutput) continue;
    if (removals_per_record[examples[correction.example_index].record] >
        kMaxRemovalsPerTrustedRecord) {
      continue;
    }
    const std::size_t e = correction.example_index;
    const Rhythm episode_class = examples[e].predicted;
    const auto& record = examples[e].record;
    // Scan both ways within the record for the surrounding classes, and
    // keep track of how confident the model is in those witnesses.
    Rhythm before = episode_class, after = episode_class;
    double before_confidence = 0.0, after_confidence = 0.0;
    for (std::size_t probe = e; probe > 0; --probe) {
      if (examples[probe - 1].record != record) break;
      if (examples[probe - 1].predicted != episode_class) {
        before = examples[probe - 1].predicted;
        before_confidence =
            pipeline.classifier().Confidence(pipeline.pool()[probe - 1]);
        break;
      }
    }
    for (std::size_t probe = e + 1; probe < examples.size(); ++probe) {
      if (examples[probe].record != record) break;
      if (examples[probe].predicted != episode_class) {
        after = examples[probe].predicted;
        after_confidence =
            pipeline.classifier().Confidence(pipeline.pool()[probe]);
        break;
      }
    }
    // Accept only corrections whose two witnesses agree and are confident;
    // on severely degraded records the witnesses are themselves guesses
    // and the proposed label would be noise.
    if (before == episode_class || before != after) continue;
    if (before_confidence < 0.8 || after_confidence < 0.8) continue;
    weak.Add(pipeline.pool()[e].features, static_cast<std::size_t>(before),
             1.0);
    ++result.weak_positives;
  }

  // Fine-tune with the original training split replayed at reduced weight
  // so the weak labels refine rather than overwrite the model.
  if (!weak.empty()) {
    nn::Dataset combined = pipeline.pretrain_set();
    combined.Append(weak);
    // A gentle pass, mirroring the paper's tiny weak-supervision learning
    // rate (5e-6 for 6 epochs on the real ECG net).
    pipeline.classifier().FineTune(combined,
                                   nn::SgdConfig{0.005, 0.9, 1e-4, 32, 5});
  }
  result.weakly_supervised_metric = pipeline.Evaluate();
  return result;
}

std::vector<video::AssertionPrecisionSample> MeasureEcgAssertionPrecision(
    EcgPipeline& pipeline, std::size_t sample_size, std::uint64_t seed) {
  common::Rng rng(seed);
  EcgSuite& suite = pipeline.suite();
  suite.consistency->Invalidate();
  const std::vector<EcgExample> examples =
      pipeline.MakeExamples(pipeline.pool());
  const core::SeverityMatrix severities = suite.suite.CheckAll(examples);

  video::AssertionPrecisionSample sample;
  sample.assertion = "ECG";
  std::vector<std::size_t> fired = severities.ExamplesFiring(0);
  rng.Shuffle(fired);
  if (fired.size() > sample_size) fired.resize(sample_size);
  sample.sampled = fired.size();

  const double threshold = pipeline.config().temporal_threshold;
  for (const std::size_t e : fired) {
    bool error_nearby = false;
    for (std::size_t probe = 0; probe < pipeline.pool().size(); ++probe) {
      if (pipeline.pool()[probe].record != pipeline.pool()[e].record) {
        continue;
      }
      if (std::abs(pipeline.pool()[probe].timestamp -
                   pipeline.pool()[e].timestamp) > threshold) {
        continue;
      }
      if (examples[probe].predicted != pipeline.pool()[probe].truth) {
        error_nearby = true;
        break;
      }
    }
    if (error_nearby) {
      ++sample.correct_model_output;
      ++sample.correct_with_identifier;
    }
  }
  return {sample};
}

}  // namespace omg::ecg
