// Synthetic CINC17-like ECG substrate + the 30-second consistency assertion.
//
// The paper's medical task classifies atrial fibrillation (AF) from
// single-lead ECG with a deep network whose predictions can rapidly
// oscillate; ESC guidelines require >= 30 s of signal before calling AF, so
// the deployed assertion fires when the classification changes A -> B -> A
// within 30 seconds (§2.2, §4.1: Id = detected class, T = 30 s).
//
// The simulator produces records (patients) whose true rhythm follows a
// semi-Markov chain with dwell times >= 30 s (the guideline makes shorter
// true episodes non-diagnosable, so ground truth never violates the rule).
// Each record is split into fixed-length windows with class-conditional
// feature vectors; a "noisy-signal" patient sub-population — absent from
// the pretraining hospital's data — pushes windows toward the decision
// boundary, which is what makes deployed predictions oscillate.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/assertion.hpp"
#include "core/consistency_adapter.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

namespace omg::ecg {

/// Rhythm classes (CINC17 uses normal / AF / other / noisy; we keep three).
enum class Rhythm : std::size_t { kNormal = 0, kAf = 1, kOther = 2 };
inline constexpr std::size_t kNumRhythms = 3;

/// Human-readable class name.
std::string RhythmName(Rhythm rhythm);

/// One classification window of one record.
struct EcgWindow {
  std::string record;
  std::size_t window_index = 0;
  double timestamp = 0.0;  ///< seconds from record start
  std::vector<double> features;
  Rhythm truth = Rhythm::kNormal;
  /// True when the record comes from the noisy-signal sub-population.
  bool hard_record = false;
};

/// Generator parameters.
struct EcgConfig {
  double window_seconds = 10.0;
  std::size_t windows_per_record = 36;  ///< 6-minute records
  /// Mean dwell time of a rhythm state, seconds (minimum is 30 s).
  double mean_dwell_seconds = 90.0;
  /// Fraction of records from the noisy-signal sub-population.
  double frac_hard_records = 0.35;
  std::size_t feature_dim = 8;
};

/// Deterministic ECG record generator.
class EcgGenerator {
 public:
  EcgGenerator(EcgConfig config, std::uint64_t seed);

  const EcgConfig& config() const { return config_; }

  /// Generates `count` records' windows, concatenated in record order.
  std::vector<EcgWindow> GenerateRecords(std::size_t count);

  /// Pretraining set: windows from clean records only.
  nn::Dataset PretrainingSet(std::size_t count_windows);

 private:
  std::vector<double> WindowFeatures(Rhythm rhythm, bool hard,
                                     std::size_t archetype,
                                     std::span<const double> patient_offset);

  EcgConfig config_;
  common::Rng rng_;
  /// Per-archetype rotation angle of the hard-record class signal (dims
  /// 3-4) and archetype marker centres (dims 5-6). Hard records come in a
  /// handful of noise archetypes; labels on one archetype do not fix the
  /// others, so targeted sampling keeps paying off across rounds.
  std::vector<double> archetype_angles_;
  std::vector<std::array<double, 2>> archetype_markers_;
  std::size_t record_counter_ = 0;
};

/// Trainable window classifier (the ECG ResNet stand-in).
struct EcgClassifierConfig {
  std::vector<std::size_t> hidden = {24};
  nn::SgdConfig pretrain_sgd{0.08, 0.9, 1e-4, 32, 40};
  nn::SgdConfig finetune_sgd{0.03, 0.9, 1e-4, 32, 12};
};

class EcgClassifier {
 public:
  EcgClassifier(EcgClassifierConfig config, std::size_t feature_dim,
                std::uint64_t seed);

  void Pretrain(const nn::Dataset& data);
  void FineTune(const nn::Dataset& data);
  /// Fine-tunes with caller-provided hyper-parameters (used by the gentler
  /// weak-supervision pass).
  void FineTune(const nn::Dataset& data, const nn::SgdConfig& sgd);

  Rhythm Predict(const EcgWindow& window) const;
  double Confidence(const EcgWindow& window) const;

  /// Replaces the scoring model (hot-swap pickup from a loop::ModelRegistry;
  /// the architecture must match the current one).
  void SetModel(nn::Mlp model);
  const nn::Mlp& model() const { return model_; }

 private:
  EcgClassifierConfig config_;
  common::Rng train_rng_;
  nn::Mlp model_;
};

/// One window as the assertion layer sees it: the prediction stream.
struct EcgExample {
  std::string record;
  double timestamp = 0.0;
  Rhythm predicted = Rhythm::kNormal;
};

/// The ECG suite holds the single deployed assertion (named "ECG"),
/// generated through the consistency API with Id = predicted class and
/// T = 30 s: a class that appears for less than 30 s between absences is an
/// A -> B -> A oscillation.
struct EcgSuite {
  core::AssertionSuite<EcgExample> suite;
  std::shared_ptr<core::ConsistencyAnalyzer<EcgExample>> consistency;
};

/// Builds the suite. `temporal_threshold` defaults to the guideline's 30 s.
EcgSuite BuildEcgSuite(double temporal_threshold = 30.0);

/// The consistency extractor (Id = predicted class, group = record).
core::ConsistencyExtraction ExtractEcgRecords(
    std::span<const EcgExample> examples);

}  // namespace omg::ecg
