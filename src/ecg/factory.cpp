#include "ecg/factory.hpp"

#include <memory>
#include <ostream>
#include <span>
#include <utility>

#include "common/table.hpp"
#include "core/consistency.hpp"
#include "core/consistency_adapter.hpp"
#include "serve/domains.hpp"

namespace omg::serve {

double DomainTraits<ecg::EcgExample>::SeverityHint(
    const ecg::EcgExample& example) {
  return example.predicted == ecg::Rhythm::kNormal ? 0.0 : 1.0;
}

std::string DomainTraits<ecg::EcgExample>::DebugString(
    const ecg::EcgExample& example) {
  return "ecg record " + example.record + " @" +
         common::FormatDouble(example.timestamp, 1) + "s, predicted " +
         ecg::RhythmName(example.predicted);
}

}  // namespace omg::serve

namespace omg::ecg {

void RegisterEcgAssertions(config::AssertionFactory<EcgExample>& factory) {
  factory.Register(
      "ecg.oscillation",
      "the 30-second consistency assertion (named \"ECG\"): fires when the "
      "predicted class changes A -> B -> A within T seconds",
      {{"temporal_threshold", config::ParamType::kDouble, "30.0",
        "T in seconds (the ESC guideline's 30 s)"}},
      [](const config::SpecSection& params,
         config::AssertionFactory<EcgExample>::BuildContext& context) {
        core::ConsistencyConfig consistency;
        consistency.temporal_threshold =
            params.GetDouble("temporal_threshold", 30.0);
        auto analyzer = std::make_shared<core::ConsistencyAnalyzer<EcgExample>>(
            consistency, [](std::span<const EcgExample> examples) {
              return ExtractEcgRecords(examples);
            });
        // As in BuildEcgSuite: the deployed assertion is the `appear`
        // column (index 1) of the generated {flicker, appear} pair.
        context.suite.Add(
            std::make_unique<core::GeneratedConsistencyAssertion<EcgExample>>(
                "ECG", analyzer, 1));
        context.invalidators.push_back([analyzer] { analyzer->Invalidate(); });
      });
}

void RegisterEcgDomain(serve::DomainRegistry& registry) {
  serve::RegisterDomain<EcgExample>(registry, "ecg",
                                   &RegisterEcgAssertions);
}

}  // namespace omg::ecg
