#include "ecg/factory.hpp"

#include <memory>
#include <span>

#include "core/consistency.hpp"
#include "core/consistency_adapter.hpp"

namespace omg::ecg {

void RegisterEcgAssertions(config::AssertionFactory<EcgExample>& factory) {
  factory.Register(
      "ecg.oscillation",
      "the 30-second consistency assertion (named \"ECG\"): fires when the "
      "predicted class changes A -> B -> A within T seconds",
      {{"temporal_threshold", config::ParamType::kDouble, "30.0",
        "T in seconds (the ESC guideline's 30 s)"}},
      [](const config::SpecSection& params,
         config::AssertionFactory<EcgExample>::BuildContext& context) {
        core::ConsistencyConfig consistency;
        consistency.temporal_threshold =
            params.GetDouble("temporal_threshold", 30.0);
        auto analyzer = std::make_shared<core::ConsistencyAnalyzer<EcgExample>>(
            consistency, [](std::span<const EcgExample> examples) {
              return ExtractEcgRecords(examples);
            });
        // As in BuildEcgSuite: the deployed assertion is the `appear`
        // column (index 1) of the generated {flicker, appear} pair.
        context.suite.Add(
            std::make_unique<core::GeneratedConsistencyAssertion<EcgExample>>(
                "ECG", analyzer, 1));
        context.invalidators.push_back([analyzer] { analyzer->Invalidate(); });
      });
}

}  // namespace omg::ecg
