// Streaming runtime monitoring (§2.3: "model assertions can be used for
// monitoring and validating all parts of the ML deployment pipeline").
//
// The monitor adapts batch assertions to a live stream: it keeps a sliding
// window of recent examples, re-runs the suite as examples arrive, and emits
// each (example, assertion) firing exactly once — but only after the example
// is `settle_lag` steps behind the stream head, so retroactive assertions
// (flicker needs the *next* frame to fire on the previous one) have settled.
// Callbacks can log, populate a dashboard, or trigger corrective action such
// as disengaging an autopilot.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/assertion.hpp"

namespace omg::core {

/// One emitted firing.
struct MonitorEvent {
  std::size_t example_index = 0;  ///< global stream position
  std::string assertion;
  double severity = 0.0;
};

/// Aggregate monitoring statistics (dashboard feed).
struct MonitorStats {
  std::size_t examples_seen = 0;
  std::size_t events_emitted = 0;
  /// Per-assertion number of examples that fired.
  std::map<std::string, std::size_t> fire_counts;
  /// Per-assertion maximum severity seen.
  std::map<std::string, double> max_severity;
};

/// Sliding-window streaming monitor over an AssertionSuite.
template <typename Example>
class StreamingMonitor {
 public:
  using Callback = std::function<void(const MonitorEvent&)>;

  /// `window` is the number of recent examples assertions see; `settle_lag`
  /// is how far behind the head an example must be before its verdict is
  /// emitted (settle_lag < window).
  StreamingMonitor(AssertionSuite<Example>& suite, std::size_t window,
                   std::size_t settle_lag)
      : suite_(suite), window_(window), settle_lag_(settle_lag) {
    common::Check(window_ >= 1, "window must be >= 1");
    common::Check(settle_lag_ < window_, "settle_lag must be < window");
  }

  /// Registers a callback invoked once per emitted event.
  void OnEvent(Callback callback) {
    callbacks_.push_back(std::move(callback));
  }

  /// Feeds one example; runs the suite over the window and emits settled
  /// verdicts. Returns events emitted by this step.
  std::vector<MonitorEvent> Observe(Example example) {
    window_buffer_.push_back(std::move(example));
    if (window_buffer_.size() > window_) window_buffer_.pop_front();
    ++stats_.examples_seen;
    const std::size_t head = stats_.examples_seen - 1;  // global index

    // Run the suite over the current window (contiguous copy for span).
    scratch_.assign(window_buffer_.begin(), window_buffer_.end());
    SeverityMatrix matrix = suite_.CheckAll(scratch_);
    const std::size_t window_start = head + 1 - scratch_.size();

    std::vector<MonitorEvent> emitted;
    const auto names = suite_.Names();
    for (std::size_t local = 0; local < scratch_.size(); ++local) {
      const std::size_t global = window_start + local;
      if (global + settle_lag_ > head) continue;  // not settled yet
      for (std::size_t a = 0; a < names.size(); ++a) {
        const double severity = matrix.At(local, a);
        if (severity <= 0.0) continue;
        if (!emitted_.insert({global, a}).second) continue;  // once only
        MonitorEvent event{global, names[a], severity};
        ++stats_.events_emitted;
        ++stats_.fire_counts[names[a]];
        auto& max_severity = stats_.max_severity[names[a]];
        if (severity > max_severity) max_severity = severity;
        for (const auto& callback : callbacks_) callback(event);
        emitted.push_back(std::move(event));
      }
    }
    // Garbage-collect emission dedup state that fell out of the window.
    while (!emitted_.empty() &&
           emitted_.begin()->first + window_ < stats_.examples_seen) {
      emitted_.erase(emitted_.begin());
    }
    return emitted;
  }

  const MonitorStats& stats() const { return stats_; }

 private:
  AssertionSuite<Example>& suite_;
  std::size_t window_;
  std::size_t settle_lag_;
  std::deque<Example> window_buffer_;
  std::vector<Example> scratch_;
  std::set<std::pair<std::size_t, std::size_t>> emitted_;
  std::vector<Callback> callbacks_;
  MonitorStats stats_;
};

}  // namespace omg::core
