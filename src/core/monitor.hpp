// Streaming runtime monitoring (§2.3: "model assertions can be used for
// monitoring and validating all parts of the ML deployment pipeline").
//
// The monitor adapts batch assertions to a live stream: it keeps a sliding
// window of recent examples and emits each (example, assertion) firing
// exactly once — when the example is `settle_lag` steps behind the stream
// head, so retroactive assertions (flicker needs the *next* frame to fire on
// the previous one) have settled. Callbacks can log, populate a dashboard,
// or trigger corrective action such as disengaging an autopilot.
//
// Scoring is delegated to core/incremental.hpp: assertions declaring a
// `temporal_radius` are re-scored only over the window suffix a new example
// can affect (pointwise assertions cost O(1) amortized per example);
// assertions without a declared radius — e.g. consistency-generated ones —
// re-score the whole window as the seed monitor did. For the multi-stream,
// multi-threaded serving runtime built on the same evaluator, see
// runtime/service.hpp.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/assertion.hpp"
#include "core/incremental.hpp"

namespace omg::core {

/// One emitted firing.
struct MonitorEvent {
  std::size_t example_index = 0;  ///< global stream position
  std::string assertion;
  double severity = 0.0;
};

/// Aggregate monitoring statistics (dashboard feed).
struct MonitorStats {
  std::size_t examples_seen = 0;
  std::size_t events_emitted = 0;
  /// Per-assertion number of examples that fired.
  std::map<std::string, std::size_t> fire_counts;
  /// Per-assertion maximum severity seen.
  std::map<std::string, double> max_severity;
};

/// Sliding-window streaming monitor over an AssertionSuite.
template <typename Example>
class StreamingMonitor {
 public:
  using Callback = std::function<void(const MonitorEvent&)>;

  /// `window` is the number of recent examples assertions see; `settle_lag`
  /// is how far behind the head an example must be before its verdict is
  /// emitted (settle_lag < window). When the suite contains
  /// consistency-generated assertions, pass their analyzer's Invalidate as
  /// `before_window_eval`: the analyzer memoises on (data pointer, size)
  /// and the monitor's reused window buffer can alias that key across
  /// steps (the alternative, as in the seed, is calling Invalidate by hand
  /// before every Observe).
  StreamingMonitor(AssertionSuite<Example>& suite, std::size_t window,
                   std::size_t settle_lag,
                   std::function<void()> before_window_eval = {})
      : suite_(suite),
        evaluator_(suite,
                   {window, settle_lag, std::move(before_window_eval)}) {}

  /// Registers a callback invoked once per emitted event.
  void OnEvent(Callback callback) {
    callbacks_.push_back(std::move(callback));
  }

  /// Feeds one example and emits newly settled verdicts. Returns events
  /// emitted by this step.
  std::vector<MonitorEvent> Observe(Example example) {
    std::vector<MonitorEvent> emitted;
    evaluator_.Observe(std::move(example),
                       [&](std::size_t global, std::size_t a,
                           double severity) { Emit(global, a, severity,
                                                   emitted); });
    stats_.examples_seen = evaluator_.examples_seen();
    return emitted;
  }

  /// Feeds a batch of examples at once (amortizes suffix re-scoring for
  /// stream-level assertions). Returns events emitted by the batch.
  std::vector<MonitorEvent> ObserveBatch(std::vector<Example> batch) {
    std::vector<MonitorEvent> emitted;
    evaluator_.ObserveBatch(std::move(batch),
                            [&](std::size_t global, std::size_t a,
                                double severity) { Emit(global, a, severity,
                                                        emitted); });
    stats_.examples_seen = evaluator_.examples_seen();
    return emitted;
  }

  const MonitorStats& stats() const { return stats_; }

 private:
  void Emit(std::size_t global, std::size_t assertion_index, double severity,
            std::vector<MonitorEvent>& emitted) {
    const std::string& name = suite_.at(assertion_index).name();
    MonitorEvent event{global, name, severity};
    ++stats_.events_emitted;
    ++stats_.fire_counts[name];
    auto& max_severity = stats_.max_severity[name];
    if (severity > max_severity) max_severity = severity;
    for (const auto& callback : callbacks_) callback(event);
    emitted.push_back(std::move(event));
  }

  AssertionSuite<Example>& suite_;
  IncrementalWindowEvaluator<Example> evaluator_;
  std::vector<Callback> callbacks_;
  MonitorStats stats_;
};

}  // namespace omg::core
