// Human-readable summaries of assertion results — the "populate a
// dashboard" use of §2.3. Renders severity matrices and monitor statistics
// as aligned tables.
#pragma once

#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/severity_matrix.hpp"

namespace omg::core {

/// Per-assertion aggregate over a batch run.
struct AssertionSummary {
  std::string assertion;       ///< assertion name (column label)
  std::size_t examples_fired = 0;  ///< examples with severity > 0
  double fire_rate = 0.0;      ///< examples fired / examples checked
  double max_severity = 0.0;   ///< largest severity seen
  double mean_severity = 0.0;  ///< over firing examples only
};

/// Aggregates a severity matrix (assertion names give column labels).
std::vector<AssertionSummary> Summarize(
    const SeverityMatrix& matrix, const std::vector<std::string>& names);

/// Renders summaries as an aligned text table.
std::string RenderSummaries(const std::vector<AssertionSummary>& summaries);

/// Renders streaming-monitor statistics as an aligned text table.
std::string RenderMonitorStats(const MonitorStats& stats);

}  // namespace omg::core
