#include "core/report.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/table.hpp"

namespace omg::core {

std::vector<AssertionSummary> Summarize(
    const SeverityMatrix& matrix, const std::vector<std::string>& names) {
  common::Check(names.size() == matrix.num_assertions(),
                "assertion name count mismatch");
  std::vector<AssertionSummary> summaries;
  summaries.reserve(names.size());
  for (std::size_t a = 0; a < names.size(); ++a) {
    AssertionSummary summary;
    summary.assertion = names[a];
    double total = 0.0;
    for (std::size_t e = 0; e < matrix.num_examples(); ++e) {
      const double severity = matrix.At(e, a);
      if (severity <= 0.0) continue;
      ++summary.examples_fired;
      total += severity;
      summary.max_severity = std::max(summary.max_severity, severity);
    }
    if (matrix.num_examples() > 0) {
      summary.fire_rate = static_cast<double>(summary.examples_fired) /
                          static_cast<double>(matrix.num_examples());
    }
    if (summary.examples_fired > 0) {
      summary.mean_severity =
          total / static_cast<double>(summary.examples_fired);
    }
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

std::string RenderSummaries(
    const std::vector<AssertionSummary>& summaries) {
  common::TextTable table(
      {"Assertion", "Fired", "Fire rate", "Mean severity", "Max severity"});
  for (const auto& summary : summaries) {
    table.AddRow({summary.assertion,
                  std::to_string(summary.examples_fired),
                  common::FormatPercent(summary.fire_rate, 1),
                  common::FormatDouble(summary.mean_severity, 2),
                  common::FormatDouble(summary.max_severity, 2)});
  }
  return table.ToString();
}

std::string RenderMonitorStats(const MonitorStats& stats) {
  common::TextTable table({"Assertion", "Events", "Max severity"});
  for (const auto& [name, count] : stats.fire_counts) {
    table.AddRow({name, std::to_string(count),
                  common::FormatDouble(stats.max_severity.at(name), 2)});
  }
  return table.ToString();
}

}  // namespace omg::core
