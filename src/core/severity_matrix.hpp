// Per-example, per-assertion severity scores.
//
// §2.1 of the paper: an assertion returns a continuous severity score per
// data point, with 0 meaning "abstain" (no error indicated). The severity
// matrix over a pool of examples is exactly the bandit context of §3: each
// example carries a d-dimensional feature vector of severities, one dimension
// per registered assertion.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace omg::core {

/// Severity value meaning "assertion abstains" (§2.1).
inline constexpr double kAbstain = 0.0;

/// Dense (num_examples x num_assertions) severity matrix.
class SeverityMatrix {
 public:
  SeverityMatrix() = default;
  SeverityMatrix(std::size_t num_examples, std::size_t num_assertions);

  std::size_t num_examples() const { return num_examples_; }
  std::size_t num_assertions() const { return num_assertions_; }

  /// Severity of assertion `a` on example `e`.
  double At(std::size_t e, std::size_t a) const;
  void Set(std::size_t e, std::size_t a, double severity);

  /// True when assertion `a` fired (severity > 0) on example `e`.
  bool Fired(std::size_t e, std::size_t a) const { return At(e, a) > 0.0; }

  /// True when any assertion fired on example `e`.
  bool AnyFired(std::size_t e) const;

  /// The d-dimensional severity vector of example `e` (its bandit context).
  std::span<const double> Context(std::size_t e) const;

  /// Number of examples on which each assertion fired.
  std::vector<std::size_t> FireCounts() const;

  /// Total number of (example, assertion) firings.
  std::size_t TotalFired() const;

  /// Indices of examples on which assertion `a` fired.
  std::vector<std::size_t> ExamplesFiring(std::size_t a) const;

  /// Indices of examples on which at least one assertion fired.
  std::vector<std::size_t> FlaggedExamples() const;

  /// Sets an entire column from per-example severities
  /// (`severities.size() == num_examples()`).
  void SetColumn(std::size_t a, std::span<const double> severities);

 private:
  std::size_t num_examples_ = 0;
  std::size_t num_assertions_ = 0;
  std::vector<double> data_;  // row-major: example-major
};

}  // namespace omg::core
