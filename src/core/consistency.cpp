#include "core/consistency.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.hpp"

namespace omg::core {

using common::Check;

ConsistencyEngine::ConsistencyEngine(ConsistencyConfig config)
    : config_(std::move(config)) {}

std::vector<std::string> ConsistencyEngine::AssertionNames() const {
  std::vector<std::string> names;
  for (const auto& key : config_.attribute_keys) {
    names.push_back("consistent:" + key);
  }
  if (config_.temporal_threshold > 0.0) {
    names.push_back("flicker");
    names.push_back("appear");
  }
  return names;
}

namespace {

/// Key identifying one tracked entity: (group, identifier).
using EntityKey = std::pair<std::string, std::string>;

/// Per-group ordered timeline of frames.
struct GroupTimeline {
  std::vector<std::size_t> example_indices;  // sorted by timestamp
  std::vector<double> timestamps;
};

/// A maximal run of consecutive frames on which an entity is present.
struct Episode {
  std::size_t first_frame;  // index into the group timeline
  std::size_t last_frame;   // inclusive
};

}  // namespace

ConsistencyResult ConsistencyEngine::Analyze(
    const std::vector<ConsistencyFrame>& frames,
    const std::vector<ConsistencyRecord>& records,
    std::size_t num_examples) const {
  ConsistencyResult result;

  // The configured attribute keys are authoritative: the generated
  // assertion set (and therefore the severity-matrix columns) must not
  // depend on which keys happen to appear in the data.
  const std::vector<std::string>& keys = config_.attribute_keys;
  result.assertion_names = AssertionNames();
  const bool temporal = config_.temporal_threshold > 0.0;
  result.severities.assign(result.assertion_names.size(),
                           std::vector<double>(num_examples, 0.0));

  for (const auto& record : records) {
    Check(record.example_index < num_examples,
          "record example_index out of range");
  }

  // ---- Attribute consistency ("consistent:<key>"). ----
  // Group records by entity; for each attribute key take the most common
  // value (mode; ties broken by first occurrence) and flag + correct the
  // minority records.
  std::map<EntityKey, std::vector<std::size_t>> entity_records;
  for (std::size_t r = 0; r < records.size(); ++r) {
    entity_records[{records[r].group, records[r].identifier}].push_back(r);
  }

  for (std::size_t k = 0; k < keys.size(); ++k) {
    const std::string& key = keys[k];
    for (const auto& [entity, record_indices] : entity_records) {
      // Collect this entity's values for `key`, preserving order.
      std::vector<std::pair<std::size_t, std::string>> values;  // (rec, val)
      for (const std::size_t r : record_indices) {
        for (const auto& [attr_key, attr_value] : records[r].attributes) {
          if (attr_key == key) values.emplace_back(r, attr_value);
        }
      }
      if (values.size() < 2) continue;
      // Mode with first-occurrence tie-break.
      std::map<std::string, std::size_t> counts;
      for (const auto& [_, value] : values) ++counts[value];
      std::string mode = values.front().second;
      std::size_t mode_count = 0;
      for (const auto& [r, value] : values) {
        const std::size_t count = counts[value];
        if (count > mode_count) {
          mode_count = count;
          mode = value;
        }
      }
      if (mode_count == values.size()) continue;  // all consistent
      for (const auto& [r, value] : values) {
        if (value == mode) continue;
        result.severities[k][records[r].example_index] += 1.0;
        Correction correction;
        correction.kind = CorrectionKind::kSetAttribute;
        correction.group = records[r].group;
        correction.identifier = records[r].identifier;
        correction.example_index = records[r].example_index;
        correction.timestamp = records[r].timestamp;
        correction.output_index = records[r].output_index;
        correction.attribute_key = key;
        correction.proposed_value = mode;
        result.corrections.push_back(std::move(correction));
      }
    }
  }

  if (!temporal) return result;

  // ---- Temporal consistency (flicker / appear). ----
  const std::size_t flicker_col = keys.size();
  const std::size_t appear_col = keys.size() + 1;
  const double threshold = config_.temporal_threshold;

  // Build per-group ordered timelines.
  std::map<std::string, GroupTimeline> timelines;
  {
    std::map<std::string, std::vector<std::pair<double, std::size_t>>> raw;
    for (const auto& frame : frames) {
      Check(frame.example_index < num_examples,
            "frame example_index out of range");
      raw[frame.group].emplace_back(frame.timestamp, frame.example_index);
    }
    for (auto& [group, entries] : raw) {
      std::sort(entries.begin(), entries.end());
      GroupTimeline timeline;
      for (const auto& [ts, e] : entries) {
        timeline.timestamps.push_back(ts);
        timeline.example_indices.push_back(e);
      }
      timelines[group] = std::move(timeline);
    }
  }

  for (const auto& [entity, record_indices] : entity_records) {
    const auto timeline_it = timelines.find(entity.first);
    Check(timeline_it != timelines.end(),
          "records reference group with no frames: " + entity.first);
    const GroupTimeline& timeline = timeline_it->second;
    const std::size_t n = timeline.timestamps.size();

    // Presence mask over the group's frames, and per-frame record lists.
    std::map<std::size_t, std::size_t> example_to_frame;
    for (std::size_t f = 0; f < n; ++f) {
      example_to_frame[timeline.example_indices[f]] = f;
    }
    std::vector<std::vector<std::size_t>> frame_records(n);
    for (const std::size_t r : record_indices) {
      const auto it = example_to_frame.find(records[r].example_index);
      Check(it != example_to_frame.end(),
            "record example missing from frame timeline");
      frame_records[it->second].push_back(r);
    }

    // Episodes: maximal presence runs.
    std::vector<Episode> episodes;
    for (std::size_t f = 0; f < n; ++f) {
      if (frame_records[f].empty()) continue;
      if (!episodes.empty() && episodes.back().last_frame + 1 == f) {
        episodes.back().last_frame = f;
      } else {
        episodes.push_back(Episode{f, f});
      }
    }
    if (episodes.empty()) continue;

    // `flicker`: a gap between two episodes shorter than T means the
    // identifier disappeared and reappeared within a T-second window.
    for (std::size_t e = 0; e + 1 < episodes.size(); ++e) {
      const std::size_t gap_begin = episodes[e].last_frame + 1;
      const std::size_t gap_end = episodes[e + 1].first_frame;  // exclusive
      const double gap_duration =
          timeline.timestamps[gap_end] -
          timeline.timestamps[episodes[e].last_frame];
      if (gap_duration >= threshold) continue;
      // Severity on every gap frame; one add-correction per gap frame,
      // supported by the neighbouring occurrences.
      std::vector<std::size_t> support;
      support.insert(support.end(),
                     frame_records[episodes[e].last_frame].begin(),
                     frame_records[episodes[e].last_frame].end());
      support.insert(support.end(), frame_records[gap_end].begin(),
                     frame_records[gap_end].end());
      for (std::size_t f = gap_begin; f < gap_end; ++f) {
        result.severities[flicker_col][timeline.example_indices[f]] += 1.0;
        Correction correction;
        correction.kind = CorrectionKind::kAddOutput;
        correction.group = entity.first;
        correction.identifier = entity.second;
        correction.example_index = timeline.example_indices[f];
        correction.timestamp = timeline.timestamps[f];
        correction.support_records = support;
        result.corrections.push_back(std::move(correction));
      }
    }

    // `appear`: an episode shorter than T bounded by absence on both sides
    // (appear + disappear within a T-second window). Episodes touching the
    // stream boundary are not flagged — their true extent is unknown.
    for (const auto& episode : episodes) {
      if (episode.first_frame == 0 || episode.last_frame + 1 >= n) continue;
      // Duration measured absence-to-absence: the window containing both
      // the appear and the disappear transition.
      const double duration = timeline.timestamps[episode.last_frame + 1] -
                              timeline.timestamps[episode.first_frame - 1];
      if (duration >= threshold) continue;
      for (std::size_t f = episode.first_frame; f <= episode.last_frame;
           ++f) {
        result.severities[appear_col][timeline.example_indices[f]] += 1.0;
        for (const std::size_t r : frame_records[f]) {
          Correction correction;
          correction.kind = CorrectionKind::kRemoveOutput;
          correction.group = entity.first;
          correction.identifier = entity.second;
          correction.example_index = records[r].example_index;
          correction.timestamp = records[r].timestamp;
          correction.output_index = records[r].output_index;
          result.corrections.push_back(std::move(correction));
        }
      }
    }
  }
  return result;
}

}  // namespace omg::core
