// Incremental sliding-window evaluation of an AssertionSuite.
//
// The seed's StreamingMonitor re-ran every assertion over the whole window
// on every Observe — O(window * suite) per example. This evaluator instead
// exploits each assertion's declared `temporal_radius` r (severity of
// example i depends only on examples [i - r, i + r]):
//
//   * pointwise assertions (r = 0) score only the newly arrived examples —
//     O(1) amortized per example;
//   * bounded stream assertions re-score just the window suffix a new
//     example can affect (the last batch + 2r examples), so batched
//     ingestion amortizes the redundant suffix work across the batch;
//   * unbounded assertions (consistency-generated ones that track
//     identifiers across the stream) fall back to full-window
//     re-evaluation, once per ingested chunk instead of once per example.
//
// Emission contract (the seed monitor's): each (example, assertion) firing
// is emitted exactly once, in stream order — normally when the example
// becomes `settle_lag` steps old. The emitted severity is final provided
// settle_lag >= the assertion's radius. A firing that only *appears* in a
// later re-evaluation (an unbounded assertion needing more right context,
// or a bounded one with settle_lag < radius) is emitted as soon as it
// appears, like the seed's per-step re-scan did.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/assertion.hpp"

namespace omg::core {

/// Incremental evaluator over one stream's sliding window.
///
/// Not thread-safe: the serving runtime (runtime/service.hpp) pins each
/// evaluator to one shard worker; standalone users (StreamingMonitor) are
/// single-threaded.
template <typename Example>
class IncrementalWindowEvaluator {
 public:
  /// Evaluator parameters.
  struct Config {
    /// Number of recent examples assertions can see.
    std::size_t window = 64;
    /// How far behind the stream head an example must be before its
    /// verdict is emitted; must stay below `window`.
    std::size_t settle_lag = 8;
    /// Invoked once per ingested chunk before unbounded assertions
    /// re-evaluate the window. Wire consistency-analyzer invalidation here:
    /// the analyzer memoises on (data pointer, size), which the reused
    /// window buffer would otherwise alias across chunks.
    std::function<void()> before_window_eval;
  };

  IncrementalWindowEvaluator(AssertionSuite<Example>& suite, Config config)
      : suite_(suite), config_(std::move(config)) {
    common::Check(config_.window >= 1, "window must be >= 1");
    common::Check(config_.settle_lag < config_.window,
                  "settle_lag must be < window");
  }

  /// Feeds one example. `emit(global_index, assertion_index, severity)` is
  /// called for each firing, in stream order.
  template <typename EmitFn>
  void Observe(Example example, EmitFn&& emit) {
    Example* data = &example;
    auto source = [data](std::size_t k) -> Example&& {
      return std::move(data[k]);
    };
    IngestChunk(source, 0, 1, emit);
  }

  /// Feeds a batch (consumed). Internally splits into chunks small enough
  /// that the window always retains the left context bounded assertions
  /// need, so results are independent of the batch split.
  template <typename EmitFn>
  void ObserveBatch(std::vector<Example> batch, EmitFn&& emit) {
    Example* data = batch.data();
    auto source = [data](std::size_t k) -> Example&& {
      return std::move(data[k]);
    };
    ObserveBatchFrom(batch.size(), source, emit);
  }

  /// Feeds `count` examples pulled from `source(k)` (k in [0, count), asked
  /// exactly once each, in order; must return an Example&& to move from).
  /// This is the zero-copy ingestion path for adapters whose examples live
  /// behind another representation — the serving facade moves typed
  /// payloads out of its type-erased holders directly into the window, so
  /// erasure costs no extra copy. Chunk-splitting semantics match
  /// ObserveBatch exactly. A `source` that throws poisons the batch
  /// mid-chunk just like a throwing assertion: already-ingested examples
  /// stay in the window, the exception propagates to the caller.
  template <typename Source, typename EmitFn>
  void ObserveBatchFrom(std::size_t count, Source&& source, EmitFn&& emit) {
    const std::size_t chunk = MaxChunk();
    for (std::size_t begin = 0; begin < count; begin += chunk) {
      IngestChunk(source, begin, std::min(chunk, count - begin), emit);
    }
  }

  std::size_t examples_seen() const { return examples_seen_; }
  const Config& config() const { return config_; }

 private:
  /// A firing discovered by re-evaluation after its example had already
  /// passed the settle boundary (emitted out of the normal cursor sweep).
  struct LateFire {
    std::size_t global;
    std::size_t assertion;
    double severity;
  };

  /// True when assertion `a`'s radius lets us evaluate suffixes only. A
  /// radius so large that its 2r context cannot fit next to a chunk inside
  /// the window degrades to full-window evaluation.
  bool Bounded(std::size_t radius) const {
    return radius != kUnboundedRadius && 2 * radius < config_.window;
  }

  /// Largest chunk whose 2r left context is still in the window when the
  /// chunk arrives (window - 2r >= chunk), for every bounded assertion.
  std::size_t MaxChunk() const {
    std::size_t context = config_.settle_lag;
    for (std::size_t a = 0; a < suite_.size(); ++a) {
      const std::size_t radius = suite_.at(a).temporal_radius();
      if (Bounded(radius)) context = std::max(context, 2 * radius);
    }
    return std::max<std::size_t>(1, config_.window - context);
  }

  /// Moves `count` examples out of `source(offset + k)` into the window,
  /// re-scores what they can affect, emits verdicts, trims the window.
  template <typename Source, typename EmitFn>
  void IngestChunk(Source& source, std::size_t offset, std::size_t count,
                   EmitFn& emit) {
    if (count == 0) return;
    Compact();
    window_.reserve(window_.size() + count);
    for (std::size_t k = 0; k < count; ++k) {
      window_.push_back(source(offset + k));
    }
    // Columns added to the suite since the last chunk start unprimed and
    // get a one-off full-window evaluation below.
    severities_.resize(suite_.size());
    fired_.resize(suite_.size());
    primed_.resize(suite_.size(), false);
    for (auto& column : severities_) column.resize(window_.size(), 0.0);
    for (auto& column : fired_) column.resize(window_.size(), 0);
    examples_seen_ += count;

    const std::size_t logical_size = window_.size() - start_;
    const std::size_t first_new = logical_size - count;
    bool hook_called = false;
    for (std::size_t a = 0; a < suite_.size(); ++a) {
      Assertion<Example>& assertion = suite_.at(a);
      const std::size_t radius = assertion.temporal_radius();
      if (Bounded(radius) && primed_[a]) {
        const std::size_t affected =
            first_new > radius ? first_new - radius : 0;
        const std::size_t eval_start =
            first_new > 2 * radius ? first_new - 2 * radius : 0;
        const std::span<const Example> suffix(
            window_.data() + start_ + eval_start, logical_size - eval_start);
        const std::vector<double> scores = assertion.CheckAll(suffix);
        common::Check(scores.size() == suffix.size(),
                      "assertion returned wrong severity count: " +
                          assertion.name());
        // Entries before `affected` were already final; entries in
        // [eval_start, affected) may lack left context in the suffix view.
        for (std::size_t i = affected; i < logical_size; ++i) {
          WriteScore(a, i, scores[i - eval_start]);
        }
      } else {
        if (!Bounded(radius) && !hook_called && config_.before_window_eval) {
          config_.before_window_eval();
          hook_called = true;
        }
        const std::span<const Example> window(window_.data() + start_,
                                              logical_size);
        const std::vector<double> scores = assertion.CheckAll(window);
        common::Check(scores.size() == logical_size,
                      "assertion returned wrong severity count: " +
                          assertion.name());
        for (std::size_t i = 0; i < logical_size; ++i) {
          WriteScore(a, i, scores[i]);
        }
        primed_[a] = true;
      }
    }

    EmitAll(emit);

    if (logical_size > config_.window) {
      const std::size_t drop = logical_size - config_.window;
      start_ += drop;
      window_start_global_ += drop;
    }
  }

  void WriteScore(std::size_t a, std::size_t logical_index, double score) {
    if (!(score >= 0.0) || !std::isfinite(score)) {
      common::CheckNonNegative(score,
                               "assertion severity: " + suite_.at(a).name());
    }
    const std::size_t physical = start_ + logical_index;
    severities_[a][physical] = score;
    // A firing surfacing on an example the cursor already swept (see the
    // emission contract above) is emitted late, once.
    if (score > 0.0 && window_start_global_ + logical_index < next_emit_ &&
        !fired_[a][physical]) {
      fired_[a][physical] = 1;
      late_.push_back({window_start_global_ + logical_index, a, score});
    }
  }

  template <typename EmitFn>
  void EmitAll(EmitFn& emit) {
    if (!late_.empty()) {
      std::sort(late_.begin(), late_.end(),
                [](const LateFire& a, const LateFire& b) {
                  return a.global != b.global ? a.global < b.global
                                              : a.assertion < b.assertion;
                });
      for (const LateFire& fire : late_) {
        emit(fire.global, fire.assertion, fire.severity);
      }
      late_.clear();
    }
    const std::size_t head = examples_seen_ - 1;
    if (head < config_.settle_lag) return;
    const std::size_t boundary = head - config_.settle_lag;  // inclusive
    for (std::size_t global = next_emit_; global <= boundary; ++global) {
      const std::size_t physical = start_ + (global - window_start_global_);
      for (std::size_t a = 0; a < severities_.size(); ++a) {
        const double severity = severities_[a][physical];
        if (severity > 0.0 && !fired_[a][physical]) {
          fired_[a][physical] = 1;
          emit(global, a, severity);
        }
      }
    }
    next_emit_ = boundary + 1;
  }

  /// Reclaims the dead prefix of the physical buffers once it exceeds the
  /// live window — O(window) moves per O(window) pops, amortized O(1).
  void Compact() {
    if (start_ <= window_.size() - start_ || start_ < config_.window) return;
    const auto prefix = static_cast<std::ptrdiff_t>(start_);
    window_.erase(window_.begin(), window_.begin() + prefix);
    for (auto& column : severities_) {
      column.erase(column.begin(), column.begin() + prefix);
    }
    for (auto& column : fired_) {
      column.erase(column.begin(), column.begin() + prefix);
    }
    start_ = 0;
  }

  AssertionSuite<Example>& suite_;
  Config config_;
  std::vector<Example> window_;  // logical window = [start_, size())
  std::vector<std::vector<double>> severities_;  // per assertion, aligned
  std::vector<std::vector<std::uint8_t>> fired_;  // emission dedup, aligned
  std::vector<bool> primed_;  // column has scored the current window once
  std::vector<LateFire> late_;  // scratch, drained every chunk
  std::size_t start_ = 0;
  std::size_t window_start_global_ = 0;  // global index of window_[start_]
  std::size_t examples_seen_ = 0;
  std::size_t next_emit_ = 0;
};

}  // namespace omg::core
