// The remaining assertion classes of the paper's taxonomy (Appendix B,
// Table 5): input-validation assertions (schema preconditions over model
// inputs) and perturbation assertions (outputs should be stable under
// label-preserving input perturbations).
//
// Consistency and domain-knowledge assertions live in consistency.hpp and
// the domain modules; these two classes are generic and assembled here.
#pragma once

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/assertion.hpp"

namespace omg::core {

/// Constraint on one input field (Table 5, "input validation": e.g.
/// boolean features encoded as integers must be 0 or 1; all features must
/// be present/finite).
struct FieldConstraint {
  std::string name;
  std::size_t index = 0;  ///< position in the feature vector
  double min = std::numeric_limits<double>::lowest();
  double max = std::numeric_limits<double>::max();
  bool must_be_integral = false;
  bool must_be_finite = true;
};

/// A simple input schema: dimensionality plus per-field constraints.
class InputSchema {
 public:
  InputSchema() = default;

  /// Declares the expected feature count (0 = unchecked).
  InputSchema& ExpectDimension(std::size_t dim) {
    dimension_ = dim;
    return *this;
  }

  /// Adds a field constraint (chainable).
  InputSchema& Field(FieldConstraint constraint) {
    constraints_.push_back(std::move(constraint));
    return *this;
  }

  /// Convenience: a boolean field must be exactly 0 or 1.
  InputSchema& BooleanField(std::string name, std::size_t index) {
    FieldConstraint c;
    c.name = std::move(name);
    c.index = index;
    c.min = 0.0;
    c.max = 1.0;
    c.must_be_integral = true;
    return Field(std::move(c));
  }

  /// Number of violated constraints for one feature vector (the severity
  /// of the generated assertion; 0 = schema satisfied).
  double Violations(std::span<const double> features) const {
    double violations = 0.0;
    if (dimension_ != 0 && features.size() != dimension_) violations += 1.0;
    for (const auto& constraint : constraints_) {
      if (constraint.index >= features.size()) {
        violations += 1.0;
        continue;
      }
      const double value = features[constraint.index];
      if (constraint.must_be_finite && !std::isfinite(value)) {
        violations += 1.0;
        continue;
      }
      if (value < constraint.min || value > constraint.max) {
        violations += 1.0;
        continue;
      }
      if (constraint.must_be_integral &&
          value != std::nearbyint(value)) {
        violations += 1.0;
      }
    }
    return violations;
  }

  std::size_t dimension() const { return dimension_; }
  const std::vector<FieldConstraint>& constraints() const {
    return constraints_;
  }

 private:
  std::size_t dimension_ = 0;
  std::vector<FieldConstraint> constraints_;
};

/// Registers a schema-validation assertion: `features_of` extracts the raw
/// input features from an example.
template <typename Example>
void AddSchemaAssertion(
    AssertionSuite<Example>& suite, std::string name, InputSchema schema,
    std::function<std::vector<double>(const Example&)> features_of) {
  common::Check(static_cast<bool>(features_of), "feature extractor not set");
  suite.AddPointwise(
      std::move(name),
      [schema = std::move(schema), features_of = std::move(features_of)](
          const Example& example) {
        return schema.Violations(features_of(example));
      });
}

/// Registers a perturbation assertion (Table 5: "replacing parts of the
/// input with similar data / adding noise should not modify model
/// outputs"). For each example, `perturb` produces variant inputs and
/// `agree` compares the model's output on the original vs a variant;
/// severity = number of disagreeing variants.
///
/// The model itself is captured inside `perturb`/`agree`, keeping the
/// assertion an arbitrary function over inputs and outputs as §2.1
/// requires.
template <typename Example>
void AddPerturbationAssertion(
    AssertionSuite<Example>& suite, std::string name,
    std::function<std::vector<Example>(const Example&)> perturb,
    std::function<bool(const Example&, const Example&)> agree) {
  common::Check(static_cast<bool>(perturb), "perturbation not set");
  common::Check(static_cast<bool>(agree), "agreement check not set");
  suite.AddPointwise(
      std::move(name),
      [perturb = std::move(perturb),
       agree = std::move(agree)](const Example& example) {
        double disagreements = 0.0;
        for (const Example& variant : perturb(example)) {
          if (!agree(example, variant)) disagreements += 1.0;
        }
        return disagreements;
      });
}

}  // namespace omg::core
