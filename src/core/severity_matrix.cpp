#include "core/severity_matrix.hpp"

#include "common/check.hpp"

namespace omg::core {

using common::Check;
using common::CheckIndex;
using common::CheckNonNegative;

SeverityMatrix::SeverityMatrix(std::size_t num_examples,
                               std::size_t num_assertions)
    : num_examples_(num_examples),
      num_assertions_(num_assertions),
      data_(num_examples * num_assertions, kAbstain) {}

double SeverityMatrix::At(std::size_t e, std::size_t a) const {
  CheckIndex(static_cast<std::ptrdiff_t>(e), 0,
             static_cast<std::ptrdiff_t>(num_examples_), "example index");
  CheckIndex(static_cast<std::ptrdiff_t>(a), 0,
             static_cast<std::ptrdiff_t>(num_assertions_), "assertion index");
  return data_[e * num_assertions_ + a];
}

void SeverityMatrix::Set(std::size_t e, std::size_t a, double severity) {
  CheckIndex(static_cast<std::ptrdiff_t>(e), 0,
             static_cast<std::ptrdiff_t>(num_examples_), "example index");
  CheckIndex(static_cast<std::ptrdiff_t>(a), 0,
             static_cast<std::ptrdiff_t>(num_assertions_), "assertion index");
  CheckNonNegative(severity, "severity scores are non-negative");
  data_[e * num_assertions_ + a] = severity;
}

bool SeverityMatrix::AnyFired(std::size_t e) const {
  for (std::size_t a = 0; a < num_assertions_; ++a) {
    if (Fired(e, a)) return true;
  }
  return false;
}

std::span<const double> SeverityMatrix::Context(std::size_t e) const {
  CheckIndex(static_cast<std::ptrdiff_t>(e), 0,
             static_cast<std::ptrdiff_t>(num_examples_), "example index");
  return std::span<const double>(data_).subspan(e * num_assertions_,
                                                num_assertions_);
}

std::vector<std::size_t> SeverityMatrix::FireCounts() const {
  std::vector<std::size_t> counts(num_assertions_, 0);
  for (std::size_t e = 0; e < num_examples_; ++e) {
    for (std::size_t a = 0; a < num_assertions_; ++a) {
      if (Fired(e, a)) ++counts[a];
    }
  }
  return counts;
}

std::size_t SeverityMatrix::TotalFired() const {
  std::size_t total = 0;
  for (const auto count : FireCounts()) total += count;
  return total;
}

std::vector<std::size_t> SeverityMatrix::ExamplesFiring(std::size_t a) const {
  std::vector<std::size_t> out;
  for (std::size_t e = 0; e < num_examples_; ++e) {
    if (Fired(e, a)) out.push_back(e);
  }
  return out;
}

std::vector<std::size_t> SeverityMatrix::FlaggedExamples() const {
  std::vector<std::size_t> out;
  for (std::size_t e = 0; e < num_examples_; ++e) {
    if (AnyFired(e)) out.push_back(e);
  }
  return out;
}

void SeverityMatrix::SetColumn(std::size_t a,
                               std::span<const double> severities) {
  Check(severities.size() == num_examples_,
        "SetColumn severity count mismatch");
  for (std::size_t e = 0; e < num_examples_; ++e) {
    Set(e, a, severities[e]);
  }
}

}  // namespace omg::core
