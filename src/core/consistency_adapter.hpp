// Bridges the domain-agnostic ConsistencyEngine into the Assertion<Example>
// world, so consistency-generated assertions sit in an AssertionSuite next to
// user-written ones (as §4.2 requires: "these assertions are treated the same
// as user-provided ones in the rest of the system").
//
// A ConsistencyAnalyzer owns the engine plus a domain-provided extractor that
// turns the example stream into frames/records (the Id and Attrs functions
// live inside the extractor). All generated assertions share one analyzer,
// and the analyzer memoises the latest analysis per input stream so a suite
// run costs one engine pass, not one per generated column.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/assertion.hpp"
#include "core/consistency.hpp"

namespace omg::core {

/// Frames + records extracted from an example stream.
struct ConsistencyExtraction {
  std::vector<ConsistencyFrame> frames;
  std::vector<ConsistencyRecord> records;
};

/// Runs a ConsistencyEngine over example streams, caching the last analysis.
template <typename Example>
class ConsistencyAnalyzer {
 public:
  /// Extractor: applies the user's Id/Attrs functions to the stream.
  using ExtractFn =
      std::function<ConsistencyExtraction(std::span<const Example>)>;

  ConsistencyAnalyzer(ConsistencyConfig config, ExtractFn extract)
      : engine_(std::move(config)), extract_(std::move(extract)) {
    common::Check(static_cast<bool>(extract_), "extractor must be set");
  }

  /// Names of the generated assertions (column order of Analyze results).
  std::vector<std::string> AssertionNames() const {
    return engine_.AssertionNames();
  }

  /// Analysis of `examples`, memoised on (data pointer, size). The cache
  /// makes one suite pass run the engine once; passing a *different* stream
  /// re-analyses.
  const ConsistencyResult& Analyze(std::span<const Example> examples) {
    if (cached_ != nullptr && cache_data_ == examples.data() &&
        cache_size_ == examples.size()) {
      return *cached_;
    }
    ConsistencyExtraction extraction = extract_(examples);
    cached_ = std::make_unique<ConsistencyResult>(engine_.Analyze(
        extraction.frames, extraction.records, examples.size()));
    cache_records_ = std::move(extraction.records);
    cache_data_ = examples.data();
    cache_size_ = examples.size();
    return *cached_;
  }

  /// Records from the latest Analyze call — Correction::support_records
  /// index into this vector.
  const std::vector<ConsistencyRecord>& LatestRecords() const {
    common::Check(cached_ != nullptr, "Analyze must run first");
    return cache_records_;
  }

  /// Corrections from the latest analysis of `examples`.
  const std::vector<Correction>& Corrections(
      std::span<const Example> examples) {
    return Analyze(examples).corrections;
  }

  /// Drops the memoised analysis. Callers must invalidate whenever example
  /// content may have changed without the (pointer, size) key changing —
  /// e.g. a freshly allocated stream of the same length after retraining
  /// the model (allocator reuse can alias the key).
  void Invalidate() {
    cached_.reset();
    cache_records_.clear();
    cache_data_ = nullptr;
    cache_size_ = 0;
  }

 private:
  ConsistencyEngine engine_;
  ExtractFn extract_;
  std::unique_ptr<ConsistencyResult> cached_;
  std::vector<ConsistencyRecord> cache_records_;
  const Example* cache_data_ = nullptr;
  std::size_t cache_size_ = 0;
};

/// One generated assertion = one column of the shared analyzer's result.
template <typename Example>
class GeneratedConsistencyAssertion final : public Assertion<Example> {
 public:
  GeneratedConsistencyAssertion(
      std::string name, std::shared_ptr<ConsistencyAnalyzer<Example>> analyzer,
      std::size_t column)
      : Assertion<Example>(std::move(name)),
        analyzer_(std::move(analyzer)),
        column_(column) {}

  std::vector<double> CheckAll(std::span<const Example> examples) override {
    const ConsistencyResult& result = analyzer_->Analyze(examples);
    common::CheckIndex(static_cast<std::ptrdiff_t>(column_), 0,
                       static_cast<std::ptrdiff_t>(result.severities.size()),
                       "generated assertion column");
    return result.severities[column_];
  }

 private:
  std::shared_ptr<ConsistencyAnalyzer<Example>> analyzer_;
  std::size_t column_;
};

/// Implements the paper's AddConsistencyAssertion(Id, Attrs, T): builds a
/// shared analyzer, registers every generated assertion into `suite`, and
/// returns the analyzer so callers can pull corrections for weak supervision.
///
/// `name_prefix` disambiguates when several consistency sources coexist
/// (e.g. "" for the only source, "news:" for a second one).
template <typename Example>
std::shared_ptr<ConsistencyAnalyzer<Example>> AddConsistencyAssertion(
    AssertionSuite<Example>& suite, ConsistencyConfig config,
    typename ConsistencyAnalyzer<Example>::ExtractFn extract,
    const std::string& name_prefix = "") {
  auto analyzer = std::make_shared<ConsistencyAnalyzer<Example>>(
      std::move(config), std::move(extract));
  const auto names = analyzer->AssertionNames();
  common::Check(!names.empty(),
                "consistency config generates no assertions (no attribute "
                "keys and no temporal threshold)");
  for (std::size_t column = 0; column < names.size(); ++column) {
    suite.Add(std::make_unique<GeneratedConsistencyAssertion<Example>>(
        name_prefix + names[column], analyzer, column));
  }
  return analyzer;
}

}  // namespace omg::core
