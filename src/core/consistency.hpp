// Consistency assertions and weak-label generation (§4 of the paper).
//
// The user describes a model's output with two functions — `Id` (an opaque
// identifier per output) and `Attrs` (named attributes expected to be
// consistent per identifier) — plus a temporal threshold `T`. From that
// description OMG generates:
//
//   * one Boolean assertion per attribute key, firing when outputs sharing an
//     identifier disagree on the attribute ("consistent:<key>");
//   * two temporal assertions when T > 0: `flicker` (an identifier
//     disappears and reappears within T seconds) and `appear` (an identifier
//     is present for less than T seconds between absences) — together these
//     enforce "at most one appear/disappear transition per T-second window";
//   * correction rules proposing new labels for outputs that fail an
//     assertion: the most common attribute value for attribute mismatches,
//     output removal for spurious brief appearances, and output insertion
//     for flicker gaps (materialised by a domain-provided WeakLabel
//     function, e.g. averaging the object's boxes on nearby frames).
//
// The engine is domain-agnostic: domains adapt their outputs into
// `ConsistencyRecord`s (e.g. the video pipeline assigns identifiers with an
// IoU tracker) and interpret the corrections back into their own output
// types.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace omg::core {

/// One model output occurrence, as seen by the consistency engine.
struct ConsistencyRecord {
  /// Index of the input/example this output belongs to.
  std::size_t example_index = 0;
  /// Index of this output within its example (frames can have many boxes).
  std::int64_t output_index = -1;
  /// Timestamp of the example, in seconds.
  double timestamp = 0.0;
  /// Comparisons happen only within a group (a scene, a video, a patient).
  std::string group;
  /// The identifier returned by the user's Id function.
  std::string identifier;
  /// Key-value attributes returned by the user's Attrs function.
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// One example (frame / window) on the timeline; frames with zero outputs
/// must still be listed so the engine knows when an identifier was absent.
struct ConsistencyFrame {
  std::size_t example_index = 0;
  double timestamp = 0.0;
  std::string group;
};

/// Configuration of a consistency assertion (§4.1's
/// AddConsistencyAssertion(Id, Attrs, T)).
struct ConsistencyConfig {
  /// Temporal threshold T in seconds; <= 0 disables flicker/appear.
  double temporal_threshold = 0.0;
  /// Attribute keys to check; keys seen in records but not listed here are
  /// ignored. The configured list is authoritative so the set of generated
  /// assertions is fixed per configuration.
  std::vector<std::string> attribute_keys;
};

/// Kinds of correction the engine proposes (§4.2).
enum class CorrectionKind {
  kSetAttribute,  ///< replace an inconsistent attribute with the mode value
  kRemoveOutput,  ///< drop a spurious brief appearance
  kAddOutput,     ///< insert a missing output in a flicker gap
};

/// A proposed correction; corrections become weak labels for retraining.
struct Correction {
  CorrectionKind kind = CorrectionKind::kSetAttribute;
  std::string group;
  std::string identifier;
  /// Example to modify.
  std::size_t example_index = 0;
  /// Timestamp of that example.
  double timestamp = 0.0;
  /// Output to modify/remove (set/remove kinds); -1 for add.
  std::int64_t output_index = -1;
  /// For kSetAttribute: which key and the proposed (mode) value.
  std::string attribute_key;
  std::string proposed_value;
  /// For kAddOutput: indices (into the engine's input records) of the same
  /// identifier's occurrences adjacent to the gap; the domain's WeakLabel
  /// function interpolates from these.
  std::vector<std::size_t> support_records;
};

/// Result of analysing a stream.
struct ConsistencyResult {
  /// Names of the generated assertions, e.g. {"consistent:gender",
  /// "flicker", "appear"}; fixed for a given config.
  std::vector<std::string> assertion_names;
  /// severities[a][e]: severity of generated assertion `a` on example `e`
  /// (counts of violations that touch the example).
  std::vector<std::vector<double>> severities;
  /// Proposed corrections, in deterministic order.
  std::vector<Correction> corrections;
};

/// Generates assertions and corrections from Id/Attrs/T descriptions.
class ConsistencyEngine {
 public:
  explicit ConsistencyEngine(ConsistencyConfig config);

  const ConsistencyConfig& config() const { return config_; }

  /// Names of the assertions this engine generates, in column order: one
  /// "consistent:<key>" per configured key, then "flicker" and "appear"
  /// when T > 0.
  std::vector<std::string> AssertionNames() const;

  /// Analyses one stream. `num_examples` bounds example indices; frames must
  /// cover every example index that appears in `records`.
  ConsistencyResult Analyze(const std::vector<ConsistencyFrame>& frames,
                            const std::vector<ConsistencyRecord>& records,
                            std::size_t num_examples) const;

 private:
  ConsistencyConfig config_;
};

}  // namespace omg::core
