// Domain name -> erased suite builder registry for the serving facade.
//
// A *domain* is one example type plus its assertion vocabulary. Each domain
// registers, under its DomainTraits tag, how to turn a declarative
// [suite <domain>] spec into an erased per-stream suite factory the
// non-templated serve::Monitor can host — the last step of the type-erasure
// funnel:
//
//   config::AssertionFactory<T>  (typed builders, schema-validated)
//        │  config::MakeSuiteFactory(spec)
//   runtime::SuiteFactory<T>     (typed per-stream bundles)
//        │  serve::EraseSuiteFactory
//   serve::AnySuiteFactory       (AnyExample bundles, names qualified)
//
// The four shipped domains register through serve::MakeDefaultDomainRegistry
// (serve/domains.hpp); adding a domain is a DomainTraits specialization
// plus one DomainRegistry::Domain entry (see src/video/factory.cpp).
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "serve/any_suite.hpp"

namespace omg::config {
struct SuiteSpec;  // config/scenario.hpp; only referenced here
}  // namespace omg::config

namespace omg::net {
struct PayloadCodec;  // net/codec.hpp; registered via SetCodec
}  // namespace omg::net

namespace omg::serve {

/// Registry of the domains one facade deployment can serve.
class DomainRegistry {
 public:
  /// One registered domain.
  struct Domain {
    /// The DomainTraits tag ("video"); also the [suite <domain>] label.
    std::string name;
    /// Builds an erased per-stream suite factory from a validated
    /// declarative suite spec. Unknown assertion names / bad parameters
    /// throw SpecError positioned in the scenario file.
    std::function<AnySuiteFactory(const config::SuiteSpec&)>
        make_suite_factory;
    /// Writes this domain's registered-assertion listing (the scenario
    /// harness's --describe output).
    std::function<void(std::ostream&)> describe;
    /// Wire codec for this domain's example payloads (net/codec.hpp);
    /// null for domains served in-process only. Installed via SetCodec —
    /// typically net::RegisterDefaultCodecs — rather than at Register so
    /// purely local deployments never name the net layer.
    std::shared_ptr<const net::PayloadCodec> codec;
  };

  /// Registers `domain`; names must be unique and hooks non-null.
  void Register(Domain domain) {
    common::Check(!domain.name.empty(), "domain name must be non-empty");
    common::Check(static_cast<bool>(domain.make_suite_factory),
                  "domain '" + domain.name + "' needs a suite factory hook");
    common::Check(static_cast<bool>(domain.describe),
                  "domain '" + domain.name + "' needs a describe hook");
    const auto [it, inserted] =
        domains_.emplace(domain.name, std::move(domain));
    common::Check(inserted, "duplicate domain registration: " + it->first);
  }

  /// True when `name` is registered.
  bool Has(const std::string& name) const {
    return domains_.find(name) != domains_.end();
  }

  /// Installs (or replaces) the wire codec of registered domain `name`;
  /// throws CheckError when the domain is absent or `codec` is null.
  void SetCodec(const std::string& name,
                std::shared_ptr<const net::PayloadCodec> codec) {
    common::Check(codec != nullptr, "SetCodec: null codec for '" + name +
                                        "'");
    const auto it = domains_.find(name);
    common::Check(it != domains_.end(),
                  "SetCodec: unregistered domain '" + name + "'");
    it->second.codec = std::move(codec);
  }

  /// The wire codec of domain `name`, or null when the domain is absent
  /// or serves in-process only (the never-throwing lookup the server's
  /// frame path needs).
  const net::PayloadCodec* CodecFor(const std::string& name) const {
    const auto it = domains_.find(name);
    return it == domains_.end() ? nullptr : it->second.codec.get();
  }

  /// The entry for `name`; throws CheckError when absent (callers holding
  /// a config position produce a SpecError instead — see Has()).
  const Domain& At(const std::string& name) const {
    const auto it = domains_.find(name);
    if (it == domains_.end()) {
      throw common::CheckError("unknown domain '" + name +
                               "' (registered: " + JoinedNames() + ")");
    }
    return it->second;
  }

  /// Registered domain names, sorted.
  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(domains_.size());
    for (const auto& [name, domain] : domains_) names.push_back(name);
    return names;
  }

  /// "a, b, c" over the registered names (error messages / listings).
  std::string JoinedNames() const {
    std::string joined;
    for (const auto& [name, domain] : domains_) {
      if (!joined.empty()) joined += ", ";
      joined += name;
    }
    return joined;
  }

 private:
  std::map<std::string, Domain> domains_;
};

}  // namespace omg::serve
