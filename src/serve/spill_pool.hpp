// Pooled allocation for heap-spilled AnyExample payloads.
//
// Payload types larger than AnyExample::kInlineCapacity spill to the heap,
// and holders are created and destroyed at ingest rate — wrap on the
// producer thread, destroy on whichever shard worker scores the batch. A
// general-purpose allocator round-trips a lock (or a cross-thread cache
// miss) per spill; this pool recycles fixed size-class blocks instead:
//
//   * 8 power-of-two size classes, 256 B .. 32 KiB (the payload shapes a
//     domain example realistically takes); larger payloads fall through to
//     plain operator new/delete;
//   * a small per-thread cache in front of a mutex-guarded global freelist
//     per class. Producers allocate from their cache, workers release into
//     theirs; overflow spills to the global list, so blocks circulate
//     worker -> global -> producer under the steady-state cross-thread
//     flow the sharded service produces;
//   * both tiers are capped (caches 8 blocks/class, global 64/class):
//     bursts beyond the cap hit the system allocator, memory stays bounded.
//
// Lifetime rules (see docs/ARCHITECTURE.md): a block belongs to exactly one
// live payload at a time; AnyExample's vtable Destroy returns it to the
// pool of the *destroying* thread, and no pointer into a released block may
// survive the release. Blocks are max_align_t-aligned; over-aligned payload
// types bypass the pool entirely (AnyExample gates on alignof). All shipped
// domains fit inline, so this path is cold today — it exists so a future
// big-payload domain (full video frames, long telemetry vectors) does not
// turn the wrap path into an allocator benchmark.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

#include "common/mutex.hpp"

namespace omg::serve {

/// Recycles heap blocks for spilled AnyExample payloads. All methods are
/// thread-safe and lock-free on the per-thread cache fast path.
class SpillPool {
 public:
  /// Smallest / largest pooled block size; requests outside use the system
  /// allocator directly.
  static constexpr std::size_t kMinBlock = 256;
  static constexpr std::size_t kMaxBlock = 32 * 1024;
  static constexpr std::size_t kClasses = 8;  // 256 << 7 == 32 KiB
  static constexpr std::size_t kCacheCap = 8;    ///< blocks per thread class
  static constexpr std::size_t kGlobalCap = 64;  ///< blocks per global class

  /// A max_align_t-aligned block of at least `bytes`; never null (throws
  /// std::bad_alloc like operator new).
  static void* Allocate(std::size_t bytes) {
    const std::size_t cls = ClassOf(bytes);
    if (cls >= kClasses) return ::operator new(bytes);
    auto& cache = Cache().classes[cls];
    if (!cache.empty()) {
      void* block = cache.back();
      cache.pop_back();
      Counters().pool_hits.fetch_add(1, std::memory_order_relaxed);
      return block;
    }
    {
      Global& global = GlobalPool();
      MutexLock lock(global.mutex);
      auto& list = global.classes[cls];
      if (!list.empty()) {
        void* block = list.back();
        list.pop_back();
        Counters().pool_hits.fetch_add(1, std::memory_order_relaxed);
        return block;
      }
    }
    Counters().fresh_allocs.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(ClassBytes(cls));
  }

  /// Returns a block obtained from Allocate(bytes) to the pool. The caller
  /// must pass the same `bytes` it allocated with (AnyExample's vtable
  /// knows the payload size statically).
  static void Release(void* block, std::size_t bytes) noexcept {
    const std::size_t cls = ClassOf(bytes);
    if (cls >= kClasses) {
      ::operator delete(block);
      return;
    }
    auto& cache = Cache().classes[cls];
    if (cache.size() < kCacheCap) {
      cache.push_back(block);
      return;
    }
    {
      Global& global = GlobalPool();
      MutexLock lock(global.mutex);
      auto& list = global.classes[cls];
      if (list.size() < kGlobalCap) {
        list.push_back(block);
        return;
      }
    }
    ::operator delete(block);
  }

  /// Allocation-path counters (monotone, process-wide), for tests and
  /// diagnostics.
  struct Stats {
    std::size_t fresh_allocs = 0;  ///< pool misses that hit operator new
    std::size_t pool_hits = 0;     ///< allocations served from a freelist
  };

  static Stats GetStats() {
    return {Counters().fresh_allocs.load(std::memory_order_relaxed),
            Counters().pool_hits.load(std::memory_order_relaxed)};
  }

 private:
  /// Size class index for `bytes` (kClasses when unpooled).
  static std::size_t ClassOf(std::size_t bytes) {
    std::size_t size = kMinBlock;
    for (std::size_t cls = 0; cls < kClasses; ++cls, size <<= 1) {
      if (bytes <= size) return cls;
    }
    return kClasses;
  }

  static std::size_t ClassBytes(std::size_t cls) { return kMinBlock << cls; }

  struct Global {
    Mutex mutex;
    std::vector<void*> classes[kClasses] OMG_GUARDED_BY(mutex);

    // Runs at static destruction, after every ThreadCache has drained;
    // locking anyway keeps the guarded access provable (and is free —
    // the mutex is uncontended by then).
    ~Global() {
      MutexLock lock(mutex);
      for (auto& list : classes) {
        for (void* block : list) ::operator delete(block);
      }
    }
  };

  /// Per-thread cache; drains to the global pool when the thread exits.
  struct ThreadCache {
    std::vector<void*> classes[kClasses];

    // Touch the global pool first so its constructor completes before
    // ours: static destruction then runs ~ThreadCache (which needs the
    // pool) before ~Global.
    ThreadCache() { GlobalPool(); }

    ~ThreadCache() {
      Global& global = GlobalPool();
      MutexLock lock(global.mutex);
      for (std::size_t cls = 0; cls < kClasses; ++cls) {
        for (void* block : classes[cls]) {
          if (global.classes[cls].size() < kGlobalCap) {
            global.classes[cls].push_back(block);
          } else {
            ::operator delete(block);
          }
        }
      }
    }
  };

  struct AtomicStats {
    std::atomic<std::size_t> fresh_allocs{0};
    std::atomic<std::size_t> pool_hits{0};
  };

  // Function-local statics: the global pool outlives every thread cache
  // (constructed first via the cache destructor's GlobalPool() call).
  static Global& GlobalPool() {
    static Global global;
    return global;
  }

  static ThreadCache& Cache() {
    thread_local ThreadCache cache;
    return cache;
  }

  static AtomicStats& Counters() {
    static AtomicStats counters;
    return counters;
  }
};

}  // namespace omg::serve
