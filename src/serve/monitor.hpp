// omg::serve::Monitor — the non-templated serving facade.
//
// One Monitor hosts heterogeneous domains in a single sharded runtime: every
// stream, whatever its example type, shares the same shard set, admission
// policy, backpressure accounting, and metrics registry of one internal
// ShardedMonitorService<AnyExample>. The templated engine underneath is
// unchanged — the facade is the documented entry point, the templates are
// the machinery.
//
//   Monitor::Builder ── Build() ──► Monitor
//        │  RegisterStream("video", erased suite factory) ─► StreamHandle
//        │  Observe / ObserveBatch(handle, AnyExample...)  ─► Result<...>
//        │  Subscribe(EventFilter, sink)                   ─► Subscription
//        ▼
//   ShardedMonitorService<AnyExample>   (shards, queues, admission, metrics)
//
// Error contract: every user-facing operation returns serve::Result instead
// of throwing — a wrong-domain example, an unknown handle, or an oversized
// batch is a typed Error, never an abort (see serve/result.hpp). Engine
// invariants still throw CheckError; hitting one through this API is a bug.
//
// Assertion names seen in events and metrics are domain-qualified
// ("video/flicker"), so two domains using the same assertion name can never
// merge counters. RegisterStream enforces the qualification.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "obs/tracer.hpp"
#include "runtime/admission.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/metrics.hpp"
#include "runtime/sharded_service.hpp"
#include "serve/any_example.hpp"
#include "serve/any_suite.hpp"
#include "serve/result.hpp"

namespace omg::serve {

class Monitor;
class EventDispatcher;

/// What an admitted Observe/ObserveBatch call resolved to.
enum class ObserveOutcome {
  /// The batch entered a shard queue and will be scored.
  kAdmitted,
  /// The admission policy refused the batch (kShedBelowSeverity with a
  /// below-floor hint on a full queue); counted in the shard's shed
  /// counters.
  kShed,
};

/// Which events a subscription receives. Empty fields match everything;
/// set fields must all match.
struct EventFilter {
  /// Domain tag ("video"); matched against the qualified assertion name's
  /// "<domain>/" prefix.
  std::string domain;
  /// Exact stream name ("cam-0").
  std::string stream;
  /// Assertion name: either qualified ("video/flicker") or bare
  /// ("flicker", matching any domain).
  std::string assertion;
  /// Events with severity strictly below this are filtered out.
  double min_severity = 0.0;

  /// True when `event` passes every set field.
  bool Matches(const runtime::StreamEvent& event) const;
};

/// RAII handle for one Subscribe call: destroying (or Unsubscribe-ing) it
/// detaches the sink. Outliving the Monitor is safe — the subscription
/// just expires. Move-only.
class Subscription {
 public:
  Subscription() = default;
  ~Subscription() { Unsubscribe(); }

  Subscription(Subscription&& other) noexcept
      : dispatcher_(std::move(other.dispatcher_)),
        id_(std::exchange(other.id_, 0)) {}

  Subscription& operator=(Subscription&& other) noexcept {
    if (this != &other) {
      Unsubscribe();
      dispatcher_ = std::move(other.dispatcher_);
      id_ = std::exchange(other.id_, 0);
    }
    return *this;
  }

  /// True while the sink is attached (and the Monitor alive).
  bool active() const;

  /// Detaches the sink; idempotent. Events already in flight on shard
  /// workers may still be delivered concurrently with the call.
  void Unsubscribe();

 private:
  friend class Monitor;
  Subscription(std::weak_ptr<EventDispatcher> dispatcher, std::uint64_t id)
      : dispatcher_(std::move(dispatcher)), id_(id) {}

  std::weak_ptr<EventDispatcher> dispatcher_;
  std::uint64_t id_ = 0;  // 0 = inactive
};

/// Opaque reference to one registered stream of one Monitor. Cheap to copy;
/// a default-constructed handle is invalid and every facade call rejects it
/// with a typed error.
class StreamHandle {
 public:
  StreamHandle() = default;

  /// True when issued by a Monitor (does not prove it was *this* monitor —
  /// the facade checks that per call).
  bool valid() const { return owner_ != nullptr; }
  /// The underlying runtime stream id.
  runtime::StreamId id() const { return id_; }
  /// The stream's domain tag.
  std::string_view domain() const { return domain_; }
  /// The stream's registered name.
  std::string_view name() const { return name_; }

 private:
  friend class Monitor;
  StreamHandle(const Monitor* owner, runtime::StreamId id,
               std::string_view domain, std::string_view name)
      : owner_(owner), id_(id), domain_(domain), name_(name) {}

  const Monitor* owner_ = nullptr;
  runtime::StreamId id_ = 0;
  std::string_view domain_;  // interned by the owning Monitor
  std::string_view name_;    // owned by the runtime's stream registry
};

/// Per-stream registration options.
struct StreamOptions {
  /// Stream name; must be unique across the Monitor. Empty picks
  /// "<domain>-<id>".
  std::string name;
  /// Default admission severity hint attached to this stream's batches
  /// when Observe/ObserveBatch is called without an explicit hint.
  double severity_hint = 0.0;
};

/// The type-erased serving facade; see the file comment. All public
/// methods are thread-safe.
class Monitor {
 public:
  /// Builder-style construction:
  ///   auto monitor = Monitor::Builder()
  ///                      .Shards(4).Window(48).SettleLag(8)
  ///                      .Admission(runtime::AdmissionPolicy::kBlock)
  ///                      .Build();
  class Builder {
   public:
    /// Shard count (each shard: one worker thread + bounded queue).
    Builder& Shards(std::size_t shards);
    /// Sliding-window length per stream.
    Builder& Window(std::size_t window);
    /// Verdict settle lag (must stay below the window).
    Builder& SettleLag(std::size_t settle_lag);
    /// Maximum queued examples per shard.
    Builder& QueueCapacity(std::size_t capacity);
    /// Full-queue admission policy.
    Builder& Admission(runtime::AdmissionPolicy policy);
    /// Severity floor for kShedBelowSeverity / kLatencyTarget admission.
    Builder& ShedFloor(double floor);
    /// Enables (default) or disables work stealing between shard workers.
    Builder& Stealing(bool stealing);
    /// p99 SLO for kLatencyTarget admission, in milliseconds.
    Builder& LatencyTargetMs(double target_ms);
    /// Attaches an observability tracer: per-shard trace lanes with
    /// `options.ring_capacity` slots and 1-in-`options.sample_every` batch
    /// sampling (options.shard_lanes is overridden to the shard count).
    /// Order-independent with Runtime(): once called, Build() constructs
    /// this tracer regardless of setter order, replacing any tracer the
    /// runtime config carries. Drain via Monitor::WriteChromeTrace or
    /// Monitor::tracer().
    Builder& Trace(obs::TracerOptions options);
    /// Wholesale geometry override (replaces all the setters above except
    /// Trace(), which survives and is applied on top at Build(); without
    /// a Trace() call the config's own tracer field is kept).
    Builder& Runtime(const runtime::ShardedRuntimeConfig& config);

    /// Validates the geometry and spawns the shard workers. Invalid
    /// geometry is a typed kInvalidConfig error, not an abort.
    Result<std::unique_ptr<Monitor>> Build() const;

   private:
    runtime::ShardedRuntimeConfig config_;
    std::optional<obs::TracerOptions> trace_;
  };

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;
  /// Drains every shard queue, then joins the workers.
  ~Monitor();

  /// Registers a stream of `domain`, served by a private suite built from
  /// `suite_factory` (typically serve::EraseSuiteFactory over a typed
  /// factory, or a DomainRegistry entry). Every assertion the factory
  /// produces must be qualified "<domain>/..." — unqualified or foreign
  /// names are a typed error. Errors: kInvalidArgument (empty domain /
  /// null factory), kDuplicateStream, kInvalidSuite, kWrongDomain.
  Result<StreamHandle> RegisterStream(std::string_view domain,
                                      AnySuiteFactory suite_factory,
                                      StreamOptions options = {});

  /// Observes one example on `handle`'s stream (enqueue + return; prefer
  /// ObserveBatch under load). Errors: kInvalidHandle, kWrongDomain.
  Result<ObserveOutcome> Observe(const StreamHandle& handle,
                                 AnyExample example,
                                 std::optional<double> severity_hint = {});

  /// Observes a batch (consumed) on `handle`'s stream. The whole batch
  /// must belong to the stream's domain — a foreign example anywhere in it
  /// rejects the batch with kWrongDomain before anything is enqueued.
  /// `severity_hint` overrides the stream's default hint for this batch.
  /// Errors: kInvalidHandle, kWrongDomain, kBatchTooLarge.
  Result<ObserveOutcome> ObserveBatch(
      const StreamHandle& handle, std::vector<AnyExample> batch,
      std::optional<double> severity_hint = {});

  /// Fans matching events into `sink` until the returned Subscription is
  /// dropped. Sinks must be thread-safe (shard workers call them
  /// concurrently); see runtime::EventSink. Subscribing a null sink
  /// returns an inactive Subscription.
  Subscription Subscribe(EventFilter filter,
                         std::shared_ptr<runtime::EventSink> sink);

  /// Blocks until every shard is quiescent, then flushes subscribed sinks.
  void Flush();

  /// Dashboard snapshot: per-stream / per-assertion aggregates (assertion
  /// keys domain-qualified) plus per-shard queue/loss/latency counters,
  /// shared across every hosted domain.
  runtime::MetricsSnapshot Metrics() const;

  /// Adds `delta` to free-form counter `key` in the monitor's metrics
  /// registry (runtime::MetricsRegistry::RecordNamed) so frontends — the
  /// net layer's per-tenant accounting — land in the same Metrics()
  /// snapshot the exporter renders.
  void RecordNamedMetric(const std::string& key, std::uint64_t delta);

  /// Messages from batches whose scoring threw (the batch is poisoned and
  /// counted as errored; the service keeps serving).
  std::vector<std::string> Errors() const;

  /// The validated runtime geometry.
  const runtime::ShardedRuntimeConfig& config() const;

  /// Stream name <-> id registry (names outlive the Monitor's streams).
  const runtime::StreamRegistry& streams() const;

  /// The attached tracer (null unless built with Builder::Trace or a
  /// config whose tracer field was set).
  std::shared_ptr<obs::Tracer> tracer() const;

  /// Domain-qualified "<domain>/<name>" label per stream id, for trace
  /// serialisation and dashboards.
  std::vector<std::string> StreamLabels() const;

  /// Drains the tracer and writes the accumulated events as Chrome
  /// trace_event JSON (Perfetto-loadable), labeling streams with
  /// StreamLabels(). Without a tracer this writes a valid empty trace.
  /// Each event is written at most once across calls (drains consume).
  void WriteChromeTrace(std::ostream& out);

 private:
  explicit Monitor(const runtime::ShardedRuntimeConfig& config);

  /// What Observe needs per stream, behind an atomic snapshot so the
  /// observe path never takes the registration lock.
  struct StreamInfo {
    std::string_view domain;  // interned in domains_
    double severity_hint = 0.0;
  };

  /// Looks `handle` up, rejecting foreign/default handles.
  Result<StreamInfo> Resolve(const StreamHandle& handle) const;

  std::unique_ptr<runtime::ShardedMonitorService<AnyExample>> service_;
  std::shared_ptr<EventDispatcher> dispatcher_;

  mutable Mutex registration_mutex_;
  /// Interned domain tags (stable addresses).
  std::deque<std::string> domains_ OMG_GUARDED_BY(registration_mutex_);
  std::atomic<std::shared_ptr<const std::vector<StreamInfo>>> stream_info_;
};

}  // namespace omg::serve
