// Typed error results for the serving facade.
//
// The engine layers (core/, runtime/) treat misuse as programmer error and
// throw CheckError — the right contract for internal invariants, the wrong
// one for a public serving API where "this example belongs to another
// domain" is a routine caller mistake. serve::Monitor therefore reports
// user-facing failures as values: an Error carrying a stable ErrorCode plus
// a human-readable message, wrapped in a Result<T> the caller can branch
// on. Nothing on these paths aborts the service.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/check.hpp"

namespace omg::serve {

/// Stable, machine-checkable failure categories of the facade.
enum class ErrorCode {
  /// The builder's runtime geometry failed validation (0 shards,
  /// settle_lag >= window, 0-capacity queue, ...).
  kInvalidConfig,
  /// A stream handle that this Monitor never issued (default-constructed,
  /// or issued by a different Monitor instance).
  kInvalidHandle,
  /// An example's domain does not match the stream it was observed on.
  kWrongDomain,
  /// RegisterStream was given a name that is already registered.
  kDuplicateStream,
  /// The suite factory was null, threw, or produced an unusable suite.
  kInvalidSuite,
  /// A batch larger than one shard's whole queue capacity.
  kBatchTooLarge,
  /// A malformed argument not covered by a more specific code.
  kInvalidArgument,

  // Wire-protocol decode failures (src/net/, docs/WIRE_PROTOCOL.md). These
  // codes cross the wire inside ERROR frames as their integer values, so
  // new codes are appended here — never inserted — to keep old clients'
  // decoding stable.
  /// A frame (or its header) ended before its declared length.
  kTruncatedFrame,
  /// The frame does not start with the protocol magic.
  kBadMagic,
  /// The frame's wire-format version is not one this peer speaks.
  kBadVersion,
  /// The declared payload length exceeds the negotiated frame limit.
  kOversizedFrame,
  /// The payload checksum does not match the header's CRC32.
  kCrcMismatch,
  /// The header's frame type is not in the FrameType vocabulary.
  kUnknownFrameType,
  /// The header names a domain with no registered payload codec.
  kUnknownDomain,
  /// The payload bytes do not decode under the domain's codec.
  kMalformedPayload,
  /// HELLO named a tenant the server does not host.
  kUnknownTenant,
  /// HELLO carried the wrong token for its tenant.
  kAuthFailed,
  /// A data/control frame arrived before a successful HELLO.
  kNotAuthenticated,
  /// BIND_STREAM named a stream the server does not expose (or one this
  /// tenant may not write to).
  kUnknownStream,
  /// A data frame was refused by the tenant's admission quota.
  kQuotaExceeded,

  /// A file could not be opened, read, or written (trace record/replay).
  kIoError,
};

/// Human-readable code name ("invalid_config", "wrong_domain", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// One facade failure: a stable code plus a diagnostic message.
struct Error {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;
};

/// Either a value or an Error — the facade's return type for every
/// user-facing operation that can fail without being a bug in omg itself.
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : state_(std::move(value)) {}
  /// Failure.
  Result(Error error) : state_(std::move(error)) {}

  /// True when the operation succeeded.
  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// The success value; throws CheckError when !ok() (reading the value of
  /// a failed Result *is* a programmer error).
  const T& value() const {
    if (!ok()) {
      throw common::CheckError("Result::value() on error: " +
                               std::get<Error>(state_).message);
    }
    return std::get<T>(state_);
  }

  /// Mutable access to the success value (move the value out of a
  /// known-good Result); throws CheckError when !ok().
  T& value() {
    if (!ok()) {
      throw common::CheckError("Result::value() on error: " +
                               std::get<Error>(state_).message);
    }
    return std::get<T>(state_);
  }

  /// The failure; throws CheckError when ok().
  const Error& error() const {
    common::Check(!ok(), "Result::error() on success");
    return std::get<Error>(state_);
  }

  /// The failure code; throws CheckError when ok().
  ErrorCode code() const { return error().code; }

 private:
  std::variant<T, Error> state_;
};

}  // namespace omg::serve
