#include "serve/domains.hpp"

#include "av/factory.hpp"
#include "ecg/factory.hpp"
#include "net/codec.hpp"
#include "tvnews/factory.hpp"
#include "video/factory.hpp"

namespace omg::serve {

DomainRegistry MakeDefaultDomainRegistry() {
  DomainRegistry registry;
  video::RegisterVideoDomain(registry);
  av::RegisterAvDomain(registry);
  ecg::RegisterEcgDomain(registry);
  tvnews::RegisterNewsDomain(registry);
  net::RegisterDefaultCodecs(registry);
  return registry;
}

}  // namespace omg::serve
