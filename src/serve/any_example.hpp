// AnyExample — the type-erased example holder behind the serving facade.
//
// The paper's abstraction (§2) is deliberately domain-agnostic: an assertion
// is an arbitrary function over a model's inputs and outputs. The engine
// templates everything on the domain's example struct, which is right for
// the scoring hot path but forces one service instance per domain.
// AnyExample erases that template parameter so a single sharded runtime can
// queue, schedule, and account for every domain's traffic together.
//
// Design:
//   * small-buffer storage: examples whose type fits `kInlineCapacity`
//     (sized so all four shipped domains fit) live inside the holder — no
//     allocation on the wrap path; larger types go to the heap;
//   * a per-domain vtable built from a `DomainTraits<T>` specialization:
//     the domain tag plus clone / severity-hint / debug-string hooks. The
//     vtable is a function-local static, so holder identity checks are
//     single pointer compares — no RTTI on the hot path.
//
// Registering a new domain is one `DomainTraits` specialization; see
// src/video/factory.hpp for the pattern.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "serve/spill_pool.hpp"

namespace omg::serve {

/// Per-domain customization point for AnyExample. Specialize for every
/// example type served through the facade:
///
///   template <> struct omg::serve::DomainTraits<MyExample> {
///     /// Stable domain tag; qualifies assertion names ("<domain>/<name>").
///     static constexpr std::string_view kDomain = "mydomain";
///     /// Producer-side importance estimate (admission severity hints).
///     static double SeverityHint(const MyExample&);
///     /// One-line human-readable rendering (diagnostics, typed errors).
///     static std::string DebugString(const MyExample&);
///   };
///
/// The example type itself must be copy-constructible (clone support).
template <typename T>
struct DomainTraits;  // intentionally undefined: specialize per domain

/// Type-erased, domain-tagged holder of one example. Copyable (clones the
/// payload through the domain vtable) and nothrow-movable.
class AnyExample {
 public:
  /// Payloads up to this size (and max_align_t alignment) are stored
  /// inline. Sized so every shipped domain's example type fits with
  /// headroom (the largest, av::AvExample, is 96 bytes on LP64) while the
  /// whole holder stays at 144 bytes — holders are streamed by value
  /// through queues, windows, and scratch copies, so their footprint is
  /// the facade's main throughput lever.
  static constexpr std::size_t kInlineCapacity = 136;

  /// An empty holder (no domain, no payload); only assignment and
  /// destruction are meaningful.
  AnyExample() = default;

  /// Wraps `value` under its DomainTraits domain. The payload is moved in;
  /// small types land in the inline buffer, large ones on the heap.
  template <typename T>
  static AnyExample Make(T value) {
    AnyExample out;
    out.Emplace<T>(std::move(value));
    return out;
  }

  /// Constructs a `T` payload in place from `args` (replacing any current
  /// payload) — the single-copy wrap path bulk producers should prefer
  /// over Make + push_back (which moves the holder once more).
  template <typename T, typename... Args>
  void Emplace(Args&&... args) {
    using Payload = std::remove_cvref_t<T>;
    static_assert(std::is_copy_constructible_v<Payload>,
                  "AnyExample payloads must be copy-constructible");
    Reset();
    if constexpr (Ops<Payload>::kInline) {
      ::new (static_cast<void*>(buffer_))
          Payload(std::forward<Args>(args)...);
    } else {
      void* heap = Ops<Payload>::AllocateSpill();
      try {
        ::new (heap) Payload(std::forward<Args>(args)...);
      } catch (...) {
        Ops<Payload>::ReleaseSpill(heap);
        throw;
      }
      std::memcpy(buffer_, &heap, sizeof(heap));
    }
    vtable_ = &VTableFor<Payload>();
  }

  AnyExample(AnyExample&& other) noexcept { MoveFrom(other); }

  AnyExample& operator=(AnyExample&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  /// Clones the payload through the domain vtable.
  AnyExample(const AnyExample& other) {
    if (other.vtable_ != nullptr) {
      if (other.vtable_->trivial) {
        std::memcpy(buffer_, other.buffer_, other.vtable_->payload_size);
      } else {
        other.vtable_->clone_into(other, *this);
      }
      vtable_ = other.vtable_;
    }
  }

  AnyExample& operator=(const AnyExample& other) {
    if (this != &other) {
      AnyExample copy(other);
      Reset();
      MoveFrom(copy);
    }
    return *this;
  }

  ~AnyExample() { Reset(); }

  /// True when a payload is held.
  bool has_value() const { return vtable_ != nullptr; }

  /// The payload's domain tag (empty for an empty holder).
  std::string_view domain() const {
    return vtable_ != nullptr ? vtable_->domain : std::string_view{};
  }

  /// True when the payload is exactly a `T`.
  template <typename T>
  bool Is() const {
    return vtable_ == &VTableFor<std::remove_cvref_t<T>>();
  }

  /// The payload as `T`, or nullptr when empty / a different type.
  template <typename T>
  const T* TryGet() const {
    return Is<T>() ? static_cast<const T*>(raw()) : nullptr;
  }

  /// Mutable payload access (same type check as TryGet) — for adapters
  /// that move the payload *out* of the holder, e.g. the typed stream
  /// scorer ingesting a facade batch into a typed window. Moving from the
  /// payload leaves it valid-but-unspecified; the holder still owns and
  /// destroys it.
  template <typename T>
  T* TryGetMutable() {
    return Is<T>() ? static_cast<T*>(raw()) : nullptr;
  }

  /// The payload as `T`; throws CheckError when empty / a different type
  /// (use TryGet on paths that must not throw).
  template <typename T>
  const T& Get() const {
    const T* typed = TryGet<T>();
    common::Check(typed != nullptr,
                  "AnyExample::Get<T>: holder carries domain '" +
                      std::string(domain()) + "', not the requested type");
    return *typed;
  }

  /// An opaque identity key: equal keys <=> same payload type (and so
  /// same domain). Lets hot validation loops replace per-example string
  /// compares with a pointer compare; nullptr for an empty holder.
  const void* TypeKey() const { return vtable_; }

  /// The domain's producer-side importance estimate for this example
  /// (0 for an empty holder) — feeds admission severity hints.
  double SeverityHint() const {
    return vtable_ != nullptr ? vtable_->severity_hint(raw()) : 0.0;
  }

  /// One-line human-readable rendering ("<empty>" for an empty holder).
  std::string DebugString() const {
    return vtable_ != nullptr ? vtable_->debug_string(raw()) : "<empty>";
  }

 private:
  /// The per-domain operation table; one function-local static per payload
  /// type, so `vtable_` pointer identity doubles as the type check.
  struct VTable {
    std::string_view domain;
    bool inline_storage;
    /// Inline + trivially copyable: move/clone/destroy are a plain
    /// `payload_size` memcpy (or nothing), skipping the indirect calls —
    /// the move fast path the window/queue hot loops hit.
    bool trivial;
    std::size_t payload_size;
    void (*destroy)(AnyExample&) noexcept;
    /// Moves src's payload into dst's (raw) storage; src keeps its vtable.
    void (*relocate)(AnyExample& src, AnyExample& dst) noexcept;
    /// Copy-constructs src's payload into dst's (raw) storage.
    void (*clone_into)(const AnyExample& src, AnyExample& dst);
    double (*severity_hint)(const void*);
    std::string (*debug_string)(const void*);
  };

  template <typename T>
  struct Ops {
    static constexpr bool kInline =
        sizeof(T) <= kInlineCapacity &&
        alignof(T) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<T>;

    /// Heap-spilled payloads recycle SpillPool blocks; over-aligned types
    /// bypass the pool (its blocks are only max_align_t-aligned).
    static constexpr bool kPooled =
        !kInline && alignof(T) <= alignof(std::max_align_t);

    static void* AllocateSpill() {
      if constexpr (kPooled) {
        return SpillPool::Allocate(sizeof(T));
      } else {
        return ::operator new(sizeof(T), std::align_val_t(alignof(T)));
      }
    }

    static void ReleaseSpill(void* block) noexcept {
      if constexpr (kPooled) {
        SpillPool::Release(block, sizeof(T));
      } else {
        ::operator delete(block, std::align_val_t(alignof(T)));
      }
    }

    static void Destroy(AnyExample& self) noexcept {
      if constexpr (kInline) {
        static_cast<T*>(self.raw())->~T();
      } else {
        T* payload = static_cast<T*>(self.raw());
        payload->~T();
        ReleaseSpill(payload);
      }
    }

    static void Relocate(AnyExample& src, AnyExample& dst) noexcept {
      if constexpr (kInline) {
        T* payload = static_cast<T*>(src.raw());
        ::new (static_cast<void*>(dst.buffer_)) T(std::move(*payload));
        payload->~T();
      } else {
        std::memcpy(dst.buffer_, src.buffer_, sizeof(void*));
      }
    }

    static void CloneInto(const AnyExample& src, AnyExample& dst) {
      const T& payload = *static_cast<const T*>(src.raw());
      if constexpr (kInline) {
        ::new (static_cast<void*>(dst.buffer_)) T(payload);
      } else {
        void* heap = AllocateSpill();
        try {
          ::new (heap) T(payload);
        } catch (...) {
          ReleaseSpill(heap);
          throw;
        }
        std::memcpy(dst.buffer_, &heap, sizeof(heap));
      }
    }

    static double SeverityHint(const void* payload) {
      return DomainTraits<T>::SeverityHint(*static_cast<const T*>(payload));
    }

    static std::string DebugString(const void* payload) {
      return DomainTraits<T>::DebugString(*static_cast<const T*>(payload));
    }
  };

  /// The unique vtable for payload type T. A constant-initialized inline
  /// variable template: one instance per type across translation units
  /// (so pointer identity is the type check) and no init-guard on access
  /// (TryGet/Is run per element on hot loops).
  template <typename T>
  static constexpr VTable kVTableFor{DomainTraits<T>::kDomain,
                                     Ops<T>::kInline,
                                     Ops<T>::kInline &&
                                         std::is_trivially_copyable_v<T>,
                                     sizeof(T),
                                     &Ops<T>::Destroy,
                                     &Ops<T>::Relocate,
                                     &Ops<T>::CloneInto,
                                     &Ops<T>::SeverityHint,
                                     &Ops<T>::DebugString};

  template <typename T>
  static const VTable& VTableFor() {
    return kVTableFor<T>;
  }

  const void* raw() const {
    if (vtable_->inline_storage) return buffer_;
    void* heap = nullptr;
    std::memcpy(&heap, buffer_, sizeof(heap));
    return heap;
  }
  void* raw() { return const_cast<void*>(std::as_const(*this).raw()); }

  void Reset() noexcept {
    if (vtable_ != nullptr) {
      if (!vtable_->trivial) vtable_->destroy(*this);
      vtable_ = nullptr;
    }
  }

  /// Precondition: *this is empty.
  void MoveFrom(AnyExample& other) noexcept {
    const VTable* vtable = other.vtable_;
    if (vtable == nullptr) return;
    if (vtable->trivial) {
      std::memcpy(buffer_, other.buffer_, vtable->payload_size);
    } else if (!vtable->inline_storage) {
      std::memcpy(buffer_, other.buffer_, sizeof(void*));
    } else {
      vtable->relocate(other, *this);
    }
    vtable_ = vtable;
    other.vtable_ = nullptr;
  }

  // Buffer first: with the vtable pointer trailing, the padding that
  // max_align_t alignment would otherwise insert between the members
  // disappears and the holder shrinks by 16 bytes — measurable on the
  // window/queue hot loops, which stream holders by value.
  alignas(std::max_align_t) std::byte buffer_[kInlineCapacity];
  const VTable* vtable_ = nullptr;
};

/// Wraps a typed span into facade holders, one copy per example (the bulk
/// producer path: `monitor.ObserveBatch(handle, WrapBatch(span))`).
template <typename T>
std::vector<AnyExample> WrapBatch(std::span<const T> examples) {
  // Pre-sized holders filled through the data pointer: the default ctor
  // only nulls the vtable word, and a plain indexed loop lets the copies
  // flatten — measurably faster than reserve + emplace_back, which
  // re-checks capacity and re-loads the end pointer per element.
  std::vector<AnyExample> batch(examples.size());
  AnyExample* out = batch.data();
  for (std::size_t i = 0; i < examples.size(); ++i) {
    out[i].Emplace<T>(examples[i]);
  }
  return batch;
}

}  // namespace omg::serve
