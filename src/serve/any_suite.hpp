// Erasing core::Assertion<Example> suites into AnyExample suites.
//
// ErasedAssertion<T> adapts one typed assertion to the AnyExample stream the
// shared runtime serves, preserving the `temporal_radius` incremental-
// evaluation contract (the evaluator sees the same radii, so pointwise /
// bounded-suffix / unbounded scheduling is unchanged). Assertion names are
// qualified as "<domain>/<name>" at erasure time, so runtime events, metric
// keys, and FlagCollectorSink columns can never collide across domains.
//
// Typed assertions score `span<const T>`; the erased stream holds
// AnyExample. Each evaluation therefore materialises a contiguous typed
// copy of the requested span. A per-bundle ScratchPool shares those copies
// across the suite's assertions within one evaluation pass: all assertions
// requesting the same span (notably a consistency source's generated
// family, which must see one span for its analysis memoisation to hold) get
// the same typed buffer, so the erased suite does one copy per distinct
// span per pass, not one per assertion.
//
// Evaluation-pass contract: the pool starts a new pass whenever assertion 0
// of the erased suite is evaluated. Both drivers in the tree — the
// incremental window evaluator and AssertionSuite::CheckAll — evaluate
// every assertion in index order per pass, which is what makes the sharing
// sound; evaluating an erased assertion in isolation is not supported.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/assertion.hpp"
#include "runtime/suite_bundle.hpp"
#include "serve/any_example.hpp"

namespace omg::serve {

/// An erased per-stream suite bundle / factory — what the shared runtime
/// (ShardedMonitorService<AnyExample>) is instantiated with.
using AnySuiteBundle = runtime::SuiteBundle<AnyExample>;
using AnySuiteFactory = runtime::SuiteFactory<AnyExample>;

/// "<domain>/<name>" — the qualified event name of an erased assertion.
inline std::string QualifiedName(std::string_view domain,
                                 std::string_view name) {
  std::string qualified;
  qualified.reserve(domain.size() + 1 + name.size());
  qualified.append(domain);
  qualified.push_back('/');
  qualified.append(name);
  return qualified;
}

/// The domain tag of a qualified assertion name (empty when unqualified).
inline std::string_view DomainOfQualifiedName(std::string_view qualified) {
  const std::size_t slash = qualified.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : qualified.substr(0, slash);
}

/// The bare assertion name behind a qualified one (identity when
/// unqualified).
inline std::string_view UnqualifiedName(std::string_view qualified) {
  const std::size_t slash = qualified.find('/');
  return slash == std::string_view::npos ? qualified
                                         : qualified.substr(slash + 1);
}

/// Shared typed-copy cache for one erased suite (see the file comment for
/// the evaluation-pass contract). Not thread-safe; the runtime pins each
/// stream's suite to one shard worker.
///
/// The incremental evaluator asks each assertion to score a *suffix* of
/// the stream window sized to its radius, so within one pass every
/// requested span shares the window's end and they differ only in how far
/// left they reach. The pool exploits that: copies are kept end-aligned in
/// a tail-filled buffer, a narrower request is served as a zero-copy view,
/// and a wider one copies only the missing prefix — the whole suite costs
/// one typed copy of the widest span per pass instead of one per
/// assertion. (The prefix-extension fast path needs memcpy-safe elements;
/// other payload types fall back to one copy per distinct span, still
/// shared across assertions requesting it.)
template <typename T>
class ScratchPool {
 public:
  /// Invalidates every cached span; the next Materialize call re-copies.
  void BeginPass() { ++pass_; }

  /// A contiguous typed copy of `examples`, shared within the current
  /// pass. Throws CheckError (poisoning the batch, not the service) when
  /// an example is empty or of another domain.
  std::span<const T> Materialize(std::span<const AnyExample> examples,
                                 std::string_view assertion) {
    if (examples.empty()) return {};
    const AnyExample* request_begin = examples.data();
    const AnyExample* request_end = request_begin + examples.size();

    // Any live entry that covers the request serves a zero-copy view.
    for (Entry& entry : entries_) {
      if (entry.pass == pass_ && request_begin >= entry.begin &&
          request_end <= entry.end) {
        return {entry.Tail() + (request_begin - entry.begin),
                examples.size()};
      }
    }

    if constexpr (std::is_trivially_copyable_v<T>) {
      // End-aligned extension: a wider request over an already-copied
      // suffix fills in only the missing prefix.
      for (Entry& entry : entries_) {
        if (entry.pass == pass_ && entry.end == request_end &&
            request_begin < entry.begin) {
          const std::size_t extra =
              static_cast<std::size_t>(entry.begin - request_begin);
          entry.EnsureTailCapacity(entry.count + extra);
          CopyRange(request_begin, entry.begin, entry.Tail() - extra,
                    assertion);
          entry.count += extra;
          entry.begin = request_begin;
          return {entry.Tail(), examples.size()};
        }
      }
    }

    Entry& entry = NextSlot();
    entry.pass = 0;   // half-built until the copy below succeeds
    entry.count = 0;  // stale contents are dead; nothing to preserve
    if constexpr (std::is_trivially_copyable_v<T>) {
      entry.EnsureTailCapacity(examples.size());
      entry.count = examples.size();
      CopyRange(request_begin, request_end, entry.Tail(), assertion);
    } else {
      // Copy-construct into a begin-aligned buffer (no prepend extension
      // for these payloads, so tail alignment buys nothing).
      entry.storage.clear();
      entry.storage.reserve(examples.size());
      for (const AnyExample& example : examples) {
        entry.storage.push_back(Payload(example, assertion));
      }
      entry.count = examples.size();
    }
    entry.begin = request_begin;
    entry.end = request_end;
    entry.pass = pass_;
    return {entry.Tail(), entry.count};
  }

 private:
  struct Entry {
    std::uint64_t pass = 0;  // 0 = never valid (BeginPass starts at 1)
    const AnyExample* begin = nullptr;  ///< covered raw span
    const AnyExample* end = nullptr;
    std::size_t count = 0;    ///< typed elements, at the tail of `storage`
    std::vector<T> storage;   ///< tail-filled: elements in [size-count, size)

    T* Tail() { return storage.data() + storage.size() - count; }

    /// Grows `storage` (keeping the tail alignment of the current
    /// elements) so `needed` elements fit. Trivially-copyable payloads
    /// only (the extension fast path).
    void EnsureTailCapacity(std::size_t needed) {
      static_assert(std::is_trivially_copyable_v<T>);
      if (storage.size() >= needed) return;
      std::vector<T> grown(std::max<std::size_t>(needed + needed / 2, 64));
      if (count > 0) {
        std::memcpy(grown.data() + grown.size() - count, Tail(),
                    count * sizeof(T));
      }
      storage = std::move(grown);
    }
  };

  /// The typed payload of `example`; throws CheckError on a domain
  /// mismatch, naming the offending example.
  static const T& Payload(const AnyExample& example,
                          std::string_view assertion) {
    const T* typed = example.TryGet<T>();
    if (typed == nullptr) {
      throw common::CheckError(
          "assertion '" + std::string(assertion) + "' fed a '" +
          std::string(example.domain()) +
          "' example: " + example.DebugString());
    }
    return *typed;
  }

  /// Verifies domains and copies payloads into `out` (dense,
  /// memcpy-safe payloads only). Two-phase: validate every holder first,
  /// then copy in a branch-free loop — the throw path stays out of the
  /// copy loop, so the compiler can unroll/vectorize the memcpys.
  static void CopyRange(const AnyExample* begin, const AnyExample* end,
                        T* out, std::string_view assertion) {
    for (const AnyExample* it = begin; it != end; ++it) {
      if (!it->Is<T>()) Payload(*it, assertion);  // throws, naming the domain
    }
    for (const AnyExample* it = begin; it != end; ++it, ++out) {
      std::memcpy(static_cast<void*>(out), it->TryGet<T>(), sizeof(T));
    }
  }

  /// Reuses a stale entry (keeping its capacity) or grows the pool. One
  /// pass touches only a handful of distinct spans (one per distinct
  /// assertion radius), so linear scans stay trivial.
  Entry& NextSlot() {
    for (Entry& entry : entries_) {
      if (entry.pass != pass_) return entry;
    }
    return entries_.emplace_back();
  }

  std::vector<Entry> entries_;
  std::uint64_t pass_ = 0;
};

/// One typed assertion viewed through the AnyExample stream. Radius and
/// scores pass through unchanged; the name gains its domain qualifier.
template <typename T>
class ErasedAssertion final : public core::Assertion<AnyExample> {
 public:
  /// Wraps assertion `index` of `suite` (kept alive via the shared_ptr).
  /// `pool` is the bundle-wide scratch pool; `pass_leader` marks the
  /// erased suite's assertion 0, which opens each evaluation pass.
  ErasedAssertion(std::string_view domain,
                  std::shared_ptr<core::AssertionSuite<T>> suite,
                  std::size_t index, std::shared_ptr<ScratchPool<T>> pool,
                  bool pass_leader)
      : core::Assertion<AnyExample>(
            QualifiedName(domain, suite->at(index).name())),
        suite_(std::move(suite)),
        index_(index),
        pool_(std::move(pool)),
        pass_leader_(pass_leader) {
    common::Check(pool_ != nullptr, "erased assertion needs a scratch pool");
  }

  std::vector<double> CheckAll(
      std::span<const AnyExample> examples) override {
    if (pass_leader_) pool_->BeginPass();
    return suite_->at(index_).CheckAll(
        pool_->Materialize(examples, name()));
  }

  std::size_t temporal_radius() const override {
    return suite_->at(index_).temporal_radius();
  }

 private:
  std::shared_ptr<core::AssertionSuite<T>> suite_;
  std::size_t index_;
  std::shared_ptr<ScratchPool<T>> pool_;
  bool pass_leader_;
};

/// The facade's fast path: scores an AnyExample stream on a *typed*
/// window. Each batch's payloads are moved straight out of their holders
/// into an IncrementalWindowEvaluator<T> (no ScratchPool materialisation,
/// no erased-assertion indirection per pass); the typed suite scores
/// typed spans directly. The evaluator sees the same radii, window, and
/// settle lag as the erased path, so chunk splits and emission order are
/// bit-identical — only the per-pass copies disappear.
template <typename T>
class TypedStreamScorer final : public runtime::StreamScorer<AnyExample> {
 public:
  TypedStreamScorer(std::string_view domain,
                    std::shared_ptr<core::AssertionSuite<T>> suite,
                    std::function<void()> invalidate,
                    const runtime::StreamScorerParams& params)
      : domain_(domain),
        suite_(std::move(suite)),
        evaluator_(*suite_, {params.window, params.settle_lag,
                             std::move(invalidate)}) {}

  void ObserveBatch(std::vector<AnyExample> batch,
                    const runtime::StreamScorer<AnyExample>::EmitFn& emit)
      override {
    AnyExample* data = batch.data();
    auto source = [this, data](std::size_t k) -> T&& {
      T* typed = data[k].TryGetMutable<T>();
      if (typed == nullptr) {
        throw common::CheckError(
            "stream scorer for domain '" + domain_ + "' fed a '" +
            std::string(data[k].domain()) +
            "' example: " + data[k].DebugString());
      }
      return std::move(*typed);
    };
    evaluator_.ObserveBatchFrom(batch.size(), source, emit);
  }

 private:
  std::string domain_;
  std::shared_ptr<core::AssertionSuite<T>> suite_;
  core::IncrementalWindowEvaluator<T> evaluator_;
};

/// Erases a typed per-stream bundle into an AnyExample bundle: every
/// assertion is wrapped (name qualified under `domain`), the invalidation
/// hook passes through, and the typed suite stays alive behind the
/// wrappers. The bundle also carries a TypedStreamScorer factory, so the
/// sharded service evaluates this stream on typed windows (the erased
/// suite remains the source of event names — and the fallback for any
/// driver that scores through AssertionSuite::CheckAll directly).
template <typename T>
AnySuiteBundle EraseSuiteBundle(std::string_view domain,
                                runtime::SuiteBundle<T> bundle) {
  common::Check(!domain.empty(), "EraseSuiteBundle: empty domain");
  common::Check(bundle.suite != nullptr, "EraseSuiteBundle: null suite");
  auto pool = std::make_shared<ScratchPool<T>>();
  auto erased = std::make_shared<core::AssertionSuite<AnyExample>>();
  for (std::size_t i = 0; i < bundle.suite->size(); ++i) {
    erased->Add(std::make_unique<ErasedAssertion<T>>(
        domain, bundle.suite, i, pool, /*pass_leader=*/i == 0));
  }
  AnySuiteBundle out;
  out.suite = std::move(erased);
  out.invalidate = bundle.invalidate;
  out.scorer = [domain = std::string(domain), suite = bundle.suite,
                invalidate = std::move(bundle.invalidate)](
                   const runtime::StreamScorerParams& params) {
    return std::make_unique<TypedStreamScorer<T>>(domain, suite, invalidate,
                                                  params);
  };
  return out;
}

/// Erases a typed suite factory: each RegisterStream gets a freshly built
/// typed bundle, erased under `domain`.
template <typename T>
AnySuiteFactory EraseSuiteFactory(std::string domain,
                                  runtime::SuiteFactory<T> factory) {
  common::Check(static_cast<bool>(factory),
                "EraseSuiteFactory: null typed factory");
  return [domain = std::move(domain), factory = std::move(factory)] {
    return EraseSuiteBundle<T>(domain, factory());
  };
}

}  // namespace omg::serve
