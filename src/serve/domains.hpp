// The shipped domain set, assembled for the serving facade.
//
// One call wires all four paper deployments (video, av, ecg, tvnews) into a
// DomainRegistry, so binaries hosting "everything we serve" need a single
// include instead of four factory headers. Custom deployments can start
// from an empty registry and register only what they serve — RegisterDomain
// below is the one-liner each domain's Register*Domain uses.
#pragma once

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "config/assertion_factory.hpp"
#include "config/scenario.hpp"
#include "serve/any_suite.hpp"
#include "serve/domain_registry.hpp"

namespace omg::serve {

/// Registers domain `name` for `Example`: a typed AssertionFactory
/// populated by `register_assertions` backs both the erased suite builder
/// (each [suite <name>] spec compiles to per-stream bundles qualified
/// "<name>/...") and the --describe listing.
template <typename Example>
void RegisterDomain(
    DomainRegistry& registry, std::string name,
    const std::function<void(config::AssertionFactory<Example>&)>&
        register_assertions) {
  common::Check(static_cast<bool>(register_assertions),
                "RegisterDomain: null assertion registration hook");
  auto factory = std::make_shared<config::AssertionFactory<Example>>();
  register_assertions(*factory);
  DomainRegistry::Domain domain;
  domain.name = name;
  domain.make_suite_factory = [factory,
                               name](const config::SuiteSpec& spec) {
    return AnySuiteFactory([factory, name, spec] {
      return EraseSuiteBundle<Example>(
          name, config::BuildSuiteBundle(*factory, spec));
    });
  };
  domain.describe = [factory](std::ostream& out) {
    config::DescribeAssertions(out, *factory);
  };
  registry.Register(std::move(domain));
}

/// A registry with the four shipped domains registered: "video", "av",
/// "ecg", "tvnews" (each domain's erased builders over its typed
/// config::AssertionFactory).
DomainRegistry MakeDefaultDomainRegistry();

}  // namespace omg::serve
