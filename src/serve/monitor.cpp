#include "serve/monitor.hpp"

#include <algorithm>
#include <exception>
#include <ostream>

#include "common/check.hpp"
#include "obs/trace_json.hpp"

namespace omg::serve {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidConfig: return "invalid_config";
    case ErrorCode::kInvalidHandle: return "invalid_handle";
    case ErrorCode::kWrongDomain: return "wrong_domain";
    case ErrorCode::kDuplicateStream: return "duplicate_stream";
    case ErrorCode::kInvalidSuite: return "invalid_suite";
    case ErrorCode::kBatchTooLarge: return "batch_too_large";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kTruncatedFrame: return "truncated_frame";
    case ErrorCode::kBadMagic: return "bad_magic";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kOversizedFrame: return "oversized_frame";
    case ErrorCode::kCrcMismatch: return "crc_mismatch";
    case ErrorCode::kUnknownFrameType: return "unknown_frame_type";
    case ErrorCode::kUnknownDomain: return "unknown_domain";
    case ErrorCode::kMalformedPayload: return "malformed_payload";
    case ErrorCode::kUnknownTenant: return "unknown_tenant";
    case ErrorCode::kAuthFailed: return "auth_failed";
    case ErrorCode::kNotAuthenticated: return "not_authenticated";
    case ErrorCode::kUnknownStream: return "unknown_stream";
    case ErrorCode::kQuotaExceeded: return "quota_exceeded";
    case ErrorCode::kIoError: return "io_error";
  }
  return "?";
}

bool EventFilter::Matches(const runtime::StreamEvent& event) const {
  if (event.severity < min_severity) return false;
  if (!stream.empty() && event.stream != stream) return false;
  if (!domain.empty() && DomainOfQualifiedName(event.assertion) != domain) {
    return false;
  }
  if (!assertion.empty() && event.assertion != assertion &&
      UnqualifiedName(event.assertion) != assertion) {
    return false;
  }
  return true;
}

/// The Monitor's single service-level sink: fans every runtime event out to
/// the current subscription set, read through an atomic raw-pointer
/// snapshot so Consume (called per event on the shard workers) costs one
/// acquire load — not the internal spinlock an atomic<shared_ptr> load
/// takes. Writers swap in a rebuilt snapshot and *retire* the old one
/// instead of freeing it (readers hold no reference): retired snapshots
/// (and the sinks they reference) live until the dispatcher — i.e. the
/// Monitor — dies, which bounds memory by the subscribe-call count, not
/// the event rate.
class EventDispatcher final : public runtime::EventSink {
 public:
  std::uint64_t Add(EventFilter filter,
                    std::shared_ptr<runtime::EventSink> sink) {
    MutexLock lock(mutex_);
    const std::uint64_t id = next_id_++;
    auto entries = std::make_unique<std::vector<Entry>>(Current());
    // Pass-all filters (the common "give me everything" subscription) skip
    // Matches entirely — Consume runs once per event on the shard workers.
    const bool pass_all = filter.domain.empty() && filter.stream.empty() &&
                          filter.assertion.empty() &&
                          filter.min_severity <= 0.0;
    entries->push_back({id, pass_all, std::move(filter), std::move(sink)});
    Publish(std::move(entries));
    return id;
  }

  /// True when `id` was present (first Remove wins).
  bool Remove(std::uint64_t id) {
    MutexLock lock(mutex_);
    auto entries = std::make_unique<std::vector<Entry>>(Current());
    const auto it = std::find_if(
        entries->begin(), entries->end(),
        [id](const Entry& entry) { return entry.id == id; });
    if (it == entries->end()) return false;
    entries->erase(it);
    Publish(std::move(entries));
    return true;
  }

  bool Contains(std::uint64_t id) const {
    const std::vector<Entry>* entries =
        current_.load(std::memory_order_acquire);
    if (entries == nullptr) return false;
    return std::any_of(entries->begin(), entries->end(),
                       [id](const Entry& entry) { return entry.id == id; });
  }

  void Consume(const runtime::StreamEvent& event) override {
    const std::vector<Entry>* entries =
        current_.load(std::memory_order_acquire);
    if (entries == nullptr) return;
    for (const Entry& entry : *entries) {
      if (entry.pass_all || entry.filter.Matches(event)) {
        entry.sink->Consume(event);
      }
    }
  }

  void Flush() override {
    const std::vector<Entry>* entries =
        current_.load(std::memory_order_acquire);
    if (entries == nullptr) return;
    for (const Entry& entry : *entries) entry.sink->Flush();
  }

 private:
  struct Entry {
    std::uint64_t id;
    bool pass_all;
    EventFilter filter;
    std::shared_ptr<runtime::EventSink> sink;
  };

  const std::vector<Entry>& Current() const OMG_REQUIRES(mutex_) {
    static const std::vector<Entry> kEmpty;
    const std::vector<Entry>* entries =
        current_.load(std::memory_order_relaxed);
    return entries != nullptr ? *entries : kEmpty;
  }

  void Publish(std::unique_ptr<const std::vector<Entry>> entries)
      OMG_REQUIRES(mutex_) {
    current_.store(entries.get(), std::memory_order_release);
    snapshots_.push_back(std::move(entries));  // retire, never free early
  }

  Mutex mutex_;  ///< serialises Add/Remove (writers)
  std::uint64_t next_id_ OMG_GUARDED_BY(mutex_) = 1;
  std::atomic<const std::vector<Entry>*> current_{nullptr};
  std::vector<std::unique_ptr<const std::vector<Entry>>> snapshots_
      OMG_GUARDED_BY(mutex_);
};

bool Subscription::active() const {
  const auto dispatcher = dispatcher_.lock();
  return id_ != 0 && dispatcher != nullptr && dispatcher->Contains(id_);
}

void Subscription::Unsubscribe() {
  if (id_ == 0) return;
  if (const auto dispatcher = dispatcher_.lock()) dispatcher->Remove(id_);
  id_ = 0;
  dispatcher_.reset();
}

// ---------------------------------------------------------------- builder ---

Monitor::Builder& Monitor::Builder::Shards(std::size_t shards) {
  config_.shards = shards;
  return *this;
}

Monitor::Builder& Monitor::Builder::Window(std::size_t window) {
  config_.window = window;
  return *this;
}

Monitor::Builder& Monitor::Builder::SettleLag(std::size_t settle_lag) {
  config_.settle_lag = settle_lag;
  return *this;
}

Monitor::Builder& Monitor::Builder::QueueCapacity(std::size_t capacity) {
  config_.queue_capacity = capacity;
  return *this;
}

Monitor::Builder& Monitor::Builder::Admission(
    runtime::AdmissionPolicy policy) {
  config_.admission = policy;
  return *this;
}

Monitor::Builder& Monitor::Builder::ShedFloor(double floor) {
  config_.shed_floor = floor;
  return *this;
}

Monitor::Builder& Monitor::Builder::Stealing(bool stealing) {
  config_.stealing = stealing;
  return *this;
}

Monitor::Builder& Monitor::Builder::LatencyTargetMs(double target_ms) {
  config_.latency_target_ms = target_ms;
  return *this;
}

Monitor::Builder& Monitor::Builder::Trace(obs::TracerOptions options) {
  trace_ = options;
  return *this;
}

Monitor::Builder& Monitor::Builder::Runtime(
    const runtime::ShardedRuntimeConfig& config) {
  config_ = config;
  return *this;
}

Result<std::unique_ptr<Monitor>> Monitor::Builder::Build() const {
  try {
    config_.Validate();
  } catch (const common::CheckError& error) {
    return Error{ErrorCode::kInvalidConfig, error.what()};
  }
  runtime::ShardedRuntimeConfig config = config_;
  if (trace_.has_value()) {
    if (trace_->ring_capacity < 1 || trace_->sample_every < 1) {
      return Error{ErrorCode::kInvalidConfig,
                   "tracer needs ring_capacity >= 1 and sample_every >= 1"};
    }
    obs::TracerOptions options = *trace_;
    options.shard_lanes = config.shards;  // one lane per shard worker
    config.tracer = std::make_shared<obs::Tracer>(options);
  }
  return std::unique_ptr<Monitor>(new Monitor(config));
}

// ---------------------------------------------------------------- monitor ---

Monitor::Monitor(const runtime::ShardedRuntimeConfig& config)
    : dispatcher_(std::make_shared<EventDispatcher>()) {
  // No service-level suite factory: streams are heterogeneous, so each
  // RegisterStream hands the service an already-built (and vetted) bundle.
  service_ =
      std::make_unique<runtime::ShardedMonitorService<AnyExample>>(config);
  service_->AddSink(dispatcher_);
}

Monitor::~Monitor() = default;

Result<StreamHandle> Monitor::RegisterStream(std::string_view domain,
                                             AnySuiteFactory suite_factory,
                                             StreamOptions options) {
  if (domain.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "RegisterStream: domain must be non-empty"};
  }
  if (domain.find('/') != std::string_view::npos) {
    return Error{ErrorCode::kInvalidArgument,
                 "RegisterStream: domain '" + std::string(domain) +
                     "' must not contain '/'"};
  }
  if (!suite_factory) {
    return Error{ErrorCode::kInvalidArgument,
                 "RegisterStream: null suite factory"};
  }

  // Build (and vet) the stream's suite before touching the service, so a
  // throwing factory cannot leave the engine's registry half-updated.
  AnySuiteBundle bundle;
  try {
    bundle = suite_factory();
  } catch (const std::exception& error) {
    return Error{ErrorCode::kInvalidSuite,
                 std::string("suite factory threw: ") + error.what()};
  }
  if (bundle.suite == nullptr || bundle.suite->empty()) {
    return Error{ErrorCode::kInvalidSuite,
                 "suite factory produced " +
                     std::string(bundle.suite == nullptr ? "no suite"
                                                         : "an empty suite")};
  }
  for (const std::string& name : bundle.suite->Names()) {
    if (DomainOfQualifiedName(name) != domain) {
      return Error{ErrorCode::kWrongDomain,
                   "assertion '" + name + "' is not qualified under '" +
                       std::string(domain) +
                       "/' (erase the suite with EraseSuiteFactory)"};
    }
  }

  MutexLock lock(registration_mutex_);
  std::string name = std::move(options.name);
  if (name.empty()) {
    name = std::string(domain) + "-" +
           std::to_string(service_->registry().size());
  }
  if (service_->registry().Contains(name)) {
    return Error{ErrorCode::kDuplicateStream,
                 "stream '" + name + "' is already registered"};
  }

  // Intern the domain tag (stable storage for handle/info string_views).
  std::string_view interned;
  for (const std::string& existing : domains_) {
    if (existing == domain) {
      interned = existing;
      break;
    }
  }
  if (interned.empty()) interned = domains_.emplace_back(domain);

  const runtime::StreamId id =
      service_->RegisterStream(std::move(name), std::move(bundle));

  auto info = std::make_shared<std::vector<StreamInfo>>(
      stream_info_.load() ? *stream_info_.load()
                          : std::vector<StreamInfo>{});
  common::Check(info->size() == id, "stream info out of sync");
  info->push_back({interned, options.severity_hint});
  stream_info_.store(
      std::shared_ptr<const std::vector<StreamInfo>>(std::move(info)));
  return StreamHandle(this, id, interned, service_->registry().Name(id));
}

Result<Monitor::StreamInfo> Monitor::Resolve(
    const StreamHandle& handle) const {
  if (handle.owner_ != this) {
    return Error{ErrorCode::kInvalidHandle,
                 handle.owner_ == nullptr
                     ? "default-constructed stream handle"
                     : "stream handle issued by a different Monitor"};
  }
  const auto info = stream_info_.load();
  if (!info || handle.id_ >= info->size()) {
    return Error{ErrorCode::kInvalidHandle,
                 "stream handle id out of range"};
  }
  return (*info)[handle.id_];
}

Result<ObserveOutcome> Monitor::Observe(
    const StreamHandle& handle, AnyExample example,
    std::optional<double> severity_hint) {
  std::vector<AnyExample> batch;
  batch.push_back(std::move(example));
  return ObserveBatch(handle, std::move(batch), severity_hint);
}

Result<ObserveOutcome> Monitor::ObserveBatch(
    const StreamHandle& handle, std::vector<AnyExample> batch,
    std::optional<double> severity_hint) {
  const Result<StreamInfo> info = Resolve(handle);
  if (!info.ok()) return info.error();
  if (batch.empty()) return ObserveOutcome::kAdmitted;
  if (batch.size() > service_->config().queue_capacity) {
    return Error{ErrorCode::kBatchTooLarge,
                 "batch of " + std::to_string(batch.size()) +
                     " examples exceeds the shard queue capacity (" +
                     std::to_string(service_->config().queue_capacity) +
                     "); split it"};
  }
  // Validate domains with one pointer compare per example (batches are
  // almost always type-homogeneous); the string compare only runs for
  // examples of a different payload type, which may still share the
  // stream's domain tag.
  const void* likely_key = batch.front().TypeKey();
  const bool front_matches =
      batch.front().domain() == info.value().domain;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].TypeKey() == likely_key ? front_matches
                                         : batch[i].domain() ==
                                               info.value().domain) {
      continue;
    }
    return Error{
        ErrorCode::kWrongDomain,
        "batch[" + std::to_string(i) + "] is a '" +
            std::string(batch[i].has_value() ? batch[i].domain()
                                             : "<empty>") +
            "' example but stream '" + std::string(handle.name()) +
            "' serves domain '" + std::string(info.value().domain) +
            "': " + batch[i].DebugString()};
  }
  const double hint =
      severity_hint.value_or(info.value().severity_hint);
  const bool admitted =
      service_->ObserveBatch(handle.id_, std::move(batch), hint);
  return admitted ? ObserveOutcome::kAdmitted : ObserveOutcome::kShed;
}

Subscription Monitor::Subscribe(EventFilter filter,
                                std::shared_ptr<runtime::EventSink> sink) {
  if (sink == nullptr) return Subscription{};
  const std::uint64_t id =
      dispatcher_->Add(std::move(filter), std::move(sink));
  return Subscription(dispatcher_, id);
}

void Monitor::Flush() { service_->Flush(); }

runtime::MetricsSnapshot Monitor::Metrics() const {
  return service_->Metrics();
}

void Monitor::RecordNamedMetric(const std::string& key, std::uint64_t delta) {
  service_->metrics_registry().RecordNamed(key, delta);
}

std::vector<std::string> Monitor::Errors() const {
  return service_->Errors();
}

const runtime::ShardedRuntimeConfig& Monitor::config() const {
  return service_->config();
}

const runtime::StreamRegistry& Monitor::streams() const {
  return service_->registry();
}

std::shared_ptr<obs::Tracer> Monitor::tracer() const {
  return service_->config().tracer;
}

std::vector<std::string> Monitor::StreamLabels() const {
  std::vector<std::string> labels;
  const auto info = stream_info_.load();
  if (!info) return labels;
  labels.reserve(info->size());
  for (std::size_t id = 0; id < info->size(); ++id) {
    labels.push_back(std::string((*info)[id].domain) + "/" +
                     std::string(service_->registry().Name(id)));
  }
  return labels;
}

void Monitor::WriteChromeTrace(std::ostream& out) {
  obs::TraceSnapshot snapshot;
  if (const auto tracer = service_->config().tracer) {
    snapshot = tracer->Drain();
  }
  obs::WriteChromeTrace(snapshot, out, StreamLabels());
}

}  // namespace omg::serve
