// Stream identity for the serving runtime: name <-> dense StreamId.
//
// The registry owns the canonical stream-name storage — `StreamEvent::stream`
// string_views point into it, so names must stay at stable addresses for the
// registry's lifetime (hence the deque). Registration is thread-safe;
// lookups may run concurrently with registration.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "runtime/event_sink.hpp"

namespace omg::runtime {

/// Assigns dense ids (0, 1, ...) to unique stream names.
class StreamRegistry {
 public:
  /// Registers a new stream; throws on duplicate or empty name.
  StreamId Register(std::string name);

  /// Name of `id`; the view stays valid for the registry's lifetime.
  std::string_view Name(StreamId id) const;

  /// Id of `name`; throws if unknown.
  StreamId Id(std::string_view name) const;

  bool Contains(std::string_view name) const;
  std::size_t size() const;

  /// All registered names in id order (copies; safe to hold).
  std::vector<std::string> Names() const;

 private:
  mutable Mutex mutex_;
  /// Index == StreamId; stable addresses.
  std::deque<std::string> names_ OMG_GUARDED_BY(mutex_);
  /// Keys view names_.
  std::unordered_map<std::string_view, StreamId> ids_ OMG_GUARDED_BY(mutex_);
};

}  // namespace omg::runtime
