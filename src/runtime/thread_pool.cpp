#include "runtime/thread_pool.hpp"

#include <utility>

#include "common/check.hpp"

namespace omg::runtime {

ThreadPool::ThreadPool(std::size_t workers) {
  common::Check(workers >= 1, "thread pool needs at least one worker");
  shards_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(*shards_[i]); });
  }
}

ThreadPool::~ThreadPool() {
  Drain();
  for (auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    stop_ = true;
    shard->ready.NotifyAll();
  }
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::size_t shard_index, Task task) {
  common::Check(static_cast<bool>(task), "null task");
  {
    MutexLock lock(pending_mutex_);
    ++pending_;
  }
  Shard& shard = *shards_[shard_index % shards_.size()];
  {
    MutexLock lock(shard.mutex);
    shard.queue.push_back(std::move(task));
  }
  shard.ready.NotifyOne();
}

void ThreadPool::Drain() {
  MutexLock lock(pending_mutex_);
  while (pending_ != 0) idle_.Wait(pending_mutex_);
}

void ThreadPool::WorkerLoop(Shard& shard) {
  for (;;) {
    Task task;
    {
      MutexLock lock(shard.mutex);
      while (!stop_ && shard.queue.empty()) shard.ready.Wait(shard.mutex);
      if (shard.queue.empty()) return;  // stop requested and queue drained
      task = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    task();
    {
      MutexLock pending_lock(pending_mutex_);
      --pending_;
      if (pending_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace omg::runtime
