#include "runtime/metrics.hpp"

#include "common/check.hpp"

namespace omg::runtime {

namespace {

double RateOf(const std::map<std::string, AssertionMetrics>& assertions,
              const std::string& assertion, std::size_t examples) {
  const auto it = assertions.find(assertion);
  if (it == assertions.end() || examples == 0) return 0.0;
  return static_cast<double>(it->second.fires) /
         static_cast<double>(examples);
}

}  // namespace

double StreamMetrics::FlaggedRate(const std::string& assertion) const {
  return RateOf(assertions, assertion, examples_seen);
}

double MetricsSnapshot::FlaggedRate(const std::string& assertion) const {
  return RateOf(assertions, assertion, examples_seen);
}

void MetricsRegistry::RegisterStream(StreamId id, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= streams_.size()) streams_.resize(id + 1);
  StreamMetrics& stream = streams_[id];
  if (stream.stream.empty()) {
    stream.stream_id = id;
    stream.stream = std::string(name);
  } else {
    common::Check(stream.stream == name,
                  "stream id registered twice with different names");
  }
}

void MetricsRegistry::RecordBatch(StreamId id, std::size_t examples,
                                  std::span<const StreamEvent> events) {
  std::lock_guard<std::mutex> lock(mutex_);
  common::CheckIndex(static_cast<std::ptrdiff_t>(id), 0,
                     static_cast<std::ptrdiff_t>(streams_.size()),
                     "metrics stream id");
  StreamMetrics& stream = streams_[id];
  stream.examples_seen += examples;
  stream.events += events.size();
  for (const StreamEvent& event : events) {
    AssertionMetrics& cell = stream.assertions[std::string(event.assertion)];
    ++cell.fires;
    cell.sum_severity += event.severity;
    if (event.severity > cell.max_severity) cell.max_severity = event.severity;
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.streams = streams_;
  for (const StreamMetrics& stream : snapshot.streams) {
    snapshot.examples_seen += stream.examples_seen;
    snapshot.events += stream.events;
    for (const auto& [name, cell] : stream.assertions) {
      AssertionMetrics& total = snapshot.assertions[name];
      total.fires += cell.fires;
      total.sum_severity += cell.sum_severity;
      if (cell.max_severity > total.max_severity) {
        total.max_severity = cell.max_severity;
      }
    }
  }
  return snapshot;
}

}  // namespace omg::runtime
