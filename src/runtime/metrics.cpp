#include "runtime/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace omg::runtime {

namespace {

double RateOf(const std::map<std::string, AssertionMetrics>& assertions,
              const std::string& assertion, std::size_t examples) {
  const auto it = assertions.find(assertion);
  if (it == assertions.end() || examples == 0) return 0.0;
  return static_cast<double>(it->second.fires) /
         static_cast<double>(examples);
}

}  // namespace

double StreamMetrics::FlaggedRate(const std::string& assertion) const {
  return RateOf(assertions, assertion, examples_seen);
}

double MetricsSnapshot::FlaggedRate(const std::string& assertion) const {
  return RateOf(assertions, assertion, examples_seen);
}

double ShardMetrics::BusyFraction() const {
  const std::uint64_t measured = busy_ns + idle_ns + steal_ns;
  if (measured == 0) return 0.0;
  return static_cast<double>(busy_ns + steal_ns) /
         static_cast<double>(measured);
}

double ShardMetrics::MeanQueueWaitSeconds() const {
  const std::size_t dequeued = batches + errored_batches;
  if (dequeued == 0) return 0.0;
  return static_cast<double>(queue_wait_ns) * 1e-9 /
         static_cast<double>(dequeued);
}

double ShardMetrics::MeanServiceSeconds() const {
  const std::size_t dequeued = batches + errored_batches;
  if (dequeued == 0) return 0.0;
  return static_cast<double>(busy_ns) * 1e-9 /
         static_cast<double>(dequeued);
}

std::size_t MetricsSnapshot::TotalDroppedExamples() const {
  std::size_t total = 0;
  for (const ShardMetrics& shard : shards) total += shard.dropped_examples;
  return total;
}

std::size_t MetricsSnapshot::TotalShedExamples() const {
  std::size_t total = 0;
  for (const ShardMetrics& shard : shards) total += shard.shed_examples;
  return total;
}

std::size_t MetricsSnapshot::TotalErroredExamples() const {
  std::size_t total = 0;
  for (const ShardMetrics& shard : shards) total += shard.errored_examples;
  return total;
}

LatencyHistogram MetricsSnapshot::MergedLatency() const {
  LatencyHistogram merged;
  for (const ShardMetrics& shard : shards) merged.Merge(shard.latency);
  return merged;
}

MetricsRegistry::MetricsRegistry() : sharded_(false) {
  cells_.push_back(std::make_unique<Cell>());
}

MetricsRegistry::MetricsRegistry(std::size_t shards) : sharded_(true) {
  common::Check(shards >= 1, "metrics registry needs at least one shard");
  cells_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    cells_.push_back(std::make_unique<Cell>());
    cells_.back()->shard.shard = i;
  }
}

MetricsRegistry::Cell& MetricsRegistry::CellOf(StreamId id) {
  return *cells_[id % cells_.size()];
}

MetricsRegistry::Cell& MetricsRegistry::ShardCell(std::size_t shard) {
  common::Check(sharded_, "shard counters need a sharded MetricsRegistry");
  common::CheckIndex(static_cast<std::ptrdiff_t>(shard), 0,
                     static_cast<std::ptrdiff_t>(cells_.size()),
                     "metrics shard index");
  return *cells_[shard];
}

void MetricsRegistry::RegisterStream(StreamId id, std::string_view name) {
  Cell& cell = CellOf(id);
  MutexLock lock(cell.mutex);
  StreamMetrics& stream = cell.streams[id];
  if (stream.stream.empty()) {
    stream.stream_id = id;
    stream.stream = std::string(name);
  } else {
    common::Check(stream.stream == name,
                  "stream id registered twice with different names");
  }
}

namespace {

/// Folds one batch into a stream's aggregates; caller holds the cell lock.
void FoldBatch(StreamMetrics& stream, std::size_t examples,
               std::span<const StreamEvent> events) {
  stream.examples_seen += examples;
  stream.events += events.size();
  for (const StreamEvent& event : events) {
    AssertionMetrics& slot = stream.assertions[std::string(event.assertion)];
    ++slot.fires;
    slot.sum_severity += event.severity;
    if (event.severity > slot.max_severity) slot.max_severity = event.severity;
  }
}

}  // namespace

void MetricsRegistry::RecordBatch(StreamId id, std::size_t examples,
                                  std::span<const StreamEvent> events) {
  Cell& cell = CellOf(id);
  MutexLock lock(cell.mutex);
  const auto it = cell.streams.find(id);
  common::Check(it != cell.streams.end(), "metrics stream id not registered");
  FoldBatch(it->second, examples, events);
}

void MetricsRegistry::RecordScoredBatch(StreamId id, std::size_t shard,
                                        std::size_t examples,
                                        std::span<const StreamEvent> events,
                                        double latency_seconds,
                                        std::uint64_t queue_wait_ns,
                                        std::uint64_t busy_ns,
                                        std::uint64_t idle_ns) {
  Cell& cell = ShardCell(shard);
  common::Check(&cell == &CellOf(id),
                "stream is not pinned to the given metrics shard");
  MutexLock lock(cell.mutex);
  const auto it = cell.streams.find(id);
  common::Check(it != cell.streams.end(), "metrics stream id not registered");
  FoldBatch(it->second, examples, events);
  ++cell.shard.batches;
  cell.shard.examples += examples;
  cell.shard.events += events.size();
  cell.shard.latency.Record(latency_seconds);
  cell.shard.queue_wait_ns += queue_wait_ns;
  cell.shard.busy_ns += busy_ns;
  cell.shard.idle_ns += idle_ns;
}

void MetricsRegistry::RecordError(std::size_t shard, std::size_t batches,
                                  std::size_t examples,
                                  std::uint64_t queue_wait_ns,
                                  std::uint64_t busy_ns,
                                  std::uint64_t idle_ns) {
  Cell& cell = ShardCell(shard);
  MutexLock lock(cell.mutex);
  cell.shard.errored_batches += batches;
  cell.shard.errored_examples += examples;
  cell.shard.queue_wait_ns += queue_wait_ns;
  cell.shard.busy_ns += busy_ns;
  cell.shard.idle_ns += idle_ns;
}

void MetricsRegistry::RecordShardBatch(std::size_t shard, std::size_t examples,
                                       std::size_t events,
                                       double latency_seconds) {
  Cell& cell = ShardCell(shard);
  MutexLock lock(cell.mutex);
  ++cell.shard.batches;
  cell.shard.examples += examples;
  cell.shard.events += events;
  cell.shard.latency.Record(latency_seconds);
}

void MetricsRegistry::RecordLoss(std::size_t shard, std::size_t batches,
                                 std::size_t examples, LossKind kind) {
  Cell& cell = ShardCell(shard);
  MutexLock lock(cell.mutex);
  if (kind == LossKind::kDropped) {
    cell.shard.dropped_batches += batches;
    cell.shard.dropped_examples += examples;
  } else {
    cell.shard.shed_batches += batches;
    cell.shard.shed_examples += examples;
  }
}

void MetricsRegistry::RecordSteal(std::size_t victim_shard, std::size_t batches,
                                  std::size_t examples) {
  Cell& cell = ShardCell(victim_shard);
  MutexLock lock(cell.mutex);
  cell.shard.stolen_batches += batches;
  cell.shard.stolen_examples += examples;
}

void MetricsRegistry::RecordStealWork(std::size_t thief_shard,
                                      std::uint64_t steal_ns,
                                      std::uint64_t idle_ns) {
  Cell& cell = ShardCell(thief_shard);
  MutexLock lock(cell.mutex);
  cell.shard.steal_ns += steal_ns;
  cell.shard.idle_ns += idle_ns;
}

void MetricsRegistry::RecordQueueDepth(std::size_t shard, std::size_t depth) {
  Cell& cell = ShardCell(shard);
  MutexLock lock(cell.mutex);
  cell.shard.queue_depth = depth;
  cell.shard.queue_depth_peak = std::max(cell.shard.queue_depth_peak, depth);
}

void MetricsRegistry::RecordNamed(const std::string& key,
                                  std::uint64_t delta) {
  MutexLock lock(named_mutex_);
  named_[key] += delta;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  StreamId max_id = 0;
  bool any_stream = false;
  std::vector<StreamMetrics> collected;
  for (const auto& cell : cells_) {
    MutexLock lock(cell->mutex);
    for (const auto& [id, stream] : cell->streams) {
      collected.push_back(stream);
      max_id = std::max(max_id, id);
      any_stream = true;
    }
    if (sharded_) snapshot.shards.push_back(cell->shard);
  }
  if (any_stream) snapshot.streams.resize(max_id + 1);
  for (StreamMetrics& stream : collected) {
    const StreamId id = stream.stream_id;
    snapshot.streams[id] = std::move(stream);
  }
  for (const StreamMetrics& stream : snapshot.streams) {
    snapshot.examples_seen += stream.examples_seen;
    snapshot.events += stream.events;
    for (const auto& [name, slot] : stream.assertions) {
      AssertionMetrics& total = snapshot.assertions[name];
      total.fires += slot.fires;
      total.sum_severity += slot.sum_severity;
      if (slot.max_severity > total.max_severity) {
        total.max_severity = slot.max_severity;
      }
    }
  }
  {
    MutexLock lock(named_mutex_);
    snapshot.named = named_;
  }
  return snapshot;
}

}  // namespace omg::runtime
