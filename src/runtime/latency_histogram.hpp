// Fixed-footprint latency histogram for the serving runtime's dashboards.
//
// Shard workers record one observe-to-flag latency sample per processed
// batch; the dashboard asks for p50/p95/p99. An exact reservoir would grow
// with traffic, so the histogram buckets samples on a base-2 log scale
// (0.1 us granularity at the bottom, ~week-scale headroom at the top) and
// answers quantile queries by interpolating inside the hit bucket.
//
// Each octave is further divided into `kSubBuckets` linear sub-buckets:
// with one counter per octave, a tail concentrated inside a single octave
// collapsed p95 and p99 onto the same clamped estimate (both quantiles
// interpolated past the samples and hit the max clamp — the p95 == p99
// artifact the shard-sweep bench used to record). Sub-bucketing bounds the
// relative quantile error by 1/kSubBuckets of an octave instead of a full
// octave, which keeps nearby tail quantiles distinguishable.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace omg::runtime {

/// Log-bucketed histogram of latency samples (seconds).
///
/// Not thread-safe on its own: the MetricsRegistry guards each shard's
/// histogram with that shard's metrics mutex. Copyable, so snapshots carry
/// a point-in-time view out of the registry.
class LatencyHistogram {
 public:
  /// Number of base-2 octaves: octave i spans
  /// [kBaseSeconds * 2^i, kBaseSeconds * 2^(i+1)).
  static constexpr std::size_t kBuckets = 48;
  /// Linear sub-buckets per octave (sub-bucket s of octave i spans
  /// [lo * (1 + s/kSubBuckets), lo * (1 + (s+1)/kSubBuckets)) with
  /// lo = kBaseSeconds * 2^i).
  static constexpr std::size_t kSubBuckets = 8;
  /// Lower bound of octave 0 (0.1 microseconds); samples below it land in
  /// the first slot, samples beyond the last octave land in the last slot.
  static constexpr double kBaseSeconds = 1e-7;

  /// Records one latency sample; negative or non-finite samples count as 0.
  void Record(double seconds);

  /// Folds `other`'s samples into this histogram (dashboard aggregation
  /// across shards).
  void Merge(const LatencyHistogram& other);

  /// Number of recorded samples.
  std::size_t count() const { return count_; }

  /// Smallest / largest sample seen (0 when empty). Quantiles are clamped
  /// into this range, so p0/p100 are exact.
  double min_seconds() const { return count_ > 0 ? min_ : 0.0; }
  double max_seconds() const { return count_ > 0 ? max_ : 0.0; }

  /// The q-quantile (q in [0, 1]) in seconds, interpolated inside the hit
  /// bucket and clamped to [min_seconds, max_seconds]. 0 when empty.
  double Quantile(double q) const;

 private:
  static constexpr std::size_t kSlots = kBuckets * kSubBuckets;

  /// Slot index (octave * kSubBuckets + sub-bucket) covering `seconds`.
  static std::size_t SlotOf(double seconds);
  /// Lower bound of slot `index` in seconds.
  static double LowerBound(std::size_t index);
  /// Width of slot `index` in seconds.
  static double Width(std::size_t index);

  std::array<std::uint64_t, kSlots> buckets_{};
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace omg::runtime
