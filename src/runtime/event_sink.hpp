// Pluggable event sinks for the assertion-serving runtime.
//
// The seed's `StreamingMonitor` exposed raw callbacks; at serving scale the
// runtime instead fans every assertion firing out to `EventSink` objects —
// counting for alerting thresholds, logging for operators, JSON-lines for
// downstream ingestion (dashboards, weak-supervision pipelines). One sink
// set serves every registered stream, so events carry the stream identity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"

namespace omg::runtime {

/// Identifier assigned by the StreamRegistry at registration.
using StreamId = std::uint64_t;

/// One assertion firing on one stream.
///
/// The string_views point at storage owned by the service (stream names by
/// its registry, assertion names by the stream's suite) and stay valid for
/// the service's lifetime; sinks that outlive the service must copy.
struct StreamEvent {
  StreamId stream_id = 0;
  std::string_view stream;     ///< stream name
  std::size_t example_index = 0;  ///< per-stream position
  std::string_view assertion;
  double severity = 0.0;
};

/// Consumer of runtime events.
///
/// `Consume` may be called concurrently from different shard workers (events
/// of one stream arrive in stream order, never concurrently — with work
/// stealing the delivering worker may change between batches, but the
/// claimed-stream protocol serialises it; distinct streams may interleave
/// from distinct threads) — implementations must be thread-safe.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Handles one assertion firing; must be thread-safe (see class comment).
  virtual void Consume(const StreamEvent& event) = 0;
  /// Called by the service's Flush after the queues drain.
  virtual void Flush() {}
};

/// Counts events and tracks the maximum severity seen (atomic dashboard
/// primitives for alerting).
class CountingSink final : public EventSink {
 public:
  void Consume(const StreamEvent& event) override;

  /// Total events consumed.
  std::size_t count() const;
  /// Largest severity seen (0 before the first event).
  double max_severity() const;

  /// Event counts broken down by assertion name. Divide by the observed
  /// example count (MetricsSnapshot::examples_seen) for per-assertion
  /// flagged rates when no registry is attached.
  std::map<std::string, std::size_t, std::less<>> counts_by_assertion() const;

 private:
  mutable Mutex mutex_;
  std::size_t count_ OMG_GUARDED_BY(mutex_) = 0;
  double max_severity_ OMG_GUARDED_BY(mutex_) = 0.0;
  /// Transparent comparator: Consume looks names up by string_view without
  /// materialising a std::string per event on the hot path.
  std::map<std::string, std::size_t, std::less<>> by_assertion_
      OMG_GUARDED_BY(mutex_);
};

/// Writes one human-readable line per event.
class LoggingSink final : public EventSink {
 public:
  /// Writes to `out`, which must outlive the sink.
  explicit LoggingSink(std::ostream& out);

  void Consume(const StreamEvent& event) override;
  void Flush() override;

 private:
  Mutex mutex_;
  std::ostream& out_;
};

/// Writes one JSON object per line per event:
///   {"stream":"cam-0","example":17,"assertion":"flicker","severity":1.0}
class JsonLinesSink final : public EventSink {
 public:
  /// Writes to `out`, which must outlive the sink.
  explicit JsonLinesSink(std::ostream& out);

  void Consume(const StreamEvent& event) override;
  void Flush() override;

 private:
  Mutex mutex_;
  std::ostream& out_;
};

/// Appends every event to an in-memory vector (tests, small replays).
class CollectingSink final : public EventSink {
 public:
  /// A copy of the events seen so far, with the name views materialised.
  struct OwnedEvent {
    StreamId stream_id = 0;
    std::string stream;
    std::size_t example_index = 0;
    std::string assertion;
    double severity = 0.0;
  };

  void Consume(const StreamEvent& event) override;
  /// The events seen so far, in arrival order.
  std::vector<OwnedEvent> Events() const;

 private:
  mutable Mutex mutex_;
  std::vector<OwnedEvent> events_ OMG_GUARDED_BY(mutex_);
};

/// Escapes `text` for inclusion in a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view text);

}  // namespace omg::runtime
