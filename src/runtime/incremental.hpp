// The serving runtime's incremental window evaluator.
//
// The implementation lives in core (core/incremental.hpp) so that
// core/monitor.hpp can build on it without inverting the core <- runtime
// layering; this header re-exports it as part of the runtime subsystem's
// surface, next to the service that drives one evaluator per stream.
#pragma once

#include "core/incremental.hpp"

namespace omg::runtime {

/// The per-stream sliding-window evaluator both serving services drive
/// (one instance per registered stream; see core::IncrementalWindowEvaluator).
using core::IncrementalWindowEvaluator;

}  // namespace omg::runtime
