#include "runtime/latency_histogram.hpp"

#include <algorithm>
#include <cmath>

namespace omg::runtime {

std::size_t LatencyHistogram::SlotOf(double seconds) {
  if (!(seconds > kBaseSeconds)) return 0;
  const double octave = std::log2(seconds / kBaseSeconds);
  if (octave >= static_cast<double>(kBuckets)) return kSlots - 1;
  const auto o = static_cast<std::size_t>(octave);
  // Position within the octave, linear in seconds: ratio in [1, 2).
  const double ratio = seconds / (kBaseSeconds * std::exp2(o));
  const double sub = (ratio - 1.0) * static_cast<double>(kSubBuckets);
  const std::size_t s = std::min<std::size_t>(
      kSubBuckets - 1, static_cast<std::size_t>(std::max(0.0, sub)));
  return o * kSubBuckets + s;
}

double LatencyHistogram::LowerBound(std::size_t index) {
  const std::size_t octave = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  const double lo = kBaseSeconds * std::exp2(static_cast<double>(octave));
  return lo * (1.0 + static_cast<double>(sub) /
                         static_cast<double>(kSubBuckets));
}

double LatencyHistogram::Width(std::size_t index) {
  const std::size_t octave = index / kSubBuckets;
  return kBaseSeconds * std::exp2(static_cast<double>(octave)) /
         static_cast<double>(kSubBuckets);
}

void LatencyHistogram::Record(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) seconds = 0.0;
  ++buckets_[SlotOf(seconds)];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kSlots; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample the quantile falls on (1-based, ceil).
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kSlots; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= target) {
      // Interpolate linearly inside the sub-bucket by the rank position.
      const double within = static_cast<double>(target - cumulative) /
                            static_cast<double>(buckets_[i]);
      const double estimate = LowerBound(i) + within * Width(i);
      return std::clamp(estimate, min_, max_);
    }
    cumulative += buckets_[i];
  }
  return max_;
}

}  // namespace omg::runtime
