#include "runtime/latency_histogram.hpp"

#include <algorithm>
#include <cmath>

namespace omg::runtime {

std::size_t LatencyHistogram::BucketOf(double seconds) {
  if (!(seconds > kBaseSeconds)) return 0;
  const double octave = std::log2(seconds / kBaseSeconds);
  if (octave >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(octave);
}

double LatencyHistogram::LowerBound(std::size_t index) {
  return kBaseSeconds * std::exp2(static_cast<double>(index));
}

void LatencyHistogram::Record(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) seconds = 0.0;
  ++buckets_[BucketOf(seconds)];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample the quantile falls on (1-based, ceil).
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= target) {
      // Interpolate linearly inside the bucket by the rank position.
      const double within = static_cast<double>(target - cumulative) /
                            static_cast<double>(buckets_[i]);
      const double lo = LowerBound(i);
      const double estimate = lo + within * lo;  // bucket width == lo
      return std::clamp(estimate, min_, max_);
    }
    cumulative += buckets_[i];
  }
  return max_;
}

}  // namespace omg::runtime
