#include "runtime/stream_registry.hpp"

#include <utility>

#include "common/check.hpp"

namespace omg::runtime {

StreamId StreamRegistry::Register(std::string name) {
  common::Check(!name.empty(), "stream name must be non-empty");
  MutexLock lock(mutex_);
  common::Check(ids_.find(name) == ids_.end(),
                "duplicate stream name: " + name);
  const StreamId id = names_.size();
  names_.push_back(std::move(name));
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::string_view StreamRegistry::Name(StreamId id) const {
  MutexLock lock(mutex_);
  common::CheckIndex(static_cast<std::ptrdiff_t>(id), 0,
                     static_cast<std::ptrdiff_t>(names_.size()),
                     "stream id");
  return names_[id];
}

StreamId StreamRegistry::Id(std::string_view name) const {
  MutexLock lock(mutex_);
  const auto it = ids_.find(name);
  common::Check(it != ids_.end(),
                "unknown stream: " + std::string(name));
  return it->second;
}

bool StreamRegistry::Contains(std::string_view name) const {
  MutexLock lock(mutex_);
  return ids_.find(name) != ids_.end();
}

std::size_t StreamRegistry::size() const {
  MutexLock lock(mutex_);
  return names_.size();
}

std::vector<std::string> StreamRegistry::Names() const {
  MutexLock lock(mutex_);
  return {names_.begin(), names_.end()};
}

}  // namespace omg::runtime
