// Fixed worker pool with per-shard FIFO queues.
//
// The assertion-serving runtime (`runtime/service.hpp`) pins every stream to
// one shard, so all tasks touching a stream's window state run on a single
// worker thread in submission order — per-stream state needs no locking, and
// events for one stream are emitted in stream order. Shards are the unit of
// parallelism: distinct shards run concurrently on distinct workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"

namespace omg::runtime {

/// N worker threads, each draining its own task queue (shard i -> worker i).
class ThreadPool {
 public:
  /// A unit of work; must be non-null when submitted.
  using Task = std::function<void()>;

  /// Spawns `workers` threads (>= 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains all queues, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (== number of shards).
  std::size_t workers() const { return shards_.size(); }

  /// Enqueues `task` on shard `shard % workers()`. Tasks submitted to the
  /// same shard execute sequentially in FIFO order; tasks on different
  /// shards may run concurrently. Thread-safe.
  void Submit(std::size_t shard, Task task);

  /// Blocks until every task submitted before this call has completed.
  /// Tasks submitted concurrently with Drain may or may not be waited for.
  void Drain();

 private:
  struct Shard {
    Mutex mutex;
    CondVar ready;
    std::deque<Task> queue OMG_GUARDED_BY(mutex);
  };

  void WorkerLoop(Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};

  Mutex pending_mutex_;
  CondVar idle_;
  // Submitted but not yet finished.
  std::size_t pending_ OMG_GUARDED_BY(pending_mutex_) = 0;
};

}  // namespace omg::runtime
