// Aggregated serving metrics: the dashboard feed of §2.3.
//
// Workers report per-batch deltas (examples ingested, events emitted); the
// registry folds them into per-stream / per-assertion aggregates and renders
// point-in-time snapshots. Updates are batched — one registry call per
// ingested batch, not per event — so mutexes stay off the per-example hot
// path.
//
// The registry is internally sharded: construct it with a shard count and
// each shard gets its own cell (mutex + its streams' aggregates + a
// ShardMetrics block with the queue-depth/drop counters and observe-to-flag
// latency histogram of the serving shard it mirrors). Stream id `i` lives in
// cell `i % shards` — the same partition the ShardedMonitorService uses — so
// recording from distinct serving shards never contends on a shared lock.
// Default construction keeps the legacy single-cell behavior MonitorService
// relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/latency_histogram.hpp"

namespace omg::runtime {

/// Aggregate over one (stream, assertion) or (all streams, assertion) cell.
struct AssertionMetrics {
  /// Number of events this assertion emitted.
  std::size_t fires = 0;
  /// Largest severity among those events.
  double max_severity = 0.0;
  /// Sum of severities (for MeanSeverity).
  double sum_severity = 0.0;

  /// Mean severity across fires (0 when the assertion never fired).
  double MeanSeverity() const {
    return fires > 0 ? sum_severity / static_cast<double>(fires) : 0.0;
  }
};

/// One stream's aggregates.
struct StreamMetrics {
  /// Registry-assigned stream id.
  StreamId stream_id = 0;
  /// Stream name (empty for ids never registered).
  std::string stream;
  /// Examples scored on this stream.
  std::size_t examples_seen = 0;
  /// Events emitted on this stream.
  std::size_t events = 0;
  /// Per-assertion aggregates, keyed by assertion name.
  std::map<std::string, AssertionMetrics> assertions;

  /// Flags per observed example for one assertion on this stream (0 when
  /// the assertion never fired or nothing was observed). The improvement
  /// loop reads its progress off this number.
  double FlaggedRate(const std::string& assertion) const;
};

/// One serving shard's counters: the capacity/latency envelope of that
/// shard's bounded ingestion queue and worker.
struct ShardMetrics {
  /// Shard index (== worker index).
  std::size_t shard = 0;
  /// Batches scored by this shard's worker.
  std::size_t batches = 0;
  /// Examples scored (sums over batches).
  std::size_t examples = 0;
  /// Events emitted by this shard's streams.
  std::size_t events = 0;
  /// Batches / examples dropped from the queue head under kDropOldest (and
  /// below-floor queue evictions under kShedBelowSeverity).
  std::size_t dropped_batches = 0;
  std::size_t dropped_examples = 0;
  /// Incoming batches / examples shed at admission under
  /// kShedBelowSeverity (hint below the floor while the queue was full).
  std::size_t shed_batches = 0;
  std::size_t shed_examples = 0;
  /// Batches / examples whose scoring threw (the batch is poisoned, not
  /// the service; messages surface via the service's Errors()).
  std::size_t errored_batches = 0;
  std::size_t errored_examples = 0;
  /// Batches / examples stolen *from* this shard's queue by an idle
  /// neighbour's worker (victim-side counters; the stolen work's scoring
  /// time lands in the thief shard's `steal_ns`).
  std::size_t stolen_batches = 0;
  std::size_t stolen_examples = 0;
  /// Examples queued right now (gauge; snapshot-time value).
  std::size_t queue_depth = 0;
  /// Largest queue depth ever observed — the bounded-memory witness.
  std::size_t queue_depth_peak = 0;
  /// Observe-to-flag latency: ObserveBatch admission to events delivered to
  /// the sinks, one sample per scored batch.
  LatencyHistogram latency;

  // Occupancy accounting (obs::Clock nanoseconds). busy + idle + steal
  // partitions the worker's dequeue-to-dequeue wall time — every segment
  // lands in exactly one bucket — so BusyFraction is the shard's
  // utilisation; queue_wait separates "slow because saturated" (high busy,
  // high wait) from "slow because starved" (low busy — too many shards for
  // the offered load, the 8-shard knee's signature).
  /// Worker time spent scoring its own shard's batches (includes batches
  /// that threw).
  std::uint64_t busy_ns = 0;
  /// Worker time spent waiting for the queue to go non-empty.
  std::uint64_t idle_ns = 0;
  /// Worker time spent scoring batches stolen from other shards
  /// (thief-side; the victim's `stolen_batches` counts the same work).
  std::uint64_t steal_ns = 0;
  /// Enqueue-to-dequeue wait, summed over dequeued batches.
  std::uint64_t queue_wait_ns = 0;

  /// (busy + steal) / (busy + idle + steal); 0 before the worker measured
  /// anything.
  double BusyFraction() const;
  /// Mean enqueue-to-dequeue wait per dequeued batch, seconds.
  double MeanQueueWaitSeconds() const;
  /// Mean scoring time per dequeued batch, seconds.
  double MeanServiceSeconds() const;
};

/// Point-in-time aggregate across the whole service.
struct MetricsSnapshot {
  /// Examples scored across all streams.
  std::size_t examples_seen = 0;
  /// Events emitted across all streams.
  std::size_t events = 0;
  /// Per-stream aggregates, dense in id order (gaps are default entries).
  std::vector<StreamMetrics> streams;
  /// Per-assertion aggregates across all streams.
  std::map<std::string, AssertionMetrics> assertions;
  /// Per-serving-shard counters; empty for registries constructed in legacy
  /// (unsharded) mode.
  std::vector<ShardMetrics> shards;
  /// Free-form named counters recorded via RecordNamed. The net layer folds
  /// per-tenant wire accounting here under "tenant/<id>/<outcome>" keys;
  /// anything off the per-example hot path may add its own.
  std::map<std::string, std::uint64_t> named;

  /// Service-wide flags per observed example for one assertion.
  double FlaggedRate(const std::string& assertion) const;

  /// Sums over `shards` (0 when unsharded).
  std::size_t TotalDroppedExamples() const;
  std::size_t TotalShedExamples() const;
  std::size_t TotalErroredExamples() const;

  /// All shards' latency histograms merged (empty histogram when unsharded).
  LatencyHistogram MergedLatency() const;
};

/// Thread-safe metrics accumulator shared by all shards.
class MetricsRegistry {
 public:
  /// Legacy mode: one internal cell, no shard counters (what MonitorService
  /// uses; Snapshot().shards stays empty).
  MetricsRegistry();

  /// Sharded mode: `shards` cells, stream id i recorded under cell
  /// i % shards, Snapshot().shards carries one ShardMetrics per shard.
  explicit MetricsRegistry(std::size_t shards);

  /// Allocates the slot for `id` (idempotent per id, names must agree).
  void RegisterStream(StreamId id, std::string_view name);

  /// Folds one ingested batch into stream `id`'s aggregates.
  void RecordBatch(StreamId id, std::size_t examples,
                   std::span<const StreamEvent> events);

  /// Folds one scored batch into shard `shard`'s counters (sharded mode
  /// only): examples/events processed and the batch's observe-to-flag
  /// latency sample.
  void RecordShardBatch(std::size_t shard, std::size_t examples,
                        std::size_t events, double latency_seconds);

  /// RecordBatch + RecordShardBatch fused: stream `id` lives in shard
  /// `shard`'s cell (the service pins id % shards == shard), so one lock
  /// acquisition updates both the stream and the shard aggregates — the
  /// per-scored-batch fast path of the sharded service. The trailing
  /// nanosecond arguments fold the batch's occupancy deltas (queue wait,
  /// scoring time, worker idle before the dequeue) into the same lock.
  void RecordScoredBatch(StreamId id, std::size_t shard, std::size_t examples,
                         std::span<const StreamEvent> events,
                         double latency_seconds,
                         std::uint64_t queue_wait_ns = 0,
                         std::uint64_t busy_ns = 0, std::uint64_t idle_ns = 0);

  /// Counts a batch whose scoring threw (sharded mode only). A poisoned
  /// batch still consumed the worker, so it carries occupancy deltas too.
  void RecordError(std::size_t shard, std::size_t batches,
                   std::size_t examples, std::uint64_t queue_wait_ns = 0,
                   std::uint64_t busy_ns = 0, std::uint64_t idle_ns = 0);

  /// What kind of loss a RecordLoss call reports.
  enum class LossKind {
    kDropped,  ///< removed from the queue (kDropOldest / floor eviction)
    kShed,     ///< refused at admission (kShedBelowSeverity)
  };

  /// Counts `batches`/`examples` lost on shard `shard` (sharded mode only).
  void RecordLoss(std::size_t shard, std::size_t batches, std::size_t examples,
                  LossKind kind);

  /// Counts work taken *from* `victim_shard`'s queue by another worker
  /// (sharded mode only; victim-side `stolen_batches`/`stolen_examples`).
  void RecordSteal(std::size_t victim_shard, std::size_t batches,
                   std::size_t examples);

  /// Folds a thief worker's occupancy into *its own* shard's counters:
  /// `steal_ns` of foreign-batch scoring plus the `idle_ns` the worker
  /// accumulated before the steal (sharded mode only). The scored batch's
  /// stream/latency aggregates go to the victim cell via RecordScoredBatch
  /// with zero busy/idle, keeping the two cells' time disjoint.
  void RecordStealWork(std::size_t thief_shard, std::uint64_t steal_ns,
                       std::uint64_t idle_ns);

  /// Updates shard `shard`'s queue-depth gauge and peak (sharded mode only).
  void RecordQueueDepth(std::size_t shard, std::size_t depth);

  /// Adds `delta` to the free-form counter `key` (creating it at zero).
  /// Guarded by its own lock, off the scoring fast path — meant for
  /// per-batch-or-rarer accounting such as the net layer's per-tenant
  /// counters, not per-example updates.
  void RecordNamed(const std::string& key, std::uint64_t delta);

  /// Point-in-time copy of every aggregate.
  MetricsSnapshot Snapshot() const;

 private:
  /// One lock domain: the streams of one serving shard plus its counters.
  struct Cell {
    mutable Mutex mutex;
    std::map<StreamId, StreamMetrics> streams OMG_GUARDED_BY(mutex);
    ShardMetrics shard OMG_GUARDED_BY(mutex);
  };

  Cell& CellOf(StreamId id);
  Cell& ShardCell(std::size_t shard);

  bool sharded_;
  std::vector<std::unique_ptr<Cell>> cells_;

  mutable Mutex named_mutex_;
  std::map<std::string, std::uint64_t> named_ OMG_GUARDED_BY(named_mutex_);
};

}  // namespace omg::runtime
