// Aggregated serving metrics: the dashboard feed of §2.3.
//
// Workers report per-batch deltas (examples ingested, events emitted); the
// registry folds them into per-stream / per-assertion aggregates and renders
// point-in-time snapshots. Updates are batched — one registry call per
// ingested batch, not per event — so the shared mutex stays off the per-
// example hot path.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "runtime/event_sink.hpp"

namespace omg::runtime {

/// Aggregate over one (stream, assertion) or (all streams, assertion) cell.
struct AssertionMetrics {
  std::size_t fires = 0;
  double max_severity = 0.0;
  double sum_severity = 0.0;

  double MeanSeverity() const {
    return fires > 0 ? sum_severity / static_cast<double>(fires) : 0.0;
  }
};

/// One stream's aggregates.
struct StreamMetrics {
  StreamId stream_id = 0;
  std::string stream;
  std::size_t examples_seen = 0;
  std::size_t events = 0;
  std::map<std::string, AssertionMetrics> assertions;

  /// Flags per observed example for one assertion on this stream (0 when
  /// the assertion never fired or nothing was observed). The improvement
  /// loop reads its progress off this number.
  double FlaggedRate(const std::string& assertion) const;
};

/// Point-in-time aggregate across the whole service.
struct MetricsSnapshot {
  std::size_t examples_seen = 0;
  std::size_t events = 0;
  std::vector<StreamMetrics> streams;                  // id order
  std::map<std::string, AssertionMetrics> assertions;  // across streams

  /// Service-wide flags per observed example for one assertion.
  double FlaggedRate(const std::string& assertion) const;
};

/// Thread-safe metrics accumulator shared by all shards.
class MetricsRegistry {
 public:
  /// Allocates the slot for `id` (idempotent per id, names must agree).
  void RegisterStream(StreamId id, std::string_view name);

  /// Folds one ingested batch into stream `id`'s aggregates.
  void RecordBatch(StreamId id, std::size_t examples,
                   std::span<const StreamEvent> events);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<StreamMetrics> streams_;
};

}  // namespace omg::runtime
