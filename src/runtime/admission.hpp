// Admission control for the sharded serving fast path.
//
// Every shard of a ShardedMonitorService ingests through a *bounded* MPSC
// queue; what happens when that queue is full is the admission policy. The
// three policies cover the deployment modes the paper's serving story needs:
// lossless backpressure for offline replay (Block), freshest-data-wins for
// live dashboards (DropOldest), and severity-aware load shedding for the
// improvement loop, which only ever acts on high-severity evidence anyway
// (ShedBelowSeverity). Overload therefore degrades by an explicit, counted
// policy instead of by unbounded queue growth.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace omg::obs {
class Tracer;
}  // namespace omg::obs

namespace omg::runtime {

/// What a full ingestion queue does with an incoming batch.
enum class AdmissionPolicy {
  /// Producer blocks until the shard worker frees space (lossless
  /// backpressure; throughput is clamped to the shard's scoring rate).
  kBlock,
  /// The oldest queued batches are dropped (and counted) to admit the new
  /// one — bounded staleness for live monitoring.
  kDropOldest,
  /// Incoming batches whose severity hint is below the configured floor are
  /// shed (and counted); batches at or above the floor displace queued
  /// below-floor work first and block only if the whole queue is important.
  kShedBelowSeverity,
  /// Sheds to hold a latency SLO instead of a queue bound: a below-floor
  /// batch is refused (and counted as shed) whenever the shard's estimated
  /// completion latency — queued examples times the worker's EWMA service
  /// time per example — would exceed `latency_target_ms`. Batches at or
  /// above the shed floor bypass the SLO check (important evidence is never
  /// shed); the queue capacity remains a hard bound enforced by blocking.
  kLatencyTarget,
};

/// Human-readable policy name ("block", "drop_oldest", "shed_below_severity",
/// "latency_target").
std::string_view AdmissionPolicyName(AdmissionPolicy policy);

/// Parses a policy name accepted by AdmissionPolicyName; throws CheckError
/// on anything else.
AdmissionPolicy ParseAdmissionPolicy(std::string_view name);

/// Configuration of a ShardedMonitorService.
struct ShardedRuntimeConfig {
  /// Number of shards; each shard owns a dedicated worker thread, its
  /// streams' evaluators, and its slice of the metrics registry.
  std::size_t shards = 4;
  /// Sliding-window length per stream (examples assertions can see).
  std::size_t window = 64;
  /// How far behind the stream head an example must be before its verdict
  /// is emitted; must stay below `window` (see RuntimeConfig::settle_lag).
  std::size_t settle_lag = 8;
  /// Maximum examples queued per shard (summed over queued batches). A
  /// single batch larger than this is rejected outright.
  std::size_t queue_capacity = 4096;
  /// Full-queue behavior.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Severity-hint floor used by kShedBelowSeverity and kLatencyTarget:
  /// batches observed with a hint below this value are shed when the queue
  /// is full (kShedBelowSeverity) or when the latency SLO is projected to
  /// be missed (kLatencyTarget).
  double shed_floor = 1.0;
  /// kLatencyTarget's SLO: the estimated observe-to-flag completion latency
  /// (milliseconds) a below-floor batch may push the shard to before it is
  /// shed. Ignored by the other policies.
  double latency_target_ms = 50.0;
  /// Work stealing between shard workers: a worker whose own queue is empty
  /// takes whole stream-batch groups from the deepest neighbour's queue
  /// (half of its queued examples, oldest streams first). Per-stream FIFO
  /// order and exclusive evaluator ownership are preserved — scoring
  /// results are bit-identical with stealing on or off; only scheduling
  /// (and therefore tail latency under imbalance) changes.
  bool stealing = true;
  /// Optional trace sink: when set, shard workers emit dequeue/evaluate
  /// events on their lanes and admission losses / flushes land on the
  /// control lane (see obs/tracer.hpp). Must have at least `shards` shard
  /// lanes; null disables tracing entirely.
  std::shared_ptr<obs::Tracer> tracer;

  /// Throws CheckError on invalid combinations (0 shards would never drain
  /// and deadlock Flush; settle_lag >= window could never settle; a
  /// 0-capacity queue could never admit anything).
  void Validate() const;
};

}  // namespace omg::runtime
