#include "runtime/admission.hpp"

#include <cmath>

#include "common/check.hpp"

namespace omg::runtime {

std::string_view AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kDropOldest:
      return "drop_oldest";
    case AdmissionPolicy::kShedBelowSeverity:
      return "shed_below_severity";
    case AdmissionPolicy::kLatencyTarget:
      return "latency_target";
  }
  common::Check(false, "unknown admission policy");
  return "";  // unreachable
}

AdmissionPolicy ParseAdmissionPolicy(std::string_view name) {
  if (name == "block") return AdmissionPolicy::kBlock;
  if (name == "drop_oldest") return AdmissionPolicy::kDropOldest;
  if (name == "shed_below_severity") return AdmissionPolicy::kShedBelowSeverity;
  if (name == "latency_target") return AdmissionPolicy::kLatencyTarget;
  common::Check(false, "unknown admission policy: " + std::string(name) +
                           " (expected block, drop_oldest, "
                           "shed_below_severity, or latency_target)");
  return AdmissionPolicy::kBlock;  // unreachable
}

void ShardedRuntimeConfig::Validate() const {
  common::Check(shards >= 1,
                "sharded runtime config: shards must be >= 1 (a 0-shard "
                "service has no workers to drain its queues, so Flush would "
                "deadlock)");
  common::Check(window >= 1, "sharded runtime config: window must be >= 1");
  common::Check(settle_lag < window,
                "sharded runtime config: settle_lag must be < window (a "
                "verdict settles settle_lag examples behind the stream head, "
                "so it must fit inside the window)");
  common::Check(queue_capacity >= 1,
                "sharded runtime config: queue_capacity must be >= 1");
  common::Check(std::isfinite(shed_floor) && shed_floor >= 0.0,
                "sharded runtime config: shed_floor must be finite and >= 0");
  if (admission == AdmissionPolicy::kLatencyTarget) {
    common::Check(std::isfinite(latency_target_ms) && latency_target_ms > 0.0,
                  "sharded runtime config: latency_target admission needs a "
                  "finite latency_target_ms > 0");
  }
}

}  // namespace omg::runtime
