// The sharded, backpressure-aware serving fast path.
//
// MonitorService (service.hpp) funnels every stream through one ThreadPool
// with unbounded FIFO queues and a shared stream table — fine for
// benchmarks, fatal under sustained overload: memory grows without bound
// and every Observe crosses a service-wide mutex. ShardedMonitorService
// rebuilds the hot path for that regime:
//
//   producers ──ObserveBatch──► bounded MPSC queue ─► shard worker 0
//              (admission policy:  bounded MPSC queue ─► shard worker 1
//               Block / DropOldest,       ...      ◄─╮
//               ShedBelowSeverity, bounded MPSC queue ─► shard worker N-1
//               LatencyTarget)             │         ╰ idle workers steal
//                     scorers + metrics cell owned by that shard
//                                          │
//                          events ──► EventSinks (atomic snapshot)
//
// Ownership and threading:
//
//   * Stream id % shards picks the *home* shard. Each shard owns a
//     dedicated worker thread, the stream scorers of its streams, and its
//     cell of the MetricsRegistry — nothing on the observe/score path
//     takes a lock shared between shards.
//   * Work stealing (config.stealing): an idle worker steals from the
//     deepest neighbour's queue instead of sleeping, so one hot shard no
//     longer caps service throughput at a single core. Steal granularity
//     is *whole-stream batch groups*: a thief claims a stream (under the
//     home shard's mutex), extracts every queued batch of that stream in
//     queue order, and no other worker touches the stream until the thief
//     unclaims it. Per-stream batches therefore score in submission order
//     on exactly one thread at a time — stealing cannot reorder a
//     stream's emissions, so flag digests are identical with stealing on
//     or off (tests/test_steal_equivalence.cpp pins this).
//   * The stream table and the sink list are read through atomic
//     shared_ptr snapshots: producers never contend with registration.
//   * Ingestion queues are bounded (`queue_capacity` examples per shard).
//     A full queue invokes the configured AdmissionPolicy, so overload
//     degrades by an explicit, counted policy instead of OOMing.
//     kLatencyTarget additionally sheds below-floor batches *before* the
//     queue fills, whenever queued work times the shard's measured
//     service rate projects past `latency_target_ms`.
//
// Accounting under stealing: a stolen batch's stream aggregates, events,
// and latency land in its home shard's metrics cell (with zero busy/idle
// — the home worker spent no time on it); the thief's wall time is
// recorded as steal_ns in the thief's cell. Per shard, busy + idle +
// steal partitions worker wall time with no double counting.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/mutex.hpp"
#include "core/assertion.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"
#include "runtime/admission.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/incremental.hpp"
#include "runtime/metrics.hpp"
#include "runtime/stream_registry.hpp"
#include "runtime/suite_bundle.hpp"

namespace omg::runtime {

/// Serves an assertion suite over many concurrent example streams through
/// per-shard worker threads fed by bounded, admission-controlled queues.
///
/// Suites are stateful (consistency assertions memoise analyses), so every
/// stream gets its own instance from the factory. Ingestion is asynchronous:
/// Observe/ObserveBatch enqueue (subject to admission) and return; call
/// Flush() to wait for quiescence. All public methods are thread-safe.
template <typename Example>
class ShardedMonitorService {
 public:
  /// One stream's private suite plus its invalidation hook (shared with
  /// MonitorService — see runtime/suite_bundle.hpp).
  using SuiteBundle = runtime::SuiteBundle<Example>;
  /// Builds one stream's SuiteBundle; called once per RegisterStream.
  using SuiteFactory = runtime::SuiteFactory<Example>;

  /// Validates `config`, spawns one worker thread per shard. `factory` is
  /// the default suite source for RegisterStream(name); it may be omitted
  /// when every stream supplies its own bundle (the serving facade's mode —
  /// heterogeneous streams cannot share one factory).
  explicit ShardedMonitorService(ShardedRuntimeConfig config,
                                 SuiteFactory factory = nullptr)
      : config_(config), factory_(std::move(factory)) {
    config_.Validate();
    if (config_.tracer != nullptr) {
      common::Check(config_.tracer->shard_lanes() >= config_.shards,
                    "tracer has fewer shard lanes than the service has "
                    "shards");
    }
    metrics_ = std::make_unique<MetricsRegistry>(config_.shards);
    shards_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    for (std::size_t i = 0; i < config_.shards; ++i) {
      shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
    }
  }

  /// Drains every queue (already-admitted batches are still scored), then
  /// joins the workers.
  ~ShardedMonitorService() {
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mutex);
      shard->stop = true;
      shard->ready.NotifyAll();
      shard->space.NotifyAll();
    }
    for (const auto& shard : shards_) shard->worker.join();
  }

  ShardedMonitorService(const ShardedMonitorService&) = delete;
  ShardedMonitorService& operator=(const ShardedMonitorService&) = delete;

  /// The validated configuration this service runs with.
  const ShardedRuntimeConfig& config() const { return config_; }

  /// Stream name <-> id mapping.
  const StreamRegistry& registry() const { return registry_; }

  /// Registers a stream served by the default suite factory and pins it to
  /// home shard `id % shards`.
  StreamId RegisterStream(std::string name) {
    common::Check(static_cast<bool>(factory_),
                  "RegisterStream(name) needs the constructor's suite "
                  "factory; pass a bundle explicitly otherwise");
    return RegisterStream(std::move(name), factory_());
  }

  /// Registers a stream served by its own `bundle` — streams of one
  /// service may run entirely different suites (the serving facade hosts
  /// heterogeneous domains this way).
  StreamId RegisterStream(std::string name, SuiteBundle bundle) {
    // Registration is serialised end to end: id assignment and the table
    // append must be atomic together, or two concurrent registrations
    // could append out of id order.
    MutexLock lock(registration_mutex_);
    const StreamId id = registry_.Register(std::move(name));
    metrics_->RegisterStream(id, registry_.Name(id));
    common::Check(bundle.suite != nullptr, "suite factory returned null");
    auto state = std::make_unique<StreamState>(id, registry_.Name(id),
                                               std::move(bundle), config_);
    state->home_mutex = &shards_[state->shard]->mutex;
    auto table = std::make_shared<std::vector<StreamState*>>(
        streams_.load() ? *streams_.load() : std::vector<StreamState*>{});
    common::Check(table->size() == id, "stream table out of sync");
    table->push_back(state.get());
    owned_streams_.push_back(std::move(state));
    streams_.store(std::shared_ptr<const std::vector<StreamState*>>(
        std::move(table)));
    return id;
  }

  /// Fans `sink` every event from every stream. Thread-safe; events already
  /// in flight on the workers may miss a sink added concurrently.
  void AddSink(std::shared_ptr<EventSink> sink) {
    common::Check(sink != nullptr, "null sink");
    MutexLock lock(registration_mutex_);
    auto sinks = std::make_shared<std::vector<std::shared_ptr<EventSink>>>(
        sinks_.load() ? *sinks_.load()
                      : std::vector<std::shared_ptr<EventSink>>{});
    sinks->push_back(std::move(sink));
    sinks_.store(std::shared_ptr<const std::vector<std::shared_ptr<EventSink>>>(
        std::move(sinks)));
  }

  /// Enqueues one example (convenience wrapper; prefer ObserveBatch under
  /// load — batching is where the throughput comes from). Returns false if
  /// the example was shed by the admission policy.
  bool Observe(StreamId id, Example example, double severity_hint = 0.0) {
    std::vector<Example> batch;
    batch.push_back(std::move(example));
    return ObserveBatch(id, std::move(batch), severity_hint);
  }

  /// Enqueues a batch for `id` and returns. Batches from one producer are
  /// scored in submission order (minus any the admission policy removed).
  ///
  /// `severity_hint` is the producer's estimate of how important the batch
  /// is (e.g. an upstream filter's confidence that it contains anomalies);
  /// kShedBelowSeverity sheds below-floor batches when the queue is full,
  /// kLatencyTarget sheds them whenever the shard's projected completion
  /// latency exceeds the target. Returns true when the batch was admitted,
  /// false when it was shed — kBlock and kDropOldest always admit (kBlock
  /// by waiting for space, kDropOldest by evicting queued batches).
  bool ObserveBatch(StreamId id, std::vector<Example> batch,
                    double severity_hint = 0.0) {
    if (batch.empty()) return true;
    common::Check(batch.size() <= config_.queue_capacity,
                  "batch exceeds the shard queue capacity; split it");
    StreamState* state = State(id);
    Shard& shard = *shards_[state->shard];
    const std::size_t cost = batch.size();
    std::size_t dropped_batches = 0;
    std::size_t dropped_examples = 0;
    std::size_t depth;
    {
      MutexLock lock(shard.mutex);
      if (config_.admission == AdmissionPolicy::kLatencyTarget &&
          severity_hint < config_.shed_floor) {
        // Project the batch's completion latency from the queue depth and
        // the shard's measured service rate; shed below-floor work that
        // would land past the target. The EWMA is a deliberately racy
        // heuristic (workers publish it relaxed); admission stays exact
        // through the counters, not the estimate. Until the first scored
        // batch publishes a rate, everything is admitted.
        const std::uint64_t ewma_ns =
            shard.service_ewma_ns.load(std::memory_order_relaxed);
        if (ewma_ns != 0 &&
            static_cast<double>(shard.queued + cost) *
                    static_cast<double>(ewma_ns) >
                config_.latency_target_ms * 1e6) {
          lock.Unlock();
          metrics_->RecordLoss(state->shard, 1, cost,
                               MetricsRegistry::LossKind::kShed);
          OMG_TRACE(if (config_.tracer != nullptr)
                        config_.tracer->EmitControl(
                            obs::TraceEventKind::kAdmissionShed,
                            obs::TracePhase::kInstant, id, cost,
                            state->shard));
          return false;
        }
      }
      if (shard.queued + cost > config_.queue_capacity) {
        switch (config_.admission) {
          case AdmissionPolicy::kBlock:
          case AdmissionPolicy::kLatencyTarget:
            // Capacity is a hard bound under kLatencyTarget too: batches
            // that clear the latency gate still block for space.
            while (!shard.stop &&
                   shard.queued + cost > config_.queue_capacity) {
              shard.space.Wait(shard.mutex);
            }
            break;
          case AdmissionPolicy::kDropOldest:
            while (shard.queued + cost > config_.queue_capacity &&
                   !shard.queue.empty()) {
              shard.queued -= shard.queue.front().batch.size();
              dropped_examples += shard.queue.front().batch.size();
              ++dropped_batches;
              shard.queue.pop_front();
            }
            break;
          case AdmissionPolicy::kShedBelowSeverity:
            if (severity_hint < config_.shed_floor) {
              lock.Unlock();
              metrics_->RecordLoss(state->shard, 1, cost,
                                   MetricsRegistry::LossKind::kShed);
              OMG_TRACE(if (config_.tracer != nullptr)
                            config_.tracer->EmitControl(
                                obs::TraceEventKind::kAdmissionShed,
                                obs::TracePhase::kInstant, id, cost,
                                state->shard));
              return false;
            }
            // The incoming batch is important: make room by evicting
            // below-floor queued work (oldest first), then block if the
            // whole queue is important too.
            for (auto it = shard.queue.begin();
                 it != shard.queue.end() &&
                 shard.queued + cost > config_.queue_capacity;) {
              if (it->severity_hint < config_.shed_floor) {
                shard.queued -= it->batch.size();
                dropped_examples += it->batch.size();
                ++dropped_batches;
                it = shard.queue.erase(it);
              } else {
                ++it;
              }
            }
            while (!shard.stop &&
                   shard.queued + cost > config_.queue_capacity) {
              shard.space.Wait(shard.mutex);
            }
            break;
        }
      }
      shard.queue.push_back(
          {state, std::move(batch), severity_hint, obs::Clock::NowNs()});
      shard.queued += cost;
      shard.queued_approx.store(shard.queued, std::memory_order_relaxed);
      depth = shard.queued;
      shard.ready.NotifyOne();
    }
    metrics_->RecordQueueDepth(state->shard, depth);
    if (dropped_batches > 0) {
      metrics_->RecordLoss(state->shard, dropped_batches, dropped_examples,
                           MetricsRegistry::LossKind::kDropped);
      OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                    obs::TraceEventKind::kAdmissionDrop,
                    obs::TracePhase::kInstant, id, dropped_examples,
                    state->shard));
    }
    return true;
  }

  /// Blocks until every shard is quiescent (queue empty, worker idle, no
  /// stolen work in flight), then flushes the sinks. With producers still
  /// running this waits for them to pause; under kBlock a producer blocked
  /// on admission makes progress as the workers drain, so Flush still
  /// terminates.
  void Flush() {
    OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                  obs::TraceEventKind::kFlush, obs::TracePhase::kBegin));
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mutex);
      while (!shard->queue.empty() || shard->busy ||
             shard->stolen_inflight != 0) {
        shard->idle.Wait(shard->mutex);
      }
    }
    if (const auto sinks = sinks_.load()) {
      for (const auto& sink : *sinks) sink->Flush();
    }
    OMG_TRACE(if (config_.tracer != nullptr) config_.tracer->EmitControl(
                  obs::TraceEventKind::kFlush, obs::TracePhase::kEnd));
  }

  /// Aggregated dashboard snapshot — per-stream aggregates plus the
  /// per-shard queue/drop/steal counters and observe-to-flag latency
  /// histograms (does not flush; pair with Flush() for read-your-writes).
  MetricsSnapshot Metrics() const { return metrics_->Snapshot(); }

  /// The shared metrics registry, for frontends recording their own
  /// accounting (e.g. the net layer's named per-tenant counters) into the
  /// same snapshot the exporter renders.
  MetricsRegistry& metrics_registry() { return *metrics_; }

  /// Messages from ingestion tasks that threw (a throwing assertion poisons
  /// its batch, not the service).
  std::vector<std::string> Errors() const {
    MutexLock lock(errors_mutex_);
    return errors_;
  }

 private:
  /// One registered stream: its suite bundle and scorer, driven by exactly
  /// one worker at a time (the claimed-stream protocol below).
  struct StreamState {
    StreamState(StreamId id, std::string_view name, SuiteBundle bundle_in,
                const ShardedRuntimeConfig& config)
        : id(id),
          name(name),
          shard(id % config.shards),
          bundle(std::move(bundle_in)) {
      const StreamScorerParams params{config.window, config.settle_lag};
      if (bundle.scorer) {
        scorer = bundle.scorer(params);
        common::Check(scorer != nullptr, "scorer factory returned null");
      } else {
        scorer = std::make_unique<DefaultStreamScorer<Example>>(
            bundle.suite, bundle.invalidate, params);
      }
    }

    StreamId id;
    std::string_view name;  // owned by the registry
    std::size_t shard;      ///< home shard (id % shards)
    SuiteBundle bundle;
    std::unique_ptr<StreamScorer<Example>> scorer;
    /// The home shard's mutex — the capability guarding `claimed`. Set by
    /// RegisterStream right after construction, constant afterwards.
    Mutex* home_mutex = nullptr;

    /// Whether some worker (home or thief) holds this stream's batches out
    /// of the queue. `proof` is the mutex the caller holds; every call
    /// site passes the home shard's mutex (streams are scanned only under
    /// their own shard's lock), which AssertHeld turns into the capability
    /// the analysis needs — it cannot name "the home shard's mutex" as a
    /// static expression because the alias is a runtime value.
    bool IsClaimed(Mutex& proof) const OMG_REQUIRES(proof) {
      static_cast<void>(proof);
      home_mutex->AssertHeld();  // proof IS *home_mutex at every call site
      return claimed;
    }

    /// Claims (true) or unclaims (false) the stream. Same proof contract
    /// as IsClaimed. While claimed, no other worker may dequeue or steal
    /// this stream's items — this is what serialises scorer access and
    /// preserves per-stream FIFO under stealing.
    void SetClaimed(bool value, Mutex& proof) OMG_REQUIRES(proof) {
      static_cast<void>(proof);
      home_mutex->AssertHeld();  // proof IS *home_mutex at every call site
      claimed = value;
    }

   private:
    bool claimed OMG_GUARDED_BY(*home_mutex) = false;
  };

  /// One queued ingestion batch.
  struct QueueItem {
    StreamState* state;
    std::vector<Example> batch;
    double severity_hint;
    /// obs::Clock admission timestamp (queue-wait and latency baseline).
    std::uint64_t enqueued_ns;
  };

  /// One shard: a bounded MPSC queue plus the dedicated worker draining
  /// it. Cache-line aligned so one shard's queue churn never false-shares
  /// with its neighbours' hot fields.
  struct alignas(64) Shard {
    Mutex mutex;
    CondVar ready;  ///< worker waits for work / unclaims
    CondVar space;  ///< kBlock producers wait for capacity
    CondVar idle;   ///< Flush waits for quiescence
    std::deque<QueueItem> queue OMG_GUARDED_BY(mutex);
    /// Examples summed over `queue`.
    std::size_t queued OMG_GUARDED_BY(mutex) = 0;
    /// Worker is scoring a popped batch.
    bool busy OMG_GUARDED_BY(mutex) = false;
    bool stop OMG_GUARDED_BY(mutex) = false;
    /// Examples extracted by thieves, not yet scored (quiescence term).
    std::size_t stolen_inflight OMG_GUARDED_BY(mutex) = 0;
    /// Lock-free mirror of `queued` — victim selection reads it without
    /// touching the mutex.
    std::atomic<std::size_t> queued_approx{0};
    /// EWMA of scoring ns per example (kLatencyTarget's service-rate
    /// estimate). Plain loads/stores, intentionally racy — see
    /// UpdateServiceEwma.
    std::atomic<std::uint64_t> service_ewma_ns{0};
    std::thread worker;
  };

  /// One stream's batches extracted from a victim queue, in queue order.
  struct StolenGroup {
    StreamState* state = nullptr;
    std::vector<QueueItem> items;
    std::size_t examples = 0;
  };

  StreamState* State(StreamId id) {
    const auto table = streams_.load();
    common::Check(table != nullptr && id < table->size(), "unknown stream id");
    return (*table)[id];
  }

  /// First queued item whose stream is unclaimed. `proof` is the queue's
  /// own shard mutex, held by the caller — the home mutex of every stream
  /// in the queue (streams only ever queue on their home shard).
  static typename std::deque<QueueItem>::iterator FirstUnclaimed(
      std::deque<QueueItem>& queue, Mutex& proof) OMG_REQUIRES(proof) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (!it->state->IsClaimed(proof)) return it;
    }
    return queue.end();
  }

  void WorkerLoop(std::size_t shard_index) {
    Shard& shard = *shards_[shard_index];
    [[maybe_unused]] obs::Tracer* const tracer = config_.tracer.get();
    const bool stealing = config_.stealing && config_.shards > 1;
    // Occupancy accounting: everything between finishing one batch (or
    // steal episode) and starting the next is idle; own scoring is busy,
    // foreign scoring is steal time. The boundary timestamps double as
    // the queue-wait measurement.
    std::uint64_t idle_since_ns = obs::Clock::NowNs();
    for (;;) {
      QueueItem item;
      std::size_t depth = 0;
      bool have_own = false;
      {
        MutexLock lock(shard.mutex);
        for (;;) {
          const auto it = FirstUnclaimed(shard.queue, shard.mutex);
          if (it != shard.queue.end()) {
            item = std::move(*it);
            shard.queue.erase(it);
            shard.queued -= item.batch.size();
            shard.queued_approx.store(shard.queued,
                                      std::memory_order_relaxed);
            depth = shard.queued;
            shard.busy = true;
            item.state->SetClaimed(true, shard.mutex);
            shard.space.NotifyAll();
            have_own = true;
            break;
          }
          if (shard.stop) {
            if (shard.queue.empty()) return;
            // Claimed leftovers: a thief still owns those streams; it
            // will unclaim and notify when its group is scored.
            shard.ready.Wait(shard.mutex);
            continue;
          }
          if (stealing) break;  // nothing local: try the neighbours
          shard.ready.Wait(shard.mutex);
        }
      }
      if (have_own) {
        const std::uint64_t dequeued_ns = obs::Clock::NowNs();
        const std::uint64_t idle_ns =
            obs::Clock::ElapsedNs(idle_since_ns, dequeued_ns);
        const std::uint64_t queue_wait_ns =
            obs::Clock::ElapsedNs(item.enqueued_ns, dequeued_ns);
        metrics_->RecordQueueDepth(shard_index, depth);
        bool traced = false;
        OMG_TRACE(
            traced = tracer != nullptr && tracer->SampleBatch(shard_index);
            if (traced) tracer->EmitShard(
                shard_index, obs::TraceEventKind::kBatchDequeue,
                obs::TracePhase::kInstant, item.state->id, item.batch.size(),
                depth));
        Score(shard_index, item, queue_wait_ns, idle_ns, traced,
              /*stolen=*/false);
        {
          MutexLock lock(shard.mutex);
          item.state->SetClaimed(false, shard.mutex);
          shard.busy = false;
          if (shard.queue.empty() && shard.stolen_inflight == 0) {
            shard.idle.NotifyAll();
          }
        }
        idle_since_ns = obs::Clock::NowNs();
        continue;
      }
      if (TryStealAndRun(shard_index, idle_since_ns)) continue;
      // Nothing to steal either: nap until local work arrives or a short
      // timeout re-opens the steal scan. A spurious wake just re-runs the
      // outer scan, so a single bounded wait suffices — no predicate loop.
      MutexLock lock(shard.mutex);
      if (!shard.stop &&
          FirstUnclaimed(shard.queue, shard.mutex) == shard.queue.end()) {
        shard.ready.WaitFor(shard.mutex, std::chrono::microseconds(500));
      }
    }
  }

  /// One steal episode: claim whole-stream batch groups from the deepest
  /// neighbour until half its queued examples are extracted, score them,
  /// unclaim group by group. Returns false when there was nothing to
  /// steal. On success, advances `idle_since_ns` past the episode.
  bool TryStealAndRun(std::size_t thief_index, std::uint64_t& idle_since_ns) {
    [[maybe_unused]] obs::Tracer* const tracer = config_.tracer.get();
    std::size_t victim_index = thief_index;
    std::size_t deepest = 0;
    for (std::size_t j = 0; j < config_.shards; ++j) {
      if (j == thief_index) continue;
      const std::size_t d =
          shards_[j]->queued_approx.load(std::memory_order_relaxed);
      if (d > deepest) {
        deepest = d;
        victim_index = j;
      }
    }
    if (victim_index == thief_index) return false;
    Shard& victim = *shards_[victim_index];
    std::vector<StolenGroup> groups;
    std::size_t stolen_examples = 0;
    std::size_t stolen_batches = 0;
    std::size_t depth = 0;
    {
      MutexLock lock(victim.mutex);
      // A stopping victim drains its own queue; stealing from it would
      // race the drain-then-join shutdown.
      if (victim.stop || victim.queue.empty()) return false;
      const std::size_t half = (victim.queued + 1) / 2;
      while (stolen_examples < half) {
        StreamState* target = nullptr;
        for (const QueueItem& queued_item : victim.queue) {
          // victim.mutex is the home mutex of every stream in its queue.
          if (!queued_item.state->IsClaimed(victim.mutex)) {
            target = queued_item.state;
            break;
          }
        }
        if (target == nullptr) break;  // all remaining streams are claimed
        target->SetClaimed(true, victim.mutex);
        StolenGroup group;
        group.state = target;
        for (auto it = victim.queue.begin(); it != victim.queue.end();) {
          if (it->state == target) {
            group.examples += it->batch.size();
            ++stolen_batches;
            group.items.push_back(std::move(*it));
            it = victim.queue.erase(it);
          } else {
            ++it;
          }
        }
        stolen_examples += group.examples;
        groups.push_back(std::move(group));
      }
      if (groups.empty()) return false;
      victim.queued -= stolen_examples;
      victim.queued_approx.store(victim.queued, std::memory_order_relaxed);
      victim.stolen_inflight += stolen_examples;
      depth = victim.queued;
      victim.space.NotifyAll();
    }
    metrics_->RecordQueueDepth(victim_index, depth);
    metrics_->RecordSteal(victim_index, stolen_batches, stolen_examples);
    const std::uint64_t steal_begin_ns = obs::Clock::NowNs();
    const std::uint64_t idle_ns =
        obs::Clock::ElapsedNs(idle_since_ns, steal_begin_ns);
    for (StolenGroup& group : groups) {
      for (QueueItem& stolen_item : group.items) {
        const std::uint64_t queue_wait_ns =
            obs::Clock::ElapsedNs(stolen_item.enqueued_ns, steal_begin_ns);
        // Stolen batches trace into the *thief's* lane (never the home
        // shard's): each lane stays single-writer — only its own worker
        // thread emits into it.
        bool traced = false;
        OMG_TRACE(
            traced = tracer != nullptr && tracer->SampleBatch(thief_index);
            if (traced) tracer->EmitShard(
                thief_index, obs::TraceEventKind::kBatchDequeue,
                obs::TracePhase::kInstant, stolen_item.state->id,
                stolen_item.batch.size(), depth));
        Score(thief_index, stolen_item, queue_wait_ns, /*idle_ns=*/0,
              traced, /*stolen=*/true);
      }
      {
        MutexLock lock(victim.mutex);
        group.state->SetClaimed(false, victim.mutex);
        victim.stolen_inflight -= group.examples;
        // The home worker may have skipped this stream's newer items (or
        // be waiting out a stop) — wake it now that the claim is gone.
        victim.ready.NotifyAll();
        if (victim.queue.empty() && !victim.busy &&
            victim.stolen_inflight == 0) {
          victim.idle.NotifyAll();
        }
      }
    }
    const std::uint64_t steal_end_ns = obs::Clock::NowNs();
    metrics_->RecordStealWork(
        thief_index, obs::Clock::ElapsedNs(steal_begin_ns, steal_end_ns),
        idle_ns);
    idle_since_ns = steal_end_ns;
    return true;
  }

  /// Publishes a scoring measurement into the home shard's service-rate
  /// EWMA (kLatencyTarget's admission signal). Load/compute/store without
  /// a CAS loop: the home worker and a thief can race and drop an update,
  /// which only jitters a heuristic the admission counters keep honest.
  void UpdateServiceEwma(std::size_t home_shard, std::uint64_t busy_ns,
                         std::size_t count) {
    if (count == 0) return;
    Shard& shard = *shards_[home_shard];
    const std::uint64_t per =
        std::max<std::uint64_t>(1, busy_ns / count);
    const std::uint64_t old =
        shard.service_ewma_ns.load(std::memory_order_relaxed);
    shard.service_ewma_ns.store(old == 0 ? per : (7 * old + per) / 8,
                                std::memory_order_relaxed);
  }

  /// Scores one batch on `worker_shard`'s thread. The stream is claimed by
  /// the caller, so scorer access is exclusive. `stolen` routes the
  /// occupancy: an own batch's busy/idle land in the home cell here, a
  /// stolen batch's wall time is the caller's steal episode (recorded via
  /// RecordStealWork) and the home cell gets zero busy/idle — stream
  /// aggregates, events, and latency always land in the home cell.
  void Score(std::size_t worker_shard, QueueItem& item,
             std::uint64_t queue_wait_ns, std::uint64_t idle_ns,
             [[maybe_unused]] bool traced, bool stolen) {
    [[maybe_unused]] obs::Tracer* const tracer = config_.tracer.get();
    StreamState& state = *item.state;
    const std::size_t count = item.batch.size();
    const std::uint64_t begin_ns = obs::Clock::NowNs();
    OMG_TRACE(if (traced) tracer->EmitShard(
                  worker_shard, obs::TraceEventKind::kEvaluate,
                  obs::TracePhase::kBegin, state.id, count));
    std::vector<StreamEvent> events;
    try {
      state.scorer->ObserveBatch(
          std::move(item.batch),
          [&](std::size_t global, std::size_t a, double severity) {
            events.push_back({state.id, state.name, global,
                              state.bundle.suite->at(a).name(), severity});
          });
    } catch (const std::exception& error) {
      {
        MutexLock lock(errors_mutex_);
        errors_.push_back(std::string(state.name) + ": " + error.what());
      }
      const std::uint64_t failed_ns = obs::Clock::NowNs();
      OMG_TRACE(if (traced) tracer->EmitShard(
                    worker_shard, obs::TraceEventKind::kEvaluate,
                    obs::TracePhase::kEnd, state.id, count, 0));
      const std::uint64_t busy_ns =
          obs::Clock::ElapsedNs(begin_ns, failed_ns);
      // Keep the loss accounting exact: a poisoned batch's examples must
      // land in a counter (offered == scored + shed + dropped + errored).
      metrics_->RecordError(state.shard, 1, count, queue_wait_ns,
                            stolen ? 0 : busy_ns, stolen ? 0 : idle_ns);
      UpdateServiceEwma(state.shard, busy_ns, count);
      return;
    }
    if (const auto sinks = sinks_.load()) {
      for (const auto& sink : *sinks) {
        for (const StreamEvent& event : events) sink->Consume(event);
      }
    }
    const std::uint64_t done_ns = obs::Clock::NowNs();
    OMG_TRACE(if (traced) tracer->EmitShard(
                  worker_shard, obs::TraceEventKind::kEvaluate,
                  obs::TracePhase::kEnd, state.id, count, events.size()));
    const double latency = obs::Clock::ToSeconds(
        obs::Clock::ElapsedNs(item.enqueued_ns, done_ns));
    const std::uint64_t busy_ns = obs::Clock::ElapsedNs(begin_ns, done_ns);
    metrics_->RecordScoredBatch(state.id, state.shard, count, events, latency,
                                queue_wait_ns, stolen ? 0 : busy_ns,
                                stolen ? 0 : idle_ns);
    UpdateServiceEwma(state.shard, busy_ns, count);
  }

  ShardedRuntimeConfig config_;
  SuiteFactory factory_;
  StreamRegistry registry_;
  std::unique_ptr<MetricsRegistry> metrics_;

  /// Guards registration (stream table + sink list writers); readers go
  /// through the atomic snapshots below and never take it.
  Mutex registration_mutex_;
  std::vector<std::unique_ptr<StreamState>> owned_streams_
      OMG_GUARDED_BY(registration_mutex_);
  std::atomic<std::shared_ptr<const std::vector<StreamState*>>> streams_;
  std::atomic<std::shared_ptr<const std::vector<std::shared_ptr<EventSink>>>>
      sinks_;

  mutable Mutex errors_mutex_;
  std::vector<std::string> errors_ OMG_GUARDED_BY(errors_mutex_);

  // Declared last: workers joined (in ~ShardedMonitorService) before the
  // state above dies.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace omg::runtime
